// Scenario: composing a custom execution plan from building blocks.
//
// VolcanoML's differentiator is that the decomposition strategy is
// user-programmable: building blocks compose into a plan tree the way
// relational operators compose into a query plan. This example builds
// the paper's Figure 2 plan *by hand* from ConditioningBlock /
// AlternatingBlock / JointBlock, runs the Volcano-style loop directly,
// and inspects per-arm statistics — things the VolcanoML façade does for
// you, shown here at the level a systems user would extend.

#include <cstdio>
#include <memory>

#include "core/alternating_block.h"
#include "core/conditioning_block.h"
#include "core/joint_block.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "util/rng.h"

int main() {
  using namespace volcanoml;

  Dataset data = MakeXorParity(700, 3, 12, 0.03, 77, "sensor_parity");
  Rng rng(3);
  Split split = TrainTestSplit(data, 0.2, &rng);
  Dataset train = data.Subset(split.train);

  SearchSpaceOptions space_options;
  space_options.task = TaskType::kClassification;
  space_options.preset = SpacePreset::kMedium;
  SearchSpace space(space_options);
  PipelineEvaluator evaluator(&space, &train, {});

  // Build Figure 2 by hand: a conditioning block over the algorithm
  // variable whose arms are alternating(FE joint, HP joint) blocks.
  auto arm_factory = [&](size_t arm) -> std::unique_ptr<BuildingBlock> {
    const std::string& algorithm = space.algorithms()[arm];
    ConfigurationSpace fe_space = space.FeSubspace();
    ConfigurationSpace hp_space = space.HpSubspaceFor(algorithm);
    std::vector<std::string> fe_vars = fe_space.ParameterNames();
    std::vector<std::string> hp_vars = hp_space.ParameterNames();
    auto fe_block = std::make_unique<JointBlock>(
        "fe[" + algorithm + "]", std::move(fe_space), &evaluator,
        JointOptimizerKind::kSmac, 100 + arm);
    auto hp_block = std::make_unique<JointBlock>(
        "hp[" + algorithm + "]", std::move(hp_space), &evaluator,
        JointOptimizerKind::kSmac, 200 + arm);
    auto alt = std::make_unique<AlternatingBlock>(
        "alt[" + algorithm + "]", std::move(fe_block), fe_vars,
        std::move(hp_block), hp_vars);
    alt->SetVar({{"algorithm", static_cast<double>(arm)}});
    return alt;
  };
  ConditioningBlock root("cond[algorithm]", "algorithm",
                         space.algorithms().size(), arm_factory);

  // The Volcano execution loop, written out explicitly.
  const double budget = 90.0;
  while (evaluator.consumed_budget() < budget) {
    root.DoNext(budget - evaluator.consumed_budget());
  }

  std::printf("pulls: %zu, best validation utility: %.4f\n",
              root.NumPulls(), root.BestUtility());
  std::printf("\nper-arm status after the run:\n");
  for (size_t arm = 0; arm < space.algorithms().size(); ++arm) {
    const BuildingBlock& child = root.child(arm);
    std::printf("  %-22s %-11s pulls=%3zu best=%.4f eui=%.5f\n",
                space.algorithms()[arm].c_str(),
                root.IsChildActive(arm) ? "active" : "eliminated",
                child.NumPulls(), child.BestUtility(),
                child.HasObservations() ? child.GetEui() : 0.0);
  }

  std::printf("\nwinning configuration:\n");
  for (const auto& [name, value] : root.BestAssignment()) {
    std::printf("  %s = %g\n", name.c_str(), value);
  }
  return 0;
}
