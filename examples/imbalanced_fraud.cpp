// Scenario: fraud-style imbalanced classification with search-space
// enrichment (the paper's Table 2 story).
//
// A stock AutoML search space handles class imbalance only with generic
// over/undersampling. VolcanoML's extensible FE stages let a user drop in
// the "smote" balancer, and the search decides when to use it. This
// example contrasts the default space with the enriched one on a 12:1
// imbalanced task, reporting balanced accuracy (accuracy would look
// deceptively high by always predicting the majority class).

#include <cstdio>

#include "core/volcano_ml.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace {

double RunSearch(const volcanoml::Dataset& train,
                 const volcanoml::Dataset& test, bool include_smote) {
  using namespace volcanoml;
  VolcanoMlOptions options;
  options.space.task = TaskType::kClassification;
  options.space.preset = SpacePreset::kLarge;  // Has the balancing stage.
  options.space.include_smote = include_smote;
  options.budget = 60.0;
  options.seed = 3;
  VolcanoML automl(options);
  AutoMlResult result = automl.Fit(train);

  Result<FittedPipeline> pipeline = automl.FitFinalPipeline();
  if (!pipeline.ok()) return 0.0;
  std::vector<double> predictions = pipeline.value().Predict(test.x());
  double score =
      BalancedAccuracy(test.y(), predictions, test.NumClasses());

  auto balancer = result.best_assignment.find("fe:balancing");
  std::printf("  chosen balancing operator index: %g\n",
              balancer == result.best_assignment.end() ? -1.0
                                                       : balancer->second);
  return score;
}

}  // namespace

int main() {
  using namespace volcanoml;

  // "Fraud" data: 12 legitimate transactions per fraudulent one.
  ClassificationOptions generator;
  generator.num_samples = 900;
  generator.num_features = 20;
  generator.num_informative = 5;
  generator.num_redundant = 4;
  generator.imbalance = 12.0;
  generator.class_sep = 0.9;
  generator.flip_y = 0.02;
  Dataset data = MakeClassification(generator, 2026, "fraud_like");
  std::vector<size_t> counts = data.ClassCounts();
  std::printf("class balance: %zu legitimate vs %zu fraud\n", counts[0],
              counts[1]);

  Rng rng(5);
  Split split = TrainTestSplit(data, 0.2, &rng);
  Dataset train = data.Subset(split.train);
  Dataset test = data.Subset(split.test);

  std::printf("\ndefault search space:\n");
  double base = RunSearch(train, test, /*include_smote=*/false);
  std::printf("  test balanced accuracy: %.4f\n", base);

  std::printf("\nenriched search space (+smote balancer):\n");
  double enriched = RunSearch(train, test, /*include_smote=*/true);
  std::printf("  test balanced accuracy: %.4f\n", enriched);

  std::printf("\nenrichment delta: %+.4f balanced-accuracy points\n",
              enriched - base);
  return 0;
}
