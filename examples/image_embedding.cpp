// Scenario: image classification via embedding selection (the paper's
// Figure 3 enriched plan, Section 5.3).
//
// Shallow pipelines cannot learn from raw pixels; with the embedding
// stage enabled, VolcanoML chooses between the raw input and two
// simulated pre-trained encoders (the TF-Hub substitution) jointly with
// the rest of the pipeline, and discovers that the in-domain encoder
// unlocks the task.

#include <cstdio>

#include "core/volcano_ml.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace {

double RunSearch(const volcanoml::Dataset& train,
                 const volcanoml::Dataset& test, bool include_embedding,
                 std::string* chosen_embedding) {
  using namespace volcanoml;
  VolcanoMlOptions options;
  options.space.task = TaskType::kClassification;
  options.space.preset = SpacePreset::kMedium;
  options.space.include_embedding = include_embedding;
  options.budget = 50.0;
  options.seed = 11;
  VolcanoML automl(options);
  AutoMlResult result = automl.Fit(train);

  if (include_embedding) {
    static const char* kNames[] = {"none (raw pixels)", "pretrained_model_a",
                                   "pretrained_model_b"};
    auto it = result.best_assignment.find("fe:embedding");
    size_t index =
        it == result.best_assignment.end() ? 0 : static_cast<size_t>(it->second);
    *chosen_embedding = index < 3 ? kNames[index] : "?";
  }

  Result<FittedPipeline> pipeline = automl.FitFinalPipeline();
  if (!pipeline.ok()) return 0.0;
  std::vector<double> predictions = pipeline.value().Predict(test.x());
  return BalancedAccuracy(test.y(), predictions, test.NumClasses());
}

}  // namespace

int main() {
  using namespace volcanoml;

  // 8x8 synthetic "pet photos": class texture hidden under per-image
  // exposure/illumination nuisance and pixel noise.
  Dataset images = MakeSyntheticImages(500, 8, 1.5, 99, "pet_photos");
  Rng rng(13);
  Split split = TrainTestSplit(images, 0.2, &rng);
  Dataset train = images.Subset(split.train);
  Dataset test = images.Subset(split.test);

  std::string chosen;
  std::printf("searching WITHOUT the embedding stage (raw pixels)...\n");
  double raw = RunSearch(train, test, false, &chosen);
  std::printf("  test balanced accuracy: %.4f\n\n", raw);

  std::printf("searching WITH embedding selection (Figure 3 plan)...\n");
  double embedded = RunSearch(train, test, true, &chosen);
  std::printf("  test balanced accuracy: %.4f\n", embedded);
  std::printf("  selected embedding: %s\n", chosen.c_str());

  std::printf("\n(paper's dogs-vs-cats: 96.5%% with embeddings vs 69.7%% "
              "without)\n");
  return 0;
}
