// Quickstart: run VolcanoML end to end on a classification dataset.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the core public API: build a dataset, configure a
// VolcanoML run (search space preset, plan, budget), fit, inspect the
// result, and deploy the winning pipeline on held-out data.

#include <cstdio>

#include "core/volcano_ml.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "util/rng.h"

int main() {
  using namespace volcanoml;

  // 1. Data: a nonlinear binary task (two interleaved half-moons), split
  //    80/20 into search data and untouched test data. Real applications
  //    would call LoadCsvDataset() instead.
  Dataset data = MakeMoons(800, 0.25, /*seed=*/42);
  Rng rng(7);
  Split split = TrainTestSplit(data, 0.2, &rng);
  Dataset train = data.Subset(split.train);
  Dataset test = data.Subset(split.test);

  // 2. Configure the AutoML run. The default execution plan is the
  //    paper's Figure 2: conditioning on the algorithm, then alternating
  //    between feature engineering and hyper-parameter tuning per arm.
  VolcanoMlOptions options;
  options.space.task = TaskType::kClassification;
  options.space.preset = SpacePreset::kMedium;
  options.budget = 80.0;  // 80 pipeline evaluations.
  options.seed = 1;

  // 3. Search.
  VolcanoML automl(options);
  AutoMlResult result = automl.Fit(train);
  std::printf("evaluations: %zu\n", result.num_evaluations);
  std::printf("validation balanced accuracy: %.4f\n", result.best_utility);
  std::printf("best pipeline:\n");
  for (const auto& [name, value] : result.best_assignment) {
    std::printf("  %s = %g\n", name.c_str(), value);
  }

  // 4. Deploy: retrain the winner on all search data, predict the test
  //    set.
  Result<FittedPipeline> pipeline = automl.FitFinalPipeline();
  if (!pipeline.ok()) {
    std::printf("final fit failed: %s\n",
                pipeline.status().ToString().c_str());
    return 1;
  }
  std::vector<double> predictions = pipeline.value().Predict(test.x());
  std::printf("test balanced accuracy: %.4f\n",
              BalancedAccuracy(test.y(), predictions, test.NumClasses()));
  return 0;
}
