// Out-of-process trial evaluator for the process-pool dispatch backend.
// The binary is a thin shell: all process/protocol machinery lives in
// src/worker/worker_main.cc so determinism rule R15 can confine
// fork/exec/kill to src/worker/. Spawned by WorkerSupervisor with
// `--fd N` (its end of the supervisor socketpair); never run by hand.

#include "worker/worker_main.h"

int main(int argc, char** argv) {
  return volcanoml::RunWorkerMain(argc, argv);
}
