// Command-line AutoML: run VolcanoML on a numeric CSV file.
//
//   volcanoml_cli <train.csv> [options]
//
//   --task cls|reg          task type               (default: cls)
//   --preset small|medium|large                     (default: medium)
//   --budget <n>            evaluations, or seconds with --seconds
//   --seconds               budget is wall-clock seconds
//   --plan joint|cond|default|alt                   (default: default)
//   --cv <k>                k-fold CV utility       (default: holdout)
//   --smote                 enrich the space with the SMOTE balancer
//   --seed <n>              RNG seed                (default: 1)
//   --predict <test.csv>    score a held-out CSV after the search
//
// CSV format: headerless, numeric, last column is the target (class ids
// 0..k-1 for classification).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/volcano_ml.h"
#include "data/csv.h"
#include "ml/metrics.h"

namespace {

using namespace volcanoml;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <train.csv> [--task cls|reg] [--preset "
               "small|medium|large]\n"
               "       [--budget N] [--seconds] [--plan "
               "joint|cond|default|alt]\n"
               "       [--cv K] [--smote] [--seed N] [--predict test.csv]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  std::string train_path = argv[1];
  std::string predict_path;
  VolcanoMlOptions options;
  options.space.preset = SpacePreset::kMedium;
  options.budget = 100.0;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--task") {
      std::string task = next();
      options.space.task = task == "reg" ? TaskType::kRegression
                                         : TaskType::kClassification;
    } else if (arg == "--preset") {
      std::string preset = next();
      options.space.preset = preset == "small"   ? SpacePreset::kSmall
                             : preset == "large" ? SpacePreset::kLarge
                                                 : SpacePreset::kMedium;
    } else if (arg == "--budget") {
      options.budget = std::atof(next());
    } else if (arg == "--seconds") {
      options.eval.budget_in_seconds = true;
    } else if (arg == "--plan") {
      std::string plan = next();
      options.plan = plan == "joint"  ? PlanKind::kJoint
                     : plan == "cond" ? PlanKind::kConditioningJoint
                     : plan == "alt"  ? PlanKind::kAlternatingFeConditioning
                                      : PlanKind::kConditioningAlternating;
    } else if (arg == "--cv") {
      options.eval.cv_folds = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--smote") {
      options.space.include_smote = true;
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--predict") {
      predict_path = next();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  Result<Dataset> train =
      LoadCsvDataset(train_path, options.space.task, "train");
  if (!train.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", train_path.c_str(),
                 train.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu samples x %zu features\n",
              train.value().NumSamples(), train.value().NumFeatures());

  VolcanoML automl(options);
  AutoMlResult result = automl.Fit(train.value());
  std::printf("evaluations: %zu\nvalidation utility: %.4f\n",
              result.num_evaluations, result.best_utility);
  std::printf("best pipeline (plan %s):\n",
              PlanKindName(options.plan).c_str());
  for (const auto& [name, value] : result.best_assignment) {
    std::printf("  %s = %g\n", name.c_str(), value);
  }

  if (predict_path.empty()) return 0;

  Result<Dataset> test =
      LoadCsvDataset(predict_path, options.space.task, "test");
  if (!test.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", predict_path.c_str(),
                 test.status().ToString().c_str());
    return 1;
  }
  Result<FittedPipeline> pipeline = automl.FitFinalPipeline();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "final fit failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::vector<double> pred = pipeline.value().Predict(test.value().x());
  if (options.space.task == TaskType::kClassification) {
    std::printf("test balanced accuracy: %.4f\n",
                BalancedAccuracy(test.value().y(), pred,
                                 train.value().NumClasses()));
  } else {
    std::printf("test MSE: %.4f\n",
                MeanSquaredError(test.value().y(), pred));
  }
  return 0;
}
