// Command-line AutoML: run VolcanoML on a numeric CSV file.
//
//   volcanoml_cli <train.csv> [options]
//
//   --task cls|reg          task type               (default: cls)
//   --preset small|medium|large                     (default: medium)
//   --budget <n>            evaluations, or seconds with --seconds
//   --seconds               budget is wall-clock seconds
//   --plan <name>           joint|cond|default|alt aliases, or a canonical
//                           plan name such as "cond(alg)+alt(fe,hp)"
//   --optimizer smac|random|mfes|tpe                (default: smac)
//   --explain               print the logical plan and exit
//   --cv <k>                k-fold CV utility       (default: holdout)
//   --smote                 enrich the space with the SMOTE balancer
//   --seed <n>              RNG seed                (default: 1)
//   --checkpoint <path>     snapshot file to write (and --stop-after target)
//   --checkpoint-every <n>  write the snapshot every n steps (default: off)
//   --stop-after <n>        stop after n steps, write the snapshot, exit
//   --resume <path>         restore a snapshot before stepping
//   --trajectory-out <path> write "budget utility" per step (%.17g)
//   --predict <test.csv>    score a held-out CSV after the search
//
// Flags also accept the --flag=value spelling. A search killed after
// --stop-after resumes bit-for-bit: run once with --trajectory-out, run
// again with --stop-after k --checkpoint s, then --resume s; the two
// trajectory files are byte-identical (deterministic budget mode).
//
// CSV format: headerless, numeric, last column is the target (class ids
// 0..k-1 for classification).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/volcano_ml.h"
#include "data/csv.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace {

using namespace volcanoml;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <train.csv> [--task cls|reg] [--preset "
               "small|medium|large]\n"
               "       [--budget N] [--seconds] [--plan NAME] [--optimizer "
               "smac|random|mfes|tpe]\n"
               "       [--explain] [--cv K] [--smote] [--seed N]\n"
               "       [--checkpoint FILE] [--checkpoint-every N] "
               "[--stop-after N]\n"
               "       [--resume FILE] [--trajectory-out FILE] "
               "[--predict test.csv]\n",
               argv0);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buffer[4096];
  size_t n;
  out->clear();
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = written == contents.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool ParsePlanFlag(const std::string& value, PlanKind* out) {
  // Short aliases kept from earlier CLI versions, then canonical names.
  if (value == "joint") {
    *out = PlanKind::kJoint;
    return true;
  }
  if (value == "cond") {
    *out = PlanKind::kConditioningJoint;
    return true;
  }
  if (value == "alt") {
    *out = PlanKind::kAlternatingFeConditioning;
    return true;
  }
  if (value == "default") {
    *out = PlanKind::kConditioningAlternating;
    return true;
  }
  Result<PlanKind> parsed = ParsePlanKind(value);
  if (!parsed.ok()) {
    std::fprintf(stderr, "--plan: %s\n", parsed.status().ToString().c_str());
    return false;
  }
  *out = parsed.value();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  std::string train_path = argv[1];
  std::string predict_path;
  std::string checkpoint_path;
  std::string resume_path;
  std::string trajectory_path;
  size_t checkpoint_every = 0;
  size_t stop_after = 0;
  bool explain = false;
  VolcanoMlOptions options;
  options.space.preset = SpacePreset::kMedium;
  options.budget = 100.0;

  // Normalize "--flag=value" into "--flag value".
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= args.size()) {
        Usage(argv[0]);
        std::exit(2);
      }
      return args[++i].c_str();
    };
    if (arg == "--task") {
      std::string task = next();
      options.space.task = task == "reg" ? TaskType::kRegression
                                         : TaskType::kClassification;
    } else if (arg == "--preset") {
      std::string preset = next();
      options.space.preset = preset == "small"   ? SpacePreset::kSmall
                             : preset == "large" ? SpacePreset::kLarge
                                                 : SpacePreset::kMedium;
    } else if (arg == "--budget") {
      options.budget = std::atof(next());
    } else if (arg == "--seconds") {
      options.eval.budget_in_seconds = true;
    } else if (arg == "--plan") {
      if (!ParsePlanFlag(next(), &options.plan)) return 2;
    } else if (arg == "--optimizer") {
      std::string optimizer = next();
      options.optimizer = optimizer == "random" ? JointOptimizerKind::kRandom
                          : optimizer == "mfes" ? JointOptimizerKind::kMfesHb
                          : optimizer == "tpe"  ? JointOptimizerKind::kTpe
                                                : JointOptimizerKind::kSmac;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--cv") {
      options.eval.cv_folds = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--smote") {
      options.space.include_smote = true;
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--stop-after") {
      stop_after = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--resume") {
      resume_path = next();
    } else if (arg == "--trajectory-out") {
      trajectory_path = next();
    } else if (arg == "--predict") {
      predict_path = next();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if ((checkpoint_every > 0 || stop_after > 0) && checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "--checkpoint-every/--stop-after require --checkpoint\n");
    return 2;
  }

  if (explain) {
    // The logical plan is a pure function of the options — no data needed.
    SearchSpace space(options.space);
    Rng rng(options.seed);
    PlanSpec spec = BuildSpec(options.plan, space, options.optimizer,
                              rng.Fork(), options.guard);
    std::printf("plan %s (%zu nodes):\n%s", PlanKindName(options.plan).c_str(),
                spec.NumNodes(), spec.Explain().c_str());
    return 0;
  }

  Result<Dataset> train =
      LoadCsvDataset(train_path, options.space.task, "train");
  if (!train.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", train_path.c_str(),
                 train.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu samples x %zu features\n",
              train.value().NumSamples(), train.value().NumFeatures());

  VolcanoML automl(options);
  Status prepared = automl.Prepare(train.value());
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.ToString().c_str());
    return 1;
  }
  PlanExecutor* executor = automl.executor();

  if (!resume_path.empty()) {
    std::string snapshot;
    if (!ReadFile(resume_path, &snapshot)) {
      std::fprintf(stderr, "failed to read snapshot %s\n",
                   resume_path.c_str());
      return 1;
    }
    Status restored = executor->LoadSnapshot(snapshot);
    if (!restored.ok()) {
      std::fprintf(stderr, "resume failed: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
    std::printf("resumed at step %zu (budget consumed: %.3f)\n",
                executor->num_steps(), executor->consumed_budget());
  }

  // The stepped Volcano loop: one pull per Step(), snapshots in between.
  size_t steps_this_run = 0;
  bool stopped_early = false;
  while (executor->Step()) {
    ++steps_this_run;
    if (checkpoint_every > 0 && steps_this_run % checkpoint_every == 0) {
      if (!WriteFile(checkpoint_path, executor->SaveSnapshot())) {
        std::fprintf(stderr, "failed to write checkpoint %s\n",
                     checkpoint_path.c_str());
        return 1;
      }
    }
    if (stop_after > 0 && steps_this_run >= stop_after) {
      stopped_early = true;
      break;
    }
  }
  if (stopped_early) {
    if (!WriteFile(checkpoint_path, executor->SaveSnapshot())) {
      std::fprintf(stderr, "failed to write checkpoint %s\n",
                   checkpoint_path.c_str());
      return 1;
    }
    std::printf("stopped after %zu steps; snapshot written to %s\n",
                steps_this_run, checkpoint_path.c_str());
    return 0;
  }

  AutoMlResult result = automl.Finish();
  if (!trajectory_path.empty()) {
    std::string out;
    char line[128];
    for (const TrajectoryPoint& point : result.trajectory) {
      std::snprintf(line, sizeof(line), "%.17g %.17g\n", point.budget,
                    point.utility);
      out += line;
    }
    if (!WriteFile(trajectory_path, out)) {
      std::fprintf(stderr, "failed to write trajectory %s\n",
                   trajectory_path.c_str());
      return 1;
    }
  }
  std::printf("evaluations: %zu\nvalidation utility: %.4f\n",
              result.num_evaluations, result.best_utility);
  std::printf("best pipeline (plan %s):\n",
              PlanKindName(options.plan).c_str());
  for (const auto& [name, value] : result.best_assignment) {
    std::printf("  %s = %g\n", name.c_str(), value);
  }

  if (predict_path.empty()) return 0;

  Result<Dataset> test =
      LoadCsvDataset(predict_path, options.space.task, "test");
  if (!test.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", predict_path.c_str(),
                 test.status().ToString().c_str());
    return 1;
  }
  Result<FittedPipeline> pipeline = automl.FitFinalPipeline();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "final fit failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::vector<double> pred = pipeline.value().Predict(test.value().x());
  if (options.space.task == TaskType::kClassification) {
    std::printf("test balanced accuracy: %.4f\n",
                BalancedAccuracy(test.value().y(), pred,
                                 train.value().NumClasses()));
  } else {
    std::printf("test MSE: %.4f\n",
                MeanSquaredError(test.value().y(), pred));
  }
  return 0;
}
