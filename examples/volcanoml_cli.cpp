// Command-line AutoML: run VolcanoML on a numeric CSV file, either
// in-process or against the multi-tenant session daemon.
//
//   volcanoml_cli <train.csv> [options]       in-process search
//   volcanoml_cli serve    --socket PATH      start the session daemon
//   volcanoml_cli submit   <train.csv> --socket PATH [--wait]
//   volcanoml_cli status   --socket PATH [--session ID]
//   volcanoml_cli result   --socket PATH --session ID
//   volcanoml_cli shutdown --socket PATH
//
// Run with --help for the full flag reference (src/cli/args.h holds the
// parse + validation layer). A daemon-driven session is bit-identical to
// the same configuration run in-process: both paths build their options
// through SessionConfigToOptions and write trajectories through
// FormatTrajectory, so `submit` + `result --trajectory-out` and
// `<train.csv> --trajectory-out` produce byte-identical files.
//
// CSV format: headerless, numeric, last column is the target (class ids
// 0..k-1 for classification).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli/args.h"
#include "core/trajectory.h"
#include "core/volcano_ml.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/session.h"
#include "data/csv.h"
#include "data/simd.h"
#include "meta/knowledge_base.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace {

using namespace volcanoml;

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buffer[4096];
  size_t n;
  out->clear();
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = written == contents.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

const char* StateName(SessionState state) {
  switch (state) {
    case SessionState::kResident:
      return "resident";
    case SessionState::kEvicted:
      return "evicted";
    case SessionState::kFailed:
      return "failed";
  }
  return "?";
}

void PrintSessionStatus(const SessionStatus& status) {
  std::printf(
      "session %llu tenant %s state %s done %s steps %llu budget %.3f "
      "utility %.4f credit %llu evaluations %llu\n",
      static_cast<unsigned long long>(status.session_id),
      status.tenant.c_str(), StateName(status.state),
      status.done ? "yes" : "no",
      static_cast<unsigned long long>(status.steps), status.consumed_budget,
      status.best_utility,
      static_cast<unsigned long long>(status.pending_credit),
      static_cast<unsigned long long>(status.telemetry.num_evaluations));
}

int RunServe(const CliArgs& args) {
  DaemonOptions options;
  options.socket_path = args.socket_path;
  options.spool_dir = args.spool_dir;
  options.max_resident = args.max_resident;
  Daemon daemon(options);
  Status served = daemon.Serve();
  if (!served.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunSubmit(const CliArgs& args) {
  CreateSessionRequest request;
  request.tenant = args.tenant;
  request.dataset_name = "train";
  if (!ReadFile(args.train_path, &request.csv)) {
    std::fprintf(stderr, "failed to read %s\n", args.train_path.c_str());
    return 1;
  }
  request.config = args.config;
  request.step_credit = args.step_credit;
  DaemonClient client(args.socket_path);
  Result<uint64_t> session = client.CreateSession(request);
  if (!session.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::printf("session %llu\n",
              static_cast<unsigned long long>(session.value()));
  if (!args.wait) return 0;
  Result<SessionStatus> done = client.WaitUntilDone(session.value());
  if (!done.ok()) {
    std::fprintf(stderr, "wait failed: %s\n",
                 done.status().ToString().c_str());
    return 1;
  }
  PrintSessionStatus(done.value());
  return 0;
}

int RunStatus(const CliArgs& args) {
  DaemonClient client(args.socket_path);
  if (args.session_id != 0) {
    QuerySessionRequest request;
    request.session_id = args.session_id;
    Result<QuerySessionReply> reply = client.QuerySession(request);
    if (!reply.ok()) {
      std::fprintf(stderr, "status failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    PrintSessionStatus(reply.value().status);
    return 0;
  }
  Result<ListSessionsReply> listed = client.ListSessions();
  if (!listed.ok()) {
    std::fprintf(stderr, "status failed: %s\n",
                 listed.status().ToString().c_str());
    return 1;
  }
  for (const SessionStatus& status : listed.value().sessions) {
    PrintSessionStatus(status);
  }
  for (const TenantAccount& account : listed.value().tenants) {
    std::printf("tenant %s sessions %llu steps %llu budget %.3f\n",
                account.tenant.c_str(),
                static_cast<unsigned long long>(account.sessions_created),
                static_cast<unsigned long long>(account.steps_executed),
                account.budget_consumed);
  }
  return 0;
}

int RunResult(const CliArgs& args) {
  DaemonClient client(args.socket_path);
  QuerySessionRequest request;
  request.session_id = args.session_id;
  request.include_trajectory = true;
  request.include_assignment = true;
  Result<QuerySessionReply> reply = client.QuerySession(request);
  if (!reply.ok()) {
    std::fprintf(stderr, "result failed: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  if (!args.trajectory_path.empty()) {
    if (!WriteFile(args.trajectory_path,
                   FormatTrajectory(reply.value().trajectory))) {
      std::fprintf(stderr, "failed to write trajectory %s\n",
                   args.trajectory_path.c_str());
      return 1;
    }
  }
  const SessionStatus& status = reply.value().status;
  std::printf("evaluations: %llu\nvalidation utility: %.4f\n",
              static_cast<unsigned long long>(
                  status.telemetry.num_evaluations),
              status.best_utility);
  std::printf("best pipeline:\n");
  for (const auto& [name, value] : reply.value().best_assignment) {
    std::printf("  %s = %g\n", name.c_str(), value);
  }
  return 0;
}

int RunShutdown(const CliArgs& args) {
  DaemonClient client(args.socket_path);
  Result<uint64_t> open = client.Shutdown();
  if (!open.ok()) {
    std::fprintf(stderr, "shutdown failed: %s\n",
                 open.status().ToString().c_str());
    return 1;
  }
  std::printf("daemon stopped with %llu session(s) open\n",
              static_cast<unsigned long long>(open.value()));
  return 0;
}

int RunKbStatus(const CliArgs& args) {
  DaemonClient client(args.socket_path);
  Result<KbQueryReply> reply = client.KbQuery();
  if (!reply.ok()) {
    std::fprintf(stderr, "kb-status failed: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu artifact(s)\n", reply.value().artifacts.size());
  for (const KbArtifactSummary& artifact : reply.value().artifacts) {
    std::printf("  %s hash %016llx task %s utility %.4f observations %llu\n",
                artifact.dataset_name.c_str(),
                static_cast<unsigned long long>(artifact.dataset_hash),
                artifact.task == 0 ? "cls" : "reg", artifact.best_utility,
                static_cast<unsigned long long>(artifact.num_observations));
  }
  return 0;
}

int RunKbExport(const CliArgs& args) {
  DaemonClient client(args.socket_path);
  Result<std::string> serialized = client.KbExport();
  if (!serialized.ok()) {
    std::fprintf(stderr, "kb-export failed: %s\n",
                 serialized.status().ToString().c_str());
    return 1;
  }
  if (!WriteFile(args.kb_path, serialized.value())) {
    std::fprintf(stderr, "failed to write %s\n", args.kb_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu bytes)\n", args.kb_path.c_str(),
              serialized.value().size());
  return 0;
}

int RunKbImport(const CliArgs& args) {
  std::string serialized;
  if (!ReadFile(args.kb_path, &serialized)) {
    std::fprintf(stderr, "failed to read %s\n", args.kb_path.c_str());
    return 1;
  }
  DaemonClient client(args.socket_path);
  Result<KbImportReply> reply = client.KbImport(serialized);
  if (!reply.ok()) {
    std::fprintf(stderr, "kb-import failed: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  std::printf("added %llu artifact(s); daemon now holds %llu\n",
              static_cast<unsigned long long>(reply.value().added),
              static_cast<unsigned long long>(reply.value().total));
  return 0;
}

int RunLocal(const CliArgs& args) {
  Result<VolcanoMlOptions> converted = SessionConfigToOptions(args.config);
  if (!converted.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 converted.status().ToString().c_str());
    return 2;
  }
  VolcanoMlOptions options = converted.value();
  options.eval.budget_in_seconds = args.budget_in_seconds;
  options.eval.worker_binary = args.worker_binary;

  // The durable cross-run store. A missing file is a fresh store (the
  // first --kb-record run creates it); anything else unreadable is fatal
  // — silently warm-starting from nothing would misreport the benchmark.
  MetaKnowledgeBase kb;
  if (!args.kb_path.empty()) {
    Status loaded = kb.LoadFromFile(args.kb_path);
    if (!loaded.ok() && loaded.code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "failed to load knowledge base %s: %s\n",
                   args.kb_path.c_str(), loaded.ToString().c_str());
      return 1;
    }
    if (loaded.ok()) {
      std::printf("knowledge base %s: %zu artifact(s)\n",
                  args.kb_path.c_str(), kb.NumArtifacts());
    }
    if (args.config.kb_warm_starts > 0) options.knowledge = &kb;
  }

  if (args.explain) {
    // The logical plan is a pure function of the options — no data needed.
    SearchSpace space(options.space);
    Rng rng(options.seed);
    PlanSpec spec = BuildSpec(options.plan, space, options.optimizer,
                              rng.Fork(), options.guard);
    std::printf("plan %s (%zu nodes):\n%s", PlanKindName(options.plan).c_str(),
                spec.NumNodes(), spec.Explain().c_str());
    return 0;
  }

  Result<Dataset> train =
      LoadCsvDataset(args.train_path, options.space.task, "train");
  if (!train.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", args.train_path.c_str(),
                 train.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu samples x %zu features\n",
              train.value().NumSamples(), train.value().NumFeatures());

  VolcanoML automl(options);
  Status prepared = automl.Prepare(train.value());
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", prepared.ToString().c_str());
    return 1;
  }
  PlanExecutor* executor = automl.executor();

  if (!args.resume_path.empty()) {
    std::string snapshot;
    if (!ReadFile(args.resume_path, &snapshot)) {
      std::fprintf(stderr, "failed to read snapshot %s\n",
                   args.resume_path.c_str());
      return 1;
    }
    Status restored = executor->LoadSnapshot(snapshot);
    if (!restored.ok()) {
      std::fprintf(stderr, "resume failed: %s\n", restored.ToString().c_str());
      return 1;
    }
    std::printf("resumed at step %zu (budget consumed: %.3f)\n",
                executor->num_steps(), executor->consumed_budget());
  }

  // The stepped Volcano loop: one pull per Step(), snapshots in between.
  size_t steps_this_run = 0;
  bool stopped_early = false;
  while (executor->Step()) {
    ++steps_this_run;
    if (args.checkpoint_every > 0 &&
        steps_this_run % args.checkpoint_every == 0) {
      if (!WriteFile(args.checkpoint_path, executor->SaveSnapshot())) {
        std::fprintf(stderr, "failed to write checkpoint %s\n",
                     args.checkpoint_path.c_str());
        return 1;
      }
    }
    if (args.stop_after > 0 && steps_this_run >= args.stop_after) {
      stopped_early = true;
      break;
    }
  }
  if (stopped_early) {
    if (!WriteFile(args.checkpoint_path, executor->SaveSnapshot())) {
      std::fprintf(stderr, "failed to write checkpoint %s\n",
                   args.checkpoint_path.c_str());
      return 1;
    }
    std::printf("stopped after %zu steps; snapshot written to %s\n",
                steps_this_run, args.checkpoint_path.c_str());
    return 0;
  }

  AutoMlResult result = automl.Finish();
  if (args.config.kb_record && !args.kb_path.empty()) {
    RunArtifact artifact = automl.ExportRunArtifact();
    // Latest run wins: drop any stale artifact for the same dataset
    // (content hash + task) before adding the fresh one.
    MetaKnowledgeBase updated;
    for (const RunArtifact& existing : kb.artifacts()) {
      if (existing.dataset_hash == artifact.dataset_hash &&
          existing.task == artifact.task) {
        continue;
      }
      updated.AddArtifact(existing);
    }
    updated.AddArtifact(std::move(artifact));
    kb = std::move(updated);
    Status saved = kb.SaveToFile(args.kb_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "failed to save knowledge base %s: %s\n",
                   args.kb_path.c_str(), saved.ToString().c_str());
      return 1;
    }
    std::printf("knowledge base %s: recorded run (%zu artifact(s))\n",
                args.kb_path.c_str(), kb.NumArtifacts());
  }
  if (!args.trajectory_path.empty()) {
    if (!WriteFile(args.trajectory_path,
                   FormatTrajectory(result.trajectory))) {
      std::fprintf(stderr, "failed to write trajectory %s\n",
                   args.trajectory_path.c_str());
      return 1;
    }
  }
  std::printf("evaluations: %zu\nvalidation utility: %.4f\n",
              result.num_evaluations, result.best_utility);
  std::printf("best pipeline (plan %s):\n",
              PlanKindName(options.plan).c_str());
  for (const auto& [name, value] : result.best_assignment) {
    std::printf("  %s = %g\n", name.c_str(), value);
  }

  if (args.predict_path.empty()) return 0;

  Result<Dataset> test =
      LoadCsvDataset(args.predict_path, options.space.task, "test");
  if (!test.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", args.predict_path.c_str(),
                 test.status().ToString().c_str());
    return 1;
  }
  Result<FittedPipeline> pipeline = automl.FitFinalPipeline();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "final fit failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::vector<double> pred = pipeline.value().Predict(test.value().x());
  if (options.space.task == TaskType::kClassification) {
    std::printf("test balanced accuracy: %.4f\n",
                BalancedAccuracy(test.value().y(), pred,
                                 train.value().NumClasses()));
  } else {
    std::printf("test MSE: %.4f\n", MeanSquaredError(test.value().y(), pred));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<CliArgs> parsed = ParseCliArgs(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n%s",
                 parsed.status().message().c_str(),
                 CliUsage(argv[0]).c_str());
    return 2;
  }
  const CliArgs& args = parsed.value();
  // --simd must land in the environment before the first kernel call
  // resolves the dispatch table (it is cached once per process).
  if (!args.simd.empty()) {
    setenv("VOLCANOML_SIMD", args.simd.c_str(), 1);
  }
  switch (args.command) {
    case CliCommand::kHelp:
      std::printf("%s", CliUsage(argv[0]).c_str());
      return 0;
    case CliCommand::kServe:
      return RunServe(args);
    case CliCommand::kSubmit:
      return RunSubmit(args);
    case CliCommand::kStatus:
      return RunStatus(args);
    case CliCommand::kResult:
      return RunResult(args);
    case CliCommand::kShutdown:
      return RunShutdown(args);
    case CliCommand::kSimdInfo:
      std::printf("simd: %s\n", SimdLevelName(ActiveSimdLevel()));
      return 0;
    case CliCommand::kKbStatus:
      return RunKbStatus(args);
    case CliCommand::kKbExport:
      return RunKbExport(args);
    case CliCommand::kKbImport:
      return RunKbImport(args);
    case CliCommand::kRun:
      return RunLocal(args);
  }
  return 2;
}
