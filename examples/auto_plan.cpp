// Scenario: automatic execution-plan selection (the paper's Section 4
// "automatic plan generation" pilot).
//
// Given a probe workload of datasets, SearchBestPlan enumerates the five
// coarse-grained execution plans, runs each with a paired seed, and
// returns their average ranks plus the winner — the procedure the paper
// used to confirm the Figure 2 plan is the right default.

#include <cstdio>

#include "volcanoml.h"

int main() {
  using namespace volcanoml;

  // Probe on a slice of the classification suite (in practice: the
  // user's own historical workloads).
  std::vector<DatasetSpec> suite = MediumClassificationSuite();
  std::vector<DatasetSpec> workload(suite.begin(), suite.begin() + 6);

  PlanSearchOptions options;
  options.space.task = TaskType::kClassification;
  options.space.preset = SpacePreset::kMedium;
  options.budget_per_run = 30.0;
  options.seed = 5;

  std::printf("probing %zu plans on %zu datasets (%g evals per run)...\n",
              AllPlanKinds().size(), workload.size(),
              options.budget_per_run);
  PlanSearchResult result = SearchBestPlan(workload, options);

  std::printf("\n%-28s %10s\n", "plan", "avg rank");
  for (size_t p = 0; p < result.plans.size(); ++p) {
    std::printf("%-28s %10.2f%s\n", PlanKindName(result.plans[p]).c_str(),
                result.average_ranks[p],
                result.plans[p] == result.best ? "   <- selected" : "");
  }
  std::printf(
      "\nselected plan: %s (the paper's enumeration likewise selected "
      "Figure 2's cond(alg)+alt(fe,hp))\n",
      PlanKindName(result.best).c_str());
  return 0;
}
