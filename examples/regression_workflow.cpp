// Scenario: regression with cross-validation and early-stopping
// (MFES-HB) joint blocks.
//
// Shows the remaining public knobs: regression task, k-fold CV utility,
// the MFES-HB optimizer inside joint blocks (multi-fidelity evaluations
// on training subsamples), and reading the search trajectory.

#include <cstdio>

#include "core/volcano_ml.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "util/rng.h"

int main() {
  using namespace volcanoml;

  // Friedman #1: a classic nonlinear regression benchmark with 5
  // informative and 7 irrelevant features.
  Dataset data = MakeFriedman1(900, 12, 1.0, 31, "friedman_demo");
  Rng rng(17);
  Split split = TrainTestSplit(data, 0.2, &rng);
  Dataset train = data.Subset(split.train);
  Dataset test = data.Subset(split.test);

  VolcanoMlOptions options;
  options.space.task = TaskType::kRegression;
  options.space.preset = SpacePreset::kMedium;
  options.eval.cv_folds = 3;  // 3-fold CV utility instead of holdout.
  options.optimizer = JointOptimizerKind::kMfesHb;  // Early stopping.
  options.budget = 60.0;  // Budget units; low-fidelity evals cost less.
  options.seed = 2;

  VolcanoML automl(options);
  AutoMlResult result = automl.Fit(train);

  std::printf("evaluations: %zu (> budget %g thanks to early stopping)\n",
              result.num_evaluations, options.budget);
  std::printf("validation utility (negative MSE): %.4f\n",
              result.best_utility);

  std::printf("\nsearch trajectory (budget -> best validation MSE):\n");
  size_t stride = result.trajectory.size() / 8 + 1;
  for (size_t i = 0; i < result.trajectory.size(); i += stride) {
    std::printf("  %6.1f  %10.4f\n", result.trajectory[i].budget,
                -result.trajectory[i].utility);
  }

  Result<FittedPipeline> pipeline = automl.FitFinalPipeline();
  if (!pipeline.ok()) {
    std::printf("final fit failed: %s\n",
                pipeline.status().ToString().c_str());
    return 1;
  }
  std::vector<double> predictions = pipeline.value().Predict(test.x());
  std::printf("\ntest MSE: %.4f (target variance %.1f)\n",
              MeanSquaredError(test.y(), predictions), 24.0);
  return 0;
}
