#!/usr/bin/env python3
"""Repo-specific lint for volcanoml.

Enforces project invariants that generic tools (clang-tidy, compiler
warnings) cannot know about:

  R1 determinism   No rand()/srand()/std::random_device outside
                   src/util/rng.* — all randomness flows through the
                   seeded volcanoml::Rng so every search run is
                   reproducible (the paper's headline claim).
  R2 no-exceptions No `throw` outside third-party headers. Recoverable
                   failures return volcanoml::Status; contract violations
                   abort through VOLCANOML_CHECK (DESIGN.md).
  R3 stdout        No printf/std::cout/puts to stdout in src/ or tests/.
                   Library diagnostics go through src/util/logging.*
                   (stderr). Benches and examples are reporting binaries
                   whose stdout IS their product, so they are exempt.
  R4 guards        Include guards must be VOLCANOML_<PATH>_H_ (path
                   relative to repo root, src/ prefix stripped).
  R5 artifacts     No build artifacts committed to git (build trees,
                   objects, CMake caches).
  R6 status-gate   src/util/status.h must keep the class-level
                   [[nodiscard]] on Status and Result — it is the compile-
                   time gate that forces call sites to inspect errors.
  R7 includes      No relative ("../") includes; include paths are rooted
                   at src/.
  R8 threads       No raw std::thread / std::jthread / std::async outside
                   src/util/. All concurrency flows through
                   volcanoml::ThreadPool (src/util/thread_pool.h) so
                   worker counts, shutdown, and thread-safety annotations
                   live in one audited place.
  R9 no-catch-all  No `catch (...)` outside src/util/thread_pool.cc. The
                   codebase compiles without exceptions of its own (R2);
                   a swallow-everything handler can only hide memory
                   exhaustion or third-party faults that must crash
                   loudly. The pool's worker loop is the one audited
                   place allowed to contain a task's stray exception.
R10 (SaveState/LoadState snapshot-key pairing) moved to
tools/determinism_check.py, whose token-grade pass also matches suffixed
methods (SaveStateLocked) and keys split across lines — run both tools,
or `tools/check.sh --analyze`, for the full gate.

Usage: tools/lint.py [--root DIR]
Prints "file:line: [rule] message" per violation; exits non-zero if any.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys

CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")
SOURCE_DIRS = ("src", "tests", "bench", "examples")

# R1: determinism. Unseeded randomness breaks run-to-run reproducibility.
RANDOMNESS_RE = re.compile(
    r"\bstd::random_device\b|\brandom_device\b|(?<![\w:])s?rand\s*\(")
RANDOMNESS_ALLOWED = ("src/util/rng.h", "src/util/rng.cc")

# R2: no-exceptions policy.
THROW_RE = re.compile(r"(?<![\w.])throw\b(?!\w)")

# R3: stdout writes. fprintf(stderr, ...) is fine; bare printf, puts and
# std::cout are not. fprintf(stdout, ...) is spelled-out intent to hit
# stdout and equally banned.
STDOUT_RE = re.compile(
    r"\bstd::cout\b|(?<![\w:])printf\s*\(|(?<![\w:])puts\s*\(|"
    r"(?<![\w:])putchar\s*\(|\bfprintf\s*\(\s*stdout\b")
STDOUT_ZONES = ("src", "tests")
STDOUT_ALLOWED = ("src/util/logging.h", "src/util/logging.cc")

# R5: committed build artifacts.
ARTIFACT_RE = re.compile(
    r"(^|/)build[^/]*/|\.o$|\.obj$|\.a$|\.so$|\.dylib$|"
    r"(^|/)CMakeCache\.txt$|(^|/)CMakeFiles/|(^|/)cmake_install\.cmake$|"
    r"(^|/)CTestTestfile\.cmake$")

# R8: raw threading primitives. ThreadPool owns the only std::thread's.
THREAD_RE = re.compile(r"\bstd::(?:jthread|thread|async)\b")
THREAD_ALLOWED_PREFIX = "src/util/"

# R9: catch-all exception handlers hide faults that must crash loudly.
CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
CATCH_ALL_ALLOWED = ("src/util/thread_pool.cc",)

GUARD_EXEMPT: tuple[str, ...] = ()  # no third-party headers vendored yet

# Deliberately-violating analyzer test vectors; linted only by the
# tooling fixture driver (tests/tooling/run_tooling_tests.py).
FIXTURE_DIR = "tests/tooling/fixtures"


def strip_comments_and_strings(line: str, in_block_comment: bool):
    """Blanks out string/char literals and comments, preserving length.

    Returns (cleaned_line, still_in_block_comment). Line-based scanning is
    enough here: the codebase has no raw strings or multi-line literals in
    linted positions, and false negatives from exotic formatting are caught
    by review.
    """
    out = []
    i, n = 0, len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                break  # rest of line is a comment
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        elif state in ("dq", "sq"):
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                i += 2
            elif c == quote:
                state = "code"
                i += 1
            else:
                i += 1
            out.append(" ")
    return "".join(out), state == "block"


class Linter:
    def __init__(self, root: str):
        self.root = root
        self.violations: list[str] = []

    def report(self, path: str, line_no: int, rule: str, message: str):
        self.violations.append(f"{path}:{line_no}: [{rule}] {message}")

    # -- per-file checks ---------------------------------------------------

    def lint_file(self, rel: str):
        path = os.path.join(self.root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw_lines = f.readlines()
        except OSError as e:
            self.report(rel, 0, "io", f"unreadable: {e}")
            return

        cleaned = []
        in_block = False
        for line in raw_lines:
            text, in_block = strip_comments_and_strings(line, in_block)
            cleaned.append(text)

        self.check_randomness(rel, cleaned)
        self.check_throw(rel, cleaned)
        self.check_stdout(rel, cleaned)
        # Raw lines: the include path is a string literal, which the
        # cleaned view blanks out.
        self.check_relative_includes(rel, raw_lines)
        self.check_raw_threads(rel, cleaned)
        self.check_catch_all(rel, cleaned)
        if rel.endswith((".h", ".hpp")):
            self.check_include_guard(rel, raw_lines)
        if rel == "src/util/status.h":
            self.check_status_gate(rel, raw_lines)

    def check_randomness(self, rel: str, lines: list[str]):
        if rel in RANDOMNESS_ALLOWED:
            return
        for i, line in enumerate(lines, 1):
            if RANDOMNESS_RE.search(line):
                self.report(rel, i, "R1-determinism",
                            "unseeded randomness; use volcanoml::Rng "
                            "(src/util/rng.h) so runs stay reproducible")

    def check_throw(self, rel: str, lines: list[str]):
        for i, line in enumerate(lines, 1):
            if THROW_RE.search(line):
                self.report(rel, i, "R2-no-exceptions",
                            "throw is banned (DESIGN.md); return "
                            "volcanoml::Status or VOLCANOML_CHECK")

    def check_stdout(self, rel: str, lines: list[str]):
        if not rel.startswith(STDOUT_ZONES) or rel in STDOUT_ALLOWED:
            return
        for i, line in enumerate(lines, 1):
            if STDOUT_RE.search(line):
                self.report(rel, i, "R3-stdout",
                            "stdout writes in the library/tests; use "
                            "VOLCANOML_LOG (stderr) instead")

    def check_relative_includes(self, rel: str, lines: list[str]):
        for i, line in enumerate(lines, 1):
            if re.match(r'\s*#\s*include\s+"\.\.', line):
                self.report(rel, i, "R7-includes",
                            "relative include; use a path rooted at src/")

    def check_raw_threads(self, rel: str, lines: list[str]):
        if rel.startswith(THREAD_ALLOWED_PREFIX):
            return
        for i, line in enumerate(lines, 1):
            if THREAD_RE.search(line):
                self.report(rel, i, "R8-threads",
                            "raw std::thread/std::async; use "
                            "volcanoml::ThreadPool (src/util/thread_pool.h) "
                            "so all concurrency is pooled and annotated")

    def check_catch_all(self, rel: str, lines: list[str]):
        if rel in CATCH_ALL_ALLOWED:
            return
        for i, line in enumerate(lines, 1):
            if CATCH_ALL_RE.search(line):
                self.report(rel, i, "R9-no-catch-all",
                            "catch (...) swallows faults that must crash "
                            "loudly; only the ThreadPool worker loop "
                            "(src/util/thread_pool.cc) may contain one")

    def expected_guard(self, rel: str) -> str:
        trimmed = rel[4:] if rel.startswith("src/") else rel
        token = re.sub(r"[^A-Za-z0-9]", "_", trimmed).upper()
        return f"VOLCANOML_{token}_"

    def check_include_guard(self, rel: str, raw_lines: list[str]):
        if rel in GUARD_EXEMPT:
            return
        expected = self.expected_guard(rel)
        ifndef_re = re.compile(r"^#ifndef\s+(\S+)")
        for i, line in enumerate(raw_lines, 1):
            m = ifndef_re.match(line)
            if not m:
                if line.strip() and not line.lstrip().startswith("//"):
                    # First non-comment line must open the guard.
                    self.report(rel, i, "R4-guards",
                                f"missing include guard {expected}")
                    return
                continue
            if m.group(1) != expected:
                self.report(rel, i, "R4-guards",
                            f"guard {m.group(1)} != expected {expected}")
            nxt = raw_lines[i].strip() if i < len(raw_lines) else ""
            if nxt != f"#define {m.group(1)}":
                self.report(rel, i + 1, "R4-guards",
                            "#define must immediately follow #ifndef")
            return
        self.report(rel, 1, "R4-guards", f"missing include guard {expected}")

    def check_status_gate(self, rel: str, raw_lines: list[str]):
        text = "".join(raw_lines)
        for cls in ("Status", "Result"):
            if not re.search(
                    rf"class\s+\[\[nodiscard\]\]\s+{cls}\b", text):
                self.report(rel, 1, "R6-status-gate",
                            f"class {cls} lost its [[nodiscard]]; the "
                            "dropped-error compile gate depends on it")

    # -- repo-level checks -------------------------------------------------

    def check_git_artifacts(self, tracked: list[str]):
        for rel in tracked:
            if ARTIFACT_RE.search(rel):
                self.report(rel, 0, "R5-artifacts",
                            "build artifact committed to git; remove and "
                            "rely on .gitignore")

    # -- driver ------------------------------------------------------------

    def run(self) -> int:
        try:
            tracked = subprocess.run(
                ["git", "ls-files"], cwd=self.root, capture_output=True,
                text=True, check=True).stdout.splitlines()
        except (OSError, subprocess.CalledProcessError):
            tracked = None

        if tracked is not None:
            self.check_git_artifacts(tracked)
            candidates = tracked
        else:  # not a git checkout (e.g. exported tarball): walk the tree
            candidates = []
            for d in SOURCE_DIRS:
                for dirpath, _, files in os.walk(os.path.join(self.root, d)):
                    for name in files:
                        candidates.append(os.path.relpath(
                            os.path.join(dirpath, name), self.root))

        for rel in sorted(candidates):
            if rel.startswith(SOURCE_DIRS) and rel.endswith(CXX_EXTENSIONS) \
                    and not rel.startswith(FIXTURE_DIR):
                self.lint_file(rel)

        for v in self.violations:
            print(v)
        if self.violations:
            print(f"lint: {len(self.violations)} violation(s)",
                  file=sys.stderr)
            return 1
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: parent of tools/)")
    args = parser.parse_args()
    return Linter(args.root).run()


if __name__ == "__main__":
    sys.exit(main())
