#!/usr/bin/env python3
"""Benchmark regression gate for volcanoml.

Compares freshly measured bench JSON (the BENCH_<suite>.json files the
bench binaries emit through bench/bench_json.h) against the committed
baselines at the repo root, and fails when any gated metric drops below
`--min-ratio` (default 0.75, i.e. a >25% regression). Two unit classes
gate:

  - throughput: unit ends in "/s" (sessions/s, steps/s, evals/s, ...) —
    higher is better, noisy on shared runners, hence the ratio slack;
  - quality fractions: unit is exactly "frac" (e.g. bench_kb's
    warm_win_fraction) — higher is better and *deterministic* (computed
    from seeded evaluation counts, not wall-clock), so the same ratio
    slack is generous; any drop below it is a real transfer regression.

Latency/time metrics (ms, ns) never gate: they are noisy and already
have the throughput numbers as their inverse signal. Metrics present in
only one file are reported but never fail the gate (bench filters
legitimately shrink the fresh set).

Usage:
    tools/bench_gate.py --pair BENCH_daemon.json fresh/BENCH_daemon.json \
                        --pair BENCH_micro.json  fresh/BENCH_micro.json \
                        [--min-ratio 0.75]

Exit status: 0 when every comparable gated metric holds the ratio,
1 on regression, 2 on unusable input (missing file, malformed JSON).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_metrics(path):
    """Returns {name: (value, unit)} for one bench JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        raise SystemExit(f"bench_gate: cannot read {path}: {err}")
    metrics = {}
    for m in doc.get("metrics", []):
        name, value, unit = m.get("name"), m.get("value"), m.get("unit")
        if not isinstance(name, str) or not isinstance(unit, str):
            continue
        if not isinstance(value, (int, float)):
            continue  # non-finite values serialize as null
        metrics[name] = (float(value), unit)
    return metrics


def is_gated(unit):
    return unit.endswith("/s") or unit == "frac"


def compare(baseline_path, fresh_path, min_ratio):
    """Prints a comparison table; returns the list of regression lines."""
    baseline = load_metrics(baseline_path)
    fresh = load_metrics(fresh_path)
    regressions = []
    print(f"\n== {fresh_path} vs baseline {baseline_path} "
          f"(min ratio {min_ratio:.2f}) ==")
    shared = [n for n in baseline if n in fresh]
    gated = False
    for name in shared:
        base_value, base_unit = baseline[name]
        fresh_value, fresh_unit = fresh[name]
        if not is_gated(base_unit) or base_unit != fresh_unit:
            continue
        gated = True
        ratio = fresh_value / base_value if base_value > 0 else float("inf")
        verdict = "ok" if ratio >= min_ratio else "REGRESSION"
        print(f"  {name:<40} {base_value:>14.3f} -> {fresh_value:>14.3f} "
              f"{base_unit:<10} x{ratio:.3f}  {verdict}")
        if ratio < min_ratio:
            regressions.append(
                f"{name}: {fresh_value:.3f} {fresh_unit} < "
                f"{min_ratio:.2f} * {base_value:.3f} (x{ratio:.3f})")
    if not gated:
        print("  (no shared gated metrics — nothing gated)")
    skipped = sorted(set(baseline) - set(fresh))
    gated_skipped = [n for n in skipped if is_gated(baseline[n][1])]
    if gated_skipped:
        print(f"  not measured fresh (ignored): "
              f"{', '.join(gated_skipped)}")
    return regressions


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pair", nargs=2, action="append", required=True,
        metavar=("BASELINE", "FRESH"),
        help="baseline JSON and freshly measured JSON to compare "
             "(repeatable)")
    parser.add_argument(
        "--min-ratio", type=float, default=0.75,
        help="fail when a fresh gated metric < min-ratio * baseline "
             "(default 0.75 = >25%% regression)")
    args = parser.parse_args(argv)

    regressions = []
    for baseline_path, fresh_path in args.pair:
        regressions += compare(baseline_path, fresh_path, args.min_ratio)
    if regressions:
        print(f"\nbench_gate: {len(regressions)} gated-metric regression(s):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nbench_gate: all gated metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
