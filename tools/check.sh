#!/usr/bin/env bash
# Full correctness gate for volcanoml (see DESIGN.md "Error handling &
# analysis gates"). Runs, in order:
#
#   1. tools/lint.py                    repo-invariant lint
#   2. tools/determinism_check.py       determinism rules R10-R16
#   3. release preset                   configure + build (-Werror) + ctest
#   4. asan-ubsan preset                ASan+UBSan build + ctest
#   5. tsan preset                      TSan build + ctest
#   6. clang-tidy over src/             blocking in CI; loud skip locally
#   7. clang-analyze preset             Clang -Wthread-safety as errors
#                                       (blocking in CI; loud skip locally)
#
# The clang-backed steps (6, 7) need clang-tidy / clang++ on PATH (or
# CLANG_TIDY / VOLCANOML_CLANGXX pointing at them). When the tools are
# absent the steps FAIL if $CI is set — CI must never silently skip an
# analysis gate — and are skipped with a loud notice otherwise.
#
# Any failure exits non-zero. Usage:
#   tools/check.sh            # everything
#   tools/check.sh --fast     # lint + determinism + release (pre-commit)
#   tools/check.sh --analyze  # static analysis only: lint + determinism
#                             #   + clang-tidy + clang-analyze preset

set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
ANALYZE_ONLY=0
case "${1:-}" in
  --fast) FAST=1 ;;
  --analyze) ANALYZE_ONLY=1 ;;
esac

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
CLANGXX="${VOLCANOML_CLANGXX:-clang++}"

failures=()

step() {  # step <name> <cmd...>
  local name="$1"
  shift
  echo "==== ${name} ===="
  if "$@"; then
    echo "==== ${name}: OK ===="
  else
    echo "==== ${name}: FAILED ====" >&2
    failures+=("${name}")
  fi
}

# missing_tool <step> <tool>: in CI a missing analyzer is a gate failure,
# never a skip; locally it is skipped with a loud notice.
missing_tool() {
  local name="$1" tool="$2"
  if [[ -n "${CI:-}" ]]; then
    echo "==== ${name}: FAILED (${tool} not installed; CI must not skip analysis gates) ====" >&2
    failures+=("${name}")
  else
    echo "==== ${name}: SKIPPED locally (${tool} not installed) ===="
  fi
}

run_preset() {  # run_preset <preset>
  local preset="$1"
  step "configure:${preset}" cmake --preset "${preset}"
  step "build:${preset}" cmake --build --preset "${preset}" -j "${JOBS}"
  step "test:${preset}" ctest --preset "${preset}" -j "${JOBS}"
}

run_clang_tidy() {
  if ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
    missing_tool "clang-tidy" "${CLANG_TIDY}"
    return
  fi
  # The release preset always exports the compile database; configure the
  # tree if this invocation has not built it yet (e.g. --analyze).
  if [[ ! -f build-release/compile_commands.json ]]; then
    step "configure:release" cmake --preset release
  fi
  mapfile -t tidy_sources < <(git ls-files 'src/*.cc')
  step "clang-tidy" "${CLANG_TIDY}" -p build-release "${tidy_sources[@]}"
}

run_clang_analyze() {
  if ! command -v "${CLANGXX}" >/dev/null 2>&1; then
    missing_tool "clang-analyze" "${CLANGXX}"
    return
  fi
  # Thread-safety analysis is a compile-time pass: a clean build under
  # -Wthread-safety -Werror IS the result, so no ctest step here (the
  # release/sanitizer presets own runtime behavior).
  step "configure:clang-analyze" \
    cmake --preset clang-analyze "-DCMAKE_CXX_COMPILER=${CLANGXX}"
  step "build:clang-analyze" \
    cmake --build --preset clang-analyze -j "${JOBS}"
}

step "lint" python3 tools/lint.py
step "determinism" python3 tools/determinism_check.py

if [[ "${ANALYZE_ONLY}" -eq 1 ]]; then
  run_clang_tidy
  run_clang_analyze
else
  run_preset release
  if [[ "${FAST}" -eq 0 ]]; then
    run_preset asan-ubsan
    run_preset tsan
    run_clang_tidy
    run_clang_analyze
  fi
fi

echo
if [[ "${#failures[@]}" -gt 0 ]]; then
  echo "check.sh: FAILED steps: ${failures[*]}" >&2
  exit 1
fi
echo "check.sh: all gates green"
