#!/usr/bin/env bash
# Full correctness gate for volcanoml (see DESIGN.md "Error handling &
# analysis gates"). Runs, in order:
#
#   1. tools/lint.py                    repo-invariant lint
#   2. release preset                   configure + build (-Werror) + ctest
#   3. asan-ubsan preset                ASan+UBSan build + ctest
#   4. tsan preset                      TSan build + ctest
#   5. clang-tidy over src/ (optional)  skipped when clang-tidy is absent
#
# Any failure exits non-zero. Usage:
#   tools/check.sh            # everything
#   tools/check.sh --fast     # lint + release only (pre-commit loop)

set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

failures=()

step() {  # step <name> <cmd...>
  local name="$1"
  shift
  echo "==== ${name} ===="
  if "$@"; then
    echo "==== ${name}: OK ===="
  else
    echo "==== ${name}: FAILED ====" >&2
    failures+=("${name}")
  fi
}

run_preset() {  # run_preset <preset>
  local preset="$1"
  step "configure:${preset}" cmake --preset "${preset}"
  step "build:${preset}" cmake --build --preset "${preset}" -j "${JOBS}"
  step "test:${preset}" ctest --preset "${preset}" -j "${JOBS}"
}

step "lint" python3 tools/lint.py

run_preset release
if [[ "${FAST}" -eq 0 ]]; then
  run_preset asan-ubsan
  run_preset tsan
fi

if command -v clang-tidy >/dev/null 2>&1; then
  # The release tree has the compile database; -p points clang-tidy at it.
  [[ -f build-release/compile_commands.json ]] ||
    cmake --preset release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t tidy_sources < <(git ls-files 'src/*.cc')
  step "clang-tidy" clang-tidy -p build-release "${tidy_sources[@]}"
else
  echo "==== clang-tidy: not installed, skipped ===="
fi

echo
if [[ "${#failures[@]}" -gt 0 ]]; then
  echo "check.sh: FAILED steps: ${failures[*]}" >&2
  exit 1
fi
echo "check.sh: all gates green"
