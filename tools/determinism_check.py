#!/usr/bin/env python3
"""Determinism static checker for volcanoml.

VolcanoML's headline guarantee is byte-determinism: the same seed and
request sequence must yield bit-identical trajectories, snapshots, and
Explain() strings (DESIGN.md "Logical plans, executor & snapshots").
This tool proves the lexical half of that guarantee at analysis time,
complementing the runtime bit-equality tests:

  R10 snapshot-keys   Every Foo::SaveState[Suffix] must have a paired
                      Foo::LoadState[Suffix] whose set of quoted snapshot
                      keys is identical. Token-grade (promoted from the
                      old lint R10 regex), so multi-line and
                      conditionally-emitted keys cannot slip through.
  R11 unordered-iter  No direct iteration over unordered_map /
                      unordered_set inside a deterministic-output path
                      (SaveState*, Explain*, *Trajectory*, *Telemetry*,
                      Emit*, Report*, Dump*, Describe*, Print*).
                      Iteration order there must be routed through
                      SortedKeys / SortedItems (src/util/sorted_view.h).
  R12 wall-clock      No wall-clock reads (std::chrono::{system,steady,
                      high_resolution}_clock, time(), clock(),
                      gettimeofday, localtime, ...) outside
                      src/util/deadline.* — the audited deadline layer —
                      and bench/. Clocks feeding search decisions break
                      run-to-run reproducibility.
  R13 nondet-source   No nondeterministic value sources outside
                      src/util/rng.*: std::random_device, rand()/srand(),
                      std::hash over pointer types, and pointer-to-
                      integer casts (reinterpret_cast<...uintptr_t>) that
                      enable pointer-value ordering. Addresses differ per
                      run under ASLR; hashing or ordering by them is a
                      silent nondeterminism bug.
  R14 syscalls        Raw POSIX socket / file-descriptor syscalls
                      (socket, bind, connect, recv, send, read, write,
                      poll, select, unlink, ...) are confined to
                      src/ipc/ — the audited transport layer. Everything
                      else goes through its framed Send/Recv API, so
                      partial reads, EINTR, and SIGPIPE handling live in
                      exactly one place. std::-qualified names
                      (std::bind) and member calls (reader.read) are not
                      syscalls and do not fire.
  R15 process         Process-lifecycle syscalls (fork, vfork, the
                      exec* family, kill, waitpid, wait) are confined to
                      src/worker/ — the supervised worker-pool layer.
                      Spawning or signalling processes anywhere else
                      bypasses the supervisor's reaping, retry and
                      circuit-breaker logic and can leak zombies or
                      orphan workers.
  R16 simd            SIMD intrinsics and CPUID probing (identifiers
                      with the _mm/__m128/__m256/__m512 prefixes,
                      #include <immintrin.h> and friends,
                      __builtin_cpu_* / __builtin_ia32_*) are confined
                      to src/data/simd* — the runtime-dispatched kernel
                      backend. Everywhere else calls the dispatching
                      kernels (data/kernels.h), so the scalar oracle
                      table always covers the full numeric surface and
                      forcing VOLCANOML_SIMD=scalar pins every bit the
                      library produces.
  R17 kb              The knowledge-base on-disk format is confined to
                      src/meta/: the "volcanoml-kb" magic literal and
                      the kKnowledgeBaseMagic / kKnowledgeBaseVersion
                      identifiers may not appear anywhere else. A stray
                      copy is a second writer or parser of the format
                      growing outside the one versioned codec that owns
                      rejection of legacy, corrupt and truncated files —
                      the first place byte-compatibility silently forks.

Waivers: append `// NOLINT-determinism(reason)` to the offending line.
Waived lines are suppressed but inventoried in the report, so every
exception stays visible and reviewable.

Engines:
  tokens  Pure-python tokenizer over the source text (always available,
          so CI can never silently skip this check).
  ast     adds a libclang-backed pass for R11 on top of the token pass:
          it resolves real types, so aliased or auto-typed unordered
          containers are caught too. Findings are unioned and
          deduplicated — a degraded parse can never LOSE findings the
          tokenizer reports. R10/R12/R13 stay token-based (they are
          lexical properties).
  auto    ast when the clang python bindings import, tokens otherwise
          (the default).

Usage: tools/determinism_check.py [--root DIR] [--engine auto|tokens|ast]
Prints "file:line: [rule] message" per violation, an inventory of
waivers, and a summary line; exits non-zero if any violation is found.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from dataclasses import dataclass, field

CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")
# bench/ is exempt by design: benchmarks measure wall time.
SOURCE_DIRS = ("src", "tests", "examples")
# Analyzer test vectors are intentionally violating snippets.
FIXTURE_DIR = "tests/tooling/fixtures"

WAIVER_RE = re.compile(r"//\s*NOLINT-determinism\(([^)]*)\)")

# R11: function names whose output must be byte-deterministic.
DETERMINISTIC_PATH_RE = re.compile(
    r"^(SaveState\w*|Explain\w*|\w*Trajectory\w*|\w*Telemetry\w*|"
    r"Emit\w*|Report\w*|Dump\w*|Describe\w*|Print\w*)$")
UNORDERED_TYPES = ("unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset")
SORTED_HELPERS = ("SortedKeys", "SortedItems", "SortedView")

# R12: allowlisted wall-clock owners.
WALL_CLOCK_ALLOWED = ("src/util/deadline.h", "src/util/deadline.cc")
CLOCK_TYPES = ("system_clock", "steady_clock", "high_resolution_clock")
CLOCK_CALLS = ("time", "clock", "gettimeofday", "localtime", "gmtime",
               "mktime", "timespec_get", "clock_gettime")

# R13: allowlisted randomness owner.
NONDET_ALLOWED = ("src/util/rng.h", "src/util/rng.cc")
POINTER_INT_TYPES = ("uintptr_t", "intptr_t")

# R14: raw POSIX I/O confined to the transport layer.
SYSCALL_ALLOWED_PREFIX = "src/ipc/"
SYSCALL_NAMES = ("socket", "bind", "listen", "accept", "accept4",
                 "connect", "recv", "send", "recvfrom", "sendto",
                 "recvmsg", "sendmsg", "read", "write", "pread", "pwrite",
                 "poll", "ppoll", "select", "unlink")

# R15: process-lifecycle syscalls confined to the worker-pool layer.
PROCESS_ALLOWED_PREFIX = "src/worker/"
PROCESS_NAMES = ("fork", "vfork", "execv", "execve", "execvp", "execvpe",
                 "execl", "execle", "execlp", "kill", "waitpid", "wait",
                 "wait3", "wait4", "posix_spawn", "posix_spawnp")

# R16: intrinsics/CPUID confined to the SIMD kernel backend. The prefix
# covers data/simd.h, simd.cc, and every simd_<isa>.cc translation unit.
SIMD_ALLOWED_PREFIX = "src/data/simd"
INTRIN_HEADERS = ("immintrin", "x86intrin", "xmmintrin", "emmintrin",
                  "pmmintrin", "tmmintrin", "smmintrin", "nmmintrin",
                  "wmmintrin", "ammintrin", "arm_neon", "arm_sve")
SIMD_IDENT_PREFIXES = ("_mm", "__m64", "__m128", "__m256", "__m512",
                       "__builtin_ia32")
CPU_PROBE_BUILTINS = ("__builtin_cpu_supports", "__builtin_cpu_init",
                      "__builtin_cpu_is")

# R17: knowledge-base file format confined to its codec (src/meta/).
KB_FORMAT_ALLOWED_PREFIX = "src/meta/"
KB_FORMAT_MAGIC = "volcanoml-kb"
KB_FORMAT_IDENTS = ("kKnowledgeBaseMagic", "kKnowledgeBaseVersion")

# R10: snapshot key primitives and aggregate helpers whose first string
# argument is the key.
SNAPSHOT_PRIMITIVES = ("U64", "I64", "F64", "Bool", "Str", "Begin", "End",
                       "SaveDoubleVector", "LoadDoubleVector",
                       "SaveConfiguration", "LoadConfiguration",
                       "SaveAssignment", "LoadAssignment")


@dataclass
class Token:
    kind: str  # "ident" | "number" | "string" | "char" | "punct"
    text: str
    line: int


@dataclass
class FileScan:
    rel: str
    tokens: list[Token]
    waivers: dict[int, str]  # line -> reason


@dataclass
class Report:
    violations: list[str] = field(default_factory=list)
    rule_counts: dict[str, int] = field(default_factory=dict)
    # (rel, line, rule, reason) for every suppressed finding.
    waived: list[tuple[str, int, str, str]] = field(default_factory=list)
    notices: list[str] = field(default_factory=list)

    seen: set = field(default_factory=set)

    def add(self, scan: FileScan, line: int, rule: str, message: str):
        if (scan.rel, line, rule) in self.seen:
            return  # token and AST engines agree; count once
        self.seen.add((scan.rel, line, rule))
        if line in scan.waivers:
            self.waived.append((scan.rel, line, rule, scan.waivers[line]))
            return
        self.violations.append(f"{scan.rel}:{line}: [{rule}] {message}")
        self.rule_counts[rule] = self.rule_counts.get(rule, 0) + 1


def tokenize(text: str) -> tuple[list[Token], dict[int, str]]:
    """Lexes C++ source into coarse tokens, collecting waiver comments.

    Comments and preprocessor line continuations are skipped; string and
    char literals become single tokens. Good enough for this codebase:
    no raw strings, trigraphs, or digraphs in analyzed positions.
    """
    tokens: list[Token] = []
    waivers: dict[int, str] = {}
    i, n, line = 0, len(text), 1
    ident_start = set(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
    ident_chars = ident_start | set("0123456789")
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            m = WAIVER_RE.search(text[i:end])
            if m:
                waivers[line] = m.group(1).strip()
            i = end
            continue
        if c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n - 2 if end == -1 else end
            line += text.count("\n", i, end + 2)
            i = end + 2
            continue
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("string", text[i:j + 1], line))
            line += text.count("\n", i, j + 1)
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("char", text[i:j + 1], line))
            i = j + 1
            continue
        if c in ident_start:
            j = i
            while j < n and text[j] in ident_chars:
                j += 1
            tokens.append(Token("ident", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'+-"
                             and text[j - 1] in "eEpP"):
                j += 1
            tokens.append(Token("number", text[i:j], line))
            i = j
            continue
        # Two-char punctuation that matters for our patterns.
        if text[i:i + 2] in ("::", "->", "<<", ">>", "==", "!="):
            tokens.append(Token("punct", text[i:i + 2], line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1
    return tokens, waivers


def match_paren(tokens: list[Token], open_idx: int) -> int:
    """Index of the `)` matching tokens[open_idx] == `(` (or len)."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        if tokens[j].text == "(":
            depth += 1
        elif tokens[j].text == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def match_brace(tokens: list[Token], open_idx: int) -> int:
    """Index of the `}` matching tokens[open_idx] == `{` (or len)."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        if tokens[j].text == "{":
            depth += 1
        elif tokens[j].text == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def match_angle(tokens: list[Token], open_idx: int) -> int:
    """Index of the `>` closing tokens[open_idx] == `<` (or len).

    Treats `>>` as two closers (nested template argument lists).
    """
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j
        elif t in (";", "{"):
            break  # not a template argument list after all
    return len(tokens)


@dataclass
class FunctionBody:
    name: str
    qualifier: str  # enclosing class for out-of-line definitions, else ""
    start: int  # token index of `{`
    end: int    # token index of matching `}`


def find_function_bodies(tokens: list[Token]) -> list[FunctionBody]:
    """Finds function definitions: [Class ::] name ( ... ) [specs] `{`.

    A deliberately shallow parse — enough to attribute statements to the
    function whose determinism contract they fall under.
    """
    bodies = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind != "ident" or (i + 1 < n and tokens[i + 1].text != "("):
            i += 1
            continue
        if t.text in ("if", "for", "while", "switch", "return", "sizeof",
                      "catch", "alignof", "decltype"):
            i += 1
            continue
        qualifier = ""
        if i >= 2 and tokens[i - 1].text == "::" \
                and tokens[i - 2].kind == "ident":
            qualifier = tokens[i - 2].text
        close = match_paren(tokens, i + 1)
        j = close + 1
        # Skip trailing specifiers: const, noexcept, override, attribute
        # macros (possibly with an argument list), -> return types.
        while j < n:
            tj = tokens[j]
            if tj.kind == "ident":
                j += 1
                if j < n and tokens[j].text == "(":
                    j = match_paren(tokens, j) + 1
                continue
            if tj.text in ("->", "::", "<", ">", "&", "*", ","):
                j += 1
                continue
            break
        if j < n and tokens[j].text == "{":
            end = match_brace(tokens, j)
            bodies.append(FunctionBody(t.text, qualifier, j, end))
            i = j + 1
            continue
        i = close + 1
    return bodies


def collect_unordered_names(tokens: list[Token]) -> set[str]:
    """Names of variables/members declared with an unordered container
    type, e.g. `std::unordered_map<K, V> cache_;`."""
    names: set[str] = set()
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in UNORDERED_TYPES:
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].text == "<":
            j = match_angle(tokens, j) + 1
        # Skip references/pointers and find the declared identifier.
        while j < len(tokens) and tokens[j].text in ("&", "*", "const"):
            j += 1
        if j < len(tokens) and tokens[j].kind == "ident":
            names.add(tokens[j].text)
    return names


# -- rules -----------------------------------------------------------------


def check_unordered_iteration(scan: FileScan, unordered_names: set[str],
                              report: Report):
    """R11 over one file, given the unordered-declared names in scope."""
    if not unordered_names:
        return
    tokens = scan.tokens
    for body in find_function_bodies(tokens):
        if not DETERMINISTIC_PATH_RE.match(body.name):
            continue
        k = body.start
        while k < body.end:
            t = tokens[k]
            # Range-for: `for ( decl : expr )`.
            if t.text == "for" and k + 1 < len(tokens) \
                    and tokens[k + 1].text == "(":
                close = match_paren(tokens, k + 1)
                inner = tokens[k + 2:close]
                colon = next((x for x, tok in enumerate(inner)
                              if tok.text == ":"), None)
                if colon is not None:
                    expr = inner[colon + 1:]
                    expr_texts = [tok.text for tok in expr]
                    if any(name in expr_texts for name in unordered_names) \
                            and not any(h in expr_texts
                                        for h in SORTED_HELPERS):
                        report.add(
                            scan, t.line, "R11-unordered-iter",
                            f"{body.name}() iterates an unordered "
                            "container directly; route through SortedKeys/"
                            "SortedItems (src/util/sorted_view.h) so the "
                            "emitted order is byte-deterministic")
                k = close + 1
                continue
            # Iterator spelling: `name.begin()` / `name.cbegin()`.
            if t.kind == "ident" and t.text in unordered_names \
                    and k + 2 < len(tokens) \
                    and tokens[k + 1].text in (".", "->") \
                    and tokens[k + 2].text in ("begin", "cbegin", "rbegin"):
                report.add(
                    scan, t.line, "R11-unordered-iter",
                    f"{body.name}() walks {t.text} via iterators; use "
                    "SortedKeys/SortedItems (src/util/sorted_view.h) "
                    "instead of hand-rolled ordering")
            k += 1


def check_wall_clock(scan: FileScan, report: Report):
    """R12: wall-clock reads outside the deadline layer."""
    if scan.rel in WALL_CLOCK_ALLOWED:
        return
    tokens = scan.tokens
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text in CLOCK_TYPES:
            report.add(
                scan, t.line, "R12-wall-clock",
                f"std::chrono::{t.text} outside src/util/deadline.* and "
                "bench/; clocks feeding the library break run-to-run "
                "reproducibility (use the deadline layer or Stopwatch)")
            continue
        if t.text in CLOCK_CALLS and i + 1 < len(tokens) \
                and tokens[i + 1].text == "(":
            prev = tokens[i - 1].text if i > 0 else ""
            # Member/qualified calls like obj.time(...) are not libc time.
            if prev in (".", "->"):
                continue
            report.add(
                scan, t.line, "R12-wall-clock",
                f"{t.text}() wall-clock call outside src/util/deadline.* "
                "and bench/")


def check_nondet_sources(scan: FileScan, report: Report):
    """R13: nondeterministic value sources outside the rng layer."""
    if scan.rel in NONDET_ALLOWED:
        return
    tokens = scan.tokens
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text == "random_device":
            report.add(scan, t.line, "R13-nondet-source",
                       "std::random_device is unseeded; all randomness "
                       "flows through volcanoml::Rng (src/util/rng.h)")
            continue
        if t.text in ("rand", "srand") and i + 1 < len(tokens) \
                and tokens[i + 1].text == "(":
            prev = tokens[i - 1].text if i > 0 else ""
            if prev in (".", "->", "::"):
                continue  # e.g. rng.rand() member spellings
            report.add(scan, t.line, "R13-nondet-source",
                       f"{t.text}() is unseeded global randomness; use "
                       "volcanoml::Rng (src/util/rng.h)")
            continue
        if t.text == "hash" and i + 1 < len(tokens) \
                and tokens[i + 1].text == "<":
            close = match_angle(tokens, i + 1)
            arg = [tok.text for tok in tokens[i + 2:close]]
            if "*" in arg or "void*" in arg:
                report.add(scan, t.line, "R13-nondet-source",
                           "std::hash over a pointer type hashes an "
                           "address; addresses vary per run under ASLR")
            continue
        if t.text == "reinterpret_cast" and i + 1 < len(tokens) \
                and tokens[i + 1].text == "<":
            close = match_angle(tokens, i + 1)
            arg = [tok.text for tok in tokens[i + 2:close]]
            if any(p in arg for p in POINTER_INT_TYPES):
                report.add(scan, t.line, "R13-nondet-source",
                           "pointer-to-integer cast enables pointer-value "
                           "ordering/hashing, which varies per run under "
                           "ASLR")


def check_raw_syscalls(scan: FileScan, report: Report):
    """R14: raw socket/fd syscalls outside src/ipc/."""
    if scan.rel.startswith(SYSCALL_ALLOWED_PREFIX):
        return
    tokens = scan.tokens
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in SYSCALL_NAMES:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None:
            if prev.text in (".", "->"):
                continue  # member call, e.g. reader.read(...)
            if prev.text == "::":
                before = tokens[i - 2].text if i >= 2 else ""
                if before == "std":
                    continue  # std::bind and friends are not syscalls
            # `Type select(args);` is a declaration, not a call.
            if prev.kind == "ident" and prev.text != "return":
                continue
        report.add(
            scan, t.line, "R14-syscalls",
            f"raw {t.text}() syscall outside src/ipc/; go through the "
            "framed transport API (src/ipc/transport.h) so partial "
            "reads, EINTR and SIGPIPE handling stay in one audited "
            "place")


def check_process_syscalls(scan: FileScan, report: Report):
    """R15: process-lifecycle syscalls outside src/worker/."""
    if scan.rel.startswith(PROCESS_ALLOWED_PREFIX):
        return
    tokens = scan.tokens
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in PROCESS_NAMES:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None:
            if prev.text in (".", "->"):
                continue  # member call, e.g. future.wait(...)
            if prev.text == "::":
                before = tokens[i - 2].text if i >= 2 else ""
                if before == "std":
                    continue  # e.g. std::kill-style qualified names
            # `Type fork(args);` is a declaration, not a call.
            if prev.kind == "ident" and prev.text != "return":
                continue
        report.add(
            scan, t.line, "R15-process",
            f"raw {t.text}() process syscall outside src/worker/; process "
            "creation, signalling and reaping live in the supervised "
            "worker pool (src/worker/supervisor.h) so zombies, retries "
            "and restart storms are handled in one audited place")


def check_simd_confinement(scan: FileScan, report: Report):
    """R16: intrinsics, intrinsic headers and CPUID probing outside
    src/data/simd*."""
    if scan.rel.startswith(SIMD_ALLOWED_PREFIX):
        return
    tokens = scan.tokens
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        text = t.text
        if text in INTRIN_HEADERS:
            # Only the include spelling `#include <immintrin.h>` fires; a
            # plain identifier that happens to share the name does not.
            prev = tokens[i - 1].text if i > 0 else ""
            before = tokens[i - 2].text if i > 1 else ""
            if prev == "<" and before == "include":
                report.add(
                    scan, t.line, "R16-simd",
                    f"#include <{text}.h> outside src/data/simd*; "
                    "intrinsics live behind the dispatching kernels "
                    "(data/kernels.h) so the scalar oracle covers the "
                    "full numeric surface")
            continue
        if text in CPU_PROBE_BUILTINS:
            report.add(
                scan, t.line, "R16-simd",
                f"{text} outside src/data/simd*; CPUID-dependent "
                "behavior must resolve once in the kernel dispatch "
                "layer (data/simd.h), never per call site")
            continue
        if text.startswith(SIMD_IDENT_PREFIXES):
            report.add(
                scan, t.line, "R16-simd",
                f"SIMD intrinsic/vector-type `{text}` outside "
                "src/data/simd*; call the dispatching kernels "
                "(data/kernels.h) so VOLCANOML_SIMD=scalar still pins "
                "every bit the library produces")


def check_kb_format_confinement(scan: FileScan, report: Report):
    """R17: the knowledge-base format magic and version identifiers
    outside src/meta/."""
    if scan.rel.startswith(KB_FORMAT_ALLOWED_PREFIX):
        return
    for t in scan.tokens:
        if t.kind == "string" and KB_FORMAT_MAGIC in t.text:
            report.add(
                scan, t.line, "R17-kb",
                f'knowledge-base magic "{KB_FORMAT_MAGIC}" outside '
                "src/meta/; the versioned codec "
                "(meta/knowledge_base.cc) is the only writer and parser "
                "of the on-disk format — build KB bytes through "
                "Serialize()/Deserialize() so legacy, corrupt and "
                "truncated files keep exactly one rejection path")
        elif t.kind == "ident" and t.text in KB_FORMAT_IDENTS:
            report.add(
                scan, t.line, "R17-kb",
                f"{t.text} referenced outside src/meta/; the format "
                "marker is private to the knowledge-base codec — "
                "callers speak RunArtifact values and Serialize() "
                "bytes, never the header layout")


def extract_snapshot_keys(tokens: list[Token], start: int,
                          end: int) -> set[str]:
    """Quoted keys passed to snapshot primitives inside [start, end)."""
    keys: set[str] = set()
    k = start
    while k < end:
        t = tokens[k]
        if t.kind == "ident" and t.text in SNAPSHOT_PRIMITIVES \
                and k + 1 < end and tokens[k + 1].text == "(":
            close = match_paren(tokens, k + 1)
            # The key is the first string literal among the call's leading
            # arguments (aggregate helpers put the writer/reader first).
            for tok in tokens[k + 2:min(close, k + 8)]:
                if tok.kind == "string":
                    keys.add(tok.text[1:-1])
                    break
            k += 2
            continue
        k += 1
    return keys


def check_snapshot_pairs(scans: list[FileScan], report: Report):
    """R10 (promoted from lint): SaveState*/LoadState* key pairing.

    Token-grade: keys split across lines or emitted under conditionals
    are still collected, which the old line-based regex missed.
    """
    # (class, suffix) -> {"Save"/"Load": (scan, line, keys)}
    methods: dict[tuple[str, str], dict[str, tuple[FileScan, int,
                                                   set[str]]]] = {}
    for scan in scans:
        if not scan.rel.startswith("src/"):
            continue
        for body in find_function_bodies(scan.tokens):
            if not body.qualifier:
                continue
            for kind in ("SaveState", "LoadState"):
                if body.name.startswith(kind):
                    suffix = body.name[len(kind):]
                    keys = extract_snapshot_keys(scan.tokens,
                                                 body.start, body.end)
                    line = scan.tokens[body.start].line
                    methods.setdefault((body.qualifier, suffix), {})[
                        kind[:4]] = (scan, line, keys)
    for (cls, suffix), pair in sorted(methods.items()):
        if "Save" not in pair or "Load" not in pair:
            present = "Save" if "Save" in pair else "Load"
            missing = "LoadState" if present == "Save" else "SaveState"
            scan, line, _ = pair[present]
            report.add(scan, line, "R10-snapshot-keys",
                       f"{cls}::{present}State{suffix} has no paired "
                       f"{cls}::{missing}{suffix}; snapshots of this "
                       "state cannot round-trip")
            continue
        save_scan, save_line, save_keys = pair["Save"]
        _, _, load_keys = pair["Load"]
        if save_keys != load_keys:
            only_save = ", ".join(sorted(save_keys - load_keys)) or "-"
            only_load = ", ".join(sorted(load_keys - save_keys)) or "-"
            report.add(save_scan, save_line, "R10-snapshot-keys",
                       f"{cls}::SaveState{suffix}/LoadState{suffix} "
                       f"snapshot keys differ (written only: {only_save}; "
                       f"read only: {only_load}); the sequential reader "
                       "will fail every resume")


# -- libclang engine (R11) -------------------------------------------------


def try_import_libclang():
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:  # noqa: BLE001 - any failure means "unavailable"
        return None


def ast_unordered_iteration(cindex, root: str, scan: FileScan,
                            report: Report) -> bool:
    """Type-accurate R11 for one file, additive to the token pass.
    Returns False when libclang could not parse the file."""
    try:
        index = cindex.Index.create()
        tu = index.parse(
            os.path.join(root, scan.rel),
            args=["-std=c++20", f"-I{os.path.join(root, 'src')}",
                  "-fsyntax-only"])
        if tu is None:
            return False

        def in_deterministic_path(cursor) -> bool:
            node = cursor
            while node is not None:
                if node.kind in (cindex.CursorKind.CXX_METHOD,
                                 cindex.CursorKind.FUNCTION_DECL):
                    return bool(
                        DETERMINISTIC_PATH_RE.match(node.spelling or ""))
                node = node.semantic_parent
            return False

        def visit(cursor, enclosing_ok: bool):
            kind = cursor.kind
            if kind in (cindex.CursorKind.CXX_METHOD,
                        cindex.CursorKind.FUNCTION_DECL):
                enclosing_ok = bool(
                    DETERMINISTIC_PATH_RE.match(cursor.spelling or ""))
            if enclosing_ok and kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                if children:
                    init = children[-2] if len(children) >= 2 else None
                    type_spelling = ""
                    if init is not None:
                        type_spelling = init.type.get_canonical().spelling
                    token_texts = [t.spelling
                                   for t in cursor.get_tokens()]
                    if any(u in type_spelling for u in UNORDERED_TYPES) \
                            and not any(h in token_texts
                                        for h in SORTED_HELPERS):
                        report.add(
                            scan, cursor.location.line,
                            "R11-unordered-iter",
                            "range-for over an unordered container in a "
                            "deterministic-output path; route through "
                            "SortedKeys/SortedItems "
                            "(src/util/sorted_view.h)")
            for child in cursor.get_children():
                if child.location.file is not None and \
                        os.path.samefile(str(child.location.file),
                                         os.path.join(root, scan.rel)):
                    visit(child, enclosing_ok)

        visit(tu.cursor, False)
        return True
    except Exception:  # noqa: BLE001 - fall back, never silently skip
        return False


# -- driver ----------------------------------------------------------------


def list_candidates(root: str) -> list[str]:
    try:
        tracked = subprocess.run(
            ["git", "ls-files"], cwd=root, capture_output=True,
            text=True, check=True).stdout.splitlines()
    except (OSError, subprocess.CalledProcessError):
        tracked = []
        for d in SOURCE_DIRS:
            base = os.path.join(root, d)
            for dirpath, _, files in os.walk(base):
                for name in files:
                    tracked.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
    return sorted(
        rel for rel in tracked
        if rel.startswith(SOURCE_DIRS) and rel.endswith(CXX_EXTENSIONS)
        and not rel.startswith(FIXTURE_DIR))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: parent of tools/)")
    parser.add_argument(
        "--engine", choices=("auto", "tokens", "ast"), default="auto",
        help="analysis engine (default: ast when libclang imports, "
             "else tokens)")
    args = parser.parse_args()

    cindex = None
    if args.engine in ("auto", "ast"):
        cindex = try_import_libclang()
        if cindex is None and args.engine == "ast":
            print("determinism_check: --engine=ast requested but libclang "
                  "is unavailable", file=sys.stderr)
            return 2

    report = Report()
    scans: list[FileScan] = []
    for rel in list_candidates(args.root):
        try:
            with open(os.path.join(args.root, rel), encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
        except OSError as e:
            report.violations.append(f"{rel}:0: [io] unreadable: {e}")
            continue
        tokens, waivers = tokenize(text)
        scans.append(FileScan(rel, tokens, waivers))

    # Unordered-container declarations are collected per file-pair (the
    # .cc sees the members its header declares).
    unordered_by_stem: dict[str, set[str]] = {}
    for scan in scans:
        stem = os.path.splitext(scan.rel)[0]
        unordered_by_stem.setdefault(stem, set()).update(
            collect_unordered_names(scan.tokens))

    for scan in scans:
        stem = os.path.splitext(scan.rel)[0]
        names = unordered_by_stem.get(stem, set())
        check_unordered_iteration(scan, names, report)
        if cindex is not None and not ast_unordered_iteration(
                cindex, args.root, scan, report):
            report.notices.append(
                f"determinism_check: libclang parse failed for {scan.rel}; "
                "token-pass findings stand alone")
        check_wall_clock(scan, report)
        check_nondet_sources(scan, report)
        check_raw_syscalls(scan, report)
        check_process_syscalls(scan, report)
        check_simd_confinement(scan, report)
        check_kb_format_confinement(scan, report)
    check_snapshot_pairs(scans, report)

    for v in report.violations:
        print(v)
    for rel, line, rule, reason in report.waived:
        print(f"{rel}:{line}: [waiver {rule}] {reason}")
    for notice in report.notices:
        print(notice, file=sys.stderr)
    engine = "ast+tokens" if cindex is not None else "tokens"
    summary = ", ".join(f"{rule}={count}" for rule, count in
                        sorted(report.rule_counts.items())) or "none"
    print(f"determinism_check: engine={engine} files={len(scans)} "
          f"violations={len(report.violations)} ({summary}) "
          f"waivers={len(report.waived)}")
    if report.violations:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
