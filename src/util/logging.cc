#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace volcanoml {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

/// Serializes emission so concurrent log lines never interleave once
/// evaluators run in parallel. The annotations make clang's
/// -Wthread-safety prove the counter is only touched under the mutex.
Mutex g_log_mu;
uint64_t g_emitted_lines VOLCANOML_GUARDED_BY(g_log_mu) = 0;

void Emit(const std::string& line) VOLCANOML_EXCLUDES(g_log_mu) {
  MutexLock lock(g_log_mu);
  ++g_emitted_lines;
  std::fprintf(stderr, "%s\n", line.c_str());
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load());
}

uint64_t GetEmittedLogLines() {
  MutexLock lock(g_log_mu);
  return g_emitted_lines;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level.load()),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    Emit(stream_.str());
  }
}

}  // namespace internal_logging
}  // namespace volcanoml
