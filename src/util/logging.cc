#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace volcanoml {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load());
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level.load()),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal_logging
}  // namespace volcanoml
