#ifndef VOLCANOML_UTIL_DEADLINE_H_
#define VOLCANOML_UTIL_DEADLINE_H_

#include <chrono>
#include <limits>

namespace volcanoml {

/// Cooperative per-trial deadline. A Deadline is a point on the steady
/// clock (or "never"); expensive training loops poll IsExpired() at their
/// natural cooperation points (per epoch, per tree, per boosting round,
/// between feature-engineering operators) and bail out with
/// Status::DeadlineExceeded when it fires. There is no preemption: a trial
/// can overrun its deadline by at most one cooperation interval.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires (the default).
  static Deadline Never() { return Deadline(); }

  /// A deadline `seconds` from now. Non-positive values expire immediately.
  static Deadline After(double seconds);

  /// A deadline that is already expired; useful in tests to exercise every
  /// cooperation point deterministically without waiting on wall clock.
  static Deadline AlreadyExpired();

  [[nodiscard]] bool unlimited() const { return unlimited_; }

  /// True once the deadline has passed. Never true for unlimited deadlines.
  [[nodiscard]] bool IsExpired() const {
    return !unlimited_ && Clock::now() >= expires_at_;
  }

  /// Seconds until expiry (clamped at 0); +inf for unlimited deadlines.
  [[nodiscard]] double RemainingSeconds() const;

 private:
  Deadline() : unlimited_(true) {}
  explicit Deadline(Clock::time_point expires_at)
      : unlimited_(false), expires_at_(expires_at) {}

  bool unlimited_;
  Clock::time_point expires_at_{};
};

/// Installs `deadline` as the current thread's trial deadline for the
/// lifetime of the scope, restoring the previous one on destruction. The
/// evaluation engine runs one trial at a time per worker thread, so a
/// thread-local is sufficient to reach every training loop without
/// threading a token through each Fit signature.
class ScopedTrialDeadline {
 public:
  explicit ScopedTrialDeadline(const Deadline& deadline);
  ~ScopedTrialDeadline();

  ScopedTrialDeadline(const ScopedTrialDeadline&) = delete;
  ScopedTrialDeadline& operator=(const ScopedTrialDeadline&) = delete;

 private:
  Deadline previous_;
};

/// True if the calling thread's installed trial deadline has expired.
/// False when no deadline is installed. This is the poll that training
/// loops call at their cooperation points.
[[nodiscard]] bool TrialDeadlineExpired();

/// The calling thread's current trial deadline (Never() if none installed).
[[nodiscard]] const Deadline& CurrentTrialDeadline();

}  // namespace volcanoml

#endif  // VOLCANOML_UTIL_DEADLINE_H_
