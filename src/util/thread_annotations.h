#ifndef VOLCANOML_UTIL_THREAD_ANNOTATIONS_H_
#define VOLCANOML_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety analysis annotations (abseil-style spellings).
///
/// Under clang with -Wthread-safety these let the compiler prove that
/// shared state is only touched with the right mutex held — the static
/// complement to the TSan preset (see DESIGN.md "Error handling &
/// analysis gates"). Under GCC they expand to nothing; the dynamic TSan
/// gate still covers the same invariants there.
///
/// Usage:
///   std::mutex mu_;
///   int counter_ VOLCANOML_GUARDED_BY(mu_);
///   void Bump() VOLCANOML_LOCKS_EXCLUDED(mu_);

#if defined(__clang__) && (!defined(SWIG))
#define VOLCANOML_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VOLCANOML_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a member as protected by the given mutex.
#define VOLCANOML_GUARDED_BY(x) VOLCANOML_THREAD_ANNOTATION(guarded_by(x))

/// Marks a pointer whose pointee is protected by the given mutex.
#define VOLCANOML_PT_GUARDED_BY(x) \
  VOLCANOML_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that the function requires the given capabilities held.
#define VOLCANOML_EXCLUSIVE_LOCKS_REQUIRED(...) \
  VOLCANOML_THREAD_ANNOTATION(exclusive_locks_required(__VA_ARGS__))

/// Declares that the function must NOT be called with the locks held.
#define VOLCANOML_LOCKS_EXCLUDED(...) \
  VOLCANOML_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Marks a function that acquires the capability.
#define VOLCANOML_EXCLUSIVE_LOCK_FUNCTION(...) \
  VOLCANOML_THREAD_ANNOTATION(exclusive_lock_function(__VA_ARGS__))

/// Marks a function that releases the capability.
#define VOLCANOML_UNLOCK_FUNCTION(...) \
  VOLCANOML_THREAD_ANNOTATION(unlock_function(__VA_ARGS__))

/// Opts a function out of the analysis (e.g. locking through aliases).
#define VOLCANOML_NO_THREAD_SAFETY_ANALYSIS \
  VOLCANOML_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // VOLCANOML_UTIL_THREAD_ANNOTATIONS_H_
