#ifndef VOLCANOML_UTIL_THREAD_ANNOTATIONS_H_
#define VOLCANOML_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety analysis annotations (abseil-style spellings).
///
/// Under clang with -Wthread-safety these let the compiler prove that
/// shared state is only touched with the right mutex held — the static
/// complement to the TSan preset (see DESIGN.md "Error handling &
/// analysis gates"). The `clang-analyze` CMake preset compiles the whole
/// tree with -Wthread-safety -Werror, so a missing or wrong annotation is
/// a build break, not a lint note. Under GCC they expand to nothing; the
/// dynamic TSan gate still covers the same invariants there.
///
/// The analysis only understands capabilities it can see, so locking goes
/// through the annotated volcanoml::Mutex / MutexLock / CondVar wrappers
/// (src/util/mutex.h) rather than raw std::mutex — std::lock_guard is
/// opaque to clang and would make every contract unprovable.
///
/// Usage:
///   Mutex mu_;
///   int counter_ VOLCANOML_GUARDED_BY(mu_);
///   void Bump() VOLCANOML_EXCLUDES(mu_);           // takes the lock itself
///   void BumpLocked() VOLCANOML_REQUIRES(mu_);     // caller holds the lock

#if defined(__clang__) && (!defined(SWIG))
#define VOLCANOML_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VOLCANOML_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a class as a capability (lockable) type, e.g. a mutex wrapper.
#define VOLCANOML_CAPABILITY(x) VOLCANOML_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (e.g. MutexLock).
#define VOLCANOML_SCOPED_CAPABILITY \
  VOLCANOML_THREAD_ANNOTATION(scoped_lockable)

/// Marks a member as protected by the given mutex.
#define VOLCANOML_GUARDED_BY(x) VOLCANOML_THREAD_ANNOTATION(guarded_by(x))

/// Marks a pointer whose pointee is protected by the given mutex.
#define VOLCANOML_PT_GUARDED_BY(x) \
  VOLCANOML_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that the function requires the given capabilities held
/// exclusively — the caller locks, the function does not.
#define VOLCANOML_REQUIRES(...) \
  VOLCANOML_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of VOLCANOML_REQUIRES.
#define VOLCANOML_REQUIRES_SHARED(...) \
  VOLCANOML_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Marks a function that acquires the capability itself (and returns with
/// it held).
#define VOLCANOML_ACQUIRE(...) \
  VOLCANOML_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Shared (reader) variant of VOLCANOML_ACQUIRE.
#define VOLCANOML_ACQUIRE_SHARED(...) \
  VOLCANOML_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Marks a function that releases the capability before returning.
#define VOLCANOML_RELEASE(...) \
  VOLCANOML_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Shared (reader) variant of VOLCANOML_RELEASE.
#define VOLCANOML_RELEASE_SHARED(...) \
  VOLCANOML_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Marks a function that attempts to acquire the capability; the first
/// argument is the return value meaning "acquired".
#define VOLCANOML_TRY_ACQUIRE(...) \
  VOLCANOML_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that the function must NOT be called with the locks held —
/// it takes them itself, so calling it locked would self-deadlock.
#define VOLCANOML_EXCLUDES(...) \
  VOLCANOML_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume it from here on.
#define VOLCANOML_ASSERT_CAPABILITY(x) \
  VOLCANOML_THREAD_ANNOTATION(assert_capability(x))

/// Marks a function returning a reference to the capability that guards
/// the returned-from object.
#define VOLCANOML_RETURN_CAPABILITY(x) \
  VOLCANOML_THREAD_ANNOTATION(lock_returned(x))

/// Documents (and enforces) lock-ordering between two mutexes.
#define VOLCANOML_ACQUIRED_BEFORE(...) \
  VOLCANOML_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VOLCANOML_ACQUIRED_AFTER(...) \
  VOLCANOML_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Opts a function out of the analysis (e.g. locking through aliases).
/// Zero uses outside src/util/mutex.h is an acceptance criterion of the
/// clang-analyze gate; prefer fixing the contract to suppressing it.
#define VOLCANOML_NO_THREAD_SAFETY_ANALYSIS \
  VOLCANOML_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // VOLCANOML_UTIL_THREAD_ANNOTATIONS_H_
