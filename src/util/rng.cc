#include "util/rng.h"

#include <numeric>
#include <sstream>

namespace volcanoml {

std::string Rng::Serialize() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::Deserialize(const std::string& state) {
  std::istringstream in(state);
  in >> engine_;
  return !in.fail();
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  VOLCANOML_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return Index(weights.size());
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    VOLCANOML_DCHECK(weights[i] >= 0.0);
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace volcanoml
