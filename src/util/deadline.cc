#include "util/deadline.h"

namespace volcanoml {

namespace {

/// The per-thread trial deadline. Owned by ScopedTrialDeadline; defaults
/// to Never() so code outside a guarded trial never observes expiry.
thread_local Deadline t_trial_deadline = Deadline::Never();

}  // namespace

Deadline Deadline::After(double seconds) {
  if (seconds <= 0.0) return AlreadyExpired();
  return Deadline(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds)));
}

Deadline Deadline::AlreadyExpired() {
  return Deadline(Clock::time_point::min());
}

double Deadline::RemainingSeconds() const {
  if (unlimited_) return std::numeric_limits<double>::infinity();
  // Checked before subtracting: AlreadyExpired() sits at time_point::min()
  // and `min - now` overflows the duration rep.
  if (IsExpired()) return 0.0;
  std::chrono::duration<double> remaining = expires_at_ - Clock::now();
  return remaining.count() > 0.0 ? remaining.count() : 0.0;
}

ScopedTrialDeadline::ScopedTrialDeadline(const Deadline& deadline)
    : previous_(t_trial_deadline) {
  t_trial_deadline = deadline;
}

ScopedTrialDeadline::~ScopedTrialDeadline() { t_trial_deadline = previous_; }

bool TrialDeadlineExpired() { return t_trial_deadline.IsExpired(); }

const Deadline& CurrentTrialDeadline() { return t_trial_deadline; }

}  // namespace volcanoml
