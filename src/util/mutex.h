#ifndef VOLCANOML_UTIL_MUTEX_H_
#define VOLCANOML_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace volcanoml {

/// Annotated mutex — the repo's only lock type outside the standard
/// library internals.
///
/// Clang's -Wthread-safety analysis cannot see through std::mutex /
/// std::lock_guard (libstdc++ carries no capability annotations), so raw
/// standard mutexes make every VOLCANOML_GUARDED_BY contract unprovable.
/// This wrapper gives the analysis an annotated capability while staying
/// a plain std::mutex underneath, so the TSan preset still instruments
/// the exact same synchronization. Lock with MutexLock; wait with
/// CondVar. Direct Lock()/Unlock() calls are for the rare manual
/// protocols and must keep the analysis happy on every path.
class VOLCANOML_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VOLCANOML_ACQUIRE() { mu_.lock(); }
  void Unlock() VOLCANOML_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() VOLCANOML_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated so the analysis tracks the critical
/// section through scopes and early returns.
class VOLCANOML_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VOLCANOML_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() VOLCANOML_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable working with the annotated Mutex. Wait() must be
/// called with the mutex held (the analysis enforces it); as with every
/// condition variable, re-check the predicate in a loop after waking.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and re-acquires
  /// `mu` before returning.
  void Wait(Mutex& mu) VOLCANOML_REQUIRES(mu) {
    // Adopt the already-held native mutex so std::condition_variable can
    // drive it, then release the handle so ownership stays with the
    // caller's MutexLock.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_UTIL_MUTEX_H_
