#ifndef VOLCANOML_UTIL_SORTED_VIEW_H_
#define VOLCANOML_UTIL_SORTED_VIEW_H_

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

namespace volcanoml {

/// Deterministic views over unordered containers.
///
/// Iterating an unordered_map/unordered_set directly yields
/// implementation-defined (and libc++/libstdc++-divergent) order, which
/// silently corrupts any byte-deterministic output: snapshots, Explain()
/// strings, trajectories, telemetry. Every serialization path must route
/// such iteration through these helpers — tools/determinism_check.py
/// rule R11 flags direct iteration in those paths, and recognizes
/// SortedKeys/SortedItems calls as the sanctioned spelling.
///
/// Both helpers copy: snapshot and telemetry paths are cold, and a copy
/// keeps them safe to use while other threads mutate nothing (callers
/// hold the owning lock where one exists).

/// The container's keys in ascending order. Works for unordered_set
/// (value_type == key) and unordered_map (extracts .first).
template <typename Container>
[[nodiscard]] std::vector<typename Container::key_type> SortedKeys(
    const Container& container) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(container.size());
  for (const auto& element : container) {
    if constexpr (std::is_same_v<typename Container::value_type,
                                 typename Container::key_type>) {
      keys.push_back(element);
    } else {
      keys.push_back(element.first);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// The map's (key, value) pairs in ascending key order. Values are
/// compared only through their keys, so mapped types never need
/// operator<.
template <typename Map>
[[nodiscard]] std::vector<
    std::pair<typename Map::key_type, typename Map::mapped_type>>
SortedItems(const Map& map) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items(map.begin(), map.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace volcanoml

#endif  // VOLCANOML_UTIL_SORTED_VIEW_H_
