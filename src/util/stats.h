#ifndef VOLCANOML_UTIL_STATS_H_
#define VOLCANOML_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace volcanoml {

/// Summary statistics and rank utilities used by the search algorithms
/// (EUI estimation, EU extrapolation) and by the evaluation harness
/// (average-rank tables, Table 1).

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Unbiased sample variance (divides by n-1); returns 0 when n < 2.
double Variance(const std::vector<double>& v);

/// Sample standard deviation.
double StdDev(const std::vector<double>& v);

/// Median (average of the two middle elements for even n).
double Median(std::vector<double> v);

/// Linear-interpolated quantile, q in [0, 1].
double Quantile(std::vector<double> v, double q);

/// Index of the maximum element; the input must be non-empty.
size_t ArgMax(const std::vector<double>& v);

/// Index of the minimum element; the input must be non-empty.
size_t ArgMin(const std::vector<double>& v);

/// Ranks `scores` with 1 = best. `higher_is_better` selects the direction.
/// Ties receive the average of the tied rank positions (fractional ranks),
/// matching the methodology used for the paper's average-rank tables.
std::vector<double> RankScores(const std::vector<double>& scores,
                               bool higher_is_better);

/// Averages per-dataset rank vectors: `per_dataset_scores[d][s]` is the
/// score of system s on dataset d. Returns one average rank per system.
std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& per_dataset_scores,
    bool higher_is_better);

/// Pearson correlation coefficient; returns 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace volcanoml

#endif  // VOLCANOML_UTIL_STATS_H_
