#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace volcanoml {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

double Quantile(std::vector<double> v, double q) {
  VOLCANOML_CHECK(!v.empty());
  VOLCANOML_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

size_t ArgMax(const std::vector<double>& v) {
  VOLCANOML_CHECK(!v.empty());
  return static_cast<size_t>(
      std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

size_t ArgMin(const std::vector<double>& v) {
  VOLCANOML_CHECK(!v.empty());
  return static_cast<size_t>(
      std::distance(v.begin(), std::min_element(v.begin(), v.end())));
}

std::vector<double> RankScores(const std::vector<double>& scores,
                               bool higher_is_better) {
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return higher_is_better ? scores[a] > scores[b] : scores[a] < scores[b];
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    // Group ties: scores equal within a tolerance share a fractional rank.
    while (j + 1 < n &&
           std::abs(scores[order[j + 1]] - scores[order[i]]) < 1e-12) {
      ++j;
    }
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& per_dataset_scores,
    bool higher_is_better) {
  VOLCANOML_CHECK(!per_dataset_scores.empty());
  const size_t num_systems = per_dataset_scores[0].size();
  std::vector<double> total(num_systems, 0.0);
  for (const auto& scores : per_dataset_scores) {
    VOLCANOML_CHECK(scores.size() == num_systems);
    std::vector<double> ranks = RankScores(scores, higher_is_better);
    for (size_t s = 0; s < num_systems; ++s) total[s] += ranks[s];
  }
  for (double& t : total) t /= static_cast<double>(per_dataset_scores.size());
  return total;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  VOLCANOML_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace volcanoml
