#ifndef VOLCANOML_UTIL_RNG_H_
#define VOLCANOML_UTIL_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/check.h"

namespace volcanoml {

/// Deterministic pseudo-random number source used throughout the project.
///
/// Every stochastic component takes an explicit Rng (or a seed) so that
/// experiments are reproducible; there is no global random state.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    VOLCANOML_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    VOLCANOML_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  size_t Index(size_t n) {
    VOLCANOML_DCHECK(n > 0);
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Gaussian sample with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Samples an index proportionally to the given non-negative weights.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child seed; use to fan out reproducible
  /// sub-streams (one per block / model / fold).
  uint64_t Fork() {
    return std::uniform_int_distribution<uint64_t>()(engine_);
  }

  /// Exact engine state as text (the mt19937_64 stream form): a
  /// deserialized Rng continues the identical random stream, which is what
  /// lets snapshots resume a search bit-for-bit.
  [[nodiscard]] std::string Serialize() const;

  /// Restores state written by Serialize(); false on malformed input
  /// (state unspecified then — callers must treat it as a load error).
  [[nodiscard]] bool Deserialize(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_UTIL_RNG_H_
