#ifndef VOLCANOML_UTIL_STATUS_H_
#define VOLCANOML_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace volcanoml {

/// Error categories for recoverable failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kDeadlineExceeded,
};

/// Lightweight error-or-success value, in the style of arrow::Status /
/// rocksdb::Status. Functions that can fail at runtime return Status (or
/// Result<T> below) instead of throwing.
///
/// The class-level [[nodiscard]] makes dropping any returned Status a
/// compile error under -Werror: every fallible call site must either
/// inspect the status or route it through VOLCANOML_RETURN_IF_ERROR.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad k".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites of `return value;` / `return Status::...;` natural.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    VOLCANOML_CHECK_MSG(!status_.ok(), "Result built from OK status");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Returns the contained value; the Result must be ok().
  [[nodiscard]] const T& value() const& {
    VOLCANOML_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    VOLCANOML_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    VOLCANOML_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace volcanoml

/// Propagates a non-OK Status to the caller. Use inside functions that
/// themselves return Status; keeps fallible call chains single-line while
/// satisfying the [[nodiscard]] gate.
#define VOLCANOML_RETURN_IF_ERROR(expr)              \
  do {                                               \
    ::volcanoml::Status _volcanoml_status = (expr);  \
    if (!_volcanoml_status.ok()) {                   \
      return _volcanoml_status;                      \
    }                                                \
  } while (0)

#endif  // VOLCANOML_UTIL_STATUS_H_
