#ifndef VOLCANOML_UTIL_LOGGING_H_
#define VOLCANOML_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace volcanoml {

/// Severity levels for the project logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted to stderr. Defaults to
/// kWarning so library users are not spammed; benches raise it to kInfo.
void SetLogLevel(LogLevel level);
[[nodiscard]] LogLevel GetLogLevel();

/// Number of log lines emitted to stderr so far (all severities). Emission
/// is serialized by a mutex, so the count is exact even with concurrent
/// loggers; used by tests and by the TSan gate.
[[nodiscard]] uint64_t GetEmittedLogLines();

namespace internal_logging {

/// Stream-style log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace volcanoml

#define VOLCANOML_LOG(level)                                      \
  ::volcanoml::internal_logging::LogMessage(                      \
      ::volcanoml::LogLevel::k##level, __FILE__, __LINE__)

#endif  // VOLCANOML_UTIL_LOGGING_H_
