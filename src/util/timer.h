#ifndef VOLCANOML_UTIL_TIMER_H_
#define VOLCANOML_UTIL_TIMER_H_

#include <chrono>

namespace volcanoml {

/// Monotonic stopwatch for budget accounting and benchmark reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the elapsed time to zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_UTIL_TIMER_H_
