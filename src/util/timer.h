#ifndef VOLCANOML_UTIL_TIMER_H_
#define VOLCANOML_UTIL_TIMER_H_

#include <chrono>

namespace volcanoml {

/// Monotonic stopwatch for budget accounting and benchmark reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the elapsed time to zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  // Stopwatch is the audited telemetry clock: it feeds elapsed-seconds
  // reporting and wall-budget metering, never search decisions, so runs
  // stay bit-reproducible in deterministic-budget mode.
  using Clock = std::chrono::steady_clock;  // NOLINT-determinism(telemetry-only monotonic stopwatch)
  Clock::time_point start_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_UTIL_TIMER_H_
