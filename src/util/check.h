#ifndef VOLCANOML_UTIL_CHECK_H_
#define VOLCANOML_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Fatal assertion macros for programmer errors (contract violations).
///
/// The project follows a no-exceptions policy (see DESIGN.md); recoverable
/// runtime failures use volcanoml::Status, while invariant violations abort
/// through these macros with a source location.

#define VOLCANOML_CHECK(cond)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define VOLCANOML_CHECK_MSG(cond, msg)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,   \
                   __LINE__, #cond, msg);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifndef NDEBUG
#define VOLCANOML_DCHECK(cond) VOLCANOML_CHECK(cond)
#else
#define VOLCANOML_DCHECK(cond) \
  do {                         \
  } while (0)
#endif

#endif  // VOLCANOML_UTIL_CHECK_H_
