#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace volcanoml {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  VOLCANOML_CHECK(task != nullptr);
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    MutexLock lock(mu_);
    VOLCANOML_CHECK_MSG(!shutting_down_, "Submit after ~ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  work_available_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (std::future<void>& future : futures) {
    future.wait();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(mu_);
      }
      // Drain the queue even when shutting down: every submitted future
      // must still become ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace volcanoml
