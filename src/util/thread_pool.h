#ifndef VOLCANOML_UTIL_THREAD_POOL_H_
#define VOLCANOML_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace volcanoml {

/// Fixed-size worker pool — the single concurrency primitive of the repo.
///
/// All parallelism flows through this class (lint rule R8 bans raw
/// std::thread / std::async elsewhere), so the TSan preset plus the clang
/// thread-safety annotations below cover every concurrent code path in
/// one place. Tasks must not abort and must not touch shared mutable
/// state without their own synchronization; the pool only guarantees that
/// each submitted task runs exactly once on some worker.
///
/// The pool is started in the constructor and drained + joined in the
/// destructor. Submission is thread-safe.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Blocks until every queued task finished, then joins the workers.
  ~ThreadPool() VOLCANOML_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` and returns a future that becomes ready when it has
  /// run. Futures may be awaited from any thread, including after the
  /// submitting call returns.
  [[nodiscard]] std::future<void> Submit(std::function<void()> task)
      VOLCANOML_EXCLUDES(mu_);

  /// Runs fn(0) .. fn(n - 1) across the pool and blocks until all calls
  /// returned. Distinct indices may run concurrently; `fn` must tolerate
  /// that. A convenience wrapper over Submit for batch evaluation.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      VOLCANOML_EXCLUDES(mu_);

  [[nodiscard]] size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() VOLCANOML_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  std::deque<std::packaged_task<void()>> queue_ VOLCANOML_GUARDED_BY(mu_);
  bool shutting_down_ VOLCANOML_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_UTIL_THREAD_POOL_H_
