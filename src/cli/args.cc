#include "cli/args.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/plan_spec.h"

namespace volcanoml {

namespace {

Result<uint64_t> ParseU64Flag(const std::string& flag,
                              const std::string& value) {
  if (value.empty()) {
    return Status::InvalidArgument(flag + ": expected a number");
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || value[0] == '-') {
    return Status::InvalidArgument(flag + ": '" + value +
                                   "' is not a non-negative integer");
  }
  // strtoull clamps an overflowing value to ULLONG_MAX and sets ERANGE;
  // silently accepting the clamp would e.g. turn an oversized --credit
  // into kUnlimitedCredit.
  if (errno == ERANGE) {
    return Status::InvalidArgument(flag + ": '" + value +
                                   "' is out of range for a 64-bit integer");
  }
  return static_cast<uint64_t>(parsed);
}

Result<double> ParseF64Flag(const std::string& flag,
                            const std::string& value) {
  if (value.empty()) {
    return Status::InvalidArgument(flag + ": expected a number");
  }
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) {
    return Status::InvalidArgument(flag + ": '" + value +
                                   "' is not a number");
  }
  return parsed;
}

/// Short aliases kept from earlier CLI versions, then canonical names.
Result<std::string> CanonicalPlanName(const std::string& value) {
  if (value == "joint") return PlanKindName(PlanKind::kJoint);
  if (value == "cond") return PlanKindName(PlanKind::kConditioningJoint);
  if (value == "alt") return PlanKindName(PlanKind::kAlternatingFeConditioning);
  if (value == "default") {
    return PlanKindName(PlanKind::kConditioningAlternating);
  }
  Result<PlanKind> parsed = ParsePlanKind(value);
  VOLCANOML_RETURN_IF_ERROR(parsed.status());
  return PlanKindName(parsed.value());
}

Result<std::string> CanonicalOptimizerName(const std::string& value) {
  if (value == "mfes") return JointOptimizerKindName(JointOptimizerKind::kMfesHb);
  Result<JointOptimizerKind> parsed = ParseJointOptimizerKind(value);
  VOLCANOML_RETURN_IF_ERROR(parsed.status());
  return JointOptimizerKindName(parsed.value());
}

}  // namespace

std::string CliUsage(const std::string& argv0) {
  return "usage: " + argv0 +
         " <train.csv> [options]            in-process search\n"
         "       " +
         argv0 +
         " serve    --socket PATH [--spool DIR] [--max-resident N]\n"
         "       " +
         argv0 +
         " submit   <train.csv> --socket PATH [--tenant T] [--credit N]\n"
         "                [--wait] [search options]\n"
         "       " +
         argv0 +
         " status   --socket PATH [--session ID]\n"
         "       " +
         argv0 +
         " result   --socket PATH --session ID [--trajectory-out FILE]\n"
         "       " +
         argv0 +
         " shutdown --socket PATH\n"
         "       " +
         argv0 +
         " simd-info               print the resolved SIMD level\n"
         "       " +
         argv0 +
         " kb-status --socket PATH        summarize the daemon's KB\n"
         "       " +
         argv0 +
         " kb-export --socket PATH --kb FILE   write the daemon's KB\n"
         "       " +
         argv0 +
         " kb-import --socket PATH --kb FILE   merge a KB file in\n"
         "\n"
         "search options:\n"
         "  --task cls|reg          task type               (default: cls)\n"
         "  --preset small|medium|large                     (default: "
         "medium)\n"
         "  --budget <n>            evaluations, or seconds with --seconds\n"
         "  --seconds               budget is wall-clock seconds (in-process "
         "only)\n"
         "  --plan <name>           joint|cond|default|alt aliases, or a\n"
         "                          canonical name like "
         "\"cond(alg)+alt(fe,hp)\"\n"
         "  --optimizer smac|random|mfes|tpe                (default: smac)\n"
         "  --explain               print the logical plan and exit\n"
         "  --cv <k>                k-fold CV utility       (default: "
         "holdout)\n"
         "  --smote                 enrich the space with the SMOTE "
         "balancer\n"
         "  --batch <n>             evaluations per pull    (default: 1)\n"
         "  --seed <n>              RNG seed                (default: 1)\n"
         "  --eval-backend in-process|process-pool          (default: "
         "in-process)\n"
         "  --workers <n>           worker processes        (default: 2)\n"
         "  --trial-hard-timeout <s> supervisor hard-kill per attempt "
         "(0=off)\n"
         "  --worker-retry-cap <n>  retries after a worker death "
         "(default: 3)\n"
         "  --worker-binary <path>  volcanoml_worker binary (in-process "
         "CLI only)\n"
         "  --precision f64|f32     numeric lane for kNN/MLP/Nystroem/"
         "projection\n"
         "                          internals       (default: f64, exact "
         "replay)\n"
         "  --simd scalar|avx2      force the kernel dispatch level "
         "(default:\n"
         "                          $VOLCANOML_SIMD, else CPUID)\n"
         "\n"
         "knowledge-base options:\n"
         "  --kb <path>             durable cross-run store (in-process "
         "runs);\n"
         "                          daemon sessions use the daemon's own "
         "KB\n"
         "  --kb-warm-starts <k>    seed the search from the k nearest "
         "past\n"
         "                          runs             (default: 0 = off)\n"
         "  --kb-record             record the finished run into the KB\n"
         "\n"
         "in-process options:\n"
         "  --checkpoint <path>     snapshot file to write\n"
         "  --checkpoint-every <n>  write the snapshot every n steps\n"
         "  --stop-after <n>        stop after n steps, write snapshot, "
         "exit\n"
         "  --resume <path>         restore a snapshot before stepping\n"
         "  --trajectory-out <path> write \"budget utility\" per step "
         "(%.17g)\n"
         "  --predict <test.csv>    score a held-out CSV after the search\n";
}

Result<CliArgs> ParseCliArgs(int argc, const char* const* argv) {
  CliArgs parsed;
  int first = 1;
  if (argc >= 2) {
    std::string command = argv[1];
    if (command == "serve") {
      parsed.command = CliCommand::kServe;
      first = 2;
    } else if (command == "submit") {
      parsed.command = CliCommand::kSubmit;
      first = 2;
    } else if (command == "status") {
      parsed.command = CliCommand::kStatus;
      first = 2;
    } else if (command == "result") {
      parsed.command = CliCommand::kResult;
      first = 2;
    } else if (command == "shutdown") {
      parsed.command = CliCommand::kShutdown;
      first = 2;
    } else if (command == "simd-info") {
      parsed.command = CliCommand::kSimdInfo;
      first = 2;
    } else if (command == "kb-status") {
      parsed.command = CliCommand::kKbStatus;
      first = 2;
    } else if (command == "kb-export") {
      parsed.command = CliCommand::kKbExport;
      first = 2;
    } else if (command == "kb-import") {
      parsed.command = CliCommand::kKbImport;
      first = 2;
    }
  }

  // Normalize "--flag=value" into "--flag value".
  std::vector<std::string> args;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }

  std::vector<std::string> positional;
  bool have_session = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      parsed.command = CliCommand::kHelp;
      return parsed;
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument(arg + ": missing operand");
      }
      return args[++i];
    };
    // Every flag handler: fetch the operand, validate, store.
    if (arg == "--task") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      if (value.value() == "cls") {
        parsed.config.task = 0;
      } else if (value.value() == "reg") {
        parsed.config.task = 1;
      } else {
        return Status::InvalidArgument("--task: expected cls or reg, got '" +
                                       value.value() + "'");
      }
    } else if (arg == "--preset") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      if (value.value() == "small") {
        parsed.config.preset = 0;
      } else if (value.value() == "medium") {
        parsed.config.preset = 1;
      } else if (value.value() == "large") {
        parsed.config.preset = 2;
      } else {
        return Status::InvalidArgument(
            "--preset: expected small, medium or large, got '" +
            value.value() + "'");
      }
    } else if (arg == "--budget") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<double> budget = ParseF64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(budget.status());
      if (!(budget.value() > 0.0) || !std::isfinite(budget.value())) {
        return Status::InvalidArgument(
            "--budget: must be positive and finite");
      }
      parsed.config.budget = budget.value();
    } else if (arg == "--seconds") {
      parsed.budget_in_seconds = true;
    } else if (arg == "--plan") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<std::string> plan = CanonicalPlanName(value.value());
      VOLCANOML_RETURN_IF_ERROR(plan.status());
      parsed.config.plan = plan.value();
    } else if (arg == "--optimizer") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<std::string> optimizer = CanonicalOptimizerName(value.value());
      VOLCANOML_RETURN_IF_ERROR(optimizer.status());
      parsed.config.optimizer = optimizer.value();
    } else if (arg == "--explain") {
      parsed.explain = true;
    } else if (arg == "--cv") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> folds = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(folds.status());
      if (folds.value() < 1) {
        return Status::InvalidArgument("--cv: must be >= 1");
      }
      parsed.config.cv_folds = folds.value();
    } else if (arg == "--smote") {
      parsed.config.include_smote = true;
    } else if (arg == "--batch") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> batch = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(batch.status());
      if (batch.value() < 1) {
        return Status::InvalidArgument("--batch: must be >= 1");
      }
      parsed.config.batch_size = batch.value();
    } else if (arg == "--seed") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> seed = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(seed.status());
      parsed.config.seed = seed.value();
    } else if (arg == "--eval-backend") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      if (value.value() == "in-process") {
        parsed.config.eval_backend = 0;
      } else if (value.value() == "process-pool") {
        parsed.config.eval_backend = 1;
      } else {
        return Status::InvalidArgument(
            "--eval-backend: expected in-process or process-pool, got '" +
            value.value() + "'");
      }
    } else if (arg == "--workers") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> workers = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(workers.status());
      if (workers.value() < 1) {
        return Status::InvalidArgument("--workers: must be >= 1");
      }
      parsed.config.worker_pool_size = workers.value();
    } else if (arg == "--trial-hard-timeout") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<double> timeout = ParseF64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(timeout.status());
      if (timeout.value() < 0.0 || !std::isfinite(timeout.value())) {
        return Status::InvalidArgument(
            "--trial-hard-timeout: must be finite and >= 0");
      }
      parsed.config.trial_hard_timeout = timeout.value();
    } else if (arg == "--worker-retry-cap") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> cap = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(cap.status());
      parsed.config.worker_retry_cap = cap.value();
    } else if (arg == "--worker-binary") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      parsed.worker_binary = value.value();
    } else if (arg == "--precision") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      if (value.value() == "f64") {
        parsed.config.precision = 0;
      } else if (value.value() == "f32") {
        parsed.config.precision = 1;
      } else {
        return Status::InvalidArgument(
            "--precision: expected f64 or f32, got '" + value.value() + "'");
      }
    } else if (arg == "--simd") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      if (value.value() != "scalar" && value.value() != "avx2") {
        return Status::InvalidArgument(
            "--simd: expected scalar or avx2, got '" + value.value() + "'");
      }
      parsed.simd = value.value();
    } else if (arg == "--checkpoint") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      parsed.checkpoint_path = value.value();
    } else if (arg == "--checkpoint-every") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> every = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(every.status());
      parsed.checkpoint_every = static_cast<size_t>(every.value());
    } else if (arg == "--stop-after") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> after = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(after.status());
      parsed.stop_after = static_cast<size_t>(after.value());
    } else if (arg == "--resume") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      parsed.resume_path = value.value();
    } else if (arg == "--trajectory-out") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      parsed.trajectory_path = value.value();
    } else if (arg == "--predict") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      parsed.predict_path = value.value();
    } else if (arg == "--socket") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      parsed.socket_path = value.value();
    } else if (arg == "--spool") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      parsed.spool_dir = value.value();
    } else if (arg == "--max-resident") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> cap = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(cap.status());
      if (cap.value() < 1) {
        return Status::InvalidArgument("--max-resident: must be >= 1");
      }
      parsed.max_resident = static_cast<size_t>(cap.value());
    } else if (arg == "--tenant") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      if (value.value().empty()) {
        return Status::InvalidArgument("--tenant: must be non-empty");
      }
      parsed.tenant = value.value();
    } else if (arg == "--credit") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> credit = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(credit.status());
      parsed.step_credit = credit.value();
    } else if (arg == "--session") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> id = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(id.status());
      if (id.value() == 0) {
        return Status::InvalidArgument("--session: ids start at 1");
      }
      parsed.session_id = id.value();
      have_session = true;
    } else if (arg == "--wait") {
      parsed.wait = true;
    } else if (arg == "--kb") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      if (value.value().empty()) {
        return Status::InvalidArgument("--kb: must be non-empty");
      }
      parsed.kb_path = value.value();
    } else if (arg == "--kb-warm-starts") {
      Result<std::string> value = next();
      VOLCANOML_RETURN_IF_ERROR(value.status());
      Result<uint64_t> k = ParseU64Flag(arg, value.value());
      VOLCANOML_RETURN_IF_ERROR(k.status());
      parsed.config.kb_warm_starts = k.value();
    } else if (arg == "--kb-record") {
      parsed.config.kb_record = true;
    } else {
      return Status::InvalidArgument("unknown option: " + arg);
    }
  }

  // Positional and per-command requirements.
  bool needs_train = parsed.command == CliCommand::kRun ||
                     parsed.command == CliCommand::kSubmit;
  if (needs_train) {
    if (positional.empty() && !(parsed.command == CliCommand::kRun &&
                                parsed.explain)) {
      return Status::InvalidArgument("missing <train.csv> operand");
    }
    if (!positional.empty()) parsed.train_path = positional[0];
    if (positional.size() > 1) {
      return Status::InvalidArgument("unexpected operand: " + positional[1]);
    }
  } else if (!positional.empty()) {
    return Status::InvalidArgument("unexpected operand: " + positional[0]);
  }
  bool needs_socket = parsed.command != CliCommand::kRun &&
                      parsed.command != CliCommand::kSimdInfo;
  if (needs_socket && parsed.socket_path.empty()) {
    return Status::InvalidArgument("--socket is required");
  }
  if (parsed.command == CliCommand::kResult && !have_session) {
    return Status::InvalidArgument("result: --session is required");
  }
  if (parsed.command == CliCommand::kRun &&
      (parsed.checkpoint_every > 0 || parsed.stop_after > 0) &&
      parsed.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every/--stop-after require --checkpoint");
  }
  if (parsed.command == CliCommand::kSubmit && parsed.budget_in_seconds) {
    return Status::InvalidArgument(
        "--seconds is in-process only (daemon sessions use deterministic "
        "budgets)");
  }
  if (parsed.command == CliCommand::kSubmit && !parsed.worker_binary.empty()) {
    return Status::InvalidArgument(
        "--worker-binary is in-process only (the daemon resolves its own "
        "worker binary; set $VOLCANOML_WORKER_BINARY in its environment)");
  }
  if (parsed.command == CliCommand::kSubmit && !parsed.kb_path.empty()) {
    return Status::InvalidArgument(
        "--kb is in-process only (the daemon owns one shared knowledge "
        "base per socket; use --kb-warm-starts/--kb-record, or kb-import "
        "to feed it)");
  }
  if (parsed.command == CliCommand::kRun &&
      (parsed.config.kb_warm_starts > 0 || parsed.config.kb_record) &&
      parsed.kb_path.empty()) {
    return Status::InvalidArgument(
        "--kb-warm-starts/--kb-record require --kb for in-process runs");
  }
  if ((parsed.command == CliCommand::kKbExport ||
       parsed.command == CliCommand::kKbImport) &&
      parsed.kb_path.empty()) {
    return Status::InvalidArgument("kb-export/kb-import: --kb is required");
  }
  return parsed;
}

}  // namespace volcanoml
