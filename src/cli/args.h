#ifndef VOLCANOML_CLI_ARGS_H_
#define VOLCANOML_CLI_ARGS_H_

#include <cstdint>
#include <string>

#include "ipc/messages.h"
#include "util/status.h"

namespace volcanoml {

/// What the CLI was asked to do.
enum class CliCommand {
  kRun,       ///< Legacy in-process search: volcanoml_cli <train.csv> [...]
  kServe,     ///< Start the session daemon on --socket.
  kSubmit,    ///< Submit a session to a running daemon.
  kStatus,    ///< Show one session (--session) or list all.
  kResult,    ///< Fetch a finished session's trajectory + incumbent.
  kShutdown,  ///< Ask the daemon to exit.
  kSimdInfo,  ///< Print the resolved SIMD dispatch level and exit.
  kKbStatus,  ///< Summarize the daemon's knowledge-base artifacts.
  kKbExport,  ///< Write the daemon's knowledge base to --kb <path>.
  kKbImport,  ///< Merge a --kb <path> file into the daemon's knowledge base.
  kHelp,      ///< --help anywhere: print usage, exit 0.
};

/// Fully-validated CLI invocation. ParseCliArgs owns ALL argument
/// validation — numeric flags are range-checked here (budget > 0,
/// cv/batch >= 1, ...), so bad input surfaces as an InvalidArgument with
/// a usage hint and a nonzero exit instead of tripping a
/// VOLCANOML_CHECK abort deep in the engine.
struct CliArgs {
  CliCommand command = CliCommand::kRun;

  /// Search configuration (kRun and kSubmit). Plan/optimizer aliases are
  /// resolved to their canonical names at parse time, so this is exactly
  /// what travels over the wire — the single source both the in-process
  /// and the daemon path build their options from.
  SessionConfig config;
  /// kRun only: budget is wall-clock seconds (daemon sessions always use
  /// deterministic evaluation-unit budgets).
  bool budget_in_seconds = false;

  std::string train_path;
  bool explain = false;
  /// kRun only: explicit volcanoml_worker path for the process-pool
  /// backend (empty = automatic resolution, see src/worker/).
  std::string worker_binary;
  /// --simd override for kernel dispatch: "" (leave $VOLCANOML_SIMD /
  /// CPUID resolution alone), "scalar", or "avx2" (see data/simd.h).
  std::string simd;

  // kRun extras (checkpoint/resume loop).
  std::string predict_path;
  std::string checkpoint_path;
  std::string resume_path;
  std::string trajectory_path;
  size_t checkpoint_every = 0;
  size_t stop_after = 0;

  /// Knowledge-base file. kRun: the durable cross-run store to warm-start
  /// from (--kb-warm-starts) and/or record into (--kb-record). kKbExport/
  /// kKbImport: the file to write/read. Submit sessions never carry a
  /// path — the daemon owns one shared KB per socket namespace.
  std::string kb_path;

  // Daemon-facing flags.
  std::string socket_path;
  std::string spool_dir = ".";
  size_t max_resident = 8;
  std::string tenant = "default";
  uint64_t step_credit = kUnlimitedCredit;
  uint64_t session_id = 0;  ///< Session ids start at 1; 0 = not given.
  bool wait = false;        ///< kSubmit: block until the session is done.
};

/// Parses argv into a validated CliArgs. Accepts both "--flag value" and
/// "--flag=value". Any error (unknown flag, missing operand, value out
/// of range, missing required flag for the subcommand) is returned as
/// InvalidArgument; nothing here prints or exits.
[[nodiscard]] Result<CliArgs> ParseCliArgs(int argc, const char* const* argv);

/// The full usage text (for --help and error messages).
[[nodiscard]] std::string CliUsage(const std::string& argv0);

}  // namespace volcanoml

#endif  // VOLCANOML_CLI_ARGS_H_
