#ifndef VOLCANOML_CS_CONFIGURATION_SPACE_H_
#define VOLCANOML_CS_CONFIGURATION_SPACE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cs/configuration.h"
#include "util/rng.h"

namespace volcanoml {

/// Kind of hyper-parameter domain.
enum class ParamType { kContinuous, kInteger, kCategorical };

/// One hyper-parameter: a named domain plus an optional activation
/// condition (active only when a parent categorical takes given values).
struct Parameter {
  std::string name;
  ParamType type = ParamType::kContinuous;

  // Continuous / integer domain.
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;

  // Categorical domain.
  std::vector<std::string> choices;

  double default_value = 0.0;  ///< Raw value (choice index if categorical).

  // Activation condition: active iff parameter `parent` (categorical, and
  // itself active) takes a choice index in `parent_choices`. Empty parent
  // means unconditionally active.
  std::string parent;
  std::set<size_t> parent_choices;
};

/// A mixed, conditional hyper-parameter search space, in the spirit of
/// SMAC / ConfigSpace. Supports uniform sampling, default configurations,
/// unit-cube encoding for surrogate models, and local neighborhoods for
/// SMAC-style local search.
class ConfigurationSpace {
 public:
  ConfigurationSpace() = default;

  /// Adds a real-valued parameter on [lo, hi] (log-uniform if `log_scale`;
  /// then lo must be > 0).
  void AddContinuous(const std::string& name, double lo, double hi,
                     double default_value, bool log_scale = false);

  /// Adds an integer parameter on [lo, hi] inclusive.
  void AddInteger(const std::string& name, int lo, int hi, int default_value);

  /// Adds a categorical parameter; `default_index` selects the default.
  void AddCategorical(const std::string& name,
                      std::vector<std::string> choices,
                      size_t default_index = 0);

  /// Restricts `child` to be active only while categorical `parent` takes
  /// one of `parent_choice_indices`. The parent must already exist.
  void AddCondition(const std::string& child, const std::string& parent,
                    std::set<size_t> parent_choice_indices);

  /// Total number of hyper-parameters (the scalability axis of Table 1).
  [[nodiscard]] size_t NumParameters() const { return params_.size(); }
  [[nodiscard]] bool empty() const { return params_.empty(); }

  [[nodiscard]] const Parameter& param(size_t i) const { return params_[i]; }
  [[nodiscard]] bool Contains(const std::string& name) const {
    return index_.count(name) > 0;
  }
  [[nodiscard]] size_t IndexOf(const std::string& name) const;

  /// Configuration with every parameter at its default.
  [[nodiscard]] Configuration Default() const;

  /// Uniform random sample (conditionals sampled regardless of activity;
  /// inactive values are simply unused).
  [[nodiscard]] Configuration Sample(Rng* rng) const;

  /// Whether parameter i is active under `config` (follows the parent
  /// chain).
  [[nodiscard]] bool IsActive(const Configuration& config, size_t i) const;

  /// Raw value accessors by name.
  [[nodiscard]] double GetValue(const Configuration& config, const std::string& name) const;
  [[nodiscard]] int GetInt(const Configuration& config, const std::string& name) const;
  [[nodiscard]] size_t GetChoice(const Configuration& config, const std::string& name) const;
  [[nodiscard]] const std::string& GetChoiceName(const Configuration& config,
                                   const std::string& name) const;
  void SetValue(Configuration* config, const std::string& name,
                double value) const;

  /// Encodes a configuration for surrogate models: one dimension per
  /// parameter; continuous/integer scaled to [0,1] (log scale honored),
  /// categorical encoded as choice index; inactive dimensions -> -1.
  [[nodiscard]] std::vector<double> Encode(const Configuration& config) const;

  /// A random neighbor: perturbs one active parameter (Gaussian step of
  /// ~20% range for numeric, resample for categorical).
  [[nodiscard]] Configuration Neighbor(const Configuration& config, Rng* rng) const;

  /// Merges `other` into this space with all parameter (and parent) names
  /// prefixed by `prefix`. Used to assemble the joint end-to-end space
  /// from per-stage spaces.
  void Merge(const ConfigurationSpace& other, const std::string& prefix);

  /// Like Merge, but additionally conditions every unconditional parameter
  /// of `other` on `parent == parent_choice` (e.g. hyper-parameters of one
  /// algorithm active only while "algorithm" selects it). `parent` must be
  /// an existing categorical in this space.
  void MergeConditioned(const ConfigurationSpace& other,
                        const std::string& prefix, const std::string& parent,
                        size_t parent_choice);

  /// Converts a configuration to / from the cross-space Assignment form.
  [[nodiscard]] Assignment ToAssignment(const Configuration& config) const;
  [[nodiscard]] Configuration FromAssignment(const Assignment& assignment) const;

  /// Human-readable "name=value" rendering of the active parameters.
  [[nodiscard]] std::string ToString(const Configuration& config) const;

  /// All parameter names, in insertion order.
  [[nodiscard]] std::vector<std::string> ParameterNames() const;

 private:
  double SampleParam(const Parameter& p, Rng* rng) const;

  std::vector<Parameter> params_;
  std::map<std::string, size_t> index_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_CS_CONFIGURATION_SPACE_H_
