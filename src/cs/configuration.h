#ifndef VOLCANOML_CS_CONFIGURATION_H_
#define VOLCANOML_CS_CONFIGURATION_H_

#include <map>
#include <string>
#include <vector>

namespace volcanoml {

/// A point in a ConfigurationSpace: one raw value per parameter, aligned
/// with the space's parameter order. Continuous/integer parameters store
/// their value directly; categorical parameters store the choice index.
/// Inactive conditional parameters keep their default value (they are
/// ignored by evaluation and marked inactive in the surrogate encoding).
struct Configuration {
  std::vector<double> values;

  bool operator==(const Configuration& other) const {
    return values == other.values;
  }
};

/// A name -> raw-value map spanning any number of configuration spaces.
/// This is the lingua franca between building blocks: each block optimizes
/// its own space but contributes its variables to a joint Assignment that
/// the pipeline evaluator consumes (the paper's `{x_g = c_g; x_-g = z}`
/// substitution).
using Assignment = std::map<std::string, double>;

}  // namespace volcanoml

#endif  // VOLCANOML_CS_CONFIGURATION_H_
