#include "cs/configuration_space.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace volcanoml {

namespace {
constexpr double kInactiveEncoding = -1.0;
}  // namespace

void ConfigurationSpace::AddContinuous(const std::string& name, double lo,
                                       double hi, double default_value,
                                       bool log_scale) {
  VOLCANOML_CHECK_MSG(!Contains(name), name.c_str());
  VOLCANOML_CHECK(lo < hi);
  VOLCANOML_CHECK(default_value >= lo && default_value <= hi);
  if (log_scale) VOLCANOML_CHECK(lo > 0.0);
  Parameter p;
  p.name = name;
  p.type = ParamType::kContinuous;
  p.lo = lo;
  p.hi = hi;
  p.log_scale = log_scale;
  p.default_value = default_value;
  index_[name] = params_.size();
  params_.push_back(std::move(p));
}

void ConfigurationSpace::AddInteger(const std::string& name, int lo, int hi,
                                    int default_value) {
  VOLCANOML_CHECK_MSG(!Contains(name), name.c_str());
  VOLCANOML_CHECK(lo <= hi);
  VOLCANOML_CHECK(default_value >= lo && default_value <= hi);
  Parameter p;
  p.name = name;
  p.type = ParamType::kInteger;
  p.lo = lo;
  p.hi = hi;
  p.default_value = default_value;
  index_[name] = params_.size();
  params_.push_back(std::move(p));
}

void ConfigurationSpace::AddCategorical(const std::string& name,
                                        std::vector<std::string> choices,
                                        size_t default_index) {
  VOLCANOML_CHECK_MSG(!Contains(name), name.c_str());
  VOLCANOML_CHECK(!choices.empty());
  VOLCANOML_CHECK(default_index < choices.size());
  Parameter p;
  p.name = name;
  p.type = ParamType::kCategorical;
  p.lo = 0.0;
  p.hi = static_cast<double>(choices.size() - 1);
  p.choices = std::move(choices);
  p.default_value = static_cast<double>(default_index);
  index_[name] = params_.size();
  params_.push_back(std::move(p));
}

void ConfigurationSpace::AddCondition(const std::string& child,
                                      const std::string& parent,
                                      std::set<size_t> parent_choice_indices) {
  VOLCANOML_CHECK_MSG(Contains(child), child.c_str());
  VOLCANOML_CHECK_MSG(Contains(parent), parent.c_str());
  const Parameter& parent_param = params_[index_.at(parent)];
  VOLCANOML_CHECK_MSG(parent_param.type == ParamType::kCategorical,
                      "condition parent must be categorical");
  for (size_t choice : parent_choice_indices) {
    VOLCANOML_CHECK(choice < parent_param.choices.size());
  }
  Parameter& child_param = params_[index_.at(child)];
  child_param.parent = parent;
  child_param.parent_choices = std::move(parent_choice_indices);
}

size_t ConfigurationSpace::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  VOLCANOML_CHECK_MSG(it != index_.end(), name.c_str());
  return it->second;
}

Configuration ConfigurationSpace::Default() const {
  Configuration c;
  c.values.reserve(params_.size());
  for (const Parameter& p : params_) c.values.push_back(p.default_value);
  return c;
}

double ConfigurationSpace::SampleParam(const Parameter& p, Rng* rng) const {
  switch (p.type) {
    case ParamType::kContinuous:
      if (p.log_scale) {
        return std::exp(rng->Uniform(std::log(p.lo), std::log(p.hi)));
      }
      return rng->Uniform(p.lo, p.hi);
    case ParamType::kInteger:
      return static_cast<double>(
          rng->UniformInt(static_cast<int>(p.lo), static_cast<int>(p.hi)));
    case ParamType::kCategorical:
      return static_cast<double>(rng->Index(p.choices.size()));
  }
  return p.default_value;
}

Configuration ConfigurationSpace::Sample(Rng* rng) const {
  Configuration c;
  c.values.reserve(params_.size());
  for (const Parameter& p : params_) c.values.push_back(SampleParam(p, rng));
  return c;
}

bool ConfigurationSpace::IsActive(const Configuration& config,
                                  size_t i) const {
  VOLCANOML_CHECK(i < params_.size());
  VOLCANOML_CHECK(config.values.size() == params_.size());
  const Parameter* p = &params_[i];
  // Walk up the parent chain; every link must be satisfied.
  int guard = 0;
  while (!p->parent.empty()) {
    VOLCANOML_CHECK_MSG(++guard < 64, "condition cycle");
    size_t parent_idx = IndexOf(p->parent);
    size_t choice = static_cast<size_t>(config.values[parent_idx]);
    if (p->parent_choices.find(choice) == p->parent_choices.end()) {
      return false;
    }
    p = &params_[parent_idx];
  }
  return true;
}

double ConfigurationSpace::GetValue(const Configuration& config,
                                    const std::string& name) const {
  return config.values[IndexOf(name)];
}

int ConfigurationSpace::GetInt(const Configuration& config,
                               const std::string& name) const {
  return static_cast<int>(std::llround(GetValue(config, name)));
}

size_t ConfigurationSpace::GetChoice(const Configuration& config,
                                     const std::string& name) const {
  const Parameter& p = params_[IndexOf(name)];
  VOLCANOML_CHECK(p.type == ParamType::kCategorical);
  size_t choice = static_cast<size_t>(std::llround(GetValue(config, name)));
  VOLCANOML_CHECK(choice < p.choices.size());
  return choice;
}

const std::string& ConfigurationSpace::GetChoiceName(
    const Configuration& config, const std::string& name) const {
  const Parameter& p = params_[IndexOf(name)];
  return p.choices[GetChoice(config, name)];
}

void ConfigurationSpace::SetValue(Configuration* config,
                                  const std::string& name,
                                  double value) const {
  size_t i = IndexOf(name);
  const Parameter& p = params_[i];
  if (p.type != ParamType::kCategorical) {
    VOLCANOML_CHECK_MSG(value >= p.lo - 1e-9 && value <= p.hi + 1e-9,
                        name.c_str());
  } else {
    VOLCANOML_CHECK(value >= 0.0 &&
                    value < static_cast<double>(p.choices.size()));
  }
  config->values[i] = value;
}

std::vector<double> ConfigurationSpace::Encode(
    const Configuration& config) const {
  VOLCANOML_CHECK(config.values.size() == params_.size());
  std::vector<double> out(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!IsActive(config, i)) {
      out[i] = kInactiveEncoding;
      continue;
    }
    const Parameter& p = params_[i];
    double v = config.values[i];
    switch (p.type) {
      case ParamType::kContinuous:
        if (p.log_scale) {
          out[i] = (std::log(v) - std::log(p.lo)) /
                   (std::log(p.hi) - std::log(p.lo));
        } else {
          out[i] = (v - p.lo) / (p.hi - p.lo);
        }
        break;
      case ParamType::kInteger:
        out[i] = (p.hi > p.lo) ? (v - p.lo) / (p.hi - p.lo) : 0.5;
        break;
      case ParamType::kCategorical:
        // Kept as the raw index: tree surrogates split on thresholds, so
        // index encoding preserves choice identity.
        out[i] = v;
        break;
    }
  }
  return out;
}

Configuration ConfigurationSpace::Neighbor(const Configuration& config,
                                           Rng* rng) const {
  VOLCANOML_CHECK(!params_.empty());
  Configuration out = config;
  // Collect active parameters; fall back to any parameter if none (cannot
  // happen with unconditional roots, but keep the guard).
  std::vector<size_t> active;
  for (size_t i = 0; i < params_.size(); ++i) {
    if (IsActive(config, i)) active.push_back(i);
  }
  if (active.empty()) {
    for (size_t i = 0; i < params_.size(); ++i) active.push_back(i);
  }
  size_t i = active[rng->Index(active.size())];
  const Parameter& p = params_[i];
  switch (p.type) {
    case ParamType::kContinuous: {
      if (p.log_scale) {
        double log_lo = std::log(p.lo), log_hi = std::log(p.hi);
        double step = 0.2 * (log_hi - log_lo);
        double v = std::log(config.values[i]) + rng->Gaussian(0.0, step);
        out.values[i] = std::exp(std::clamp(v, log_lo, log_hi));
      } else {
        double step = 0.2 * (p.hi - p.lo);
        out.values[i] =
            std::clamp(config.values[i] + rng->Gaussian(0.0, step), p.lo,
                       p.hi);
      }
      break;
    }
    case ParamType::kInteger: {
      int range = static_cast<int>(p.hi - p.lo);
      int max_step = std::max(1, range / 10);
      int delta = rng->UniformInt(1, max_step) * (rng->Bernoulli(0.5) ? 1 : -1);
      double v = config.values[i] + delta;
      out.values[i] = std::clamp(v, p.lo, p.hi);
      break;
    }
    case ParamType::kCategorical: {
      if (p.choices.size() > 1) {
        size_t current = static_cast<size_t>(config.values[i]);
        size_t pick = rng->Index(p.choices.size() - 1);
        if (pick >= current) ++pick;
        out.values[i] = static_cast<double>(pick);
      }
      break;
    }
  }
  return out;
}

void ConfigurationSpace::Merge(const ConfigurationSpace& other,
                               const std::string& prefix) {
  for (const Parameter& p : other.params_) {
    Parameter q = p;
    q.name = prefix + p.name;
    if (!p.parent.empty()) q.parent = prefix + p.parent;
    VOLCANOML_CHECK_MSG(!Contains(q.name), q.name.c_str());
    index_[q.name] = params_.size();
    params_.push_back(std::move(q));
  }
}

void ConfigurationSpace::MergeConditioned(const ConfigurationSpace& other,
                                          const std::string& prefix,
                                          const std::string& parent,
                                          size_t parent_choice) {
  VOLCANOML_CHECK_MSG(Contains(parent), parent.c_str());
  for (const Parameter& p : other.params_) {
    Parameter q = p;
    q.name = prefix + p.name;
    if (p.parent.empty()) {
      q.parent = parent;
      q.parent_choices = {parent_choice};
    } else {
      q.parent = prefix + p.parent;
    }
    VOLCANOML_CHECK_MSG(!Contains(q.name), q.name.c_str());
    index_[q.name] = params_.size();
    params_.push_back(std::move(q));
  }
}

Assignment ConfigurationSpace::ToAssignment(const Configuration& config) const {
  VOLCANOML_CHECK(config.values.size() == params_.size());
  Assignment out;
  for (size_t i = 0; i < params_.size(); ++i) {
    out[params_[i].name] = config.values[i];
  }
  return out;
}

Configuration ConfigurationSpace::FromAssignment(
    const Assignment& assignment) const {
  Configuration c = Default();
  for (size_t i = 0; i < params_.size(); ++i) {
    auto it = assignment.find(params_[i].name);
    if (it != assignment.end()) c.values[i] = it->second;
  }
  return c;
}

std::string ConfigurationSpace::ToString(const Configuration& config) const {
  std::ostringstream out;
  bool first = true;
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!IsActive(config, i)) continue;
    if (!first) out << ", ";
    first = false;
    const Parameter& p = params_[i];
    out << p.name << '=';
    if (p.type == ParamType::kCategorical) {
      out << p.choices[static_cast<size_t>(config.values[i])];
    } else {
      out << config.values[i];
    }
  }
  return out.str();
}

std::vector<std::string> ConfigurationSpace::ParameterNames() const {
  std::vector<std::string> names;
  names.reserve(params_.size());
  for (const Parameter& p : params_) names.push_back(p.name);
  return names;
}

}  // namespace volcanoml
