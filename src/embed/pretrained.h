#ifndef VOLCANOML_EMBED_PRETRAINED_H_
#define VOLCANOML_EMBED_PRETRAINED_H_

#include <cstddef>

#include "fe/operator.h"

namespace volcanoml {

/// Quality tier of a simulated pre-trained model. The paper's embedding-
/// selection experiment (Section 5.3) chooses between two TensorFlow-Hub
/// models whose downstream usefulness differs and is unknown a priori;
/// these two encoders reproduce exactly that situation (see DESIGN.md).
enum class EncoderQuality {
  /// "In-domain" model: per-image gain/offset normalization followed by
  /// projection onto a smooth 2-D sinusoid bank — the nuisance factors of
  /// the synthetic image generator are removed, leaving class structure.
  kStrong,
  /// "Off-domain" model: a fixed random projection with tanh saturation
  /// on raw pixels — gain/offset noise passes straight through.
  kWeak,
};

/// A frozen image encoder standing in for a TF-Hub pre-trained model.
/// Its weights are a deterministic function of the quality tier and the
/// embedding dimension (as if downloaded), not of the training data; Fit
/// only validates the input shape.
class SimulatedPretrainedEncoder : public FeOperator {
 public:
  SimulatedPretrainedEncoder(EncoderQuality quality, size_t embedding_dim);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;

  size_t embedding_dim() const { return embedding_dim_; }

 private:
  EncoderQuality quality_;
  size_t embedding_dim_;
  size_t image_side_ = 0;
  Matrix basis_;       ///< (embedding_dim x pixels) projection bank.
  Matrix background_;  ///< (3 x pixels) smooth background basis {1, r, c}.
  Matrix bg_gram_inv_; ///< (3 x 3) inverse Gram of the background basis.
};

}  // namespace volcanoml

#endif  // VOLCANOML_EMBED_PRETRAINED_H_
