#include "embed/pretrained.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace volcanoml {

SimulatedPretrainedEncoder::SimulatedPretrainedEncoder(EncoderQuality quality,
                                                       size_t embedding_dim)
    : quality_(quality), embedding_dim_(embedding_dim) {
  VOLCANOML_CHECK(embedding_dim_ >= 2);
}

Status SimulatedPretrainedEncoder::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  const size_t pixels = train.NumFeatures();
  image_side_ = static_cast<size_t>(std::llround(std::sqrt(
      static_cast<double>(pixels))));
  if (image_side_ * image_side_ != pixels) {
    return Status::InvalidArgument(
        "pretrained encoders require square images (got " +
        std::to_string(pixels) + " pixels)");
  }

  // Smooth background basis {1, r, c} and its inverse Gram, used by the
  // strong encoder to regress out per-image illumination before encoding.
  background_ = Matrix(3, pixels);
  for (size_t p = 0; p < pixels; ++p) {
    double r = static_cast<double>(p / image_side_) /
               static_cast<double>(image_side_);
    double c = static_cast<double>(p % image_side_) /
               static_cast<double>(image_side_);
    background_(0, p) = 1.0;
    background_(1, p) = r;
    background_(2, p) = c;
  }
  Matrix gram = background_.Multiply(background_.Transpose());
  // Closed-form 3x3 inverse via the adjugate.
  double a = gram(0, 0), b = gram(0, 1), c3 = gram(0, 2);
  double d = gram(1, 0), e = gram(1, 1), f = gram(1, 2);
  double g = gram(2, 0), h = gram(2, 1), i3 = gram(2, 2);
  double det = a * (e * i3 - f * h) - b * (d * i3 - f * g) +
               c3 * (d * h - e * g);
  VOLCANOML_CHECK(std::abs(det) > 1e-12);
  bg_gram_inv_ = Matrix(3, 3);
  bg_gram_inv_(0, 0) = (e * i3 - f * h) / det;
  bg_gram_inv_(0, 1) = (c3 * h - b * i3) / det;
  bg_gram_inv_(0, 2) = (b * f - c3 * e) / det;
  bg_gram_inv_(1, 0) = (f * g - d * i3) / det;
  bg_gram_inv_(1, 1) = (a * i3 - c3 * g) / det;
  bg_gram_inv_(1, 2) = (c3 * d - a * f) / det;
  bg_gram_inv_(2, 0) = (d * h - e * g) / det;
  bg_gram_inv_(2, 1) = (b * g - a * h) / det;
  bg_gram_inv_(2, 2) = (a * e - b * d) / det;

  basis_ = Matrix(embedding_dim_, pixels);
  if (quality_ == EncoderQuality::kStrong) {
    // Smooth sinusoid bank over the image grid; frequencies sweep with
    // the embedding index. Weights depend only on (quality, dim): the
    // model is "pre-trained", never fitted to this dataset.
    for (size_t e = 0; e < embedding_dim_; ++e) {
      double fr = 0.2 + 0.15 * static_cast<double>(e % 7);
      double fc = 0.2 + 0.15 * static_cast<double>((e / 7) % 7);
      bool phase = (e % 2) == 0;
      for (size_t p = 0; p < pixels; ++p) {
        double r = static_cast<double>(p / image_side_);
        double c = static_cast<double>(p % image_side_);
        basis_(e, p) = phase ? std::sin(fr * r) * std::cos(fc * c)
                             : std::cos(fr * r) * std::sin(fc * c);
      }
    }
  } else {
    // Fixed random projection; the seed is a constant so the "model" is
    // identical across runs and datasets.
    Rng rng(0xfeedbeef);
    double scale = 1.0 / std::sqrt(static_cast<double>(pixels));
    for (size_t e = 0; e < embedding_dim_; ++e) {
      for (size_t p = 0; p < pixels; ++p) {
        basis_(e, p) = rng.Gaussian(0.0, scale);
      }
    }
  }
  return Status::Ok();
}

Matrix SimulatedPretrainedEncoder::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(basis_.rows() > 0);
  VOLCANOML_CHECK(x.cols() == basis_.cols());
  const size_t pixels = x.cols();
  Matrix out(x.rows(), embedding_dim_);
  std::vector<double> image(pixels);
  for (size_t i = 0; i < x.rows(); ++i) {
    if (quality_ == EncoderQuality::kStrong) {
      // Regress out the smooth {1, r, c} illumination background, then
      // scale to unit energy: removes the offset/ramp/gain nuisances.
      double proj[3];
      for (size_t k = 0; k < 3; ++k) {
        double acc = 0.0;
        for (size_t p = 0; p < pixels; ++p) acc += background_(k, p) * x(i, p);
        proj[k] = acc;
      }
      double coef[3];
      for (size_t k = 0; k < 3; ++k) {
        coef[k] = bg_gram_inv_(k, 0) * proj[0] + bg_gram_inv_(k, 1) * proj[1] +
                  bg_gram_inv_(k, 2) * proj[2];
      }
      double energy = 0.0;
      for (size_t p = 0; p < pixels; ++p) {
        image[p] = x(i, p) - coef[0] * background_(0, p) -
                   coef[1] * background_(1, p) - coef[2] * background_(2, p);
        energy += image[p] * image[p];
      }
      double sd = std::sqrt(energy / static_cast<double>(pixels));
      if (sd <= 1e-12) sd = 1.0;
      for (size_t p = 0; p < pixels; ++p) image[p] /= sd;
    } else {
      for (size_t p = 0; p < pixels; ++p) image[p] = x(i, p);
    }
    for (size_t e = 0; e < embedding_dim_; ++e) {
      double acc = 0.0;
      for (size_t p = 0; p < pixels; ++p) acc += basis_(e, p) * image[p];
      // Strong: magnitude of the matched-filter response — invariant to
      // the gain sign/scale nuisance (like pooled CNN feature energies).
      out(i, e) = quality_ == EncoderQuality::kStrong
                      ? std::abs(acc) / std::sqrt(static_cast<double>(pixels))
                      : std::tanh(acc);
    }
  }
  return out;
}

}  // namespace volcanoml
