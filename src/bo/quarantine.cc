#include "bo/quarantine.h"

#include <cstring>

namespace volcanoml {

std::string ConfigurationBitKey(const Configuration& config) {
  std::string key;
  key.reserve(config.values.size() * sizeof(double));
  for (double v : config.values) {
    char bits[sizeof(double)];
    std::memcpy(bits, &v, sizeof(bits));
    key.append(bits, sizeof(bits));
  }
  return key;
}

void QuarantineSet::Add(const Configuration& config) {
  keys_.insert(ConfigurationBitKey(config));
}

bool QuarantineSet::Contains(const Configuration& config) const {
  if (keys_.empty()) return false;
  return keys_.count(ConfigurationBitKey(config)) > 0;
}

}  // namespace volcanoml
