#include "bo/quarantine.h"

#include <cstring>
#include <string>

#include "util/sorted_view.h"

namespace volcanoml {

std::string ConfigurationBitKey(const Configuration& config) {
  std::string key;
  key.reserve(config.values.size() * sizeof(double));
  for (double v : config.values) {
    char bits[sizeof(double)];
    std::memcpy(bits, &v, sizeof(bits));
    key.append(bits, sizeof(bits));
  }
  return key;
}

void QuarantineSet::Add(const Configuration& config) {
  keys_.insert(ConfigurationBitKey(config));
}

bool QuarantineSet::Contains(const Configuration& config) const {
  if (keys_.empty()) return false;
  return keys_.count(ConfigurationBitKey(config)) > 0;
}

void QuarantineSet::SaveState(SnapshotWriter* w) const {
  const auto sorted = SortedKeys(keys_);
  w->U64("quarantine_keys", sorted.size());
  for (const std::string& key : sorted) w->Str("quarantine_keys", key);
}

void QuarantineSet::LoadState(SnapshotReader* r) {
  keys_.clear();
  uint64_t n = r->U64("quarantine_keys");
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    keys_.insert(r->Str("quarantine_keys"));
  }
}

}  // namespace volcanoml
