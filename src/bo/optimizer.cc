#include "bo/optimizer.h"

#include <algorithm>
#include <utility>

namespace volcanoml {

void BlackBoxOptimizer::Observe(const Configuration& config, double utility) {
  history_configs_.push_back(config);
  history_utilities_.push_back(utility);
  if (utility > best_utility_) {
    best_utility_ = utility;
    best_config_ = config;
  }
}

void BlackBoxOptimizer::DrainInitialQueue(size_t n,
                                          std::vector<Configuration>* batch) {
  while (batch->size() < n && !initial_queue_.empty()) {
    Configuration seed = initial_queue_.front();
    initial_queue_.erase(initial_queue_.begin());
    if (quarantine_.Contains(seed)) continue;
    batch->push_back(std::move(seed));
  }
}

bool BlackBoxOptimizer::PopInitial(Configuration* out) {
  while (!initial_queue_.empty()) {
    Configuration seed = initial_queue_.front();
    initial_queue_.erase(initial_queue_.begin());
    if (quarantine_.Contains(seed)) continue;
    *out = std::move(seed);
    return true;
  }
  return false;
}

Configuration BlackBoxOptimizer::SampleAvoidingQuarantine(Rng* rng) const {
  Configuration config = space_->Sample(rng);
  // Bounded so a tiny space with every point quarantined cannot livelock;
  // after the attempts run out the quarantined sample is proposed anyway
  // (the evaluator's memo cache answers it for free).
  constexpr int kMaxResamples = 16;
  for (int attempt = 0;
       attempt < kMaxResamples && quarantine_.Contains(config); ++attempt) {
    config = space_->Sample(rng);
  }
  return config;
}

std::vector<Configuration> BlackBoxOptimizer::SuggestBatch(size_t n) {
  VOLCANOML_CHECK(n >= 1);
  std::vector<Configuration> batch;
  batch.reserve(n);
  batch.push_back(Suggest());
  if (n == 1) return batch;

  // Constant-liar fantasization: each already-proposed configuration is
  // observed at the worst utility seen so far (pessimistic, so the
  // incumbent never moves), the next proposal is drawn against that
  // fantasy history, and the fantasies are retracted afterwards.
  const size_t real_observations = history_utilities_.size();
  const Configuration saved_best_config = best_config_;
  const double saved_best_utility = best_utility_;
  const double lie =
      history_utilities_.empty()
          ? 0.0
          : *std::min_element(history_utilities_.begin(),
                              history_utilities_.end());
  while (batch.size() < n) {
    Observe(batch.back(), lie);
    batch.push_back(Suggest());
  }
  history_configs_.resize(real_observations);
  history_utilities_.resize(real_observations);
  best_config_ = saved_best_config;
  best_utility_ = saved_best_utility;
  return batch;
}

Configuration RandomSearchOptimizer::Suggest() {
  Configuration seed;
  if (PopInitial(&seed)) return seed;
  return SampleAvoidingQuarantine(&rng_);
}

void BlackBoxOptimizer::SaveState(SnapshotWriter* w) const {
  w->Begin("optimizer");
  w->U64("history", history_configs_.size());
  for (size_t i = 0; i < history_configs_.size(); ++i) {
    SaveConfiguration(w, "history_config", history_configs_[i]);
    w->F64("history_utility", history_utilities_[i]);
  }
  SaveConfiguration(w, "best_config", best_config_);
  w->F64("best_utility", best_utility_);
  w->U64("initial_queue", initial_queue_.size());
  for (const Configuration& config : initial_queue_) {
    SaveConfiguration(w, "initial_config", config);
  }
  quarantine_.SaveState(w);
  w->End("optimizer");
}

void BlackBoxOptimizer::LoadState(SnapshotReader* r) {
  r->Begin("optimizer");
  uint64_t n = r->U64("history");
  history_configs_.clear();
  history_utilities_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    history_configs_.push_back(LoadConfiguration(r, "history_config"));
    history_utilities_.push_back(r->F64("history_utility"));
  }
  best_config_ = LoadConfiguration(r, "best_config");
  best_utility_ = r->F64("best_utility");
  uint64_t m = r->U64("initial_queue");
  initial_queue_.clear();
  for (uint64_t i = 0; i < m && r->ok(); ++i) {
    initial_queue_.push_back(LoadConfiguration(r, "initial_config"));
  }
  quarantine_.LoadState(r);
  r->End("optimizer");
}

void RandomSearchOptimizer::SaveState(SnapshotWriter* w) const {
  BlackBoxOptimizer::SaveState(w);
  w->Str("rng", rng_.Serialize());
}

void RandomSearchOptimizer::LoadState(SnapshotReader* r) {
  BlackBoxOptimizer::LoadState(r);
  if (!rng_.Deserialize(r->Str("rng"))) {
    r->Fail("random-search optimizer: malformed rng state");
  }
}

}  // namespace volcanoml
