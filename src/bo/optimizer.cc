#include "bo/optimizer.h"

namespace volcanoml {

void BlackBoxOptimizer::Observe(const Configuration& config, double utility) {
  history_configs_.push_back(config);
  history_utilities_.push_back(utility);
  if (utility > best_utility_) {
    best_utility_ = utility;
    best_config_ = config;
  }
}

Configuration RandomSearchOptimizer::Suggest() {
  if (!initial_queue_.empty()) {
    Configuration c = initial_queue_.front();
    initial_queue_.erase(initial_queue_.begin());
    return c;
  }
  return space_->Sample(&rng_);
}

}  // namespace volcanoml
