#include "bo/acquisition.h"

#include <cmath>

namespace volcanoml {

namespace {
constexpr double kSqrt2 = 1.41421356237309514547;
constexpr double kInvSqrt2Pi = 0.39894228040143270286;
}  // namespace

double NormalCdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

double NormalPdf(double z) { return kInvSqrt2Pi * std::exp(-0.5 * z * z); }

double ExpectedImprovement(double mean, double variance, double best) {
  double sigma = std::sqrt(variance);
  if (sigma <= 1e-12) {
    return mean > best ? mean - best : 0.0;
  }
  double z = (mean - best) / sigma;
  return (mean - best) * NormalCdf(z) + sigma * NormalPdf(z);
}

}  // namespace volcanoml
