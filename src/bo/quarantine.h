#ifndef VOLCANOML_BO_QUARANTINE_H_
#define VOLCANOML_BO_QUARANTINE_H_

#include <string>
#include <unordered_set>

#include "core/snapshot.h"
#include "cs/configuration.h"

namespace volcanoml {

/// Serializes a configuration's exact value bit patterns into a map key.
/// Two configurations alias only if they are bitwise identical — the same
/// identity the evaluation memo cache uses. Shared by QuarantineSet and
/// the per-configuration retry accounting in JointBlock.
[[nodiscard]] std::string ConfigurationBitKey(const Configuration& config);

/// Set of configurations barred from future proposals. The trial-guard
/// layer quarantines a configuration once it exceeds its hard-failure
/// retry cap (repeated timeouts / injected faults), and every optimizer
/// filters its suggestions against this set so the search stops paying
/// for known-pathological points.
///
/// Keys are the exact value bit patterns, so two configurations alias
/// only if they are bitwise identical — the same identity the evaluation
/// memo cache uses.
class QuarantineSet {
 public:
  void Add(const Configuration& config);

  /// True if `config` was quarantined. O(1); returns false without
  /// hashing when the set is empty, so clean runs pay nothing.
  [[nodiscard]] bool Contains(const Configuration& config) const;

  [[nodiscard]] size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }

  /// Snapshot support: keys are written in sorted order so identical sets
  /// serialize to identical bytes regardless of insertion history.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  std::unordered_set<std::string> keys_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BO_QUARANTINE_H_
