#include "bo/surrogate.h"

#include <algorithm>

#include "data/matrix.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace volcanoml {

RandomForestSurrogate::RandomForestSurrogate(const Options& options,
                                             uint64_t seed)
    : options_(options), seed_(seed) {
  VOLCANOML_CHECK(options_.num_trees >= 2);
}

void RandomForestSurrogate::Fit(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y) {
  VOLCANOML_CHECK(x.size() == y.size());
  VOLCANOML_CHECK(x.size() >= 2);
  const size_t n = x.size();
  const size_t d = x[0].size();
  Matrix design(n, d);
  for (size_t i = 0; i < n; ++i) {
    VOLCANOML_CHECK(x[i].size() == d);
    std::copy(x[i].begin(), x[i].end(), design.RowPtr(i));
  }

  TreeOptions tree_opts;
  tree_opts.criterion = TreeCriterion::kMse;
  tree_opts.max_depth = options_.max_depth;
  tree_opts.min_samples_leaf = options_.min_samples_leaf;
  tree_opts.max_features = options_.max_features;

  Rng rng(seed_);
  trees_.clear();
  trees_.reserve(options_.num_trees);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    // Bootstrap rows per tree for predictive spread.
    std::vector<size_t> sample(n);
    for (size_t i = 0; i < n; ++i) sample[i] = rng.Index(n);
    Matrix xb = design.SelectRows(sample);
    std::vector<double> yb(n);
    for (size_t i = 0; i < n; ++i) yb[i] = y[sample[i]];
    DecisionTree tree(tree_opts, rng.Fork());
    Status s = tree.Fit(xb, yb, 0);
    VOLCANOML_CHECK(s.ok());
    trees_.push_back(std::move(tree));
  }
}

void RandomForestSurrogate::PredictMeanVar(const std::vector<double>& x,
                                           double* mean,
                                           double* variance) const {
  VOLCANOML_CHECK(fitted());
  std::vector<double> preds(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) {
    preds[t] = trees_[t].PredictOne(x.data());
  }
  *mean = Mean(preds);
  *variance = std::max(Variance(preds), options_.min_variance);
}

}  // namespace volcanoml
