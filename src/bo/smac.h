#ifndef VOLCANOML_BO_SMAC_H_
#define VOLCANOML_BO_SMAC_H_

#include <cstdint>
#include <vector>

#include "bo/optimizer.h"
#include "bo/surrogate.h"

namespace volcanoml {

/// SMAC-style Bayesian optimization [Hutter et al., LION'11]: a
/// probabilistic random-forest surrogate, expected improvement maximized
/// over random candidates plus neighbors of the best incumbents, and
/// periodic random interleaving for exploration. This is the optimizer
/// inside every VolcanoML joint block and inside the auto-sklearn
/// baseline.
class SmacOptimizer : public BlackBoxOptimizer {
 public:
  struct Options {
    /// Random configurations evaluated before the surrogate is trusted.
    size_t min_observations = 5;
    /// Every k-th proposal is random (exploration guarantee).
    size_t random_interleave = 5;
    /// EI candidate pool: random samples + neighbors of incumbents.
    size_t num_random_candidates = 200;
    size_t num_incumbent_neighbors = 30;
    /// Cap on surrogate training data: beyond this the surrogate fits on
    /// the best half + most recent half of the cap. Bounds the per-
    /// iteration refit cost on long runs (auto-sklearn applies a similar
    /// cap).
    size_t max_surrogate_points = 300;
    RandomForestSurrogate::Options surrogate;
  };

  SmacOptimizer(const ConfigurationSpace* space, const Options& options,
                uint64_t seed);

  [[nodiscard]] Configuration Suggest() override;

  /// Batched proposals from ONE surrogate fit: the EI ranking over one
  /// candidate pool supplies the top-n distinct configurations (plus the
  /// usual random-interleave slots), instead of n refits under the base
  /// class's constant liar. SuggestBatch(1) delegates to Suggest().
  [[nodiscard]] std::vector<Configuration> SuggestBatch(size_t n) override;

  /// Adds the proposal counter and RNG engine state; the random-forest
  /// surrogate is rebuilt from the restored history on the next Suggest.
  void SaveState(SnapshotWriter* w) const override;
  void LoadState(SnapshotReader* r) override;

 private:
  /// Fits the surrogate on the (possibly capped) history. Requires
  /// NumObservations() >= 2; consumes one rng fork.
  [[nodiscard]] RandomForestSurrogate FitSurrogate();

  /// Random samples + neighbors of the best incumbents — the pool EI is
  /// maximized over.
  [[nodiscard]] std::vector<Configuration> CandidatePool();

  /// Candidate indices sorted by expected improvement, best first.
  [[nodiscard]] std::vector<size_t> RankByEi(
      const RandomForestSurrogate& surrogate,
      const std::vector<Configuration>& candidates) const;

  Options options_;
  Rng rng_;
  size_t suggest_count_ = 0;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BO_SMAC_H_
