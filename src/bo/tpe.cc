#include "bo/tpe.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bo/acquisition.h"
#include "util/check.h"

namespace volcanoml {

TpeOptimizer::TpeOptimizer(const ConfigurationSpace* space,
                           const Options& options, uint64_t seed)
    : BlackBoxOptimizer(space), options_(options), rng_(seed) {
  VOLCANOML_CHECK(options_.gamma > 0.0 && options_.gamma < 1.0);
  VOLCANOML_CHECK(options_.num_candidates >= 1);
}

double TpeOptimizer::Density(size_t dim, double value,
                             const std::vector<size_t>& members) const {
  const Parameter& p = space_->param(dim);
  // Uniform mixture floor keeps ratios finite off-support.
  constexpr double kFloor = 0.05;
  if (p.type == ParamType::kCategorical) {
    // Laplace-smoothed histogram over choices.
    double count = 1.0;
    for (size_t idx : members) {
      if (history_configs_[idx].values[dim] == value) count += 1.0;
    }
    return count /
           (static_cast<double>(members.size()) +
            static_cast<double>(p.choices.size()));
  }
  // Work in the unit-encoded domain for a scale-free bandwidth.
  auto encode = [&p](double v) {
    if (p.log_scale) {
      return (std::log(v) - std::log(p.lo)) /
             (std::log(p.hi) - std::log(p.lo));
    }
    return p.hi > p.lo ? (v - p.lo) / (p.hi - p.lo) : 0.5;
  };
  double z = encode(value);
  double h = options_.bandwidth;
  double acc = 0.0;
  for (size_t idx : members) {
    double center = encode(history_configs_[idx].values[dim]);
    acc += NormalPdf((z - center) / h) / h;
  }
  return kFloor + (1.0 - kFloor) * acc /
                      std::max<double>(1.0, static_cast<double>(members.size()));
}

Configuration TpeOptimizer::SampleFromGood(
    const std::vector<size_t>& good_indices) {
  Configuration out = space_->Sample(&rng_);
  for (size_t dim = 0; dim < space_->NumParameters(); ++dim) {
    const Parameter& p = space_->param(dim);
    // Anchor on a random good observation's value for this dimension.
    const Configuration& anchor =
        history_configs_[good_indices[rng_.Index(good_indices.size())]];
    double value = anchor.values[dim];
    if (p.type == ParamType::kCategorical) {
      // Keep the anchor's choice most of the time; mutate occasionally.
      if (rng_.Bernoulli(0.2) && p.choices.size() > 1) {
        value = static_cast<double>(rng_.Index(p.choices.size()));
      }
      out.values[dim] = value;
      continue;
    }
    // Gaussian kernel jitter in the encoded domain.
    if (p.log_scale) {
      double lo = std::log(p.lo), hi = std::log(p.hi);
      double z = (std::log(value) - lo) / (hi - lo);
      z = std::clamp(z + rng_.Gaussian(0.0, options_.bandwidth), 0.0, 1.0);
      out.values[dim] = std::exp(lo + z * (hi - lo));
    } else {
      double range = p.hi - p.lo;
      double z = range > 0.0 ? (value - p.lo) / range : 0.5;
      z = std::clamp(z + rng_.Gaussian(0.0, options_.bandwidth), 0.0, 1.0);
      double v = p.lo + z * range;
      if (p.type == ParamType::kInteger) v = std::round(v);
      out.values[dim] = v;
    }
  }
  return out;
}

double TpeOptimizer::LogLikelihoodRatio(
    const Configuration& config, const std::vector<size_t>& good_indices,
    const std::vector<size_t>& bad_indices) const {
  double ratio = 0.0;
  for (size_t dim = 0; dim < space_->NumParameters(); ++dim) {
    if (!space_->IsActive(config, dim)) continue;
    double good = Density(dim, config.values[dim], good_indices);
    double bad = Density(dim, config.values[dim], bad_indices);
    ratio += std::log(good) - std::log(bad);
  }
  return ratio;
}

void TpeOptimizer::SplitGoodBad(std::vector<size_t>* good,
                                std::vector<size_t>* bad) const {
  const size_t n = history_utilities_.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return history_utilities_[a] > history_utilities_[b];
  });
  size_t num_good = std::max<size_t>(
      2, static_cast<size_t>(std::ceil(options_.gamma *
                                       static_cast<double>(n))));
  num_good = std::min(num_good, n - 1);
  good->assign(order.begin(), order.begin() + static_cast<long>(num_good));
  bad->assign(order.begin() + static_cast<long>(num_good), order.end());
}

Configuration TpeOptimizer::Suggest() {
  ++suggest_count_;
  Configuration seed;
  if (PopInitial(&seed)) return seed;
  bool explore =
      NumRealObservations() < options_.min_observations ||
      (options_.random_interleave > 0 &&
       suggest_count_ % options_.random_interleave == 0);
  if (explore) {
    return SampleAvoidingQuarantine(&rng_);
  }

  // Split history into good (top gamma) and bad.
  std::vector<size_t> good, bad;
  SplitGoodBad(&good, &bad);

  // Track both the best candidate overall and the best non-quarantined
  // one; with an empty quarantine set the two are identical, so clean
  // runs return the same proposal they always did.
  Configuration best_candidate;
  double best_ratio = -std::numeric_limits<double>::infinity();
  Configuration best_allowed;
  double best_allowed_ratio = -std::numeric_limits<double>::infinity();
  bool has_allowed = false;
  for (size_t i = 0; i < options_.num_candidates; ++i) {
    Configuration candidate = SampleFromGood(good);
    double ratio = LogLikelihoodRatio(candidate, good, bad);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_candidate = candidate;
    }
    if (ratio > best_allowed_ratio && !IsQuarantined(candidate)) {
      best_allowed_ratio = ratio;
      best_allowed = candidate;
      has_allowed = true;
    }
  }
  return has_allowed ? best_allowed : best_candidate;
}

void TpeOptimizer::SaveState(SnapshotWriter* w) const {
  BlackBoxOptimizer::SaveState(w);
  w->Str("rng", rng_.Serialize());
  w->U64("suggest_count", suggest_count_);
}

void TpeOptimizer::LoadState(SnapshotReader* r) {
  BlackBoxOptimizer::LoadState(r);
  if (!rng_.Deserialize(r->Str("rng"))) {
    r->Fail("tpe optimizer: malformed rng state");
  }
  suggest_count_ = r->U64("suggest_count");
}

std::vector<Configuration> TpeOptimizer::SuggestBatch(size_t n) {
  VOLCANOML_CHECK(n >= 1);
  if (n == 1) return {Suggest()};

  std::vector<Configuration> batch;
  batch.reserve(n);
  DrainInitialQueue(n, &batch);
  suggest_count_ += n;
  if (batch.size() == n) return batch;

  if (NumRealObservations() < options_.min_observations) {
    while (batch.size() < n) {
      batch.push_back(SampleAvoidingQuarantine(&rng_));
    }
    return batch;
  }

  // One density split serves the whole batch; one random slot per
  // `random_interleave` model-based proposals keeps the exploration
  // guarantee at any batch size.
  size_t num_random =
      options_.random_interleave > 0
          ? (n - batch.size()) / options_.random_interleave
          : 0;
  std::vector<size_t> good, bad;
  SplitGoodBad(&good, &bad);

  size_t pool_size = std::max<size_t>(options_.num_candidates, n);
  std::vector<Configuration> pool;
  std::vector<double> ratio(pool_size);
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back(SampleFromGood(good));
    ratio[i] = LogLikelihoodRatio(pool[i], good, bad);
  }
  std::vector<size_t> order(pool_size);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&ratio](size_t a, size_t b) {
    return ratio[a] > ratio[b];
  });
  for (size_t r : order) {
    if (batch.size() + num_random >= n) break;
    const Configuration& candidate = pool[r];
    if (IsQuarantined(candidate)) continue;
    bool duplicate = false;
    for (const Configuration& chosen : batch) {
      if (chosen == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) batch.push_back(candidate);
  }
  while (batch.size() < n) {
    batch.push_back(SampleAvoidingQuarantine(&rng_));
  }
  return batch;
}

}  // namespace volcanoml
