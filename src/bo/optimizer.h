#ifndef VOLCANOML_BO_OPTIMIZER_H_
#define VOLCANOML_BO_OPTIMIZER_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "bo/quarantine.h"
#include "cs/configuration_space.h"
#include "util/check.h"

namespace volcanoml {

/// Abstract iterative maximizer over a ConfigurationSpace: the suggest /
/// observe loop shared by SMAC and random search, and the engine inside
/// VolcanoML's joint blocks.
class BlackBoxOptimizer {
 public:
  explicit BlackBoxOptimizer(const ConfigurationSpace* space)
      : space_(space) {
    VOLCANOML_CHECK(space_ != nullptr);
  }
  virtual ~BlackBoxOptimizer() = default;

  /// Proposes the next configuration to evaluate.
  [[nodiscard]] virtual Configuration Suggest() = 0;

  /// Proposes `n` configurations to evaluate as one batch (the feed for
  /// EvalEngine::EvaluateBatch). The base implementation runs n
  /// sequential Suggest() calls, fantasizing a constant-liar observation
  /// (the worst utility seen so far) between them so model-based
  /// optimizers spread the batch instead of proposing n near-duplicates;
  /// the fantasies are retracted before returning. SuggestBatch(1) is
  /// exactly Suggest() — same proposal, same internal state evolution —
  /// which is what keeps batch_size=1 runs bit-identical to serial ones.
  [[nodiscard]] virtual std::vector<Configuration> SuggestBatch(size_t n);

  /// Records the utility observed for a configuration (higher is better).
  virtual void Observe(const Configuration& config, double utility);

  /// Injects a prior observation transferred from a past run. Must be
  /// called before the first Suggest(); the observation enters the model
  /// history like a real one but deliberately NOT the incumbent
  /// (transferred utilities live on another dataset's scale, and letting
  /// one become `best_utility_` would deflate the expected improvement of
  /// every real candidate) and NOT the explore gate (see
  /// NumRealObservations): priors enrich the surrogate once the model
  /// phase starts, they do not cut exploration short. The prior count is
  /// not serialized — the injected history itself is, which is what
  /// resume bit-equality needs. Draws no randomness, so runs that never
  /// call it are bit-identical to runs built without the seam.
  void ObservePrior(const Configuration& config, double utility) {
    history_configs_.push_back(config);
    history_utilities_.push_back(utility);
    ++num_prior_observations_;
  }
  [[nodiscard]] size_t num_prior_observations() const {
    return num_prior_observations_;
  }

  /// Seeds the optimizer with a configuration to try before model-based
  /// proposals (used by meta-learning warm starts). Implementations pop
  /// pending seeds from Suggest() first.
  virtual void EnqueueInitial(const Configuration& config) {
    initial_queue_.push_back(config);
  }

  /// Drops every queued-but-unevaluated initial seed. Used when a
  /// transferred portfolio replaces the default-first convention: the
  /// default configuration anchors round one only as long as nothing
  /// better is known, and a tuned winner from a similar past run is
  /// better-informed — evaluating both would push every model proposal
  /// back one round, which is exactly the delay warm-starting is meant to
  /// remove.
  void ClearInitialQueue() { initial_queue_.clear(); }

  /// Permanently bars a configuration from future proposals. The trial
  /// guard calls this when a configuration exceeds its hard-failure retry
  /// cap (repeated deadline timeouts / injected faults). Best-effort:
  /// filtering is bounded, so a degenerate space whose every point is
  /// quarantined may still resample one rather than livelock.
  void Quarantine(const Configuration& config) { quarantine_.Add(config); }
  [[nodiscard]] bool IsQuarantined(const Configuration& config) const {
    return quarantine_.Contains(config);
  }
  [[nodiscard]] size_t num_quarantined() const { return quarantine_.size(); }

  [[nodiscard]] bool HasObservations() const {
    return !history_utilities_.empty();
  }
  [[nodiscard]] size_t NumObservations() const {
    return history_utilities_.size();
  }

  /// Observations actually evaluated by this run (excludes transferred
  /// priors). The random-exploration gate counts these: a prior-seeded
  /// optimizer explores exactly as long as a cold one and emits the
  /// identical random proposals while doing so — priors only change what
  /// the model phase proposes afterwards.
  [[nodiscard]] size_t NumRealObservations() const {
    return history_utilities_.size() - num_prior_observations_;
  }

  /// Best configuration observed so far (requires >= 1 observation).
  [[nodiscard]] const Configuration& best() const {
    VOLCANOML_CHECK(HasObservations());
    return best_config_;
  }
  [[nodiscard]] double best_utility() const { return best_utility_; }

  /// Utility of every observation in arrival order.
  [[nodiscard]] const std::vector<double>& history_utilities() const {
    return history_utilities_;
  }

  [[nodiscard]] const ConfigurationSpace& space() const { return *space_; }

  /// Snapshot support (see DESIGN.md "Logical plans, executor & snapshots"):
  /// the base saves the observation history, incumbent, pending warm-start
  /// seeds and quarantine set; engines with private randomness or counters
  /// (random / SMAC / TPE) extend it. Surrogates are NOT serialized — they
  /// are rebuilt deterministically from the restored history and RNG state
  /// on the next Suggest(). A loaded optimizer continues the identical
  /// proposal stream an uninterrupted run would produce.
  virtual void SaveState(SnapshotWriter* w) const;
  virtual void LoadState(SnapshotReader* r);

 protected:
  /// Pops up to `n` pending warm-start seeds into `batch` (helper for
  /// SuggestBatch overrides; keeps the drain order of Suggest()).
  /// Quarantined seeds are discarded, not proposed.
  void DrainInitialQueue(size_t n, std::vector<Configuration>* batch);

  /// Pops the next non-quarantined warm-start seed, if any (helper for
  /// Suggest overrides; keeps the drain order of the queue).
  [[nodiscard]] bool PopInitial(Configuration* out);

  /// Samples from the space, resampling a bounded number of times to
  /// avoid quarantined configurations. Draws no extra randomness while
  /// the quarantine set is empty, so clean runs stay bit-identical.
  [[nodiscard]] Configuration SampleAvoidingQuarantine(Rng* rng) const;

  const ConfigurationSpace* space_;
  QuarantineSet quarantine_;
  std::vector<Configuration> initial_queue_;
  std::vector<Configuration> history_configs_;
  std::vector<double> history_utilities_;
  Configuration best_config_;
  double best_utility_ = -std::numeric_limits<double>::infinity();
  size_t num_prior_observations_ = 0;
};

/// Pure random search baseline (and the exploration component inside
/// SMAC's interleaving).
class RandomSearchOptimizer : public BlackBoxOptimizer {
 public:
  RandomSearchOptimizer(const ConfigurationSpace* space, uint64_t seed)
      : BlackBoxOptimizer(space), rng_(seed) {}

  [[nodiscard]] Configuration Suggest() override;

  void SaveState(SnapshotWriter* w) const override;
  void LoadState(SnapshotReader* r) override;

 private:
  Rng rng_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BO_OPTIMIZER_H_
