#ifndef VOLCANOML_BO_OPTIMIZER_H_
#define VOLCANOML_BO_OPTIMIZER_H_

#include <limits>
#include <vector>

#include "cs/configuration_space.h"
#include "util/check.h"

namespace volcanoml {

/// Abstract iterative maximizer over a ConfigurationSpace: the suggest /
/// observe loop shared by SMAC and random search, and the engine inside
/// VolcanoML's joint blocks.
class BlackBoxOptimizer {
 public:
  explicit BlackBoxOptimizer(const ConfigurationSpace* space)
      : space_(space) {
    VOLCANOML_CHECK(space_ != nullptr);
  }
  virtual ~BlackBoxOptimizer() = default;

  /// Proposes the next configuration to evaluate.
  virtual Configuration Suggest() = 0;

  /// Records the utility observed for a configuration (higher is better).
  virtual void Observe(const Configuration& config, double utility);

  /// Seeds the optimizer with a configuration to try before model-based
  /// proposals (used by meta-learning warm starts). Implementations pop
  /// pending seeds from Suggest() first.
  virtual void EnqueueInitial(const Configuration& config) {
    initial_queue_.push_back(config);
  }

  bool HasObservations() const { return !history_utilities_.empty(); }
  size_t NumObservations() const { return history_utilities_.size(); }

  /// Best configuration observed so far (requires >= 1 observation).
  const Configuration& best() const {
    VOLCANOML_CHECK(HasObservations());
    return best_config_;
  }
  double best_utility() const { return best_utility_; }

  /// Utility of every observation in arrival order.
  const std::vector<double>& history_utilities() const {
    return history_utilities_;
  }

  const ConfigurationSpace& space() const { return *space_; }

 protected:
  const ConfigurationSpace* space_;
  std::vector<Configuration> initial_queue_;
  std::vector<Configuration> history_configs_;
  std::vector<double> history_utilities_;
  Configuration best_config_;
  double best_utility_ = -std::numeric_limits<double>::infinity();
};

/// Pure random search baseline (and the exploration component inside
/// SMAC's interleaving).
class RandomSearchOptimizer : public BlackBoxOptimizer {
 public:
  RandomSearchOptimizer(const ConfigurationSpace* space, uint64_t seed)
      : BlackBoxOptimizer(space), rng_(seed) {}

  Configuration Suggest() override;

 private:
  Rng rng_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BO_OPTIMIZER_H_
