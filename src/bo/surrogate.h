#ifndef VOLCANOML_BO_SURROGATE_H_
#define VOLCANOML_BO_SURROGATE_H_

#include <cstdint>
#include <vector>

#include "ml/tree.h"

namespace volcanoml {

/// Probabilistic random-forest surrogate (the SMAC surrogate, and the one
/// auto-sklearn uses): predicts mean and variance of the objective at an
/// encoded configuration from the spread of per-tree predictions.
class RandomForestSurrogate {
 public:
  struct Options {
    size_t num_trees = 20;
    int max_depth = 12;
    size_t min_samples_leaf = 3;
    double max_features = 0.8;
    /// Variance floor keeping EI non-degenerate on duplicate predictions.
    double min_variance = 1e-8;
  };

  RandomForestSurrogate(const Options& options, uint64_t seed);

  /// Fits on encoded configurations (rows of `x`) and observed utilities.
  /// Requires at least two observations.
  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  /// Predictive mean and variance at one encoded configuration.
  void PredictMeanVar(const std::vector<double>& x, double* mean,
                      double* variance) const;

  bool fitted() const { return !trees_.empty(); }

 private:
  Options options_;
  uint64_t seed_;
  std::vector<DecisionTree> trees_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BO_SURROGATE_H_
