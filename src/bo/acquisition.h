#ifndef VOLCANOML_BO_ACQUISITION_H_
#define VOLCANOML_BO_ACQUISITION_H_

namespace volcanoml {

/// Expected improvement (for maximization) of a Gaussian posterior
/// N(mean, variance) over the current best observed value. The standard
/// acquisition used by SMAC/auto-sklearn and by VolcanoML's joint blocks.
double ExpectedImprovement(double mean, double variance, double best);

/// Standard normal CDF / PDF helpers (exposed for tests).
double NormalCdf(double z);
double NormalPdf(double z);

}  // namespace volcanoml

#endif  // VOLCANOML_BO_ACQUISITION_H_
