#include "bo/smac.h"

#include <algorithm>

#include "bo/acquisition.h"

namespace volcanoml {

SmacOptimizer::SmacOptimizer(const ConfigurationSpace* space,
                             const Options& options, uint64_t seed)
    : BlackBoxOptimizer(space), options_(options), rng_(seed) {}

RandomForestSurrogate SmacOptimizer::FitSurrogate() {
  // Long histories are capped to bound the refit cost: keep the best half
  // of the cap plus the most recent half.
  std::vector<size_t> fit_indices;
  const size_t n = history_configs_.size();
  if (n <= options_.max_surrogate_points) {
    fit_indices.resize(n);
    for (size_t i = 0; i < n; ++i) fit_indices[i] = i;
  } else {
    size_t half = options_.max_surrogate_points / 2;
    std::vector<size_t> by_utility(n);
    for (size_t i = 0; i < n; ++i) by_utility[i] = i;
    std::sort(by_utility.begin(), by_utility.end(), [&](size_t a, size_t b) {
      return history_utilities_[a] > history_utilities_[b];
    });
    std::vector<bool> picked(n, false);
    for (size_t i = 0; i < half; ++i) picked[by_utility[i]] = true;
    for (size_t i = n - half; i < n; ++i) picked[i] = true;
    for (size_t i = 0; i < n; ++i) {
      if (picked[i]) fit_indices.push_back(i);
    }
  }
  RandomForestSurrogate surrogate(options_.surrogate, rng_.Fork());
  std::vector<std::vector<double>> encoded;
  std::vector<double> utilities;
  encoded.reserve(fit_indices.size());
  utilities.reserve(fit_indices.size());
  for (size_t i : fit_indices) {
    encoded.push_back(space_->Encode(history_configs_[i]));
    utilities.push_back(history_utilities_[i]);
  }
  surrogate.Fit(encoded, utilities);
  return surrogate;
}

std::vector<Configuration> SmacOptimizer::CandidatePool() {
  std::vector<Configuration> candidates;
  candidates.reserve(options_.num_random_candidates +
                     options_.num_incumbent_neighbors);
  for (size_t i = 0; i < options_.num_random_candidates; ++i) {
    candidates.push_back(space_->Sample(&rng_));
  }
  // Neighbors of the top incumbents (local search component of SMAC).
  std::vector<size_t> order(history_configs_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return history_utilities_[a] > history_utilities_[b];
  });
  size_t num_incumbents = std::min<size_t>(3, order.size());
  for (size_t i = 0; i < options_.num_incumbent_neighbors; ++i) {
    const Configuration& base = history_configs_[order[i % num_incumbents]];
    candidates.push_back(space_->Neighbor(base, &rng_));
  }
  return candidates;
}

std::vector<size_t> SmacOptimizer::RankByEi(
    const RandomForestSurrogate& surrogate,
    const std::vector<Configuration>& candidates) const {
  std::vector<double> ei(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    double mean, variance;
    surrogate.PredictMeanVar(space_->Encode(candidates[i]), &mean, &variance);
    ei[i] = ExpectedImprovement(mean, variance, best_utility_);
  }
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Stable: among EI ties the earlier pool index wins, exactly like the
  // strict-greater argmax scan this replaced — required for bit-for-bit
  // serial reproduction.
  std::stable_sort(order.begin(), order.end(),
                   [&ei](size_t a, size_t b) { return ei[a] > ei[b]; });
  return order;
}

Configuration SmacOptimizer::Suggest() {
  ++suggest_count_;
  Configuration seed;
  if (PopInitial(&seed)) return seed;
  bool explore =
      NumRealObservations() < options_.min_observations ||
      (options_.random_interleave > 0 &&
       suggest_count_ % options_.random_interleave == 0);
  if (explore) {
    return SampleAvoidingQuarantine(&rng_);
  }
  RandomForestSurrogate surrogate = FitSurrogate();
  std::vector<Configuration> candidates = CandidatePool();
  std::vector<size_t> ranked = RankByEi(surrogate, candidates);
  // Best-EI candidate that is not quarantined; if the whole pool is
  // quarantined (degenerate space), fall back to the overall best.
  for (size_t r : ranked) {
    if (!IsQuarantined(candidates[r])) return candidates[r];
  }
  return candidates[ranked.front()];
}

void SmacOptimizer::SaveState(SnapshotWriter* w) const {
  BlackBoxOptimizer::SaveState(w);
  w->Str("rng", rng_.Serialize());
  w->U64("suggest_count", suggest_count_);
}

void SmacOptimizer::LoadState(SnapshotReader* r) {
  BlackBoxOptimizer::LoadState(r);
  if (!rng_.Deserialize(r->Str("rng"))) {
    r->Fail("smac optimizer: malformed rng state");
  }
  suggest_count_ = r->U64("suggest_count");
}

std::vector<Configuration> SmacOptimizer::SuggestBatch(size_t n) {
  VOLCANOML_CHECK(n >= 1);
  if (n == 1) return {Suggest()};

  std::vector<Configuration> batch;
  batch.reserve(n);
  DrainInitialQueue(n, &batch);
  suggest_count_ += n;
  if (batch.size() == n) return batch;

  if (NumRealObservations() < options_.min_observations) {
    while (batch.size() < n) {
      batch.push_back(SampleAvoidingQuarantine(&rng_));
    }
    return batch;
  }

  // The interleave schedule, applied per batch: one random slot for every
  // `random_interleave` model-based proposals keeps the exploration
  // guarantee at any batch size.
  size_t num_random =
      options_.random_interleave > 0
          ? (n - batch.size()) / options_.random_interleave
          : 0;
  RandomForestSurrogate surrogate = FitSurrogate();
  std::vector<Configuration> candidates = CandidatePool();
  std::vector<size_t> ranked = RankByEi(surrogate, candidates);
  // Top-EI distinct candidates fill the model-based slots; duplicates in
  // the pool would make the batch evaluate one point twice for nothing.
  for (size_t r : ranked) {
    if (batch.size() + num_random >= n) break;
    const Configuration& candidate = candidates[r];
    if (IsQuarantined(candidate)) continue;
    bool duplicate = false;
    for (const Configuration& chosen : batch) {
      if (chosen == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) batch.push_back(candidate);
  }
  while (batch.size() < n) {
    batch.push_back(SampleAvoidingQuarantine(&rng_));
  }
  return batch;
}

}  // namespace volcanoml
