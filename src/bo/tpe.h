#ifndef VOLCANOML_BO_TPE_H_
#define VOLCANOML_BO_TPE_H_

#include "bo/optimizer.h"

namespace volcanoml {

/// Tree-structured Parzen Estimator [Bergstra et al., NIPS'11] — the
/// optimizer behind hyperopt / hyperopt-sklearn, one of the BO-based
/// AutoML families the paper discusses. Observations are split into a
/// "good" quantile and the rest; each parameter gets independent 1-D
/// density models l(x) (good) and g(x) (bad), and candidates sampled from
/// l are ranked by the likelihood ratio l(x)/g(x).
///
/// Continuous/integer parameters use Gaussian kernel densities over the
/// encoded [0,1] domain; categoricals use Laplace-smoothed histograms.
class TpeOptimizer : public BlackBoxOptimizer {
 public:
  struct Options {
    /// Fraction of observations forming the "good" set.
    double gamma = 0.25;
    /// Random search until this many observations exist.
    size_t min_observations = 8;
    /// Candidates drawn from l(x) per Suggest.
    size_t num_candidates = 32;
    /// Kernel bandwidth as a fraction of the unit-encoded domain.
    double bandwidth = 0.15;
    /// Every k-th proposal is uniformly random.
    size_t random_interleave = 5;
  };

  TpeOptimizer(const ConfigurationSpace* space, const Options& options,
               uint64_t seed);

  [[nodiscard]] Configuration Suggest() override;

  /// Batched proposals from ONE good/bad density split: candidates are
  /// sampled from l(x) once and the top-n by likelihood ratio fill the
  /// batch (plus the usual random-interleave slots), instead of n refits
  /// under the base class's constant liar. SuggestBatch(1) delegates to
  /// Suggest().
  [[nodiscard]] std::vector<Configuration> SuggestBatch(size_t n) override;

  /// Adds the proposal counter and RNG engine state; the good/bad density
  /// split is recomputed from the restored history on the next Suggest.
  void SaveState(SnapshotWriter* w) const override;
  void LoadState(SnapshotReader* r) override;

 private:
  /// Partitions history indices into the good (top gamma) set and the
  /// rest. Requires at least two observations.
  void SplitGoodBad(std::vector<size_t>* good,
                    std::vector<size_t>* bad) const;

  /// Samples one configuration from the good-set kernel density.
  Configuration SampleFromGood(const std::vector<size_t>& good_indices);

  /// log l(config) - log g(config) summed over active dimensions.
  double LogLikelihoodRatio(const Configuration& config,
                            const std::vector<size_t>& good_indices,
                            const std::vector<size_t>& bad_indices) const;

  /// 1-D kernel density of parameter `dim` over the member set.
  double Density(size_t dim, double value,
                 const std::vector<size_t>& members) const;

  Options options_;
  Rng rng_;
  size_t suggest_count_ = 0;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BO_TPE_H_
