#ifndef VOLCANOML_EVAL_DISPATCH_H_
#define VOLCANOML_EVAL_DISPATCH_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "cs/configuration.h"
#include "eval/eval_context.h"
#include "util/thread_pool.h"

namespace volcanoml {

/// One evaluation request: a full joint assignment plus the training-set
/// subsample fraction to evaluate it at.
struct EvalRequest {
  Assignment assignment;
  double fidelity = 1.0;
};

/// Counters a backend accumulates across Dispatch calls. All zeros for
/// the in-process backend; the process pool reports its supervision
/// events here so tests and the daemon can surface them.
struct DispatchTelemetry {
  size_t worker_deaths = 0;     ///< Crash / nonzero exit / bad reply events.
  size_t worker_retries = 0;    ///< Requests re-sent after a death.
  size_t worker_respawns = 0;   ///< Workers restarted after a death.
  size_t hard_timeouts = 0;     ///< Supervisor hard-kills on timeout.
  size_t spawn_failures = 0;    ///< fork/exec/init failures.
  bool degraded = false;        ///< Pool fell back to in-process compute.
};

/// Phase-2 compute seam of the EvalEngine (see DESIGN.md "Evaluation
/// engine & threading model"): given a batch of DISTINCT requests, fill
/// `outcomes[i]` with the pure-function result of request i.
///
/// Contract: outcomes must be bit-identical to calling
/// `context->EvaluateOnce(requests[i])` directly — the engine's
/// determinism guarantee (same request sequence, same trajectory,
/// regardless of backend) rests on it. Failure modes a backend adds on
/// top (worker death, supervisor hard timeouts) are mapped into the
/// TrialOutcome taxonomy instead of breaking that contract. Dispatch is
/// called with the engine mutex NOT held and must be safe to call from
/// one thread at a time (the engine serializes batches per call site).
class DispatchBackend {
 public:
  virtual ~DispatchBackend() = default;

  /// Stable name for logging, e.g. "in-process".
  [[nodiscard]] virtual const char* name() const = 0;

  /// Worker parallelism the backend offers (>= 1).
  [[nodiscard]] virtual size_t parallelism() const = 0;

  /// Computes every request and writes outcomes[i] for request i.
  /// `outcomes` is pre-sized to requests.size().
  virtual void Dispatch(const std::vector<EvalRequest>& requests,
                        std::vector<EvalOutcome>* outcomes) = 0;

  /// Supervision counters accumulated so far (thread-safe snapshot).
  [[nodiscard]] virtual DispatchTelemetry telemetry() const {
    return DispatchTelemetry{};
  }
};

/// The historic path: computes on the calling thread, or on an owned
/// ThreadPool when the context asks for more than one thread. This is the
/// bit-reproducible oracle every other backend is measured against.
class InProcessDispatch : public DispatchBackend {
 public:
  explicit InProcessDispatch(const EvalContext* context);

  [[nodiscard]] const char* name() const override { return "in-process"; }
  [[nodiscard]] size_t parallelism() const override;
  void Dispatch(const std::vector<EvalRequest>& requests,
                std::vector<EvalOutcome>* outcomes) override;

 private:
  const EvalContext* context_;
  std::unique_ptr<ThreadPool> pool_;  ///< Null when running inline.
};

/// Builds the backend selected by `context->options().backend`. Declared
/// here but defined in src/worker/process_pool.cc so the eval layer never
/// includes worker headers (the worker layer depends on eval, not the
/// other way around; the link-time seam is fine because all of src/ is
/// one library).
[[nodiscard]] std::unique_ptr<DispatchBackend> CreateDispatchBackend(
    const EvalContext* context);

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_DISPATCH_H_
