#ifndef VOLCANOML_EVAL_SEARCH_SPACE_H_
#define VOLCANOML_EVAL_SEARCH_SPACE_H_

#include <string>
#include <vector>

#include "cs/configuration_space.h"
#include "data/dataset.h"
#include "fe/registry.h"

namespace volcanoml {

/// The three search-space sizes of the paper's Table 1 scalability study.
/// Small and Medium restrict the algorithm menu and FE stages; Large is
/// the full registry. (The paper's spaces hold 20/29/100 hyper-parameters
/// on top of scikit-learn's wider algorithm zoo; here the same nesting
/// small ⊂ medium ⊂ large holds with 20/29/~60 parameters — see
/// DESIGN.md "Reproduction constraints".)
enum class SpacePreset { kSmall, kMedium, kLarge };

/// Options controlling search-space construction.
struct SearchSpaceOptions {
  TaskType task = TaskType::kClassification;
  SpacePreset preset = SpacePreset::kLarge;
  /// Table 2 enrichment: adds the "smote" balancer operator.
  bool include_smote = false;
  /// Figure 3 enrichment: prepends the embedding-selection stage (raw
  /// input vs two simulated pre-trained encoders) for image-like inputs.
  bool include_embedding = false;
};

/// The end-to-end AutoML search space: an algorithm-selection variable,
/// per-algorithm hyper-parameters, and per-stage feature-engineering
/// choices with their operator hyper-parameters.
///
/// Parameter naming convention (shared across the whole system):
///   "algorithm"                        categorical over algorithm names
///   "alg:<name>:<param>"               HPs of one algorithm (conditional)
///   "fe:<stage>"                       categorical over operator names
///   "fe:<stage>:<op>:<param>"          HPs of one operator (conditional)
class SearchSpace {
 public:
  explicit SearchSpace(const SearchSpaceOptions& options);

  [[nodiscard]] TaskType task() const { return options_.task; }
  [[nodiscard]] const SearchSpaceOptions& options() const { return options_; }

  /// Algorithm names included in this preset.
  [[nodiscard]] const std::vector<std::string>& algorithms() const { return algorithms_; }

  /// FE stages included in this preset, in pipeline order.
  [[nodiscard]] const std::vector<FeStage>& stages() const { return stages_; }

  /// The joint configuration space over everything (what auto-sklearn
  /// optimizes in one block).
  [[nodiscard]] const ConfigurationSpace& joint() const { return joint_; }

  /// Total number of hyper-parameters in the joint space.
  [[nodiscard]] size_t NumParameters() const { return joint_.NumParameters(); }

  /// Subspace of all feature-engineering variables (stage choices plus
  /// operator hyper-parameters) — one side of the alternating block.
  [[nodiscard]] ConfigurationSpace FeSubspace() const;

  /// Subspace of one algorithm's hyper-parameters (prefixed names) — the
  /// other side of the alternating block, per conditioning-arm.
  [[nodiscard]] ConfigurationSpace HpSubspaceFor(const std::string& algorithm) const;

  /// Default assignment over the full space (default algorithm, default
  /// operators and hyper-parameters).
  [[nodiscard]] Assignment DefaultAssignment() const;

  /// Operators available for `stage` under this space's options.
  [[nodiscard]] std::vector<FeOperatorInfo> StageOperators(FeStage stage) const;

 private:
  SearchSpaceOptions options_;
  std::vector<std::string> algorithms_;
  std::vector<FeStage> stages_;
  ConfigurationSpace joint_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_SEARCH_SPACE_H_
