#include "eval/fault_injector.h"

#include "util/check.h"

namespace volcanoml {

namespace {

/// splitmix64 finalizer: decorrelates the configuration hash from the
/// injector seed so fault assignment looks uniform over configurations.
uint64_t Mix(uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const Options& options) : options_(options) {
  VOLCANOML_CHECK(options_.fail_fraction >= 0.0);
  VOLCANOML_CHECK(options_.stall_fraction >= 0.0);
  VOLCANOML_CHECK(options_.nan_fraction >= 0.0);
  VOLCANOML_CHECK(options_.fail_fraction + options_.stall_fraction +
                      options_.nan_fraction <=
                  1.0);
}

FaultInjector::Fault FaultInjector::Decide(uint64_t request_hash) const {
  double u = static_cast<double>(Mix(request_hash ^ options_.seed) >> 11) *
             (1.0 / 9007199254740992.0);  // 53-bit mantissa -> [0, 1).
  if (u < options_.fail_fraction) return Fault::kFail;
  u -= options_.fail_fraction;
  if (u < options_.stall_fraction) return Fault::kStall;
  u -= options_.stall_fraction;
  if (u < options_.nan_fraction) return Fault::kNan;
  return Fault::kNone;
}

}  // namespace volcanoml
