#include "eval/search_space.h"

#include "ml/algorithms.h"
#include "util/check.h"

namespace volcanoml {

namespace {

std::vector<std::string> PresetAlgorithms(TaskType task, SpacePreset preset) {
  if (task == TaskType::kClassification) {
    switch (preset) {
      case SpacePreset::kSmall:
        // 20 hyper-parameters total with the small FE stages.
        return {"logistic_regression", "decision_tree", "knn", "gaussian_nb",
                "lda"};
      case SpacePreset::kMedium:
        return {"logistic_regression", "decision_tree", "knn", "gaussian_nb",
                "lda", "linear_svm", "random_forest"};
      case SpacePreset::kLarge:
        return AlgorithmNames(task);
    }
  }
  switch (preset) {
    case SpacePreset::kSmall:
      return {"ridge", "lasso", "knn_reg", "decision_tree_reg", "sgd_reg"};
    case SpacePreset::kMedium:
      return {"ridge", "lasso", "knn_reg", "decision_tree_reg", "sgd_reg",
              "random_forest_reg"};
    case SpacePreset::kLarge:
      return AlgorithmNames(task);
  }
  return {};
}

std::vector<FeStage> PresetStages(TaskType task, SpacePreset preset,
                                  bool include_embedding) {
  std::vector<FeStage> stages;
  switch (preset) {
    case SpacePreset::kSmall:
    case SpacePreset::kMedium:
      stages = {FeStage::kPreprocessing, FeStage::kRescaling};
      break;
    case SpacePreset::kLarge:
      stages = {FeStage::kPreprocessing, FeStage::kRescaling,
                FeStage::kBalancing, FeStage::kTransform};
      break;
  }
  if (task == TaskType::kRegression) {
    // Balancing is classification-only.
    std::vector<FeStage> filtered;
    for (FeStage stage : stages) {
      if (stage != FeStage::kBalancing) filtered.push_back(stage);
    }
    stages = std::move(filtered);
  }
  if (include_embedding) {
    stages.insert(stages.begin(), FeStage::kEmbedding);
  }
  return stages;
}

}  // namespace

SearchSpace::SearchSpace(const SearchSpaceOptions& options)
    : options_(options),
      algorithms_(PresetAlgorithms(options.task, options.preset)),
      stages_(PresetStages(options.task, options.preset,
                           options.include_embedding)) {
  VOLCANOML_CHECK(!algorithms_.empty());

  joint_.AddCategorical("algorithm", algorithms_);
  for (size_t i = 0; i < algorithms_.size(); ++i) {
    const Algorithm& algo = FindAlgorithm(algorithms_[i], options_.task);
    joint_.MergeConditioned(algo.hp_space, "alg:" + algo.name + ":",
                            "algorithm", i);
  }
  for (FeStage stage : stages_) {
    std::vector<FeOperatorInfo> ops = StageOperators(stage);
    std::string stage_param = std::string("fe:") + FeStageName(stage);
    std::vector<std::string> names;
    for (const FeOperatorInfo& op : ops) names.push_back(op.name);
    joint_.AddCategorical(stage_param, names);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].hp_space.empty()) continue;
      joint_.MergeConditioned(ops[i].hp_space,
                              stage_param + ":" + ops[i].name + ":",
                              stage_param, i);
    }
  }
}

std::vector<FeOperatorInfo> SearchSpace::StageOperators(FeStage stage) const {
  return OperatorsFor(stage, options_.include_smote);
}

ConfigurationSpace SearchSpace::FeSubspace() const {
  ConfigurationSpace fe;
  for (FeStage stage : stages_) {
    std::vector<FeOperatorInfo> ops = StageOperators(stage);
    std::string stage_param = std::string("fe:") + FeStageName(stage);
    std::vector<std::string> names;
    for (const FeOperatorInfo& op : ops) names.push_back(op.name);
    fe.AddCategorical(stage_param, names);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].hp_space.empty()) continue;
      fe.MergeConditioned(ops[i].hp_space,
                          stage_param + ":" + ops[i].name + ":", stage_param,
                          i);
    }
  }
  return fe;
}

ConfigurationSpace SearchSpace::HpSubspaceFor(
    const std::string& algorithm) const {
  const Algorithm& algo = FindAlgorithm(algorithm, options_.task);
  ConfigurationSpace hp;
  hp.Merge(algo.hp_space, "alg:" + algo.name + ":");
  return hp;
}

Assignment SearchSpace::DefaultAssignment() const {
  return joint_.ToAssignment(joint_.Default());
}

}  // namespace volcanoml
