#include "eval/fe_cache.h"

#include <functional>

namespace volcanoml {

namespace {

/// Rough per-operator heap cost of a fitted pipeline (learned statistics,
/// projection rows, reference quantiles). Deliberately generous so the
/// byte budget errs toward under-filling rather than over-filling.
constexpr size_t kPipelineBytesPerOp = 4096;

size_t DatasetBytes(const Dataset& d) {
  return d.x().rows() * d.x().cols() * sizeof(double) +
         d.y().size() * sizeof(double);
}

}  // namespace

size_t FeCacheEntry::ApproxBytes() const {
  return sizeof(FeCacheEntry) + DatasetBytes(train) + DatasetBytes(valid) +
         fe.NumOperators() * kPipelineBytesPerOp;
}

FeCache::FeCache(size_t capacity_bytes)
    : shard_capacity_bytes_(capacity_bytes / kNumShards) {
  shards_.reserve(kNumShards);
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

FeCache::Shard& FeCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % kNumShards];
}

std::shared_ptr<const FeCacheEntry> FeCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  // Move the node to the front (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->entry;
}

void FeCache::Put(const std::string& key,
                  std::shared_ptr<const FeCacheEntry> entry) {
  const size_t bytes = entry->ApproxBytes();
  if (bytes > shard_capacity_bytes_) return;  // Never fits; don't thrash.
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place and refresh recency.
    shard.bytes -= it->second->bytes;
    it->second->entry = std::move(entry);
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Node{key, std::move(entry), bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    ++shard.insertions;
  }
  EvictToFitLocked(shard);
}

void FeCache::EvictToFitLocked(Shard& shard) {
  while (shard.bytes > shard_capacity_bytes_ && !shard.lru.empty()) {
    Node& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

FeCache::Stats FeCache::GetStats() const {
  Stats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.bytes += shard->bytes;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace volcanoml
