#include "eval/dispatch.h"

#include "util/check.h"

namespace volcanoml {

InProcessDispatch::InProcessDispatch(const EvalContext* context)
    : context_(context) {
  VOLCANOML_CHECK(context_ != nullptr);
  if (context_->options().num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(context_->options().num_threads);
  }
}

size_t InProcessDispatch::parallelism() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

void InProcessDispatch::Dispatch(const std::vector<EvalRequest>& requests,
                                 std::vector<EvalOutcome>* outcomes) {
  VOLCANOML_CHECK(outcomes->size() == requests.size());
  auto compute = [&](size_t i) {
    (*outcomes)[i] =
        context_->EvaluateOnce(requests[i].assignment, requests[i].fidelity);
  };
  if (pool_ != nullptr && requests.size() > 1) {
    pool_->ParallelFor(requests.size(), compute);
  } else {
    for (size_t i = 0; i < requests.size(); ++i) compute(i);
  }
}

}  // namespace volcanoml
