#include "eval/eval_context.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "ml/algorithms.h"
#include "ml/metrics.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace volcanoml {

namespace {

/// Whether a parameter belongs to the feature-engineering sub-assignment
/// (stage choices "fe:<stage>" and operator params "fe:<stage>:<op>:<p>").
bool IsFeParam(const std::string& name) { return name.rfind("fe:", 0) == 0; }

/// FNV-style hash of an assignment, used to derive deterministic
/// per-configuration seeds (the same configuration always trains with the
/// same randomness, which stabilizes the search). When `fe_only` is set,
/// only FE parameters are mixed in, so the hash — and every seed derived
/// from it — is a pure function of the FE prefix.
uint64_t HashAssignment(const Assignment& assignment, bool fe_only = false) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& [name, value] : assignment) {
    if (fe_only && !IsFeParam(name)) continue;
    for (char ch : name) mix(static_cast<uint64_t>(ch));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace

double FailureUtility(TaskType task) {
  return task == TaskType::kClassification ? 0.0 : -1e9;
}

const char* TrialOutcomeName(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kOk:
      return "ok";
    case TrialOutcome::kBuildFailed:
      return "build_failed";
    case TrialOutcome::kTrainFailed:
      return "train_failed";
    case TrialOutcome::kNonFinite:
      return "non_finite";
    case TrialOutcome::kTimedOut:
      return "timed_out";
    case TrialOutcome::kFaultInjected:
      return "fault_injected";
    case TrialOutcome::kWorkerDied:
      return "worker_died";
  }
  return "unknown";
}

const char* EvalBackendKindName(EvalBackendKind kind) {
  switch (kind) {
    case EvalBackendKind::kInProcess:
      return "in-process";
    case EvalBackendKind::kProcessPool:
      return "process-pool";
  }
  return "unknown";
}

uint64_t EvalContext::RequestHash(const Assignment& assignment) {
  return HashAssignment(assignment);
}

uint64_t EvalContext::FeRequestHash(const Assignment& assignment) {
  return HashAssignment(assignment, /*fe_only=*/true);
}

EvalContext::EvalContext(const SearchSpace* space, const Dataset* data,
                         const EvaluatorOptions& options)
    : space_(space), data_(data), options_(options) {
  VOLCANOML_CHECK(space_ != nullptr && data_ != nullptr);
  VOLCANOML_CHECK(space_->task() == data_->task());
  Rng rng(options_.seed);
  if (options_.cv_folds > 1) {
    splits_ = KFoldSplits(*data_, options_.cv_folds, &rng);
  } else {
    splits_ = {TrainTestSplit(*data_, options_.validation_fraction, &rng)};
  }
  if (options_.fe_cache_capacity_mb > 0) {
    fe_cache_ = std::make_unique<FeCache>(options_.fe_cache_capacity_mb *
                                          (size_t{1} << 20));
  }
}

FeCache::Stats EvalContext::fe_cache_stats() const {
  return fe_cache_ != nullptr ? fe_cache_->GetStats() : FeCache::Stats{};
}

Status EvalContext::BuildFePipeline(const Assignment& assignment,
                                    uint64_t fe_seed, FePipeline* fe) const {
  const ConfigurationSpace& joint = space_->joint();
  Configuration config = joint.FromAssignment(assignment);
  Rng rng(fe_seed);

  // Feature-engineering operators in stage order. Each operator's seed is
  // a fork of the FE-sub-assignment stream, never of the full-assignment
  // stream — the invariant the FE cache's exactness rests on.
  for (FeStage stage : space_->stages()) {
    std::string stage_param = std::string("fe:") + FeStageName(stage);
    size_t choice = joint.GetChoice(config, stage_param);
    std::vector<FeOperatorInfo> ops = space_->StageOperators(stage);
    VOLCANOML_CHECK(choice < ops.size());
    const FeOperatorInfo& op = ops[choice];
    // Extract the operator's own configuration from the assignment.
    std::string prefix = stage_param + ":" + op.name + ":";
    Assignment local;
    for (const auto& [name, value] : assignment) {
      if (name.rfind(prefix, 0) == 0) {
        local[name.substr(prefix.size())] = value;
      }
    }
    Configuration op_config = op.hp_space.FromAssignment(local);
    std::unique_ptr<FeOperator> fe_op =
        op.create(op.hp_space, op_config, rng.Fork());
    fe_op->SetPrecision(options_.precision);
    fe->Add(std::move(fe_op));
  }
  return Status::Ok();
}

Status EvalContext::BuildModel(const Assignment& assignment, uint64_t seed,
                               std::unique_ptr<Model>* model) const {
  const ConfigurationSpace& joint = space_->joint();
  Configuration config = joint.FromAssignment(assignment);
  Rng rng(seed);
  std::string algorithm = joint.GetChoiceName(config, "algorithm");
  const Algorithm& algo = FindAlgorithm(algorithm, space_->task());
  std::string prefix = "alg:" + algorithm + ":";
  Assignment local;
  for (const auto& [name, value] : assignment) {
    if (name.rfind(prefix, 0) == 0) {
      local[name.substr(prefix.size())] = value;
    }
  }
  Configuration model_config = algo.hp_space.FromAssignment(local);
  *model = algo.create(algo.hp_space, model_config, rng.Fork());
  (*model)->SetPrecision(options_.precision);
  return Status::Ok();
}

std::string EvalContext::FeCacheKeyFor(const Assignment& assignment,
                                       size_t split_index,
                                       double fidelity) const {
  // Exact contents, not a hash: distinct FE sub-assignments must never
  // alias to the same cached matrices.
  std::string key;
  key.reserve(assignment.size() * 16 + 3 * sizeof(double));
  auto append_bits = [&key](uint64_t bits) {
    char raw[sizeof(bits)];
    std::memcpy(raw, &bits, sizeof(raw));
    key.append(raw, sizeof(raw));
  };
  for (const auto& [name, value] : assignment) {
    if (name.rfind("fe:", 0) != 0) continue;
    key.append(name);
    key.push_back('=');
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    append_bits(bits);
    key.push_back(';');
  }
  key.push_back('@');
  append_bits(static_cast<uint64_t>(split_index));
  uint64_t fidelity_bits;
  std::memcpy(&fidelity_bits, &fidelity, sizeof(fidelity_bits));
  append_bits(fidelity_bits);
  append_bits(options_.seed);
  return key;
}

EvalContext::SplitResult EvalContext::EvaluateOnSplit(
    const Assignment& assignment, const Split& split, size_t split_index,
    double fidelity, uint64_t seed, uint64_t fe_seed) const {
  const double failure = FailureUtility(space_->task());

  // A DeadlineExceeded Status from any fit stage reclassifies the split
  // as timed out rather than genuinely failed.
  auto classify = [](const Status& status) {
    return status.code() == StatusCode::kDeadlineExceeded
               ? TrialOutcome::kTimedOut
               : TrialOutcome::kTrainFailed;
  };

  // FE phase: reuse a cached prefix result when available, otherwise fit
  // the pipeline and publish it. Only kOk FE results are cached — a
  // deadline-truncated FitTransform is wall-clock dependent and must not
  // be replayed as if it were the configuration's true behavior.
  std::string fe_key;
  std::shared_ptr<const FeCacheEntry> fe_entry;
  if (fe_cache_ != nullptr) {
    fe_key = FeCacheKeyFor(assignment, split_index, fidelity);
    fe_entry = fe_cache_->Get(fe_key);
  }
  if (fe_entry == nullptr) {
    Dataset train = data_->Subset(split.train);
    if (fidelity < 1.0) {
      // Subsample seed from the FE stream: the rows the model trains on
      // are part of the cached FE result, so they too must be a pure
      // function of the FE prefix.
      Rng rng(fe_seed ^ 0x5f5f5f5fULL);
      std::vector<size_t> idx = SubsampleIndices(train, fidelity, 20, &rng);
      train = train.Subset(idx);
    }
    FePipeline fe;
    Status s = BuildFePipeline(assignment, fe_seed, &fe);
    if (!s.ok()) return {failure, TrialOutcome::kBuildFailed};
    Result<Dataset> engineered = fe.FitTransform(std::move(train));
    if (!engineered.ok()) {
      VOLCANOML_LOG(Debug) << "FE failed: " << engineered.status().ToString();
      return {failure, classify(engineered.status())};
    }
    Dataset valid = data_->Subset(split.test);
    valid.ReplaceFeatures(fe.Transform(std::move(valid.mutable_x())));
    auto entry = std::make_shared<FeCacheEntry>();
    entry->fe = std::move(fe);
    entry->train = std::move(engineered.value());
    entry->valid = std::move(valid);
    if (fe_cache_ != nullptr) fe_cache_->Put(fe_key, entry);
    fe_entry = std::move(entry);
  }

  std::unique_ptr<Model> model;
  Status s = BuildModel(assignment, seed, &model);
  if (!s.ok()) return {failure, TrialOutcome::kBuildFailed};
  s = model->Fit(fe_entry->train);
  if (!s.ok()) {
    VOLCANOML_LOG(Debug) << "model fit failed: " << s.ToString();
    return {failure, classify(s)};
  }
  std::vector<double> pred = model->Predict(fe_entry->valid.x());
  double utility = Utility(fe_entry->valid, pred);
  if (!std::isfinite(utility)) return {failure, TrialOutcome::kNonFinite};
  return {utility, TrialOutcome::kOk};
}

EvalOutcome EvalContext::EvaluateOnce(const Assignment& assignment,
                                      double fidelity) const {
  VOLCANOML_CHECK(fidelity > 0.0 && fidelity <= 1.0);
  const uint64_t hash = HashAssignment(assignment);
  const uint64_t seed = hash ^ options_.seed;
  const uint64_t fe_seed = FeRequestHash(assignment) ^ options_.seed;
  Stopwatch timer;

  // Install this trial's deadline for every cooperation point below us.
  Deadline deadline = options_.trial_timeout_seconds > 0.0
                          ? Deadline::After(options_.trial_timeout_seconds)
                          : Deadline::Never();
  ScopedTrialDeadline scoped(deadline);

  EvalOutcome out;
  FaultInjector::Fault fault = options_.fault_injector != nullptr
                                   ? options_.fault_injector->Decide(hash)
                                   : FaultInjector::Fault::kNone;
  if (fault == FaultInjector::Fault::kFail) {
    out.utility = FailureUtility(space_->task());
    out.outcome = TrialOutcome::kFaultInjected;
    out.elapsed_seconds = timer.ElapsedSeconds();
    return out;
  }
  if (fault == FaultInjector::Fault::kStall) {
    // Simulate a hung trial: block until the deadline fires, proving the
    // guard bounds the damage. Without a deadline the stall degenerates
    // to an immediate injected failure instead of hanging the search.
    if (deadline.unlimited()) {
      out.outcome = TrialOutcome::kFaultInjected;
    } else {
      while (!TrialDeadlineExpired()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      out.outcome = TrialOutcome::kTimedOut;
    }
    out.utility = FailureUtility(space_->task());
    out.elapsed_seconds = timer.ElapsedSeconds();
    return out;
  }
  if (fault == FaultInjector::Fault::kNan) {
    // Pretend training produced a non-finite utility; the sentinel
    // substitution below is exactly what the real non-finite guard does.
    out.utility = FailureUtility(space_->task());
    out.outcome = TrialOutcome::kNonFinite;
    out.elapsed_seconds = timer.ElapsedSeconds();
    return out;
  }

  double total = 0.0;
  TrialOutcome outcome = TrialOutcome::kOk;
  bool timed_out_between_splits = false;
  for (size_t si = 0; si < splits_.size(); ++si) {
    if (si > 0 && TrialDeadlineExpired()) {
      // Don't start another fold once the trial deadline has fired.
      timed_out_between_splits = true;
      break;
    }
    SplitResult split_result =
        EvaluateOnSplit(assignment, splits_[si], si, fidelity, seed, fe_seed);
    total += split_result.utility;
    if (outcome == TrialOutcome::kOk) outcome = split_result.outcome;
  }
  if (timed_out_between_splits) {
    out.utility = FailureUtility(space_->task());
    out.outcome = TrialOutcome::kTimedOut;
  } else {
    out.utility = total / static_cast<double>(splits_.size());
    out.outcome = outcome;
  }
  out.elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

std::string EvalContext::CacheKey(const Assignment& assignment,
                                  double fidelity) const {
  std::string key;
  key.reserve(assignment.size() * 16 + sizeof(double));
  auto append_bits = [&key](double v) {
    char bits[sizeof(double)];
    std::memcpy(bits, &v, sizeof(bits));
    key.append(bits, sizeof(bits));
  };
  for (const auto& [name, value] : assignment) {
    key.append(name);
    key.push_back('=');
    append_bits(value);
    key.push_back(';');
  }
  key.push_back('@');
  append_bits(fidelity);
  return key;
}

Result<FittedPipeline> EvalContext::FitFinal(
    const Assignment& assignment) const {
  uint64_t seed = HashAssignment(assignment) ^ options_.seed;
  uint64_t fe_seed = FeRequestHash(assignment) ^ options_.seed;
  FePipeline fe;
  std::unique_ptr<Model> model;
  Status s = BuildFePipeline(assignment, fe_seed, &fe);
  if (!s.ok()) return s;
  s = BuildModel(assignment, seed, &model);
  if (!s.ok()) return s;
  Result<Dataset> engineered = fe.FitTransform(*data_);
  if (!engineered.ok()) return engineered.status();
  s = model->Fit(engineered.value());
  if (!s.ok()) return s;
  return FittedPipeline(std::move(fe), std::move(model));
}

}  // namespace volcanoml
