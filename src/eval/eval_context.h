#ifndef VOLCANOML_EVAL_EVAL_CONTEXT_H_
#define VOLCANOML_EVAL_EVAL_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cs/configuration.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "eval/search_space.h"
#include "fe/pipeline.h"
#include "ml/model.h"
#include "util/status.h"

namespace volcanoml {

/// Utility value reported for pipelines that fail to train. Low enough
/// that any functioning pipeline dominates it, finite so surrogate models
/// can still be fitted on it.
[[nodiscard]] double FailureUtility(TaskType task);

/// A fully materialized ML pipeline: fitted feature engineering plus a
/// fitted model. Returned by EvalContext::FitFinal for deployment on
/// unseen data.
class FittedPipeline {
 public:
  FittedPipeline(FePipeline fe, std::unique_ptr<Model> model)
      : fe_(std::move(fe)), model_(std::move(model)) {}

  /// Predicts targets for raw (un-engineered) features.
  [[nodiscard]] std::vector<double> Predict(const Matrix& x) const {
    return model_->Predict(fe_.Transform(x));
  }

 private:
  FePipeline fe_;
  std::unique_ptr<Model> model_;
};

/// Options for validation-based utility estimation.
struct EvaluatorOptions {
  /// Fraction of the training data held out for validation (holdout mode).
  double validation_fraction = 0.25;
  /// > 1 switches to k-fold cross-validation.
  size_t cv_folds = 1;
  /// Budget currency. false: one full-fidelity evaluation costs one unit
  /// (deterministic; used by tests). true: an evaluation costs its
  /// wall-clock seconds — the paper's actual budget model, under which
  /// cheap pipelines buy more search (used by the benchmarks).
  bool budget_in_seconds = false;
  uint64_t seed = 1;
  /// Workers inside the evaluation engine. <= 1 evaluates inline on the
  /// calling thread (the serial path); > 1 runs batch requests on a
  /// ThreadPool of this size.
  size_t num_threads = 1;
  /// Memoize utilities per (configuration, fidelity). Hits skip the
  /// pipeline training but still meter budget / observations exactly as a
  /// recomputation would, so deterministic-budget trajectories are
  /// unaffected (evaluation is a pure function of the request).
  bool memoize = true;
};

/// The immutable half of the evaluator: search space, dataset, validation
/// splits, options. Everything here is fixed after construction and every
/// method is const, so one context can be shared by any number of
/// concurrent evaluation workers without synchronization.
///
/// Randomness scheme: each request derives its RNG seed as
/// `HashAssignment(assignment) ^ options.seed` — a per-request stream
/// independent of evaluation order, which is what makes a batched run
/// reproduce the serial run's utilities bit-for-bit.
class EvalContext {
 public:
  EvalContext(const SearchSpace* space, const Dataset* data,
              const EvaluatorOptions& options);

  /// One evaluation's outcome plus its wall-clock cost (the seconds
  /// currency of EvaluatorOptions::budget_in_seconds).
  struct Measurement {
    double utility = 0.0;
    double elapsed_seconds = 0.0;
  };

  /// Validation utility of `assignment` at the given fidelity (training-
  /// set subsample fraction in (0, 1]). Pure: same request, same result.
  [[nodiscard]] Measurement EvaluateOnce(const Assignment& assignment,
                                         double fidelity) const;

  /// Trains the configured pipeline on ALL of this context's data and
  /// returns it for test-time prediction.
  [[nodiscard]] Result<FittedPipeline> FitFinal(
      const Assignment& assignment) const;

  /// Stable memoization key for a request: the full assignment contents
  /// (name + value bit patterns, in map order) plus the fidelity — not a
  /// lossy hash, so distinct configurations never alias in the cache.
  [[nodiscard]] std::string CacheKey(const Assignment& assignment,
                                     double fidelity) const;

  [[nodiscard]] const SearchSpace& space() const { return *space_; }
  [[nodiscard]] const Dataset& data() const { return *data_; }
  [[nodiscard]] const EvaluatorOptions& options() const { return options_; }

 private:
  /// Builds (unfitted) FE pipeline + model from an assignment.
  [[nodiscard]] Status BuildPipeline(const Assignment& assignment,
                                     uint64_t seed, FePipeline* fe,
                                     std::unique_ptr<Model>* model) const;

  [[nodiscard]] double EvaluateOnSplit(const Assignment& assignment,
                                       const Split& split, double fidelity,
                                       uint64_t seed) const;

  const SearchSpace* space_;
  const Dataset* data_;
  EvaluatorOptions options_;
  std::vector<Split> splits_;  ///< Fixed validation splits.
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_EVAL_CONTEXT_H_
