#ifndef VOLCANOML_EVAL_EVAL_CONTEXT_H_
#define VOLCANOML_EVAL_EVAL_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cs/configuration.h"
#include "data/dataset.h"
#include "data/precision.h"
#include "data/splits.h"
#include "eval/fault_injector.h"
#include "eval/fe_cache.h"
#include "eval/search_space.h"
#include "fe/pipeline.h"
#include "ml/model.h"
#include "util/status.h"

namespace volcanoml {

/// Utility value reported for pipelines that fail to train. Low enough
/// that any functioning pipeline dominates it, finite so surrogate models
/// can still be fitted on it.
[[nodiscard]] double FailureUtility(TaskType task);

/// Why a trial ended the way it did. Everything except kOk reports the
/// FailureUtility sentinel; the taxonomy is what lets the search layer
/// treat a timing-out configuration differently from a NaN-producing one.
enum class TrialOutcome {
  kOk = 0,
  kBuildFailed,     ///< Pipeline/model construction rejected the config.
  kTrainFailed,     ///< FE or model fitting returned a non-OK Status.
  kNonFinite,       ///< Training succeeded but the utility was NaN/inf.
  kTimedOut,        ///< The trial deadline fired at a cooperation point.
  kFaultInjected,   ///< A FaultInjector forced this trial to fail.
  kWorkerDied,      ///< An out-of-process worker crashed past the retry cap.
};

inline constexpr size_t kNumTrialOutcomes = 7;

/// Short stable name for logging/telemetry, e.g. "timed_out".
[[nodiscard]] const char* TrialOutcomeName(TrialOutcome outcome);

/// One evaluation's result: the utility (FailureUtility sentinel on any
/// failure), its wall-clock cost, and why it ended. This is the structured
/// replacement for the bare utility double; the utility-only API survives
/// as a facade on top of it.
struct EvalOutcome {
  double utility = 0.0;
  double elapsed_seconds = 0.0;
  TrialOutcome outcome = TrialOutcome::kOk;

  [[nodiscard]] bool ok() const { return outcome == TrialOutcome::kOk; }
  /// Hard failures are the ones the search layer reacts to (retry caps,
  /// quarantine, arm failure rates): deadline overruns, injected faults,
  /// and worker deaths past the supervisor's retry cap. Genuine
  /// build/train/non-finite failures keep their historic sentinel-utility
  /// treatment so clean runs are unchanged.
  [[nodiscard]] bool hard_failure() const {
    return outcome == TrialOutcome::kTimedOut ||
           outcome == TrialOutcome::kFaultInjected ||
           outcome == TrialOutcome::kWorkerDied;
  }
};

/// A fully materialized ML pipeline: fitted feature engineering plus a
/// fitted model. Returned by EvalContext::FitFinal for deployment on
/// unseen data.
class FittedPipeline {
 public:
  FittedPipeline(FePipeline fe, std::unique_ptr<Model> model)
      : fe_(std::move(fe)), model_(std::move(model)) {}

  /// Predicts targets for raw (un-engineered) features.
  [[nodiscard]] std::vector<double> Predict(const Matrix& x) const {
    return model_->Predict(fe_.Transform(x));
  }

 private:
  FePipeline fe_;
  std::unique_ptr<Model> model_;
};

/// Where trial computations run. kInProcess evaluates on the engine's
/// own thread pool (the bit-reproducible oracle). kProcessPool ships
/// each computation to a supervised out-of-process worker, so a
/// segfaulting trainer kills one worker, not the search; utilities are
/// bit-identical to the in-process path because evaluation is a pure
/// function of the request and doubles travel as IEEE-754 bit patterns.
enum class EvalBackendKind : uint8_t {
  kInProcess = 0,
  kProcessPool = 1,
};

/// Short stable name for logging/CLI, e.g. "process-pool".
[[nodiscard]] const char* EvalBackendKindName(EvalBackendKind kind);

/// Options for validation-based utility estimation.
struct EvaluatorOptions {
  /// Fraction of the training data held out for validation (holdout mode).
  double validation_fraction = 0.25;
  /// > 1 switches to k-fold cross-validation.
  size_t cv_folds = 1;
  /// Budget currency. false: one full-fidelity evaluation costs one unit
  /// (deterministic; used by tests). true: an evaluation costs its
  /// wall-clock seconds — the paper's actual budget model, under which
  /// cheap pipelines buy more search (used by the benchmarks).
  bool budget_in_seconds = false;
  uint64_t seed = 1;
  /// Workers inside the evaluation engine. <= 1 evaluates inline on the
  /// calling thread (the serial path); > 1 runs batch requests on a
  /// ThreadPool of this size.
  size_t num_threads = 1;
  /// Memoize utilities per (configuration, fidelity). Hits skip the
  /// pipeline training but still meter budget / observations exactly as a
  /// recomputation would, so deterministic-budget trajectories are
  /// unaffected (evaluation is a pure function of the request).
  bool memoize = true;
  /// Per-trial deadline in wall-clock seconds; 0 (the default) disables
  /// it. Training loops poll the deadline cooperatively, so a trial can
  /// overrun by at most one cooperation interval (one epoch / tree /
  /// boosting round / FE operator).
  double trial_timeout_seconds = 0.0;
  /// Byte budget (in MiB) for the feature-engineering prefix cache; 0
  /// (the default) disables it. When enabled, evaluations whose FE
  /// sub-assignment, split, and fidelity match a cached entry skip
  /// FitTransform and start the model phase from the cached matrices.
  /// Because FE randomness derives from the FE sub-assignment alone, a
  /// hit is bit-identical to recomputation; budget accounting is
  /// unaffected in deterministic-unit mode.
  size_t fe_cache_capacity_mb = 0;
  /// Numeric lane for model / FE-operator internals (data/precision.h).
  /// kFloat32 halves the memory traffic through the distance- and
  /// GEMM-dominated components (kNN, MLP, Nystroem, random projection);
  /// operators without an f32 lane ignore it. Pipeline matrices, split
  /// bookkeeping, and metrics stay double either way, and each lane is
  /// sequentially deterministic on its own.
  NumericPrecision precision = NumericPrecision::kFloat64;
  /// Optional deterministic fault injection (not owned; may be null).
  /// Faulted trials report kFaultInjected / kTimedOut / kNonFinite.
  const FaultInjector* fault_injector = nullptr;

  // -- dispatch backend (see src/worker/ and DESIGN.md "Worker pool &
  //    supervision") -------------------------------------------------------

  /// Which DispatchBackend computes trial outcomes.
  EvalBackendKind backend = EvalBackendKind::kInProcess;
  /// Worker processes in the pool (process-pool backend only; >= 1).
  size_t worker_pool_size = 2;
  /// Supervisor-enforced wall-clock limit per worker attempt, in seconds;
  /// on expiry the worker is SIGKILLed and the trial reports kTimedOut.
  /// 0 (the default) disables the hard kill — only the cooperative
  /// trial_timeout_seconds applies then.
  double trial_hard_timeout_seconds = 0.0;
  /// How many times a request whose worker died is retried (on a fresh
  /// worker) before the trial is committed as kWorkerDied and fed to the
  /// quarantine path.
  size_t worker_retry_cap = 3;
  /// Exponential backoff before each respawn: base * 2^(attempt), capped.
  int worker_backoff_base_ms = 5;
  int worker_backoff_max_ms = 1000;
  /// Restart-storm circuit breaker: this many consecutive deaths on one
  /// worker slot (without an intervening successful reply) opens the
  /// circuit and degrades the pool to in-process evaluation.
  size_t worker_respawn_limit = 8;
  /// Path to the volcanoml_worker binary. Empty = resolve automatically:
  /// $VOLCANOML_WORKER_BINARY, then next to /proc/self/exe, then the
  /// sibling examples/ directory of the running binary.
  std::string worker_binary;
};

/// The immutable half of the evaluator: search space, dataset, validation
/// splits, options. Everything here is fixed after construction and every
/// method is const, so one context can be shared by any number of
/// concurrent evaluation workers without synchronization.
///
/// Randomness scheme: each request derives two seeds — the model seed from
/// `RequestHash(assignment) ^ options.seed` and the FE seed from
/// `FeRequestHash(assignment) ^ options.seed` (FE sub-assignment only).
/// Both are per-request streams independent of evaluation order, which is
/// what makes a batched run reproduce the serial run's utilities
/// bit-for-bit; the FE seed depending only on the FE prefix is what makes
/// the FE cache exact (see DESIGN.md "FE prefix cache & compute kernels").
class EvalContext {
 public:
  EvalContext(const SearchSpace* space, const Dataset* data,
              const EvaluatorOptions& options);

  /// Validation utility of `assignment` at the given fidelity (training-
  /// set subsample fraction in (0, 1]), with failure taxonomy and elapsed
  /// cost. Pure: same request, same result (wall-clock timeouts excepted —
  /// see DESIGN.md "Failure model & trial guard").
  [[nodiscard]] EvalOutcome EvaluateOnce(const Assignment& assignment,
                                         double fidelity) const;

  /// Deterministic per-configuration hash; the key both for per-request
  /// seeding and for FaultInjector decisions. Exposed so tests and benches
  /// can predict which configurations an injector will fault.
  [[nodiscard]] static uint64_t RequestHash(const Assignment& assignment);

  /// Hash of the feature-engineering sub-assignment only (parameters whose
  /// names start with "fe:"). FE-stage seeds and the fidelity-subsample
  /// seed derive from this hash, so configurations sharing an FE prefix
  /// train their FE stages with identical randomness — the property that
  /// makes FE-cache hits bit-identical to recomputation.
  [[nodiscard]] static uint64_t FeRequestHash(const Assignment& assignment);

  /// Trains the configured pipeline on ALL of this context's data and
  /// returns it for test-time prediction.
  [[nodiscard]] Result<FittedPipeline> FitFinal(
      const Assignment& assignment) const;

  /// Stable memoization key for a request: the full assignment contents
  /// (name + value bit patterns, in map order) plus the fidelity — not a
  /// lossy hash, so distinct configurations never alias in the cache.
  [[nodiscard]] std::string CacheKey(const Assignment& assignment,
                                     double fidelity) const;

  [[nodiscard]] const SearchSpace& space() const { return *space_; }
  [[nodiscard]] const Dataset& data() const { return *data_; }
  [[nodiscard]] const EvaluatorOptions& options() const { return options_; }

  /// FE-cache telemetry (all zeros when the cache is disabled).
  [[nodiscard]] FeCache::Stats fe_cache_stats() const;

 private:
  /// Builds the (unfitted) FE pipeline from an assignment. `fe_seed` must
  /// be derived from FeRequestHash so identical FE prefixes build
  /// identically seeded operators.
  [[nodiscard]] Status BuildFePipeline(const Assignment& assignment,
                                       uint64_t fe_seed, FePipeline* fe) const;

  /// Builds the (unfitted) model from an assignment. `seed` derives from
  /// the full-assignment hash, so model randomness still varies across
  /// configurations sharing an FE prefix.
  [[nodiscard]] Status BuildModel(const Assignment& assignment, uint64_t seed,
                                  std::unique_ptr<Model>* model) const;

  /// Exact (non-hashed) FE-cache key: the serialized FE sub-assignment
  /// plus split index, fidelity, and the cv seed.
  [[nodiscard]] std::string FeCacheKeyFor(const Assignment& assignment,
                                          size_t split_index,
                                          double fidelity) const;

  /// One split's utility plus its failure classification.
  struct SplitResult {
    double utility = 0.0;
    TrialOutcome outcome = TrialOutcome::kOk;
  };

  [[nodiscard]] SplitResult EvaluateOnSplit(const Assignment& assignment,
                                            const Split& split,
                                            size_t split_index,
                                            double fidelity, uint64_t seed,
                                            uint64_t fe_seed) const;

  const SearchSpace* space_;
  const Dataset* data_;
  EvaluatorOptions options_;
  std::vector<Split> splits_;  ///< Fixed validation splits.
  /// FE prefix cache; null when options_.fe_cache_capacity_mb == 0. The
  /// cache is internally synchronized, so sharing one context across
  /// evaluation workers stays safe.
  std::unique_ptr<FeCache> fe_cache_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_EVAL_CONTEXT_H_
