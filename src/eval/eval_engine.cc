#include "eval/eval_engine.h"

#include <algorithm>

#include "util/check.h"

namespace volcanoml {

namespace {
/// Floor on the seconds cost of one committed request: instantly-failing
/// pipelines and cache hits cannot consume the budget loop forever.
constexpr double kMinSecondsCost = 1e-4;
}  // namespace

EvalEngine::EvalEngine(const EvalContext* context) : context_(context) {
  VOLCANOML_CHECK(context_ != nullptr);
  if (context_->options().num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(context_->options().num_threads);
  }
}

size_t EvalEngine::num_threads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

std::vector<double> EvalEngine::EvaluateBatch(
    const std::vector<EvalRequest>& requests) {
  const size_t n = requests.size();
  std::vector<double> utilities(n, 0.0);
  if (n == 0) return utilities;
  const EvaluatorOptions& options = context_->options();
  for (const EvalRequest& request : requests) {
    VOLCANOML_CHECK(request.fidelity > 0.0 && request.fidelity <= 1.0);
  }

  // Phase 1 — resolve. Each request is answered by the memo cache, by a
  // computation slot it owns (primary), or by another request's slot
  // (in-batch duplicate). Slots are computed once, concurrently.
  struct Slot {
    size_t primary;  ///< Request index that computes this slot.
    EvalContext::Measurement measurement;
  };
  std::vector<std::string> keys(n);
  std::vector<double> cached(n, 0.0);
  std::vector<bool> from_cache(n, false);
  constexpr size_t kNoSlot = static_cast<size_t>(-1);
  std::vector<size_t> slot_of(n, kNoSlot);
  std::vector<Slot> slots;
  slots.reserve(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unordered_map<std::string, size_t> batch_slots;
    for (size_t i = 0; i < n; ++i) {
      keys[i] = context_->CacheKey(requests[i].assignment,
                                   requests[i].fidelity);
      if (options.memoize) {
        auto hit = cache_.find(keys[i]);
        if (hit != cache_.end()) {
          cached[i] = hit->second;
          from_cache[i] = true;
          continue;
        }
        auto [it, inserted] = batch_slots.try_emplace(keys[i], slots.size());
        if (inserted) slots.push_back({i, {}});
        slot_of[i] = it->second;
      } else {
        slot_of[i] = slots.size();
        slots.push_back({i, {}});
      }
    }
  }

  // Phase 2 — compute the slots, off-lock. Workers only read the shared
  // immutable context and write disjoint slots, so no synchronization is
  // needed here; each slot's utility is a pure function of its request.
  auto compute = [&](size_t s) {
    const EvalRequest& request = requests[slots[s].primary];
    slots[s].measurement =
        context_->EvaluateOnce(request.assignment, request.fidelity);
  };
  if (pool_ != nullptr && slots.size() > 1) {
    pool_->ParallelFor(slots.size(), compute);
  } else {
    for (size_t s = 0; s < slots.size(); ++s) compute(s);
  }

  // Phase 3 — commit in request order: the budget meter, evaluation
  // count, observation log and cache advance deterministically no matter
  // how the computations were scheduled.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      double utility;
      double seconds_cost;
      if (from_cache[i]) {
        utility = cached[i];
        seconds_cost = kMinSecondsCost;
        ++cache_hits_;
      } else {
        const Slot& slot = slots[slot_of[i]];
        utility = slot.measurement.utility;
        if (slot.primary == i) {
          seconds_cost =
              std::max(slot.measurement.elapsed_seconds, kMinSecondsCost);
          if (options.memoize) cache_.emplace(keys[i], utility);
        } else {  // In-batch duplicate: answered by the primary's result.
          seconds_cost = kMinSecondsCost;
          ++cache_hits_;
        }
      }
      consumed_budget_ +=
          options.budget_in_seconds ? seconds_cost : requests[i].fidelity;
      ++num_evaluations_;
      if (requests[i].fidelity >= 1.0) {
        observations_.push_back({requests[i].assignment, utility});
      }
      utilities[i] = utility;
    }
  }
  return utilities;
}

double EvalEngine::Evaluate(const Assignment& assignment, double fidelity) {
  return EvaluateBatch({{assignment, fidelity}})[0];
}

double EvalEngine::consumed_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consumed_budget_;
}

size_t EvalEngine::num_evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_evaluations_;
}

size_t EvalEngine::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

size_t EvalEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace volcanoml
