#include "eval/eval_engine.h"

#include <algorithm>

#include "util/check.h"
#include "util/sorted_view.h"

namespace volcanoml {

namespace {
/// Floor on the seconds cost of one committed request: instantly-failing
/// pipelines and cache hits cannot consume the budget loop forever.
constexpr double kMinSecondsCost = 1e-4;
}  // namespace

EvalEngine::EvalEngine(const EvalContext* context) : context_(context) {
  VOLCANOML_CHECK(context_ != nullptr);
  backend_ = CreateDispatchBackend(context_);
  VOLCANOML_CHECK(backend_ != nullptr);
}

size_t EvalEngine::num_threads() const { return backend_->parallelism(); }

void EvalEngine::set_budget_limit(double limit) {
  MutexLock lock(mu_);
  budget_limit_ = limit;
}

bool EvalEngine::LookupCacheLocked(const std::string& key,
                                   CachedResult* result) const {
  auto hit = cache_.find(key);
  if (hit == cache_.end()) return false;
  *result = hit->second;
  return true;
}

void EvalEngine::CommitLocked(const EvalRequest& request, EvalOutcome* result,
                              double seconds_cost) {
  const EvaluatorOptions& options = context_->options();
  double cost_units =
      options.budget_in_seconds ? seconds_cost : request.fidelity;
  result->elapsed_seconds = seconds_cost;
  consumed_budget_ += cost_units;
  ++num_evaluations_;
  outcome_counts_[static_cast<size_t>(result->outcome)] += 1;
  if (!result->ok()) budget_lost_to_failures_ += cost_units;
  if (result->hard_failure()) {
    // Keyed on the assignment alone (fidelity 0 is outside the valid
    // request range, so this cannot collide with a memo key).
    hard_failures_by_config_[context_->CacheKey(request.assignment, 0.0)] += 1;
  }
  if (request.fidelity >= 1.0) {
    observations_.push_back({request.assignment, result->utility});
  }
}

std::vector<EvalOutcome> EvalEngine::EvaluateBatchOutcomes(
    const std::vector<EvalRequest>& requests) {
  const size_t n = requests.size();
  std::vector<EvalOutcome> results;
  if (n == 0) return results;
  const EvaluatorOptions& options = context_->options();
  for (const EvalRequest& request : requests) {
    VOLCANOML_CHECK(request.fidelity > 0.0 && request.fidelity <= 1.0);
  }

  // Phase 1 — resolve. Each request is answered by the memo cache, by a
  // computation slot it owns (primary), or by another request's slot
  // (in-batch duplicate). Slots are computed once, concurrently. Dispatch
  // stops at the first request for which the (projected) budget is
  // already exhausted; requests past that point are never computed.
  struct Slot {
    size_t primary;  ///< Request index that computes this slot.
    EvalOutcome outcome;
  };
  std::vector<std::string> keys(n);
  std::vector<CachedResult> cached(n);
  std::vector<bool> from_cache(n, false);
  constexpr size_t kNoSlot = static_cast<size_t>(-1);
  std::vector<size_t> slot_of(n, kNoSlot);
  std::vector<Slot> slots;
  slots.reserve(n);
  size_t dispatched = n;
  {
    MutexLock lock(mu_);
    std::unordered_map<std::string, size_t> batch_slots;
    // Projected budget after the requests resolved so far. Deterministic
    // mode projects exactly (a request costs its fidelity); seconds mode
    // projects the known floor cost and relies on the commit-time guard
    // for the rest.
    double projected = consumed_budget_;
    for (size_t i = 0; i < n; ++i) {
      if (projected >= budget_limit_) {
        dispatched = i;
        break;
      }
      projected += options.budget_in_seconds ? kMinSecondsCost
                                             : requests[i].fidelity;
      keys[i] = context_->CacheKey(requests[i].assignment,
                                   requests[i].fidelity);
      if (options.memoize) {
        if (LookupCacheLocked(keys[i], &cached[i])) {
          from_cache[i] = true;
          continue;
        }
        auto [it, inserted] = batch_slots.try_emplace(keys[i], slots.size());
        if (inserted) slots.push_back({i, {}});
        slot_of[i] = it->second;
      } else {
        slot_of[i] = slots.size();
        slots.push_back({i, {}});
      }
    }
  }

  // Phase 2 — compute the slots, off-lock, through the dispatch backend
  // (in-process pool or supervised worker processes). Each slot's outcome
  // is a pure function of its request, so any backend honoring the
  // DispatchBackend contract leaves the committed trajectory unchanged.
  if (!slots.empty()) {
    std::vector<EvalRequest> slot_requests;
    slot_requests.reserve(slots.size());
    for (const Slot& slot : slots) {
      slot_requests.push_back(requests[slot.primary]);
    }
    std::vector<EvalOutcome> slot_outcomes(slots.size());
    backend_->Dispatch(slot_requests, &slot_outcomes);
    for (size_t s = 0; s < slots.size(); ++s) {
      slots[s].outcome = slot_outcomes[s];
    }
  }

  // Phase 3 — commit in request order: the budget meter, evaluation
  // count, observation log, telemetry and cache advance deterministically
  // no matter how the computations were scheduled. Committing stops once
  // the budget limit is crossed (only relevant in seconds mode, where the
  // phase-1 projection is a lower bound).
  results.reserve(dispatched);
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < dispatched; ++i) {
      if (consumed_budget_ >= budget_limit_) break;
      EvalOutcome result;
      double seconds_cost;
      if (from_cache[i]) {
        result.utility = cached[i].utility;
        result.outcome = cached[i].outcome;
        seconds_cost = kMinSecondsCost;
        ++cache_hits_;
      } else {
        const Slot& slot = slots[slot_of[i]];
        result.utility = slot.outcome.utility;
        result.outcome = slot.outcome.outcome;
        if (slot.primary == i) {
          seconds_cost =
              std::max(slot.outcome.elapsed_seconds, kMinSecondsCost);
          if (options.memoize) {
            cache_.emplace(keys[i],
                           CachedResult{result.utility, result.outcome});
          }
        } else {  // In-batch duplicate: answered by the primary's result.
          seconds_cost = kMinSecondsCost;
          ++cache_hits_;
        }
      }
      CommitLocked(requests[i], &result, seconds_cost);
      results.push_back(result);
    }
  }
  return results;
}

std::vector<double> EvalEngine::EvaluateBatch(
    const std::vector<EvalRequest>& requests) {
  std::vector<EvalOutcome> outcomes = EvaluateBatchOutcomes(requests);
  std::vector<double> utilities;
  utilities.reserve(outcomes.size());
  for (const EvalOutcome& outcome : outcomes) {
    utilities.push_back(outcome.utility);
  }
  return utilities;
}

double EvalEngine::Evaluate(const Assignment& assignment, double fidelity) {
  std::vector<EvalOutcome> outcomes =
      EvaluateBatchOutcomes({{assignment, fidelity}});
  if (outcomes.empty()) {
    // Budget limit truncated the request before dispatch.
    return FailureUtility(context_->space().task());
  }
  return outcomes[0].utility;
}

double EvalEngine::consumed_budget() const {
  MutexLock lock(mu_);
  return consumed_budget_;
}

size_t EvalEngine::num_evaluations() const {
  MutexLock lock(mu_);
  return num_evaluations_;
}

size_t EvalEngine::cache_hits() const {
  MutexLock lock(mu_);
  return cache_hits_;
}

size_t EvalEngine::cache_size() const {
  MutexLock lock(mu_);
  return cache_.size();
}

size_t EvalEngine::outcome_count(TrialOutcome outcome) const {
  MutexLock lock(mu_);
  return outcome_counts_[static_cast<size_t>(outcome)];
}

double EvalEngine::budget_lost_to_failures() const {
  MutexLock lock(mu_);
  return budget_lost_to_failures_;
}

size_t EvalEngine::MaxHardFailuresPerConfig() const {
  MutexLock lock(mu_);
  size_t max_count = 0;
  for (const auto& [key, count] : hard_failures_by_config_) {
    max_count = std::max(max_count, count);
  }
  return max_count;
}

std::vector<std::pair<Assignment, double>> EvalEngine::observations() const {
  MutexLock lock(mu_);
  return observations_;
}

void EvalEngine::SaveState(SnapshotWriter* w) const {
  MutexLock lock(mu_);
  SaveStateLocked(w);
}

void EvalEngine::SaveStateLocked(SnapshotWriter* w) const {
  w->Begin("engine");
  w->F64("consumed_budget", consumed_budget_);
  w->U64("num_evaluations", num_evaluations_);
  w->U64("cache_hits", cache_hits_);
  for (size_t i = 0; i < kNumTrialOutcomes; ++i) {
    w->U64("outcome_count", outcome_counts_[i]);
  }
  w->F64("budget_lost_to_failures", budget_lost_to_failures_);
  // Unordered maps are written through SortedItems so identical engine
  // state always produces byte-identical snapshots (determinism R11).
  const auto failures = SortedItems(hard_failures_by_config_);
  w->U64("hard_failures", failures.size());
  for (const auto& [key, count] : failures) {
    w->Str("failure_key", key);
    w->U64("failure_count", count);
  }
  w->U64("observations", observations_.size());
  for (const auto& [assignment, utility] : observations_) {
    SaveAssignment(w, "obs_assignment", assignment);
    w->F64("obs_utility", utility);
  }
  const auto entries = SortedItems(cache_);
  w->U64("cache", entries.size());
  for (const auto& [key, result] : entries) {
    w->Str("cache_key", key);
    w->F64("cache_utility", result.utility);
    w->U64("cache_outcome", static_cast<size_t>(result.outcome));
  }
  w->End("engine");
}

void EvalEngine::LoadState(SnapshotReader* r) {
  MutexLock lock(mu_);
  LoadStateLocked(r);
}

void EvalEngine::LoadStateLocked(SnapshotReader* r) {
  r->Begin("engine");
  consumed_budget_ = r->F64("consumed_budget");
  num_evaluations_ = r->U64("num_evaluations");
  cache_hits_ = r->U64("cache_hits");
  for (size_t i = 0; i < kNumTrialOutcomes; ++i) {
    outcome_counts_[i] = r->U64("outcome_count");
  }
  budget_lost_to_failures_ = r->F64("budget_lost_to_failures");
  uint64_t num_failures = r->U64("hard_failures");
  hard_failures_by_config_.clear();
  for (uint64_t i = 0; i < num_failures && r->ok(); ++i) {
    std::string key = r->Str("failure_key");
    hard_failures_by_config_[key] = r->U64("failure_count");
  }
  uint64_t num_observations = r->U64("observations");
  observations_.clear();
  for (uint64_t i = 0; i < num_observations && r->ok(); ++i) {
    Assignment assignment = LoadAssignment(r, "obs_assignment");
    double utility = r->F64("obs_utility");
    observations_.push_back({std::move(assignment), utility});
  }
  uint64_t num_cached = r->U64("cache");
  cache_.clear();
  for (uint64_t i = 0; i < num_cached && r->ok(); ++i) {
    std::string key = r->Str("cache_key");
    CachedResult result;
    result.utility = r->F64("cache_utility");
    uint64_t outcome = r->U64("cache_outcome");
    if (outcome >= kNumTrialOutcomes) {
      r->Fail("engine cache entry has out-of-range outcome");
      break;
    }
    result.outcome = static_cast<TrialOutcome>(outcome);
    cache_.emplace(std::move(key), result);
  }
  r->End("engine");
}

}  // namespace volcanoml
