#ifndef VOLCANOML_EVAL_EVALUATOR_H_
#define VOLCANOML_EVAL_EVALUATOR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "cs/configuration.h"
#include "data/dataset.h"
#include "eval/eval_context.h"
#include "eval/eval_engine.h"
#include "eval/search_space.h"
#include "util/status.h"

namespace volcanoml {

/// Evaluates joint Assignments on a dataset: builds the FE pipeline and
/// model a configuration describes, trains on the training portion, and
/// returns validation utility (balanced accuracy / negative MSE — higher
/// is better). This is the black-box f(x; D) that all building blocks and
/// baselines optimize.
///
/// Facade over the two real halves (see DESIGN.md "Evaluation engine &
/// threading model"): an immutable EvalContext (space, data, splits) that
/// any number of workers may share, and an EvalEngine that schedules
/// request batches on a thread pool, memoizes repeat configurations, and
/// commits observations + budget metering in request order. A serial
/// Evaluate() call is a batch of one; EvaluatorOptions::num_threads > 1
/// turns batches concurrent without changing any committed trajectory.
class PipelineEvaluator {
 public:
  PipelineEvaluator(const SearchSpace* space, const Dataset* data,
                    const EvaluatorOptions& options)
      : context_(space, data, options), engine_(&context_) {}

  /// Validation utility of `assignment` at the given fidelity (training-
  /// set subsample fraction in (0, 1]).
  [[nodiscard]] double Evaluate(const Assignment& assignment,
                                double fidelity = 1.0) {
    return engine_.Evaluate(assignment, fidelity);
  }

  /// Evaluates a batch of requests (concurrently when the engine has
  /// threads) and returns their utilities in request order. Under an
  /// engine budget limit the result is the committed prefix and can be
  /// shorter than `requests`.
  [[nodiscard]] std::vector<double> EvaluateBatch(
      const std::vector<EvalRequest>& requests) {
    return engine_.EvaluateBatch(requests);
  }

  /// Structured variant: utilities plus failure taxonomy and elapsed
  /// cost, in request order (same truncation semantics as EvaluateBatch).
  [[nodiscard]] std::vector<EvalOutcome> EvaluateBatchOutcomes(
      const std::vector<EvalRequest>& requests) {
    return engine_.EvaluateBatchOutcomes(requests);
  }

  /// Trains the configured pipeline on ALL of this evaluator's data and
  /// returns it for test-time prediction.
  [[nodiscard]] Result<FittedPipeline> FitFinal(const Assignment& assignment) {
    return context_.FitFinal(assignment);
  }

  /// FE prefix cache telemetry (all zeros when
  /// EvaluatorOptions::fe_cache_capacity_mb == 0).
  [[nodiscard]] FeCache::Stats fe_cache_stats() const {
    return context_.fe_cache_stats();
  }

  /// Budget units consumed so far (sum of fidelities evaluated).
  [[nodiscard]] double consumed_budget() const {
    return engine_.consumed_budget();
  }
  [[nodiscard]] size_t num_evaluations() const {
    return engine_.num_evaluations();
  }

  /// Every full-fidelity (assignment, utility) observation, in evaluation
  /// order, copied under the engine mutex. Feeds post-hoc ensemble
  /// selection (core/ensemble.h).
  [[nodiscard]] std::vector<std::pair<Assignment, double>> observations()
      const {
    return engine_.observations();
  }

  /// Snapshot passthrough to the engine (see EvalEngine::SaveState).
  void SaveState(SnapshotWriter* w) const { engine_.SaveState(w); }
  void LoadState(SnapshotReader* r) { engine_.LoadState(r); }

  [[nodiscard]] const SearchSpace& space() const { return context_.space(); }
  [[nodiscard]] const Dataset& data() const { return context_.data(); }

  [[nodiscard]] const EvalContext& context() const { return context_; }
  [[nodiscard]] EvalEngine& engine() { return engine_; }
  [[nodiscard]] const EvalEngine& engine() const { return engine_; }

 private:
  EvalContext context_;
  EvalEngine engine_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_EVALUATOR_H_
