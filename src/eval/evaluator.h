#ifndef VOLCANOML_EVAL_EVALUATOR_H_
#define VOLCANOML_EVAL_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cs/configuration.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "eval/search_space.h"
#include "fe/pipeline.h"
#include "ml/model.h"
#include "util/status.h"

namespace volcanoml {

/// Utility value reported for pipelines that fail to train. Low enough
/// that any functioning pipeline dominates it, finite so surrogate models
/// can still be fitted on it.
[[nodiscard]] double FailureUtility(TaskType task);

/// A fully materialized ML pipeline: fitted feature engineering plus a
/// fitted model. Returned by PipelineEvaluator::FitFinal for deployment
/// on unseen data.
class FittedPipeline {
 public:
  FittedPipeline(FePipeline fe, std::unique_ptr<Model> model)
      : fe_(std::move(fe)), model_(std::move(model)) {}

  /// Predicts targets for raw (un-engineered) features.
  [[nodiscard]] std::vector<double> Predict(const Matrix& x) const {
    return model_->Predict(fe_.Transform(x));
  }

 private:
  FePipeline fe_;
  std::unique_ptr<Model> model_;
};

/// Options for validation-based utility estimation.
struct EvaluatorOptions {
  /// Fraction of the training data held out for validation (holdout mode).
  double validation_fraction = 0.25;
  /// > 1 switches to k-fold cross-validation.
  size_t cv_folds = 1;
  /// Budget currency. false: one full-fidelity evaluation costs one unit
  /// (deterministic; used by tests). true: an evaluation costs its
  /// wall-clock seconds — the paper's actual budget model, under which
  /// cheap pipelines buy more search (used by the benchmarks).
  bool budget_in_seconds = false;
  uint64_t seed = 1;
};

/// Evaluates joint Assignments on a dataset: builds the FE pipeline and
/// model a configuration describes, trains on the training portion, and
/// returns validation utility (balanced accuracy / negative MSE — higher
/// is better). This is the black-box f(x; D) that all building blocks and
/// baselines optimize.
///
/// The evaluator also meters consumption: each Evaluate() call adds
/// `fidelity` budget units (a full-data evaluation costs 1; subsampled
/// evaluations cost proportionally less), which is the budget currency
/// shared by all search strategies in the benchmarks.
class PipelineEvaluator {
 public:
  PipelineEvaluator(const SearchSpace* space, const Dataset* data,
                    const EvaluatorOptions& options);

  /// Validation utility of `assignment` at the given fidelity (training-
  /// set subsample fraction in (0, 1]).
  [[nodiscard]] double Evaluate(const Assignment& assignment, double fidelity = 1.0);

  /// Trains the configured pipeline on ALL of this evaluator's data and
  /// returns it for test-time prediction.
  [[nodiscard]] Result<FittedPipeline> FitFinal(const Assignment& assignment);

  /// Budget units consumed so far (sum of fidelities evaluated).
  [[nodiscard]] double consumed_budget() const { return consumed_budget_; }
  [[nodiscard]] size_t num_evaluations() const { return num_evaluations_; }

  /// Every full-fidelity (assignment, utility) observation, in evaluation
  /// order. Feeds post-hoc ensemble selection (core/ensemble.h).
  const std::vector<std::pair<Assignment, double>>& observations() const {
    return observations_;
  }

  const SearchSpace& space() const { return *space_; }
  const Dataset& data() const { return *data_; }

 private:
  /// Builds (unfitted) FE pipeline + model from an assignment.
  [[nodiscard]] Status BuildPipeline(const Assignment& assignment, uint64_t seed,
                       FePipeline* fe, std::unique_ptr<Model>* model) const;

  double EvaluateOnSplit(const Assignment& assignment, const Split& split,
                         double fidelity, uint64_t seed);

  const SearchSpace* space_;
  const Dataset* data_;
  EvaluatorOptions options_;
  std::vector<Split> splits_;  ///< Fixed validation splits.
  double consumed_budget_ = 0.0;
  size_t num_evaluations_ = 0;
  std::vector<std::pair<Assignment, double>> observations_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_EVALUATOR_H_
