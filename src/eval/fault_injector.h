#ifndef VOLCANOML_EVAL_FAULT_INJECTOR_H_
#define VOLCANOML_EVAL_FAULT_INJECTOR_H_

#include <cstdint>

namespace volcanoml {

/// Deterministic fault-injection hook for the evaluation stack: the test
/// substrate for the trial-guard layer. A FaultInjector decides, from the
/// request's configuration hash alone, whether a trial should fail
/// immediately, stall until its deadline fires, or produce a NaN utility.
///
/// Decisions are keyed on the request hash — not on call order or thread —
/// so the same configuration always draws the same fault under the same
/// injector seed, regardless of batch size or thread count. That keeps
/// fault-injected searches as reproducible as clean ones.
class FaultInjector {
 public:
  enum class Fault {
    kNone = 0,
    kFail,   ///< Trial reports an immediate injected failure.
    kStall,  ///< Trial blocks until its deadline expires (then times out).
    kNan,    ///< Trial yields a non-finite utility.
  };

  struct Options {
    /// Fractions of requests (by hash measure) drawing each fault; their
    /// sum must be <= 1, the remainder runs clean.
    double fail_fraction = 0.0;
    double stall_fraction = 0.0;
    double nan_fraction = 0.0;
    uint64_t seed = 0;
  };

  explicit FaultInjector(const Options& options);

  /// The fault assigned to a request with the given configuration hash.
  /// Pure and thread-safe.
  [[nodiscard]] Fault Decide(uint64_t request_hash) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_FAULT_INJECTOR_H_
