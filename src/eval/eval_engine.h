#ifndef VOLCANOML_EVAL_EVAL_ENGINE_H_
#define VOLCANOML_EVAL_EVAL_ENGINE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cs/configuration.h"
#include "eval/eval_context.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace volcanoml {

/// One evaluation request: a full joint assignment plus the training-set
/// subsample fraction to evaluate it at.
struct EvalRequest {
  Assignment assignment;
  double fidelity = 1.0;
};

/// The mutable half of the evaluator: accepts batches of EvalRequests,
/// runs them on a ThreadPool against a shared immutable EvalContext,
/// memoizes repeat configurations, and commits observations and budget
/// metering in deterministic request order under one mutex.
///
/// Determinism contract: utilities are a pure function of the request
/// (per-request seed streams, see EvalContext), and all bookkeeping is
/// committed in request order after the batch completes — so the same
/// request sequence yields the same budget/observation trajectory
/// regardless of thread count, and a batch of one reproduces the legacy
/// serial evaluator bit-for-bit.
///
/// Cache semantics: a hit skips the pipeline training but is metered
/// exactly like a recomputation in deterministic-budget mode (adds its
/// fidelity, counts as an evaluation, appends its observation). In
/// wall-clock mode a hit meters only the floor cost — re-requesting a
/// known configuration is nearly free, which buys more search per second.
class EvalEngine {
 public:
  /// `context` must outlive the engine; options are taken from it
  /// (num_threads, memoize, budget_in_seconds).
  explicit EvalEngine(const EvalContext* context);

  /// Evaluates every request and returns their utilities in request
  /// order. Distinct configurations run concurrently on the pool;
  /// duplicates within the batch are computed once. Thread-safe: multiple
  /// callers may submit batches concurrently (commit order between
  /// batches is then arrival order at the mutex).
  [[nodiscard]] std::vector<double> EvaluateBatch(
      const std::vector<EvalRequest>& requests)
      VOLCANOML_LOCKS_EXCLUDED(mu_);

  /// Single-request convenience — the legacy Evaluate() call.
  [[nodiscard]] double Evaluate(const Assignment& assignment,
                                double fidelity = 1.0)
      VOLCANOML_LOCKS_EXCLUDED(mu_);

  /// Budget units consumed so far (sum of fidelities, or seconds).
  [[nodiscard]] double consumed_budget() const VOLCANOML_LOCKS_EXCLUDED(mu_);
  /// Requests committed so far (cache hits included).
  [[nodiscard]] size_t num_evaluations() const VOLCANOML_LOCKS_EXCLUDED(mu_);
  /// Requests answered from the memo cache so far.
  [[nodiscard]] size_t cache_hits() const VOLCANOML_LOCKS_EXCLUDED(mu_);
  /// Distinct (configuration, fidelity) results memoized so far.
  [[nodiscard]] size_t cache_size() const VOLCANOML_LOCKS_EXCLUDED(mu_);

  /// Every full-fidelity (assignment, utility) observation, in commit
  /// order. Feeds post-hoc ensemble selection. Not synchronized with
  /// concurrent EvaluateBatch calls: read it only between batches.
  [[nodiscard]] const std::vector<std::pair<Assignment, double>>&
  observations() const {
    return observations_;
  }

  [[nodiscard]] const EvalContext& context() const { return *context_; }
  [[nodiscard]] size_t num_threads() const;

 private:
  const EvalContext* context_;
  std::unique_ptr<ThreadPool> pool_;  ///< Null when running inline.

  mutable std::mutex mu_;
  std::unordered_map<std::string, double> cache_ VOLCANOML_GUARDED_BY(mu_);
  double consumed_budget_ VOLCANOML_GUARDED_BY(mu_) = 0.0;
  size_t num_evaluations_ VOLCANOML_GUARDED_BY(mu_) = 0;
  size_t cache_hits_ VOLCANOML_GUARDED_BY(mu_) = 0;
  std::vector<std::pair<Assignment, double>> observations_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_EVAL_ENGINE_H_
