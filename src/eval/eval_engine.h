#ifndef VOLCANOML_EVAL_EVAL_ENGINE_H_
#define VOLCANOML_EVAL_EVAL_ENGINE_H_

#include <array>
#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/snapshot.h"
#include "cs/configuration.h"
#include "eval/dispatch.h"
#include "eval/eval_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace volcanoml {

/// The mutable half of the evaluator: accepts batches of EvalRequests,
/// runs them on a DispatchBackend (in-process ThreadPool or supervised
/// out-of-process worker pool) against a shared immutable EvalContext,
/// memoizes repeat configurations, and commits observations and budget
/// metering in deterministic request order under one mutex.
///
/// Determinism contract: utilities are a pure function of the request
/// (per-request seed streams, see EvalContext), and all bookkeeping is
/// committed in request order after the batch completes — so the same
/// request sequence yields the same budget/observation trajectory
/// regardless of thread count, and a batch of one reproduces the legacy
/// serial evaluator bit-for-bit.
///
/// Cache semantics: a hit skips the pipeline training but is metered
/// exactly like a recomputation in deterministic-budget mode (adds its
/// fidelity, counts as an evaluation, appends its observation). In
/// wall-clock mode a hit meters only the floor cost — re-requesting a
/// known configuration is nearly free, which buys more search per second.
///
/// Budget limit: when set_budget_limit() is called, dispatch is truncated
/// at the first request for which the budget is already exhausted, and
/// only the completed prefix is committed — the returned vector is then
/// SHORTER than the request vector. The default limit is infinite, which
/// reproduces the unlimited pre-guard behavior exactly.
class EvalEngine {
 public:
  /// `context` must outlive the engine; options are taken from it
  /// (num_threads, memoize, budget_in_seconds, fault injection).
  explicit EvalEngine(const EvalContext* context);

  /// Evaluates every dispatched request and returns the committed prefix
  /// of outcomes in request order (the full batch unless a budget limit
  /// truncates it). Distinct configurations run concurrently on the pool;
  /// duplicates within the batch are computed once. Thread-safe: multiple
  /// callers may submit batches concurrently (commit order between
  /// batches is then arrival order at the mutex).
  [[nodiscard]] std::vector<EvalOutcome> EvaluateBatchOutcomes(
      const std::vector<EvalRequest>& requests)
      VOLCANOML_EXCLUDES(mu_);

  /// Utility-only facade over EvaluateBatchOutcomes (same truncation
  /// semantics: the result can be shorter than `requests`).
  [[nodiscard]] std::vector<double> EvaluateBatch(
      const std::vector<EvalRequest>& requests)
      VOLCANOML_EXCLUDES(mu_);

  /// Single-request convenience — the legacy Evaluate() call. Returns the
  /// FailureUtility sentinel if the budget limit truncated the request.
  [[nodiscard]] double Evaluate(const Assignment& assignment,
                                double fidelity = 1.0)
      VOLCANOML_EXCLUDES(mu_);

  /// Stops dispatching new requests once consumed_budget() reaches this
  /// limit (default: unlimited).
  void set_budget_limit(double limit) VOLCANOML_EXCLUDES(mu_);

  /// Budget units consumed so far (sum of fidelities, or seconds).
  [[nodiscard]] double consumed_budget() const VOLCANOML_EXCLUDES(mu_);
  /// Requests committed so far (cache hits included).
  [[nodiscard]] size_t num_evaluations() const VOLCANOML_EXCLUDES(mu_);
  /// Requests answered from the memo cache so far.
  [[nodiscard]] size_t cache_hits() const VOLCANOML_EXCLUDES(mu_);
  /// Distinct (configuration, fidelity) results memoized so far.
  [[nodiscard]] size_t cache_size() const VOLCANOML_EXCLUDES(mu_);

  // -- failure telemetry ----------------------------------------------------

  /// Committed requests that ended with the given outcome (cache hits
  /// recommit their memoized outcome).
  [[nodiscard]] size_t outcome_count(TrialOutcome outcome) const
      VOLCANOML_EXCLUDES(mu_);
  /// Budget units spent on requests that did not end kOk.
  [[nodiscard]] double budget_lost_to_failures() const
      VOLCANOML_EXCLUDES(mu_);
  /// Largest number of hard failures (timed out / fault injected) any
  /// single configuration has accumulated; the quarantine assertion in
  /// tests reads this.
  [[nodiscard]] size_t MaxHardFailuresPerConfig() const
      VOLCANOML_EXCLUDES(mu_);

  /// Every full-fidelity (assignment, utility) observation, in commit
  /// order, copied under the engine mutex so it is safe to call while
  /// other threads submit batches. Feeds post-hoc ensemble selection.
  [[nodiscard]] std::vector<std::pair<Assignment, double>> observations()
      const VOLCANOML_EXCLUDES(mu_);

  [[nodiscard]] const EvalContext& context() const { return *context_; }
  [[nodiscard]] size_t num_threads() const;

  /// The phase-2 compute backend (selected by EvaluatorOptions::backend).
  [[nodiscard]] const DispatchBackend& backend() const { return *backend_; }
  /// Supervision counters of the backend (all zeros in-process).
  [[nodiscard]] DispatchTelemetry dispatch_telemetry() const {
    return backend_->telemetry();
  }

  /// Serializes the budget meter, counters, failure telemetry, the
  /// observation log, and the memo cache. The budget *limit* is NOT
  /// saved — the executor re-applies it on resume. The memo cache is an
  /// optimization, not state: in deterministic-budget mode a hit is
  /// metered exactly like a recomputation, so a resume from a snapshot
  /// with a dropped cache still replays bit-for-bit (it just recomputes).
  void SaveState(SnapshotWriter* w) const VOLCANOML_EXCLUDES(mu_);
  void LoadState(SnapshotReader* r) VOLCANOML_EXCLUDES(mu_);

 private:
  /// Memoized result of one (configuration, fidelity) computation.
  struct CachedResult {
    double utility = 0.0;
    TrialOutcome outcome = TrialOutcome::kOk;
  };

  /// Commits one resolved outcome under the engine mutex: meters the
  /// budget, advances the counters and failure telemetry, and appends the
  /// full-fidelity observation. `seconds_cost` is the request's wall cost
  /// (already floored); `result->elapsed_seconds` is overwritten with it.
  void CommitLocked(const EvalRequest& request, EvalOutcome* result,
                    double seconds_cost) VOLCANOML_REQUIRES(mu_);

  /// Memo-cache probe for one request key; returns true and fills
  /// `result` on a hit. Only meaningful when options().memoize is set.
  [[nodiscard]] bool LookupCacheLocked(const std::string& key,
                                       CachedResult* result) const
      VOLCANOML_REQUIRES(mu_);

  /// SaveState/LoadState bodies; the public wrappers only take the lock.
  void SaveStateLocked(SnapshotWriter* w) const VOLCANOML_REQUIRES(mu_);
  void LoadStateLocked(SnapshotReader* r) VOLCANOML_REQUIRES(mu_);

  const EvalContext* context_;
  std::unique_ptr<DispatchBackend> backend_;

  mutable Mutex mu_;
  std::unordered_map<std::string, CachedResult> cache_
      VOLCANOML_GUARDED_BY(mu_);
  double consumed_budget_ VOLCANOML_GUARDED_BY(mu_) = 0.0;
  double budget_limit_ VOLCANOML_GUARDED_BY(mu_) =
      std::numeric_limits<double>::infinity();
  size_t num_evaluations_ VOLCANOML_GUARDED_BY(mu_) = 0;
  size_t cache_hits_ VOLCANOML_GUARDED_BY(mu_) = 0;
  std::array<size_t, kNumTrialOutcomes> outcome_counts_
      VOLCANOML_GUARDED_BY(mu_) = {};
  double budget_lost_to_failures_ VOLCANOML_GUARDED_BY(mu_) = 0.0;
  /// Hard-failure (timed out / fault injected) count per configuration,
  /// keyed by the assignment's serialized contents across fidelities.
  std::unordered_map<std::string, size_t> hard_failures_by_config_
      VOLCANOML_GUARDED_BY(mu_);
  std::vector<std::pair<Assignment, double>> observations_
      VOLCANOML_GUARDED_BY(mu_);
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_EVAL_ENGINE_H_
