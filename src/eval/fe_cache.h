#ifndef VOLCANOML_EVAL_FE_CACHE_H_
#define VOLCANOML_EVAL_FE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "fe/pipeline.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace volcanoml {

/// One cached feature-engineering result for a (FE sub-assignment,
/// validation split, fidelity, cv seed) request: the fitted pipeline, the
/// engineered (possibly resampled/subsampled) training split, and the
/// validation split with transformed features. Entries are immutable once
/// published and handed out as shared_ptr<const>, so an eviction can never
/// invalidate a reader that is mid-trial.
struct FeCacheEntry {
  FePipeline fe;
  Dataset train;  ///< Engineered training split, ready for Model::Fit.
  Dataset valid;  ///< Validation split with FE-transformed features.

  /// Approximate heap footprint, used for the cache's byte budget.
  [[nodiscard]] size_t ApproxBytes() const;
};

/// Byte-bounded, sharded LRU cache for feature-engineering results.
///
/// VolcanoML's decomposed search repeatedly evaluates configurations that
/// share an FE sub-assignment (conditioning blocks fix the FE prefix while
/// sweeping algorithms; alternating blocks hold the FE subspace constant
/// during HPO). Because FE-stage randomness derives from the FE
/// sub-assignment hash alone (see DESIGN.md "FE prefix cache & compute
/// kernels"), a hit is bit-identical to recomputing FitTransform, and the
/// model phase can start directly from the cached matrices.
///
/// Concurrency: the key space is split across kNumShards shards, each with
/// its own mutex and LRU list, so worker threads evaluating different FE
/// prefixes rarely contend. All methods are safe to call concurrently.
class FeCache {
 public:
  /// Telemetry snapshot, aggregated across shards.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t bytes = 0;     ///< Bytes currently resident.
    size_t entries = 0;   ///< Entries currently resident.
  };

  /// `capacity_bytes` is the total budget across all shards; each shard
  /// gets an equal slice. A capacity of 0 constructs a cache that never
  /// stores anything (every Get is a miss).
  explicit FeCache(size_t capacity_bytes);

  FeCache(const FeCache&) = delete;
  FeCache& operator=(const FeCache&) = delete;

  /// Returns the entry for `key` and marks it most-recently-used, or
  /// nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const FeCacheEntry> Get(
      const std::string& key);

  /// Inserts `entry` under `key`, evicting least-recently-used entries
  /// from the key's shard until the shard fits its byte budget. Entries
  /// larger than a whole shard are not stored. Re-inserting an existing
  /// key refreshes its recency and replaces the entry.
  void Put(const std::string& key, std::shared_ptr<const FeCacheEntry> entry);

  /// Aggregated hit/miss/eviction/size counters.
  [[nodiscard]] Stats GetStats() const;

 private:
  static constexpr size_t kNumShards = 8;

  struct Node {
    std::string key;
    std::shared_ptr<const FeCacheEntry> entry;
    size_t bytes = 0;
  };

  struct Shard {
    mutable Mutex mu;
    /// Most-recently-used at the front.
    std::list<Node> lru VOLCANOML_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Node>::iterator> index
        VOLCANOML_GUARDED_BY(mu);
    size_t bytes VOLCANOML_GUARDED_BY(mu) = 0;
    uint64_t hits VOLCANOML_GUARDED_BY(mu) = 0;
    uint64_t misses VOLCANOML_GUARDED_BY(mu) = 0;
    uint64_t insertions VOLCANOML_GUARDED_BY(mu) = 0;
    uint64_t evictions VOLCANOML_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] Shard& ShardFor(const std::string& key);

  /// Evicts least-recently-used nodes until `shard` fits its byte
  /// budget. Caller holds the shard's mutex (Put's insert path).
  void EvictToFitLocked(Shard& shard) VOLCANOML_REQUIRES(shard.mu);

  size_t shard_capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_EVAL_FE_CACHE_H_
