#ifndef VOLCANOML_ML_LINEAR_H_
#define VOLCANOML_ML_LINEAR_H_

#include <cstdint>
#include <vector>

#include "ml/model.h"

namespace volcanoml {

/// Multinomial logistic regression trained with mini-batch SGD on the
/// softmax cross-entropy with L2 regularization strength 1/C.
class LogisticRegressionModel : public Model {
 public:
  struct Options {
    double c = 1.0;          ///< Inverse regularization strength.
    int max_epochs = 100;
    double learning_rate = 0.1;
  };

  LogisticRegressionModel(const Options& options, uint64_t seed);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

  /// Per-class scores for one standardized row (used internally and by
  /// tests); size equals the number of classes.
  std::vector<double> DecisionFunction(const double* row) const;

 private:
  Options options_;
  uint64_t seed_;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> feature_means_, feature_scales_;
  std::vector<double> weights_;  ///< (num_classes x num_features), row-major.
  std::vector<double> bias_;
};

/// One-vs-rest linear SVM trained by SGD on the hinge loss (Pegasos-style)
/// with L2 regularization strength 1/C.
class LinearSvmModel : public Model {
 public:
  struct Options {
    double c = 1.0;
    int max_epochs = 100;
  };

  LinearSvmModel(const Options& options, uint64_t seed);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  Options options_;
  uint64_t seed_;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> feature_means_, feature_scales_;
  std::vector<double> weights_;
  std::vector<double> bias_;
};

/// Ridge regression solved exactly via the regularized normal equations
/// (Gaussian elimination with partial pivoting).
class RidgeRegressionModel : public Model {
 public:
  struct Options {
    double alpha = 1.0;  ///< L2 penalty.
  };

  explicit RidgeRegressionModel(const Options& options);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

  const std::vector<double>& coefficients() const { return coef_; }

 private:
  Options options_;
  std::vector<double> feature_means_, feature_scales_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Lasso regression via cyclic coordinate descent with soft thresholding.
class LassoRegressionModel : public Model {
 public:
  struct Options {
    double alpha = 1.0;  ///< L1 penalty.
    int max_iters = 200;
    double tol = 1e-6;
  };

  explicit LassoRegressionModel(const Options& options);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

  const std::vector<double>& coefficients() const { return coef_; }

 private:
  Options options_;
  std::vector<double> feature_means_, feature_scales_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Linear regressor trained by SGD on squared loss with L2 regularization
/// (scikit-learn's SGDRegressor analogue).
class SgdRegressorModel : public Model {
 public:
  struct Options {
    double alpha = 1e-4;
    int max_epochs = 100;
    double learning_rate = 0.01;
  };

  SgdRegressorModel(const Options& options, uint64_t seed);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  Options options_;
  uint64_t seed_;
  std::vector<double> feature_means_, feature_scales_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  double target_mean_ = 0.0, target_scale_ = 1.0;
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_LINEAR_H_
