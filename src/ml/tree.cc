#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace volcanoml {

namespace {

/// Weighted impurity of a class-count histogram with total weight `total`.
double ClassImpurity(const std::vector<double>& counts, double total,
                     TreeCriterion criterion) {
  if (total <= 0.0) return 0.0;
  double impurity = criterion == TreeCriterion::kGini ? 1.0 : 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    double p = c / total;
    if (criterion == TreeCriterion::kGini) {
      impurity -= p * p;
    } else {
      impurity -= p * std::log2(p);
    }
  }
  return impurity;
}

}  // namespace

DecisionTree::DecisionTree(const TreeOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {
  VOLCANOML_CHECK(options_.max_features > 0.0 && options_.max_features <= 1.0);
  VOLCANOML_CHECK(options_.min_samples_leaf >= 1);
}

Status DecisionTree::Fit(const Matrix& x, const std::vector<double>& y,
                         size_t num_classes,
                         const std::vector<double>& weights) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(x.rows() == y.size());
  if (!weights.empty()) VOLCANOML_CHECK(weights.size() == y.size());
  num_classes_ = num_classes;
  nodes_.clear();
  nodes_.reserve(64);
  std::vector<size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  Build(x, y, weights, &indices, 0, indices.size(), 0);
  return Status::Ok();
}

int DecisionTree::MakeLeaf(const std::vector<double>& y,
                           const std::vector<double>& weights,
                           const std::vector<size_t>& indices, size_t begin,
                           size_t end) {
  Node leaf;
  if (num_classes_ > 0) {
    leaf.class_dist.assign(num_classes_, 0.0);
    double total = 0.0;
    for (size_t i = begin; i < end; ++i) {
      double w = weights.empty() ? 1.0 : weights[indices[i]];
      leaf.class_dist[static_cast<size_t>(y[indices[i]])] += w;
      total += w;
    }
    size_t best = 0;
    for (size_t c = 1; c < num_classes_; ++c) {
      if (leaf.class_dist[c] > leaf.class_dist[best]) best = c;
    }
    leaf.value = static_cast<double>(best);
    if (total > 0.0) {
      for (double& d : leaf.class_dist) d /= total;
    }
  } else {
    double sum = 0.0, total = 0.0;
    for (size_t i = begin; i < end; ++i) {
      double w = weights.empty() ? 1.0 : weights[indices[i]];
      sum += w * y[indices[i]];
      total += w;
    }
    leaf.value = total > 0.0 ? sum / total : 0.0;
  }
  nodes_.push_back(std::move(leaf));
  return static_cast<int>(nodes_.size() - 1);
}

bool DecisionTree::FindSplit(const Matrix& x, const std::vector<double>& y,
                             const std::vector<double>& weights,
                             const std::vector<size_t>& indices, size_t begin,
                             size_t end, int* best_feature,
                             double* best_threshold) {
  const size_t n = end - begin;
  const size_t num_features = x.cols();
  size_t features_to_try = std::max<size_t>(
      1, static_cast<size_t>(std::llround(
             options_.max_features * static_cast<double>(num_features))));

  std::vector<size_t> feature_order(num_features);
  std::iota(feature_order.begin(), feature_order.end(), 0);
  rng_.Shuffle(&feature_order);

  double best_score = std::numeric_limits<double>::infinity();
  *best_feature = -1;

  // Reusable per-node buffers.
  std::vector<std::pair<double, size_t>> sorted(n);

  for (size_t f_pos = 0; f_pos < features_to_try; ++f_pos) {
    size_t f = feature_order[f_pos];
    for (size_t i = 0; i < n; ++i) {
      size_t idx = indices[begin + i];
      sorted[i] = {x(idx, f), idx};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // Constant.

    if (options_.random_splits) {
      // Extra-trees: a single uniform threshold in the value range.
      double lo = sorted.front().first, hi = sorted.back().first;
      double threshold = rng_.Uniform(lo, hi);
      // Score this threshold.
      if (num_classes_ > 0) {
        std::vector<double> left(num_classes_, 0.0), right(num_classes_, 0.0);
        double wl = 0.0, wr = 0.0;
        size_t nl = 0;
        for (size_t i = 0; i < n; ++i) {
          double w = weights.empty() ? 1.0 : weights[sorted[i].second];
          size_t c = static_cast<size_t>(y[sorted[i].second]);
          if (sorted[i].first <= threshold) {
            left[c] += w;
            wl += w;
            ++nl;
          } else {
            right[c] += w;
            wr += w;
          }
        }
        size_t nr = n - nl;
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
          continue;
        }
        double score = wl * ClassImpurity(left, wl, options_.criterion) +
                       wr * ClassImpurity(right, wr, options_.criterion);
        if (score < best_score) {
          best_score = score;
          *best_feature = static_cast<int>(f);
          *best_threshold = threshold;
        }
      } else {
        double sl = 0.0, ssl = 0.0, wl = 0.0;
        double sr = 0.0, ssr = 0.0, wr = 0.0;
        size_t nl = 0;
        for (size_t i = 0; i < n; ++i) {
          double w = weights.empty() ? 1.0 : weights[sorted[i].second];
          double v = y[sorted[i].second];
          if (sorted[i].first <= threshold) {
            sl += w * v;
            ssl += w * v * v;
            wl += w;
            ++nl;
          } else {
            sr += w * v;
            ssr += w * v * v;
            wr += w;
          }
        }
        size_t nr = n - nl;
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
          continue;
        }
        double score = (wl > 0 ? ssl - sl * sl / wl : 0.0) +
                       (wr > 0 ? ssr - sr * sr / wr : 0.0);
        if (score < best_score) {
          best_score = score;
          *best_feature = static_cast<int>(f);
          *best_threshold = threshold;
        }
      }
      continue;
    }

    // Exhaustive scan over cut points between distinct values.
    if (num_classes_ > 0) {
      std::vector<double> left(num_classes_, 0.0);
      std::vector<double> right(num_classes_, 0.0);
      double wl = 0.0, wr = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double w = weights.empty() ? 1.0 : weights[sorted[i].second];
        right[static_cast<size_t>(y[sorted[i].second])] += w;
        wr += w;
      }
      for (size_t i = 0; i + 1 < n; ++i) {
        double w = weights.empty() ? 1.0 : weights[sorted[i].second];
        size_t c = static_cast<size_t>(y[sorted[i].second]);
        left[c] += w;
        wl += w;
        right[c] -= w;
        wr -= w;
        if (sorted[i].first == sorted[i + 1].first) continue;
        size_t nl = i + 1, nr = n - nl;
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
          continue;
        }
        double score = wl * ClassImpurity(left, wl, options_.criterion) +
                       wr * ClassImpurity(right, wr, options_.criterion);
        if (score < best_score) {
          best_score = score;
          *best_feature = static_cast<int>(f);
          *best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
    } else {
      double sl = 0.0, ssl = 0.0, wl = 0.0;
      double sr = 0.0, ssr = 0.0, wr = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double w = weights.empty() ? 1.0 : weights[sorted[i].second];
        double v = y[sorted[i].second];
        sr += w * v;
        ssr += w * v * v;
        wr += w;
      }
      for (size_t i = 0; i + 1 < n; ++i) {
        double w = weights.empty() ? 1.0 : weights[sorted[i].second];
        double v = y[sorted[i].second];
        sl += w * v;
        ssl += w * v * v;
        wl += w;
        sr -= w * v;
        ssr -= w * v * v;
        wr -= w;
        if (sorted[i].first == sorted[i + 1].first) continue;
        size_t nl = i + 1, nr = n - nl;
        if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
          continue;
        }
        double score = (wl > 0 ? ssl - sl * sl / wl : 0.0) +
                       (wr > 0 ? ssr - sr * sr / wr : 0.0);
        if (score < best_score) {
          best_score = score;
          *best_feature = static_cast<int>(f);
          *best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
    }
  }
  return *best_feature >= 0;
}

int DecisionTree::Build(const Matrix& x, const std::vector<double>& y,
                        const std::vector<double>& weights,
                        std::vector<size_t>* indices, size_t begin, size_t end,
                        int depth) {
  const size_t n = end - begin;
  VOLCANOML_DCHECK(n > 0);

  bool pure = true;
  for (size_t i = begin + 1; i < end; ++i) {
    if (y[(*indices)[i]] != y[(*indices)[begin]]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= options_.max_depth || n < options_.min_samples_split ||
      n < 2 * options_.min_samples_leaf) {
    return MakeLeaf(y, weights, *indices, begin, end);
  }

  int feature;
  double threshold;
  if (!FindSplit(x, y, weights, *indices, begin, end, &feature, &threshold)) {
    return MakeLeaf(y, weights, *indices, begin, end);
  }

  // Partition indices in place around the threshold.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (x((*indices)[i], static_cast<size_t>(feature)) <= threshold) {
      std::swap((*indices)[i], (*indices)[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) {
    return MakeLeaf(y, weights, *indices, begin, end);
  }

  // Reserve this node's slot before recursing so children follow it.
  nodes_.emplace_back();
  int node_id = static_cast<int>(nodes_.size() - 1);
  int left = Build(x, y, weights, indices, begin, mid, depth + 1);
  int right = Build(x, y, weights, indices, mid, end, depth + 1);
  Node& node = nodes_[node_id];
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double DecisionTree::PredictOne(const double* row) const {
  VOLCANOML_CHECK(fitted());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

std::vector<double> DecisionTree::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out[i] = PredictOne(x.RowPtr(i));
  return out;
}

std::vector<double> DecisionTree::PredictProbaOne(const double* row) const {
  VOLCANOML_CHECK(fitted());
  VOLCANOML_CHECK(num_classes_ > 0);
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].class_dist;
}

}  // namespace volcanoml
