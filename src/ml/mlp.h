#ifndef VOLCANOML_ML_MLP_H_
#define VOLCANOML_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "ml/model.h"

namespace volcanoml {

/// Multi-layer perceptron (1 or 2 hidden layers) trained with mini-batch
/// SGD + momentum. Classification uses softmax cross-entropy; regression
/// uses squared loss on a standardized target.
class MlpModel : public Model {
 public:
  enum class Activation { kRelu, kTanh };

  struct Options {
    size_t hidden_size = 32;
    size_t num_hidden_layers = 1;  ///< 1 or 2.
    Activation activation = Activation::kRelu;
    double learning_rate = 0.01;
    double alpha = 1e-4;  ///< L2 penalty.
    int max_epochs = 60;
    double momentum = 0.9;
  };

  MlpModel(const Options& options, uint64_t seed);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  struct Layer {
    Matrix w;  ///< (out x in).
    std::vector<double> b;
    Matrix w_vel;
    std::vector<double> b_vel;
  };

  void Forward(const std::vector<double>& input,
               std::vector<std::vector<double>>* activations) const;

  Options options_;
  uint64_t seed_;
  TaskType task_ = TaskType::kClassification;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> feature_means_, feature_scales_;
  double target_mean_ = 0.0, target_scale_ = 1.0;
  std::vector<Layer> layers_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_MLP_H_
