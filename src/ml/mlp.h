#ifndef VOLCANOML_ML_MLP_H_
#define VOLCANOML_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "data/aligned.h"
#include "ml/model.h"

namespace volcanoml {

/// Multi-layer perceptron (1 or 2 hidden layers) trained with mini-batch
/// SGD + momentum. Classification uses softmax cross-entropy; regression
/// uses squared loss on a standardized target.
///
/// The network internals are templated on the numeric lane
/// (data/precision.h): the f64 net replays the historical double
/// trajectory bit for bit, while the f32 lane stores weights,
/// activations, and velocities as float and runs the float kernels —
/// half the memory traffic through the Dot/Axpy-dominated training loop.
/// Standardization statistics, learning-rate schedule, and momentum
/// scalars stay double in both lanes; the RNG init sequence is shared, so
/// both lanes draw identical weight initializations (cast for f32).
class MlpModel : public Model {
 public:
  enum class Activation { kRelu, kTanh };

  struct Options {
    size_t hidden_size = 32;
    size_t num_hidden_layers = 1;  ///< 1 or 2.
    Activation activation = Activation::kRelu;
    double learning_rate = 0.01;
    double alpha = 1e-4;  ///< L2 penalty.
    int max_epochs = 60;
    double momentum = 0.9;
  };

  MlpModel(const Options& options, uint64_t seed);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;
  void SetPrecision(NumericPrecision precision) override {
    precision_ = precision;
  }

 private:
  /// One dense layer of the Real-lane network. Weights are flat row-major
  /// (rows x cols) in aligned storage so kernel calls on row pointers can
  /// take the aligned path when shapes allow.
  template <typename Real>
  struct NetLayer {
    size_t rows = 0, cols = 0;
    AlignedVector<Real> w, w_vel;
    std::vector<Real> b, b_vel;
  };
  template <typename Real>
  using Net = std::vector<NetLayer<Real>>;

  template <typename Real>
  Status FitNet(const Dataset& train, Net<Real>* net);
  template <typename Real>
  void ForwardNet(const Net<Real>& net, const std::vector<Real>& input,
                  std::vector<std::vector<Real>>* activations) const;
  template <typename Real>
  std::vector<double> PredictNet(const Net<Real>& net, const Matrix& x) const;

  Options options_;
  uint64_t seed_;
  NumericPrecision precision_ = NumericPrecision::kFloat64;
  TaskType task_ = TaskType::kClassification;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> feature_means_, feature_scales_;
  double target_mean_ = 0.0, target_scale_ = 1.0;
  Net<double> net64_;  ///< Populated in the f64 lane; empty otherwise.
  Net<float> net32_;   ///< Populated in the f32 lane; empty otherwise.
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_MLP_H_
