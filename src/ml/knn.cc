#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "data/kernels.h"
#include "util/check.h"

namespace volcanoml {

KnnModel::KnnModel(const Options& options) : options_(options) {
  VOLCANOML_CHECK(options_.k >= 1);
  VOLCANOML_CHECK(options_.p == 1 || options_.p == 2);
}

Status KnnModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  feature_means_ = train.x().ColMeans();
  feature_scales_ = train.x().ColStdDevs();
  for (double& s : feature_scales_) {
    if (s <= 1e-12) s = 1.0;
  }
  train_rows_ = train.NumSamples();
  train_cols_ = train.NumFeatures();
  if (precision_ == NumericPrecision::kFloat32) {
    // f32 lane: standardize in double (bit-stable regardless of lane),
    // store the cast. Rows are padded to a full cache line of floats so
    // each row pointer is 64-byte aligned; the zero padding contributes
    // nothing to either distance.
    stride32_ = (train_cols_ + 15) / 16 * 16;
    train_x32_.assign(train_rows_ * stride32_, 0.0f);
    for (size_t i = 0; i < train_rows_; ++i) {
      float* row = train_x32_.data() + i * stride32_;
      for (size_t f = 0; f < train_cols_; ++f) {
        row[f] = static_cast<float>((train.x()(i, f) - feature_means_[f]) /
                                    feature_scales_[f]);
      }
    }
    train_x_ = Matrix();
  } else {
    train_x_ = Matrix(train_rows_, train_cols_);
    for (size_t i = 0; i < train_rows_; ++i) {
      for (size_t f = 0; f < train_cols_; ++f) {
        train_x_(i, f) =
            (train.x()(i, f) - feature_means_[f]) / feature_scales_[f];
      }
    }
    train_x32_.clear();
    stride32_ = 0;
  }
  train_y_ = train.y();
  num_classes_ =
      train.task() == TaskType::kClassification ? train.NumClasses() : 0;
  return Status::Ok();
}

double KnnModel::Distance(const double* a, const double* b) const {
  const size_t d = train_cols_;
  if (options_.p == 2) {
    return std::sqrt(SquaredDistanceKernel(a, b, d));
  }
  double acc = 0.0;
  for (size_t f = 0; f < d; ++f) acc += std::abs(a[f] - b[f]);
  return acc;
}

double KnnModel::DistanceF32(const float* a, const float* b) const {
  const size_t d = train_cols_;
  if (options_.p == 2) {
    return std::sqrt(SquaredDistanceKernel(a, b, d));
  }
  float acc = 0.0f;
  for (size_t f = 0; f < d; ++f) acc += std::abs(a[f] - b[f]);
  return acc;
}

std::vector<double> KnnModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(train_rows_ > 0);
  VOLCANOML_CHECK(x.cols() == train_cols_);
  const bool f32 = precision_ == NumericPrecision::kFloat32;
  const size_t n = train_rows_;
  const size_t k = std::min<size_t>(static_cast<size_t>(options_.k), n);
  std::vector<double> out(x.rows());
  std::vector<double> query(x.cols());
  AlignedVector<float> query32(f32 ? stride32_ : 0, 0.0f);
  std::vector<std::pair<double, size_t>> dists(n);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t f = 0; f < x.cols(); ++f) {
      query[f] = (x(i, f) - feature_means_[f]) / feature_scales_[f];
    }
    if (f32) {
      for (size_t f = 0; f < x.cols(); ++f) {
        query32[f] = static_cast<float>(query[f]);
      }
      for (size_t j = 0; j < n; ++j) {
        dists[j] = {
            DistanceF32(query32.data(), train_x32_.data() + j * stride32_),
            j};
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        dists[j] = {Distance(query.data(), train_x_.RowPtr(j)), j};
      }
    }
    std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k),
                      dists.end());
    if (num_classes_ > 0) {
      std::vector<double> votes(num_classes_, 0.0);
      for (size_t j = 0; j < k; ++j) {
        double w = options_.distance_weighted
                       ? 1.0 / (dists[j].first + 1e-9)
                       : 1.0;
        votes[static_cast<size_t>(train_y_[dists[j].second])] += w;
      }
      size_t best = 0;
      for (size_t c = 1; c < num_classes_; ++c) {
        if (votes[c] > votes[best]) best = c;
      }
      out[i] = static_cast<double>(best);
    } else {
      double num = 0.0, den = 0.0;
      for (size_t j = 0; j < k; ++j) {
        double w = options_.distance_weighted
                       ? 1.0 / (dists[j].first + 1e-9)
                       : 1.0;
        num += w * train_y_[dists[j].second];
        den += w;
      }
      out[i] = num / den;
    }
  }
  return out;
}

}  // namespace volcanoml
