#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "data/kernels.h"
#include "util/check.h"

namespace volcanoml {

KnnModel::KnnModel(const Options& options) : options_(options) {
  VOLCANOML_CHECK(options_.k >= 1);
  VOLCANOML_CHECK(options_.p == 1 || options_.p == 2);
}

Status KnnModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  feature_means_ = train.x().ColMeans();
  feature_scales_ = train.x().ColStdDevs();
  for (double& s : feature_scales_) {
    if (s <= 1e-12) s = 1.0;
  }
  train_x_ = Matrix(train.NumSamples(), train.NumFeatures());
  for (size_t i = 0; i < train.NumSamples(); ++i) {
    for (size_t f = 0; f < train.NumFeatures(); ++f) {
      train_x_(i, f) =
          (train.x()(i, f) - feature_means_[f]) / feature_scales_[f];
    }
  }
  train_y_ = train.y();
  num_classes_ =
      train.task() == TaskType::kClassification ? train.NumClasses() : 0;
  return Status::Ok();
}

double KnnModel::Distance(const double* a, const double* b) const {
  const size_t d = train_x_.cols();
  if (options_.p == 2) {
    return std::sqrt(SquaredDistanceKernel(a, b, d));
  }
  double acc = 0.0;
  for (size_t f = 0; f < d; ++f) acc += std::abs(a[f] - b[f]);
  return acc;
}

std::vector<double> KnnModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(train_x_.rows() > 0);
  VOLCANOML_CHECK(x.cols() == train_x_.cols());
  const size_t n = train_x_.rows();
  const size_t k = std::min<size_t>(static_cast<size_t>(options_.k), n);
  std::vector<double> out(x.rows());
  std::vector<double> query(x.cols());
  std::vector<std::pair<double, size_t>> dists(n);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t f = 0; f < x.cols(); ++f) {
      query[f] = (x(i, f) - feature_means_[f]) / feature_scales_[f];
    }
    for (size_t j = 0; j < n; ++j) {
      dists[j] = {Distance(query.data(), train_x_.RowPtr(j)), j};
    }
    std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k),
                      dists.end());
    if (num_classes_ > 0) {
      std::vector<double> votes(num_classes_, 0.0);
      for (size_t j = 0; j < k; ++j) {
        double w = options_.distance_weighted
                       ? 1.0 / (dists[j].first + 1e-9)
                       : 1.0;
        votes[static_cast<size_t>(train_y_[dists[j].second])] += w;
      }
      size_t best = 0;
      for (size_t c = 1; c < num_classes_; ++c) {
        if (votes[c] > votes[best]) best = c;
      }
      out[i] = static_cast<double>(best);
    } else {
      double num = 0.0, den = 0.0;
      for (size_t j = 0; j < k; ++j) {
        double w = options_.distance_weighted
                       ? 1.0 / (dists[j].first + 1e-9)
                       : 1.0;
        num += w * train_y_[dists[j].second];
        den += w;
      }
      out[i] = num / den;
    }
  }
  return out;
}

}  // namespace volcanoml
