#include "ml/algorithms.h"

#include "ml/boosting.h"
#include "ml/discriminant.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/tree.h"
#include "util/check.h"

namespace volcanoml {

namespace {

using Cs = ConfigurationSpace;
using Cfg = Configuration;

Algorithm MakeLogisticRegression() {
  Algorithm a;
  a.name = "logistic_regression";
  a.task = TaskType::kClassification;
  a.hp_space.AddContinuous("c", 1e-3, 1e3, 1.0, /*log_scale=*/true);
  a.hp_space.AddInteger("max_epochs", 20, 150, 60);
  a.hp_space.AddContinuous("learning_rate", 0.01, 0.5, 0.1, true);
  a.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    LogisticRegressionModel::Options o;
    o.c = s.GetValue(c, "c");
    o.max_epochs = s.GetInt(c, "max_epochs");
    o.learning_rate = s.GetValue(c, "learning_rate");
    return std::make_unique<LogisticRegressionModel>(o, seed);
  };
  return a;
}

Algorithm MakeLinearSvm() {
  Algorithm a;
  a.name = "linear_svm";
  a.task = TaskType::kClassification;
  a.hp_space.AddContinuous("c", 1e-3, 1e3, 1.0, true);
  a.hp_space.AddInteger("max_epochs", 20, 150, 60);
  a.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    LinearSvmModel::Options o;
    o.c = s.GetValue(c, "c");
    o.max_epochs = s.GetInt(c, "max_epochs");
    return std::make_unique<LinearSvmModel>(o, seed);
  };
  return a;
}

TreeOptions TreeOptionsFrom(const Cs& s, const Cfg& c, bool classification) {
  TreeOptions t;
  if (classification) {
    t.criterion = s.GetChoiceName(c, "criterion") == "entropy"
                      ? TreeCriterion::kEntropy
                      : TreeCriterion::kGini;
  } else {
    t.criterion = TreeCriterion::kMse;
  }
  t.max_depth = s.GetInt(c, "max_depth");
  t.min_samples_split = static_cast<size_t>(s.GetInt(c, "min_samples_split"));
  t.min_samples_leaf = static_cast<size_t>(s.GetInt(c, "min_samples_leaf"));
  t.max_features = s.GetValue(c, "max_features");
  return t;
}

void AddTreeParams(Cs* space, bool classification) {
  if (classification) {
    space->AddCategorical("criterion", {"gini", "entropy"});
  }
  space->AddInteger("max_depth", 1, 20, 10);
  space->AddInteger("min_samples_split", 2, 20, 2);
  space->AddInteger("min_samples_leaf", 1, 10, 1);
  space->AddContinuous("max_features", 0.1, 1.0, 1.0);
}

Algorithm MakeDecisionTree(TaskType task) {
  Algorithm a;
  bool cls = task == TaskType::kClassification;
  a.name = cls ? "decision_tree" : "decision_tree_reg";
  a.task = task;
  AddTreeParams(&a.hp_space, cls);
  a.create = [cls](const Cs& s, const Cfg& c, uint64_t seed) {
    struct TreeModel : Model {
      TreeModel(const TreeOptions& opts, uint64_t sd) : tree(opts, sd) {}
      Status Fit(const Dataset& train) override {
        size_t k = train.task() == TaskType::kClassification
                       ? train.NumClasses()
                       : 0;
        return tree.Fit(train.x(), train.y(), k);
      }
      std::vector<double> Predict(const Matrix& x) const override {
        return tree.Predict(x);
      }
      DecisionTree tree;
    };
    return std::make_unique<TreeModel>(TreeOptionsFrom(s, c, cls), seed);
  };
  return a;
}

Algorithm MakeForest(TaskType task, bool extra_trees) {
  Algorithm a;
  bool cls = task == TaskType::kClassification;
  a.name = std::string(extra_trees ? "extra_trees" : "random_forest") +
           (cls ? "" : "_reg");
  a.task = task;
  a.hp_space.AddInteger("n_estimators", 10, 120, 50);
  AddTreeParams(&a.hp_space, cls);
  if (!extra_trees) {
    a.hp_space.AddCategorical("bootstrap", {"true", "false"});
  }
  a.create = [cls, extra_trees](const Cs& s, const Cfg& c, uint64_t seed) {
    ForestOptions o;
    o.num_trees = static_cast<size_t>(s.GetInt(c, "n_estimators"));
    o.tree = TreeOptionsFrom(s, c, cls);
    if (extra_trees) {
      o.tree.random_splits = true;
      o.bootstrap = false;
    } else {
      o.bootstrap = s.GetChoiceName(c, "bootstrap") == "true";
    }
    return std::make_unique<ForestModel>(o, seed);
  };
  return a;
}

Algorithm MakeKnn(TaskType task) {
  Algorithm a;
  bool cls = task == TaskType::kClassification;
  a.name = cls ? "knn" : "knn_reg";
  a.task = task;
  a.hp_space.AddInteger("k", 1, 30, 5);
  a.hp_space.AddCategorical("weights", {"uniform", "distance"});
  a.hp_space.AddCategorical("p", {"1", "2"}, 1);
  a.create = [](const Cs& s, const Cfg& c, uint64_t) {
    KnnModel::Options o;
    o.k = s.GetInt(c, "k");
    o.distance_weighted = s.GetChoiceName(c, "weights") == "distance";
    o.p = s.GetChoiceName(c, "p") == "1" ? 1 : 2;
    return std::make_unique<KnnModel>(o);
  };
  return a;
}

Algorithm MakeGaussianNb() {
  Algorithm a;
  a.name = "gaussian_nb";
  a.task = TaskType::kClassification;
  a.hp_space.AddContinuous("var_smoothing", 1e-10, 1e-1, 1e-9, true);
  a.create = [](const Cs& s, const Cfg& c, uint64_t) {
    GaussianNbModel::Options o;
    o.var_smoothing = s.GetValue(c, "var_smoothing");
    return std::make_unique<GaussianNbModel>(o);
  };
  return a;
}

Algorithm MakeLda() {
  Algorithm a;
  a.name = "lda";
  a.task = TaskType::kClassification;
  a.hp_space.AddContinuous("shrinkage", 0.0, 1.0, 0.1);
  a.create = [](const Cs& s, const Cfg& c, uint64_t) {
    LdaModel::Options o;
    o.shrinkage = s.GetValue(c, "shrinkage");
    return std::make_unique<LdaModel>(o);
  };
  return a;
}

Algorithm MakeQda() {
  Algorithm a;
  a.name = "qda";
  a.task = TaskType::kClassification;
  a.hp_space.AddContinuous("reg_param", 0.0, 1.0, 0.1);
  a.create = [](const Cs& s, const Cfg& c, uint64_t) {
    QdaModel::Options o;
    o.reg_param = s.GetValue(c, "reg_param");
    return std::make_unique<QdaModel>(o);
  };
  return a;
}

Algorithm MakeAdaBoost() {
  Algorithm a;
  a.name = "adaboost";
  a.task = TaskType::kClassification;
  a.hp_space.AddInteger("n_estimators", 10, 100, 50);
  a.hp_space.AddContinuous("learning_rate", 0.05, 2.0, 1.0, true);
  a.hp_space.AddInteger("max_depth", 1, 4, 1);
  a.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    AdaBoostModel::Options o;
    o.num_estimators = static_cast<size_t>(s.GetInt(c, "n_estimators"));
    o.learning_rate = s.GetValue(c, "learning_rate");
    o.max_depth = s.GetInt(c, "max_depth");
    return std::make_unique<AdaBoostModel>(o, seed);
  };
  return a;
}

Algorithm MakeGradientBoosting(TaskType task) {
  Algorithm a;
  bool cls = task == TaskType::kClassification;
  a.name = cls ? "gradient_boosting" : "gradient_boosting_reg";
  a.task = task;
  a.hp_space.AddInteger("n_estimators", 20, 120, 60);
  a.hp_space.AddContinuous("learning_rate", 0.02, 0.4, 0.1, true);
  a.hp_space.AddInteger("max_depth", 1, 6, 3);
  a.hp_space.AddContinuous("subsample", 0.5, 1.0, 1.0);
  a.hp_space.AddContinuous("max_features", 0.2, 1.0, 1.0);
  a.hp_space.AddInteger("min_samples_leaf", 1, 10, 2);
  a.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    GradientBoostingModel::Options o;
    o.num_estimators = static_cast<size_t>(s.GetInt(c, "n_estimators"));
    o.learning_rate = s.GetValue(c, "learning_rate");
    o.max_depth = s.GetInt(c, "max_depth");
    o.subsample = s.GetValue(c, "subsample");
    o.max_features = s.GetValue(c, "max_features");
    o.min_samples_leaf = static_cast<size_t>(s.GetInt(c, "min_samples_leaf"));
    return std::make_unique<GradientBoostingModel>(o, seed);
  };
  return a;
}

Algorithm MakeMlp(TaskType task) {
  Algorithm a;
  bool cls = task == TaskType::kClassification;
  a.name = cls ? "mlp" : "mlp_reg";
  a.task = task;
  a.hp_space.AddInteger("hidden_size", 8, 128, 32);
  a.hp_space.AddInteger("num_hidden_layers", 1, 2, 1);
  a.hp_space.AddCategorical("activation", {"relu", "tanh"});
  a.hp_space.AddContinuous("learning_rate", 0.002, 0.05, 0.01, true);
  a.hp_space.AddContinuous("alpha", 1e-6, 1e-2, 1e-4, true);
  a.hp_space.AddInteger("max_epochs", 20, 120, 60);
  a.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    MlpModel::Options o;
    o.hidden_size = static_cast<size_t>(s.GetInt(c, "hidden_size"));
    o.num_hidden_layers =
        static_cast<size_t>(s.GetInt(c, "num_hidden_layers"));
    o.activation = s.GetChoiceName(c, "activation") == "tanh"
                       ? MlpModel::Activation::kTanh
                       : MlpModel::Activation::kRelu;
    o.learning_rate = s.GetValue(c, "learning_rate");
    o.alpha = s.GetValue(c, "alpha");
    o.max_epochs = s.GetInt(c, "max_epochs");
    return std::make_unique<MlpModel>(o, seed);
  };
  return a;
}

Algorithm MakeRidge() {
  Algorithm a;
  a.name = "ridge";
  a.task = TaskType::kRegression;
  a.hp_space.AddContinuous("alpha", 1e-4, 1e3, 1.0, true);
  a.create = [](const Cs& s, const Cfg& c, uint64_t) {
    RidgeRegressionModel::Options o;
    o.alpha = s.GetValue(c, "alpha");
    return std::make_unique<RidgeRegressionModel>(o);
  };
  return a;
}

Algorithm MakeLasso() {
  Algorithm a;
  a.name = "lasso";
  a.task = TaskType::kRegression;
  a.hp_space.AddContinuous("alpha", 1e-4, 1e2, 0.1, true);
  a.hp_space.AddInteger("max_iters", 50, 300, 150);
  a.create = [](const Cs& s, const Cfg& c, uint64_t) {
    LassoRegressionModel::Options o;
    o.alpha = s.GetValue(c, "alpha");
    o.max_iters = s.GetInt(c, "max_iters");
    return std::make_unique<LassoRegressionModel>(o);
  };
  return a;
}

Algorithm MakeSgdRegressor() {
  Algorithm a;
  a.name = "sgd_reg";
  a.task = TaskType::kRegression;
  a.hp_space.AddContinuous("alpha", 1e-6, 1e-1, 1e-4, true);
  a.hp_space.AddContinuous("learning_rate", 0.001, 0.1, 0.01, true);
  a.hp_space.AddInteger("max_epochs", 20, 150, 60);
  a.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    SgdRegressorModel::Options o;
    o.alpha = s.GetValue(c, "alpha");
    o.learning_rate = s.GetValue(c, "learning_rate");
    o.max_epochs = s.GetInt(c, "max_epochs");
    return std::make_unique<SgdRegressorModel>(o, seed);
  };
  return a;
}

}  // namespace

const std::vector<Algorithm>& AlgorithmsFor(TaskType task) {
  static const std::vector<Algorithm>& classification =
      *new std::vector<Algorithm>{
          MakeLogisticRegression(),
          MakeLinearSvm(),
          MakeDecisionTree(TaskType::kClassification),
          MakeForest(TaskType::kClassification, /*extra_trees=*/false),
          MakeForest(TaskType::kClassification, /*extra_trees=*/true),
          MakeKnn(TaskType::kClassification),
          MakeGaussianNb(),
          MakeLda(),
          MakeQda(),
          MakeAdaBoost(),
          MakeGradientBoosting(TaskType::kClassification),
          MakeMlp(TaskType::kClassification),
      };
  static const std::vector<Algorithm>& regression =
      *new std::vector<Algorithm>{
          MakeRidge(),
          MakeLasso(),
          MakeSgdRegressor(),
          MakeDecisionTree(TaskType::kRegression),
          MakeForest(TaskType::kRegression, /*extra_trees=*/false),
          MakeForest(TaskType::kRegression, /*extra_trees=*/true),
          MakeKnn(TaskType::kRegression),
          MakeGradientBoosting(TaskType::kRegression),
          MakeMlp(TaskType::kRegression),
      };
  return task == TaskType::kClassification ? classification : regression;
}

const Algorithm& FindAlgorithm(const std::string& name, TaskType task) {
  for (const Algorithm& a : AlgorithmsFor(task)) {
    if (a.name == name) return a;
  }
  VOLCANOML_CHECK_MSG(false, ("unknown algorithm: " + name).c_str());
  return AlgorithmsFor(task)[0];  // Unreachable.
}

std::vector<std::string> AlgorithmNames(TaskType task) {
  std::vector<std::string> names;
  for (const Algorithm& a : AlgorithmsFor(task)) names.push_back(a.name);
  return names;
}

}  // namespace volcanoml
