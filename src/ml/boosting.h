#ifndef VOLCANOML_ML_BOOSTING_H_
#define VOLCANOML_ML_BOOSTING_H_

#include <cstdint>
#include <vector>

#include "ml/model.h"
#include "ml/tree.h"

namespace volcanoml {

/// Multiclass AdaBoost (SAMME) over shallow weighted decision trees.
class AdaBoostModel : public Model {
 public:
  struct Options {
    size_t num_estimators = 50;
    double learning_rate = 1.0;
    int max_depth = 1;  ///< Depth of each weak learner.
  };

  AdaBoostModel(const Options& options, uint64_t seed);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

  size_t NumEstimators() const { return trees_.size(); }

 private:
  Options options_;
  uint64_t seed_;
  size_t num_classes_ = 0;
  std::vector<DecisionTree> trees_;
  std::vector<double> alphas_;
};

/// Gradient-boosted regression trees. Regression uses squared loss;
/// classification uses one-tree-per-class softmax gradients (the standard
/// multiclass GBM construction).
class GradientBoostingModel : public Model {
 public:
  struct Options {
    size_t num_estimators = 100;
    double learning_rate = 0.1;
    int max_depth = 3;
    double subsample = 1.0;     ///< Row fraction per boosting round.
    double max_features = 1.0;  ///< Column fraction per split.
    size_t min_samples_leaf = 2;
  };

  GradientBoostingModel(const Options& options, uint64_t seed);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  Options options_;
  uint64_t seed_;
  size_t num_classes_ = 0;  ///< 0 for regression.
  double base_score_ = 0.0;
  /// trees_[round][class] for classification; trees_[round][0] for
  /// regression.
  std::vector<std::vector<DecisionTree>> trees_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_BOOSTING_H_
