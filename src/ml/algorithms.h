#ifndef VOLCANOML_ML_ALGORITHMS_H_
#define VOLCANOML_ML_ALGORITHMS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cs/configuration_space.h"
#include "ml/model.h"

namespace volcanoml {

/// A registered learning algorithm: a name, the task it solves, its full
/// hyper-parameter space (unprefixed parameter names), and a factory that
/// instantiates a Model from a configuration in that space.
///
/// This registry is the C++ analogue of auto-sklearn's algorithm menu; the
/// end-to-end search space is assembled from these entries by
/// eval/search_space.h.
struct Algorithm {
  std::string name;
  TaskType task;
  ConfigurationSpace hp_space;
  std::function<std::unique_ptr<Model>(const ConfigurationSpace& space,
                                       const Configuration& config,
                                       uint64_t seed)>
      create;
};

/// All registered algorithms for a task: 11 classifiers / 9 regressors.
const std::vector<Algorithm>& AlgorithmsFor(TaskType task);

/// Lookup by name; aborts if the algorithm is unknown for the task.
const Algorithm& FindAlgorithm(const std::string& name, TaskType task);

/// Names of all algorithms for a task, in registry order.
std::vector<std::string> AlgorithmNames(TaskType task);

}  // namespace volcanoml

#endif  // VOLCANOML_ML_ALGORITHMS_H_
