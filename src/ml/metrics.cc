#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace volcanoml {

double Accuracy(const std::vector<double>& y_true,
                const std::vector<double>& y_pred) {
  VOLCANOML_CHECK(y_true.size() == y_pred.size());
  VOLCANOML_CHECK(!y_true.empty());
  size_t correct = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(y_true.size());
}

double BalancedAccuracy(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred,
                        size_t num_classes) {
  VOLCANOML_CHECK(y_true.size() == y_pred.size());
  VOLCANOML_CHECK(!y_true.empty());
  VOLCANOML_CHECK(num_classes >= 1);
  std::vector<double> support(num_classes, 0.0);
  std::vector<double> hit(num_classes, 0.0);
  for (size_t i = 0; i < y_true.size(); ++i) {
    size_t c = static_cast<size_t>(y_true[i]);
    VOLCANOML_CHECK(c < num_classes);
    support[c] += 1.0;
    if (y_pred[i] == y_true[i]) hit[c] += 1.0;
  }
  double total = 0.0;
  size_t present = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    if (support[c] == 0.0) continue;
    total += hit[c] / support[c];
    ++present;
  }
  VOLCANOML_CHECK(present > 0);
  return total / static_cast<double>(present);
}

double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred) {
  VOLCANOML_CHECK(y_true.size() == y_pred.size());
  VOLCANOML_CHECK(!y_true.empty());
  double sse = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double err = y_true[i] - y_pred[i];
    sse += err * err;
  }
  return sse / static_cast<double>(y_true.size());
}

double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred) {
  VOLCANOML_CHECK(y_true.size() == y_pred.size());
  VOLCANOML_CHECK(!y_true.empty());
  double mean = 0.0;
  for (double v : y_true) mean += v;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Utility(const Dataset& test, const std::vector<double>& y_pred) {
  if (test.task() == TaskType::kClassification) {
    return BalancedAccuracy(test.y(), y_pred, test.NumClasses());
  }
  return -MeanSquaredError(test.y(), y_pred);
}

double RelativeMseImprovement(double mse_m1, double mse_m2) {
  double denom = std::max(mse_m1, mse_m2);
  if (denom <= 0.0) return 0.0;
  return (mse_m2 - mse_m1) / denom;
}

}  // namespace volcanoml
