#ifndef VOLCANOML_ML_NAIVE_BAYES_H_
#define VOLCANOML_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/model.h"

namespace volcanoml {

/// Gaussian naive Bayes classifier with variance smoothing.
class GaussianNbModel : public Model {
 public:
  struct Options {
    /// Added to per-feature variances as `var_smoothing * max_variance`.
    double var_smoothing = 1e-9;
  };

  explicit GaussianNbModel(const Options& options);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  Options options_;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> log_priors_;
  Matrix means_;      ///< (class x feature).
  Matrix variances_;  ///< (class x feature), smoothed.
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_NAIVE_BAYES_H_
