#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/kernels.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace volcanoml {

MlpModel::MlpModel(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {
  VOLCANOML_CHECK(options_.hidden_size >= 1);
  VOLCANOML_CHECK(options_.num_hidden_layers == 1 ||
                  options_.num_hidden_layers == 2);
  VOLCANOML_CHECK(options_.learning_rate > 0.0);
}

namespace {

template <typename Real>
inline Real Activate(Real v, MlpModel::Activation act) {
  return act == MlpModel::Activation::kRelu ? std::max(Real(0), v)
                                            : std::tanh(v);
}

template <typename Real>
inline Real ActivateGrad(Real activated, MlpModel::Activation act) {
  return act == MlpModel::Activation::kRelu
             ? (activated > Real(0) ? Real(1) : Real(0))
             : Real(1) - activated * activated;
}

}  // namespace

Status MlpModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  task_ = train.task();
  num_features_ = train.NumFeatures();
  num_classes_ =
      task_ == TaskType::kClassification ? train.NumClasses() : 0;
  const size_t n = train.NumSamples();

  feature_means_ = train.x().ColMeans();
  feature_scales_ = train.x().ColStdDevs();
  for (double& s : feature_scales_) {
    if (s <= 1e-12) s = 1.0;
  }
  if (task_ == TaskType::kRegression) {
    target_mean_ = 0.0;
    for (double v : train.y()) target_mean_ += v;
    target_mean_ /= static_cast<double>(n);
    double var = 0.0;
    for (double v : train.y()) var += (v - target_mean_) * (v - target_mean_);
    target_scale_ = std::sqrt(var / std::max<size_t>(1, n - 1));
    if (target_scale_ <= 1e-12) target_scale_ = 1.0;
  }

  if (precision_ == NumericPrecision::kFloat32) {
    net64_.clear();
    return FitNet(train, &net32_);
  }
  net32_.clear();
  return FitNet(train, &net64_);
}

template <typename Real>
Status MlpModel::FitNet(const Dataset& train, Net<Real>* net) {
  const size_t n = train.NumSamples();
  const size_t out_dim = num_classes_ > 0 ? num_classes_ : 1;

  Rng rng(seed_);
  net->clear();
  std::vector<size_t> dims = {num_features_};
  for (size_t l = 0; l < options_.num_hidden_layers; ++l) {
    dims.push_back(options_.hidden_size);
  }
  dims.push_back(out_dim);
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    NetLayer<Real> layer;
    layer.rows = dims[l + 1];
    layer.cols = dims[l];
    layer.w.assign(layer.rows * layer.cols, Real(0));
    layer.b.assign(layer.rows, Real(0));
    layer.w_vel.assign(layer.rows * layer.cols, Real(0));
    layer.b_vel.assign(layer.rows, Real(0));
    // He init. The RNG sequence is lane-independent (draws happen in
    // double and are cast), so both lanes start from the same weights.
    double scale = std::sqrt(2.0 / static_cast<double>(dims[l]));
    for (size_t r = 0; r < layer.rows; ++r) {
      for (size_t c = 0; c < layer.cols; ++c) {
        layer.w[r * layer.cols + c] =
            static_cast<Real>(rng.Gaussian(0.0, scale));
      }
    }
    net->push_back(std::move(layer));
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<Real> input(num_features_);
  std::vector<std::vector<Real>> activations;
  std::vector<std::vector<Real>> deltas(net->size());

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded("mlp fit interrupted by trial deadline");
    }
    rng.Shuffle(&order);
    double lr = options_.learning_rate / (1.0 + 0.02 * epoch);
    for (size_t i : order) {
      for (size_t f = 0; f < num_features_; ++f) {
        input[f] = static_cast<Real>(
            (train.x()(i, f) - feature_means_[f]) / feature_scales_[f]);
      }
      ForwardNet(*net, input, &activations);
      std::vector<Real>& output = activations.back();

      // Output delta.
      deltas.back().assign(output.size(), Real(0));
      if (num_classes_ > 0) {
        Real max_raw = *std::max_element(output.begin(), output.end());
        Real denom = Real(0);
        std::vector<Real> proba(output.size());
        for (size_t c = 0; c < output.size(); ++c) {
          proba[c] = std::exp(output[c] - max_raw);
          denom += proba[c];
        }
        size_t label = static_cast<size_t>(train.y()[i]);
        for (size_t c = 0; c < output.size(); ++c) {
          deltas.back()[c] =
              proba[c] / denom - (c == label ? Real(1) : Real(0));
        }
      } else {
        Real target = static_cast<Real>(
            (train.y()[i] - target_mean_) / target_scale_);
        // Clip the squared-loss gradient: one outlier step otherwise feeds
        // back through momentum and can blow the weights up to NaN.
        deltas.back()[0] =
            std::clamp(output[0] - target, Real(-3), Real(3));
      }

      // Backpropagate through hidden layers.
      for (size_t l = net->size() - 1; l-- > 0;) {
        const NetLayer<Real>& upper = (*net)[l + 1];
        std::vector<Real>& delta = deltas[l];
        delta.assign(activations[l + 1].size(), Real(0));
        for (size_t r = 0; r < upper.rows; ++r) {
          AxpyKernel(deltas[l + 1][r], upper.w.data() + r * upper.cols,
                     delta.data(), upper.cols);
        }
        for (size_t c = 0; c < delta.size(); ++c) {
          delta[c] *= ActivateGrad(activations[l + 1][c], options_.activation);
          delta[c] = std::clamp(delta[c], Real(-3), Real(3));
        }
      }

      // SGD + momentum updates. Per weight row:
      //   vel = momentum * vel - lr * (delta * in_act + alpha * w)
      //   w  += vel
      // expressed as a scale plus two axpys against the pre-update w.
      // Scalars are mixed in double and cast once, so the f64 lane's
      // coefficients are bit-identical to the historical ones.
      for (size_t l = 0; l < net->size(); ++l) {
        NetLayer<Real>& layer = (*net)[l];
        const std::vector<Real>& in_act = activations[l];
        const std::vector<Real>& delta = deltas[l];
        const size_t cols = layer.cols;
        for (size_t r = 0; r < layer.rows; ++r) {
          Real d = delta[r];
          Real* w = layer.w.data() + r * cols;
          Real* vel = layer.w_vel.data() + r * cols;
          ScaleKernel(static_cast<Real>(options_.momentum), vel, cols);
          AxpyKernel(static_cast<Real>(-lr * d), in_act.data(), vel, cols);
          AxpyKernel(static_cast<Real>(-lr * options_.alpha), w, vel, cols);
          AxpyKernel(Real(1), vel, w, cols);
          layer.b_vel[r] = static_cast<Real>(options_.momentum) *
                               layer.b_vel[r] -
                           static_cast<Real>(lr) * d;
          layer.b[r] += layer.b_vel[r];
        }
      }
    }
  }
  return Status::Ok();
}

template <typename Real>
void MlpModel::ForwardNet(const Net<Real>& net, const std::vector<Real>& input,
                          std::vector<std::vector<Real>>* activations) const {
  activations->assign(net.size() + 1, {});
  (*activations)[0] = input;
  for (size_t l = 0; l < net.size(); ++l) {
    const NetLayer<Real>& layer = net[l];
    std::vector<Real>& out = (*activations)[l + 1];
    out.assign(layer.rows, Real(0));
    const std::vector<Real>& in = (*activations)[l];
    for (size_t r = 0; r < layer.rows; ++r) {
      Real acc = layer.b[r] + DotKernel(layer.w.data() + r * layer.cols,
                                        in.data(), layer.cols);
      // Hidden layers are nonlinear; the output layer is linear.
      out[r] =
          (l + 1 == net.size()) ? acc : Activate(acc, options_.activation);
    }
  }
}

template <typename Real>
std::vector<double> MlpModel::PredictNet(const Net<Real>& net,
                                         const Matrix& x) const {
  std::vector<double> out(x.rows());
  std::vector<Real> input(num_features_);
  std::vector<std::vector<Real>> activations;
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t f = 0; f < num_features_; ++f) {
      input[f] = static_cast<Real>(
          (x(i, f) - feature_means_[f]) / feature_scales_[f]);
    }
    ForwardNet(net, input, &activations);
    const std::vector<Real>& output = activations.back();
    if (num_classes_ > 0) {
      out[i] = static_cast<double>(
          std::distance(output.begin(),
                        std::max_element(output.begin(), output.end())));
    } else {
      out[i] = output[0] * target_scale_ + target_mean_;
    }
  }
  return out;
}

std::vector<double> MlpModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!net64_.empty() || !net32_.empty());
  VOLCANOML_CHECK(x.cols() == num_features_);
  if (!net32_.empty()) return PredictNet(net32_, x);
  return PredictNet(net64_, x);
}

}  // namespace volcanoml
