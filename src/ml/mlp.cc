#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/kernels.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace volcanoml {

MlpModel::MlpModel(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {
  VOLCANOML_CHECK(options_.hidden_size >= 1);
  VOLCANOML_CHECK(options_.num_hidden_layers == 1 ||
                  options_.num_hidden_layers == 2);
  VOLCANOML_CHECK(options_.learning_rate > 0.0);
}

namespace {

inline double Activate(double v, MlpModel::Activation act) {
  return act == MlpModel::Activation::kRelu ? std::max(0.0, v) : std::tanh(v);
}

inline double ActivateGrad(double activated, MlpModel::Activation act) {
  return act == MlpModel::Activation::kRelu
             ? (activated > 0.0 ? 1.0 : 0.0)
             : 1.0 - activated * activated;
}

}  // namespace

Status MlpModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  task_ = train.task();
  num_features_ = train.NumFeatures();
  num_classes_ =
      task_ == TaskType::kClassification ? train.NumClasses() : 0;
  const size_t n = train.NumSamples();
  const size_t out_dim = num_classes_ > 0 ? num_classes_ : 1;

  feature_means_ = train.x().ColMeans();
  feature_scales_ = train.x().ColStdDevs();
  for (double& s : feature_scales_) {
    if (s <= 1e-12) s = 1.0;
  }
  if (task_ == TaskType::kRegression) {
    target_mean_ = 0.0;
    for (double v : train.y()) target_mean_ += v;
    target_mean_ /= static_cast<double>(n);
    double var = 0.0;
    for (double v : train.y()) var += (v - target_mean_) * (v - target_mean_);
    target_scale_ = std::sqrt(var / std::max<size_t>(1, n - 1));
    if (target_scale_ <= 1e-12) target_scale_ = 1.0;
  }

  Rng rng(seed_);
  layers_.clear();
  std::vector<size_t> dims = {num_features_};
  for (size_t l = 0; l < options_.num_hidden_layers; ++l) {
    dims.push_back(options_.hidden_size);
  }
  dims.push_back(out_dim);
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    layer.w = Matrix(dims[l + 1], dims[l]);
    layer.b.assign(dims[l + 1], 0.0);
    layer.w_vel = Matrix(dims[l + 1], dims[l]);
    layer.b_vel.assign(dims[l + 1], 0.0);
    double scale = std::sqrt(2.0 / static_cast<double>(dims[l]));
    for (size_t r = 0; r < layer.w.rows(); ++r) {
      for (size_t c = 0; c < layer.w.cols(); ++c) {
        layer.w(r, c) = rng.Gaussian(0.0, scale);
      }
    }
    layers_.push_back(std::move(layer));
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> input(num_features_);
  std::vector<std::vector<double>> activations;
  std::vector<std::vector<double>> deltas(layers_.size());

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded("mlp fit interrupted by trial deadline");
    }
    rng.Shuffle(&order);
    double lr = options_.learning_rate / (1.0 + 0.02 * epoch);
    for (size_t i : order) {
      for (size_t f = 0; f < num_features_; ++f) {
        input[f] =
            (train.x()(i, f) - feature_means_[f]) / feature_scales_[f];
      }
      Forward(input, &activations);
      std::vector<double>& output = activations.back();

      // Output delta.
      deltas.back().assign(output.size(), 0.0);
      if (num_classes_ > 0) {
        double max_raw = *std::max_element(output.begin(), output.end());
        double denom = 0.0;
        std::vector<double> proba(output.size());
        for (size_t c = 0; c < output.size(); ++c) {
          proba[c] = std::exp(output[c] - max_raw);
          denom += proba[c];
        }
        size_t label = static_cast<size_t>(train.y()[i]);
        for (size_t c = 0; c < output.size(); ++c) {
          deltas.back()[c] = proba[c] / denom - (c == label ? 1.0 : 0.0);
        }
      } else {
        double target = (train.y()[i] - target_mean_) / target_scale_;
        // Clip the squared-loss gradient: one outlier step otherwise feeds
        // back through momentum and can blow the weights up to NaN.
        deltas.back()[0] = std::clamp(output[0] - target, -3.0, 3.0);
      }

      // Backpropagate through hidden layers.
      for (size_t l = layers_.size() - 1; l-- > 0;) {
        const Layer& upper = layers_[l + 1];
        std::vector<double>& delta = deltas[l];
        delta.assign(activations[l + 1].size(), 0.0);
        for (size_t r = 0; r < upper.w.rows(); ++r) {
          AxpyKernel(deltas[l + 1][r], upper.w.RowPtr(r), delta.data(),
                     upper.w.cols());
        }
        for (size_t c = 0; c < delta.size(); ++c) {
          delta[c] *= ActivateGrad(activations[l + 1][c], options_.activation);
          delta[c] = std::clamp(delta[c], -3.0, 3.0);
        }
      }

      // SGD + momentum updates. Per weight row:
      //   vel = momentum * vel - lr * (delta * in_act + alpha * w)
      //   w  += vel
      // expressed as a scale plus two axpys against the pre-update w.
      for (size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        const std::vector<double>& in_act = activations[l];
        const std::vector<double>& delta = deltas[l];
        const size_t cols = layer.w.cols();
        for (size_t r = 0; r < layer.w.rows(); ++r) {
          double d = delta[r];
          double* w = layer.w.RowPtr(r);
          double* vel = layer.w_vel.RowPtr(r);
          ScaleKernel(options_.momentum, vel, cols);
          AxpyKernel(-lr * d, in_act.data(), vel, cols);
          AxpyKernel(-lr * options_.alpha, w, vel, cols);
          AxpyKernel(1.0, vel, w, cols);
          layer.b_vel[r] = options_.momentum * layer.b_vel[r] - lr * d;
          layer.b[r] += layer.b_vel[r];
        }
      }
    }
  }
  return Status::Ok();
}

void MlpModel::Forward(const std::vector<double>& input,
                       std::vector<std::vector<double>>* activations) const {
  activations->assign(layers_.size() + 1, {});
  (*activations)[0] = input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double>& out = (*activations)[l + 1];
    out.assign(layer.w.rows(), 0.0);
    const std::vector<double>& in = (*activations)[l];
    for (size_t r = 0; r < layer.w.rows(); ++r) {
      double acc =
          layer.b[r] + DotKernel(layer.w.RowPtr(r), in.data(), layer.w.cols());
      // Hidden layers are nonlinear; the output layer is linear.
      out[r] = (l + 1 == layers_.size()) ? acc
                                         : Activate(acc, options_.activation);
    }
  }
}

std::vector<double> MlpModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!layers_.empty());
  VOLCANOML_CHECK(x.cols() == num_features_);
  std::vector<double> out(x.rows());
  std::vector<double> input(num_features_);
  std::vector<std::vector<double>> activations;
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t f = 0; f < num_features_; ++f) {
      input[f] = (x(i, f) - feature_means_[f]) / feature_scales_[f];
    }
    Forward(input, &activations);
    const std::vector<double>& output = activations.back();
    if (num_classes_ > 0) {
      out[i] = static_cast<double>(
          std::distance(output.begin(),
                        std::max_element(output.begin(), output.end())));
    } else {
      out[i] = output[0] * target_scale_ + target_mean_;
    }
  }
  return out;
}

}  // namespace volcanoml
