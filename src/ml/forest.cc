#include "ml/forest.h"

#include <algorithm>

#include "util/check.h"
#include "util/deadline.h"

namespace volcanoml {

ForestModel::ForestModel(const ForestOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {
  VOLCANOML_CHECK(options_.num_trees >= 1);
}

Status ForestModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  num_classes_ =
      train.task() == TaskType::kClassification ? train.NumClasses() : 0;
  trees_.clear();
  trees_.reserve(options_.num_trees);
  const size_t n = train.NumSamples();
  for (size_t t = 0; t < options_.num_trees; ++t) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "forest fit interrupted by trial deadline");
    }
    DecisionTree tree(options_.tree, rng_.Fork());
    Status s;
    if (options_.bootstrap) {
      std::vector<size_t> sample(n);
      for (size_t i = 0; i < n; ++i) sample[i] = rng_.Index(n);
      Matrix xb = train.x().SelectRows(sample);
      std::vector<double> yb(n);
      for (size_t i = 0; i < n; ++i) yb[i] = train.y()[sample[i]];
      s = tree.Fit(xb, yb, num_classes_);
    } else {
      s = tree.Fit(train.x(), train.y(), num_classes_);
    }
    if (!s.ok()) return s;
    trees_.push_back(std::move(tree));
  }
  return Status::Ok();
}

std::vector<double> ForestModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!trees_.empty());
  std::vector<double> out(x.rows());
  if (num_classes_ > 0) {
    std::vector<double> proba(num_classes_);
    for (size_t i = 0; i < x.rows(); ++i) {
      std::fill(proba.begin(), proba.end(), 0.0);
      for (const DecisionTree& tree : trees_) {
        std::vector<double> p = tree.PredictProbaOne(x.RowPtr(i));
        for (size_t c = 0; c < num_classes_; ++c) proba[c] += p[c];
      }
      size_t best = 0;
      for (size_t c = 1; c < num_classes_; ++c) {
        if (proba[c] > proba[best]) best = c;
      }
      out[i] = static_cast<double>(best);
    }
  } else {
    for (size_t i = 0; i < x.rows(); ++i) {
      double sum = 0.0;
      for (const DecisionTree& tree : trees_) {
        sum += tree.PredictOne(x.RowPtr(i));
      }
      out[i] = sum / static_cast<double>(trees_.size());
    }
  }
  return out;
}

}  // namespace volcanoml
