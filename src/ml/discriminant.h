#ifndef VOLCANOML_ML_DISCRIMINANT_H_
#define VOLCANOML_ML_DISCRIMINANT_H_

#include <vector>

#include "ml/model.h"

namespace volcanoml {

/// Linear discriminant analysis with covariance shrinkage toward a scaled
/// identity: Sigma_shrunk = (1-s) Sigma + s * tr(Sigma)/d * I.
class LdaModel : public Model {
 public:
  struct Options {
    double shrinkage = 0.1;  ///< s in [0, 1].
  };

  explicit LdaModel(const Options& options);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  Options options_;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> log_priors_;
  Matrix means_;          ///< (class x feature).
  Matrix precision_;      ///< Shared inverse covariance.
};

/// Quadratic discriminant analysis with per-class regularized covariance.
/// To keep the per-class inversion well-posed on small classes, class
/// covariances are kept diagonal with regularization `reg_param` toward
/// the pooled variance (a common robust QDA variant).
class QdaModel : public Model {
 public:
  struct Options {
    double reg_param = 0.1;  ///< In [0, 1].
  };

  explicit QdaModel(const Options& options);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  Options options_;
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> log_priors_;
  Matrix means_;
  Matrix variances_;  ///< (class x feature), regularized diagonal cov.
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_DISCRIMINANT_H_
