#ifndef VOLCANOML_ML_KNN_H_
#define VOLCANOML_ML_KNN_H_

#include <vector>

#include "data/aligned.h"
#include "ml/model.h"

namespace volcanoml {

/// k-nearest-neighbors for both tasks. Brute-force search with Minkowski
/// distance (p=1 Manhattan, p=2 Euclidean) on standardized features;
/// voting may be uniform or distance-weighted.
///
/// Supports the float32 lane (data/precision.h): when a session opts in,
/// the standardized training matrix is stored as float with rows padded
/// to cache-line stride, halving the memory the distance scan streams and
/// letting the f32 distance kernel run its aligned fast path. Neighbor
/// ordering and voting stay double.
class KnnModel : public Model {
 public:
  struct Options {
    int k = 5;
    bool distance_weighted = false;
    int p = 2;  ///< Minkowski order (1 or 2).
  };

  explicit KnnModel(const Options& options);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;
  void SetPrecision(NumericPrecision precision) override {
    precision_ = precision;
  }

 private:
  double Distance(const double* a, const double* b) const;
  double DistanceF32(const float* a, const float* b) const;

  Options options_;
  NumericPrecision precision_ = NumericPrecision::kFloat64;
  size_t train_rows_ = 0;
  size_t train_cols_ = 0;
  Matrix train_x_;  ///< Standardized training features (f64 lane).
  /// f32 lane: standardized features, row stride padded to stride32_ so
  /// every row starts on a 64-byte boundary. Empty in the f64 lane.
  AlignedVector<float> train_x32_;
  size_t stride32_ = 0;
  std::vector<double> train_y_;
  std::vector<double> feature_means_, feature_scales_;
  size_t num_classes_ = 0;
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_KNN_H_
