#ifndef VOLCANOML_ML_KNN_H_
#define VOLCANOML_ML_KNN_H_

#include <vector>

#include "ml/model.h"

namespace volcanoml {

/// k-nearest-neighbors for both tasks. Brute-force search with Minkowski
/// distance (p=1 Manhattan, p=2 Euclidean) on standardized features;
/// voting may be uniform or distance-weighted.
class KnnModel : public Model {
 public:
  struct Options {
    int k = 5;
    bool distance_weighted = false;
    int p = 2;  ///< Minkowski order (1 or 2).
  };

  explicit KnnModel(const Options& options);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  double Distance(const double* a, const double* b) const;

  Options options_;
  Matrix train_x_;  ///< Standardized training features.
  std::vector<double> train_y_;
  std::vector<double> feature_means_, feature_scales_;
  size_t num_classes_ = 0;
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_KNN_H_
