#include "ml/boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace volcanoml {

// ---------------------------------------------------------------------------
// AdaBoostModel

AdaBoostModel::AdaBoostModel(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {
  VOLCANOML_CHECK(options_.num_estimators >= 1);
  VOLCANOML_CHECK(options_.learning_rate > 0.0);
}

Status AdaBoostModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kClassification);
  num_classes_ = train.NumClasses();
  const size_t n = train.NumSamples();
  const double k = static_cast<double>(num_classes_);

  trees_.clear();
  alphas_.clear();
  Rng rng(seed_);
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));

  TreeOptions tree_opts;
  tree_opts.criterion = TreeCriterion::kGini;
  tree_opts.max_depth = options_.max_depth;
  tree_opts.min_samples_leaf = 1;

  for (size_t round = 0; round < options_.num_estimators; ++round) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "adaboost fit interrupted by trial deadline");
    }
    DecisionTree tree(tree_opts, rng.Fork());
    Status s = tree.Fit(train.x(), train.y(), num_classes_, weights);
    if (!s.ok()) return s;
    std::vector<double> pred = tree.Predict(train.x());

    double err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (pred[i] != train.y()[i]) err += weights[i];
    }
    // SAMME requires err < 1 - 1/k; stop when the weak learner degrades.
    if (err >= 1.0 - 1.0 / k) break;
    err = std::max(err, 1e-10);
    double alpha =
        options_.learning_rate * (std::log((1.0 - err) / err) + std::log(k - 1.0));
    if (alpha <= 0.0) break;

    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (pred[i] != train.y()[i]) {
        weights[i] *= std::exp(alpha);
      }
      total += weights[i];
    }
    for (double& w : weights) w /= total;

    trees_.push_back(std::move(tree));
    alphas_.push_back(alpha);
    if (err < 1e-9) break;  // Perfect learner: further rounds are no-ops.
  }
  if (trees_.empty()) {
    // Degenerate data: fall back to a single unweighted tree.
    DecisionTree tree(tree_opts, rng.Fork());
    Status s = tree.Fit(train.x(), train.y(), num_classes_);
    if (!s.ok()) return s;
    trees_.push_back(std::move(tree));
    alphas_.push_back(1.0);
  }
  return Status::Ok();
}

std::vector<double> AdaBoostModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!trees_.empty());
  std::vector<double> out(x.rows());
  std::vector<double> votes(num_classes_);
  for (size_t i = 0; i < x.rows(); ++i) {
    std::fill(votes.begin(), votes.end(), 0.0);
    for (size_t t = 0; t < trees_.size(); ++t) {
      size_t c = static_cast<size_t>(trees_[t].PredictOne(x.RowPtr(i)));
      votes[c] += alphas_[t];
    }
    size_t best = 0;
    for (size_t c = 1; c < num_classes_; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

// ---------------------------------------------------------------------------
// GradientBoostingModel

GradientBoostingModel::GradientBoostingModel(const Options& options,
                                             uint64_t seed)
    : options_(options), seed_(seed) {
  VOLCANOML_CHECK(options_.num_estimators >= 1);
  VOLCANOML_CHECK(options_.learning_rate > 0.0);
  VOLCANOML_CHECK(options_.subsample > 0.0 && options_.subsample <= 1.0);
}

Status GradientBoostingModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  const size_t n = train.NumSamples();
  Rng rng(seed_);
  trees_.clear();

  TreeOptions tree_opts;
  tree_opts.criterion = TreeCriterion::kMse;
  tree_opts.max_depth = options_.max_depth;
  tree_opts.min_samples_leaf = options_.min_samples_leaf;
  tree_opts.max_features = options_.max_features;

  if (train.task() == TaskType::kRegression) {
    num_classes_ = 0;
    base_score_ = 0.0;
    for (double v : train.y()) base_score_ += v;
    base_score_ /= static_cast<double>(n);

    std::vector<double> current(n, base_score_);
    for (size_t round = 0; round < options_.num_estimators; ++round) {
      if (TrialDeadlineExpired()) {
        return Status::DeadlineExceeded(
            "gradient boosting fit interrupted by trial deadline");
      }
      std::vector<double> residual(n);
      for (size_t i = 0; i < n; ++i) residual[i] = train.y()[i] - current[i];

      // Row subsampling via weights 0/1 keeps index bookkeeping simple.
      std::vector<double> weights;
      if (options_.subsample < 1.0) {
        weights.assign(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
          if (rng.Bernoulli(options_.subsample)) weights[i] = 1.0;
        }
      }
      DecisionTree tree(tree_opts, rng.Fork());
      Status s = tree.Fit(train.x(), residual, 0, weights);
      if (!s.ok()) return s;
      for (size_t i = 0; i < n; ++i) {
        current[i] +=
            options_.learning_rate * tree.PredictOne(train.x().RowPtr(i));
      }
      trees_.push_back({});
      trees_.back().push_back(std::move(tree));
    }
    return Status::Ok();
  }

  // Multiclass classification: per-round, one regression tree per class on
  // the softmax gradient (y_ic - p_ic).
  num_classes_ = train.NumClasses();
  base_score_ = 0.0;
  Matrix raw(n, num_classes_);  // Current raw scores.
  std::vector<double> proba(num_classes_);
  for (size_t round = 0; round < options_.num_estimators; ++round) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "gradient boosting fit interrupted by trial deadline");
    }
    std::vector<double> weights;
    if (options_.subsample < 1.0) {
      weights.assign(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(options_.subsample)) weights[i] = 1.0;
      }
    }
    std::vector<std::vector<double>> gradients(
        num_classes_, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i) {
      double max_raw = -1e300;
      for (size_t c = 0; c < num_classes_; ++c) {
        max_raw = std::max(max_raw, raw(i, c));
      }
      double denom = 0.0;
      for (size_t c = 0; c < num_classes_; ++c) {
        proba[c] = std::exp(raw(i, c) - max_raw);
        denom += proba[c];
      }
      size_t label = static_cast<size_t>(train.y()[i]);
      for (size_t c = 0; c < num_classes_; ++c) {
        gradients[c][i] = (c == label ? 1.0 : 0.0) - proba[c] / denom;
      }
    }
    trees_.push_back({});
    for (size_t c = 0; c < num_classes_; ++c) {
      DecisionTree tree(tree_opts, rng.Fork());
      Status s = tree.Fit(train.x(), gradients[c], 0, weights);
      if (!s.ok()) return s;
      for (size_t i = 0; i < n; ++i) {
        raw(i, c) +=
            options_.learning_rate * tree.PredictOne(train.x().RowPtr(i));
      }
      trees_.back().push_back(std::move(tree));
    }
  }
  return Status::Ok();
}

std::vector<double> GradientBoostingModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!trees_.empty());
  std::vector<double> out(x.rows());
  if (num_classes_ == 0) {
    for (size_t i = 0; i < x.rows(); ++i) {
      double pred = base_score_;
      for (const auto& round : trees_) {
        pred += options_.learning_rate * round[0].PredictOne(x.RowPtr(i));
      }
      out[i] = pred;
    }
    return out;
  }
  std::vector<double> raw(num_classes_);
  for (size_t i = 0; i < x.rows(); ++i) {
    std::fill(raw.begin(), raw.end(), 0.0);
    for (const auto& round : trees_) {
      for (size_t c = 0; c < num_classes_; ++c) {
        raw[c] += options_.learning_rate * round[c].PredictOne(x.RowPtr(i));
      }
    }
    size_t best = 0;
    for (size_t c = 1; c < num_classes_; ++c) {
      if (raw[c] > raw[best]) best = c;
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

}  // namespace volcanoml
