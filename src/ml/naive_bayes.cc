#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace volcanoml {

GaussianNbModel::GaussianNbModel(const Options& options) : options_(options) {
  VOLCANOML_CHECK(options_.var_smoothing >= 0.0);
}

Status GaussianNbModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kClassification);
  num_classes_ = train.NumClasses();
  num_features_ = train.NumFeatures();
  means_ = Matrix(num_classes_, num_features_);
  variances_ = Matrix(num_classes_, num_features_);
  std::vector<double> counts(num_classes_, 0.0);

  for (size_t i = 0; i < train.NumSamples(); ++i) {
    size_t c = static_cast<size_t>(train.y()[i]);
    counts[c] += 1.0;
    for (size_t f = 0; f < num_features_; ++f) {
      means_(c, f) += train.x()(i, f);
    }
  }
  for (size_t c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0.0) continue;
    for (size_t f = 0; f < num_features_; ++f) means_(c, f) /= counts[c];
  }
  for (size_t i = 0; i < train.NumSamples(); ++i) {
    size_t c = static_cast<size_t>(train.y()[i]);
    for (size_t f = 0; f < num_features_; ++f) {
      double d = train.x()(i, f) - means_(c, f);
      variances_(c, f) += d * d;
    }
  }
  // Smoothing floor proportional to the largest overall feature variance
  // (scikit-learn's convention).
  std::vector<double> overall_sd = train.x().ColStdDevs();
  double max_var = 1e-9;
  for (double s : overall_sd) max_var = std::max(max_var, s * s);
  double floor = options_.var_smoothing * max_var + 1e-12;

  log_priors_.assign(num_classes_, -1e300);
  double n = static_cast<double>(train.NumSamples());
  for (size_t c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0.0) continue;
    log_priors_[c] = std::log(counts[c] / n);
    for (size_t f = 0; f < num_features_; ++f) {
      variances_(c, f) = variances_(c, f) / counts[c] + floor;
    }
  }
  return Status::Ok();
}

std::vector<double> GaussianNbModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(num_classes_ > 0);
  VOLCANOML_CHECK(x.cols() == num_features_);
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    size_t best = 0;
    double best_ll = -1e300;
    for (size_t c = 0; c < num_classes_; ++c) {
      if (log_priors_[c] <= -1e299) continue;  // Class absent in training.
      double ll = log_priors_[c];
      for (size_t f = 0; f < num_features_; ++f) {
        double var = variances_(c, f);
        double d = x(i, f) - means_(c, f);
        ll += -0.5 * (std::log(2.0 * M_PI * var) + d * d / var);
      }
      if (ll > best_ll) {
        best_ll = ll;
        best = c;
      }
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

}  // namespace volcanoml
