#ifndef VOLCANOML_ML_FOREST_H_
#define VOLCANOML_ML_FOREST_H_

#include <cstdint>
#include <vector>

#include "ml/model.h"
#include "ml/tree.h"
#include "util/rng.h"

namespace volcanoml {

/// Options for bagged tree ensembles.
struct ForestOptions {
  size_t num_trees = 50;
  bool bootstrap = true;
  TreeOptions tree;
};

/// Random forest / extra-trees ensemble for both tasks. With
/// `tree.random_splits = true` and `bootstrap = false` this behaves as
/// extra-trees. Classification aggregates tree class distributions (soft
/// voting); regression averages tree outputs.
class ForestModel : public Model {
 public:
  ForestModel(const ForestOptions& options, uint64_t seed);

  Status Fit(const Dataset& train) override;
  std::vector<double> Predict(const Matrix& x) const override;

  size_t NumTrees() const { return trees_.size(); }

 private:
  ForestOptions options_;
  Rng rng_;
  size_t num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_FOREST_H_
