#ifndef VOLCANOML_ML_TREE_H_
#define VOLCANOML_ML_TREE_H_

#include <cstdint>
#include <vector>

#include "data/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace volcanoml {

/// Split-quality criterion; kGini/kEntropy imply classification, kMse
/// implies regression.
enum class TreeCriterion { kGini, kEntropy, kMse };

/// CART growth options shared by single trees, forests, and boosting.
struct TreeOptions {
  TreeCriterion criterion = TreeCriterion::kGini;
  int max_depth = 10;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  /// Fraction of features examined per split, in (0, 1].
  double max_features = 1.0;
  /// Extra-trees style: draw one random threshold per candidate feature
  /// instead of scanning all cut points.
  bool random_splits = false;
};

/// A single CART decision tree supporting weighted samples (for boosting),
/// classification (gini/entropy) and regression (mse). This is the core
/// engine reused by RandomForest, ExtraTrees, AdaBoost and
/// GradientBoosting.
class DecisionTree {
 public:
  DecisionTree(const TreeOptions& options, uint64_t seed);

  /// Fits the tree. For classification pass num_classes >= 2 and integer
  /// labels in y; for regression pass num_classes == 0. `weights` may be
  /// empty (uniform) or per-sample non-negative weights.
  Status Fit(const Matrix& x, const std::vector<double>& y,
             size_t num_classes, const std::vector<double>& weights = {});

  /// Predicted label (classification) or value (regression) for one row.
  double PredictOne(const double* row) const;

  /// Batch prediction.
  std::vector<double> Predict(const Matrix& x) const;

  /// Class-probability vector for one row (classification only).
  std::vector<double> PredictProbaOne(const double* row) const;

  size_t NumNodes() const { return nodes_.size(); }
  bool fitted() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;        ///< -1 marks a leaf.
    double threshold = 0.0;  ///< Go left when value <= threshold.
    int left = -1;
    int right = -1;
    double value = 0.0;             ///< Leaf prediction.
    std::vector<double> class_dist; ///< Leaf class probabilities (cls only).
  };

  int Build(const Matrix& x, const std::vector<double>& y,
            const std::vector<double>& weights, std::vector<size_t>* indices,
            size_t begin, size_t end, int depth);

  /// Finds the best (feature, threshold) for samples indices[begin:end];
  /// returns false if no valid split exists.
  bool FindSplit(const Matrix& x, const std::vector<double>& y,
                 const std::vector<double>& weights,
                 const std::vector<size_t>& indices, size_t begin, size_t end,
                 int* best_feature, double* best_threshold);

  int MakeLeaf(const std::vector<double>& y,
               const std::vector<double>& weights,
               const std::vector<size_t>& indices, size_t begin, size_t end);

  TreeOptions options_;
  Rng rng_;
  size_t num_classes_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_TREE_H_
