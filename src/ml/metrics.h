#ifndef VOLCANOML_ML_METRICS_H_
#define VOLCANOML_ML_METRICS_H_

#include <vector>

#include "data/dataset.h"

namespace volcanoml {

/// Fraction of exact label matches.
double Accuracy(const std::vector<double>& y_true,
                const std::vector<double>& y_pred);

/// Mean of per-class recalls ("balanced accuracy"), the paper's metric for
/// all classification tasks: classes are weighted equally regardless of
/// support. `num_classes` fixes the label universe (classes absent from
/// y_true are skipped).
double BalancedAccuracy(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred,
                        size_t num_classes);

/// Mean squared error, the paper's metric for regression tasks.
double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred);

/// Coefficient of determination; 0 when y_true is constant.
double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred);

/// Task-appropriate *utility* (higher is better): balanced accuracy for
/// classification, negative MSE for regression. This is the objective all
/// search strategies maximize.
double Utility(const Dataset& test, const std::vector<double>& y_pred);

/// Relative MSE improvement Delta(m1, m2) = (s(m2)-s(m1)) / max(s(m1),s(m2))
/// used by the paper's Figure 4 regression comparison (positive when m1 is
/// better, i.e. has smaller MSE).
double RelativeMseImprovement(double mse_m1, double mse_m2);

}  // namespace volcanoml

#endif  // VOLCANOML_ML_METRICS_H_
