#include "ml/discriminant.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace volcanoml {

namespace {

/// Inverts a symmetric positive-definite matrix via Gauss-Jordan with the
/// identity augmented; assumes the caller regularized the diagonal.
bool InvertSpd(Matrix a, Matrix* inv) {
  const size_t n = a.rows();
  VOLCANOML_CHECK(a.cols() == n);
  *inv = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) (*inv)(i, i) = 1.0;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(a(col, c), a(pivot, c));
        std::swap((*inv)(col, c), (*inv)(pivot, c));
      }
    }
    double diag = a(col, col);
    for (size_t c = 0; c < n; ++c) {
      a(col, c) /= diag;
      (*inv)(col, c) /= diag;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double factor = a(r, col);
      if (factor == 0.0) continue;
      for (size_t c = 0; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
        (*inv)(r, c) -= factor * (*inv)(col, c);
      }
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// LdaModel

LdaModel::LdaModel(const Options& options) : options_(options) {
  VOLCANOML_CHECK(options_.shrinkage >= 0.0 && options_.shrinkage <= 1.0);
}

Status LdaModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kClassification);
  num_classes_ = train.NumClasses();
  num_features_ = train.NumFeatures();
  const size_t n = train.NumSamples();
  const size_t d = num_features_;

  means_ = Matrix(num_classes_, d);
  std::vector<double> counts(num_classes_, 0.0);
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(train.y()[i]);
    counts[c] += 1.0;
    for (size_t f = 0; f < d; ++f) means_(c, f) += train.x()(i, f);
  }
  for (size_t c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0.0) continue;
    for (size_t f = 0; f < d; ++f) means_(c, f) /= counts[c];
  }

  // Pooled within-class covariance.
  Matrix cov(d, d);
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(train.y()[i]);
    for (size_t a = 0; a < d; ++a) {
      double da = train.x()(i, a) - means_(c, a);
      for (size_t b = a; b < d; ++b) {
        cov(a, b) += da * (train.x()(i, b) - means_(c, b));
      }
    }
  }
  double denom = std::max<double>(1.0, static_cast<double>(n) -
                                           static_cast<double>(num_classes_));
  double trace = 0.0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov(a, b) /= denom;
      cov(b, a) = cov(a, b);
    }
    trace += cov(a, a);
  }
  // Shrink toward the scaled identity.
  double mu = trace / static_cast<double>(d);
  double s = options_.shrinkage;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < d; ++b) {
      cov(a, b) = (1.0 - s) * cov(a, b) + (a == b ? s * mu : 0.0);
    }
    cov(a, a) += 1e-8;
  }
  if (!InvertSpd(cov, &precision_)) {
    return Status::Internal("singular covariance in LDA");
  }
  log_priors_.assign(num_classes_, -1e300);
  for (size_t c = 0; c < num_classes_; ++c) {
    if (counts[c] > 0.0) {
      log_priors_[c] = std::log(counts[c] / static_cast<double>(n));
    }
  }
  return Status::Ok();
}

std::vector<double> LdaModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(num_classes_ > 0);
  VOLCANOML_CHECK(x.cols() == num_features_);
  const size_t d = num_features_;
  std::vector<double> out(x.rows());
  std::vector<double> wm(d);
  for (size_t i = 0; i < x.rows(); ++i) {
    size_t best = 0;
    double best_score = -1e300;
    for (size_t c = 0; c < num_classes_; ++c) {
      if (log_priors_[c] <= -1e299) continue;
      // Score: x^T P mu_c - 0.5 mu_c^T P mu_c + log prior.
      for (size_t a = 0; a < d; ++a) {
        double acc = 0.0;
        for (size_t b = 0; b < d; ++b) acc += precision_(a, b) * means_(c, b);
        wm[a] = acc;
      }
      double score = log_priors_[c];
      for (size_t a = 0; a < d; ++a) {
        score += x(i, a) * wm[a] - 0.5 * means_(c, a) * wm[a];
      }
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

// ---------------------------------------------------------------------------
// QdaModel

QdaModel::QdaModel(const Options& options) : options_(options) {
  VOLCANOML_CHECK(options_.reg_param >= 0.0 && options_.reg_param <= 1.0);
}

Status QdaModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kClassification);
  num_classes_ = train.NumClasses();
  num_features_ = train.NumFeatures();
  const size_t n = train.NumSamples();
  const size_t d = num_features_;

  means_ = Matrix(num_classes_, d);
  variances_ = Matrix(num_classes_, d);
  std::vector<double> counts(num_classes_, 0.0);
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(train.y()[i]);
    counts[c] += 1.0;
    for (size_t f = 0; f < d; ++f) means_(c, f) += train.x()(i, f);
  }
  for (size_t c = 0; c < num_classes_; ++c) {
    if (counts[c] == 0.0) continue;
    for (size_t f = 0; f < d; ++f) means_(c, f) /= counts[c];
  }
  for (size_t i = 0; i < n; ++i) {
    size_t c = static_cast<size_t>(train.y()[i]);
    for (size_t f = 0; f < d; ++f) {
      double diff = train.x()(i, f) - means_(c, f);
      variances_(c, f) += diff * diff;
    }
  }
  // Pooled variance per feature for regularization.
  std::vector<double> pooled_sd = train.x().ColStdDevs();
  for (size_t c = 0; c < num_classes_; ++c) {
    for (size_t f = 0; f < d; ++f) {
      double var = counts[c] > 1.0 ? variances_(c, f) / counts[c] : 0.0;
      double pooled = pooled_sd[f] * pooled_sd[f];
      variances_(c, f) = (1.0 - options_.reg_param) * var +
                         options_.reg_param * pooled + 1e-9;
    }
  }
  log_priors_.assign(num_classes_, -1e300);
  for (size_t c = 0; c < num_classes_; ++c) {
    if (counts[c] > 0.0) {
      log_priors_[c] = std::log(counts[c] / static_cast<double>(n));
    }
  }
  return Status::Ok();
}

std::vector<double> QdaModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(num_classes_ > 0);
  VOLCANOML_CHECK(x.cols() == num_features_);
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    size_t best = 0;
    double best_ll = -1e300;
    for (size_t c = 0; c < num_classes_; ++c) {
      if (log_priors_[c] <= -1e299) continue;
      double ll = log_priors_[c];
      for (size_t f = 0; f < num_features_; ++f) {
        double var = variances_(c, f);
        double diff = x(i, f) - means_(c, f);
        ll += -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
      }
      if (ll > best_ll) {
        best_ll = ll;
        best = c;
      }
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

}  // namespace volcanoml
