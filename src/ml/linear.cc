#include "ml/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/kernels.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace volcanoml {

namespace {

/// Computes per-feature mean/scale for standardization (scale 1 for
/// constant features).
void ComputeStandardization(const Matrix& x, std::vector<double>* means,
                            std::vector<double>* scales) {
  *means = x.ColMeans();
  *scales = x.ColStdDevs();
  for (double& s : *scales) {
    if (s <= 1e-12) s = 1.0;
  }
}

/// Standardizes one value.
inline double Std(double v, double mean, double scale) {
  return (v - mean) / scale;
}

/// Solves the linear system a * x = b in place via Gaussian elimination
/// with partial pivoting. `a` is n x n, `b` has n entries. Returns false
/// for a (numerically) singular system.
bool SolveLinearSystem(Matrix a, std::vector<double> b,
                       std::vector<double>* x_out) {
  const size_t n = a.rows();
  VOLCANOML_CHECK(a.cols() == n && b.size() == n);
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  x_out->assign(n, 0.0);
  for (size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (size_t c = r + 1; c < n; ++c) acc -= a(r, c) * (*x_out)[c];
    (*x_out)[r] = acc / a(r, r);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// LogisticRegressionModel

LogisticRegressionModel::LogisticRegressionModel(const Options& options,
                                                 uint64_t seed)
    : options_(options), seed_(seed) {
  VOLCANOML_CHECK(options_.c > 0.0);
  VOLCANOML_CHECK(options_.max_epochs >= 1);
}

Status LogisticRegressionModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kClassification);
  num_classes_ = train.NumClasses();
  num_features_ = train.NumFeatures();
  ComputeStandardization(train.x(), &feature_means_, &feature_scales_);

  weights_.assign(num_classes_ * num_features_, 0.0);
  bias_.assign(num_classes_, 0.0);

  const size_t n = train.NumSamples();
  const double lambda = 1.0 / (options_.c * static_cast<double>(n));
  Rng rng(seed_);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> z(num_features_);
  std::vector<double> scores(num_classes_);

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "logistic regression fit interrupted by trial deadline");
    }
    rng.Shuffle(&order);
    // 1/t learning-rate decay keeps early epochs exploratory.
    double lr = options_.learning_rate / (1.0 + 0.05 * epoch);
    for (size_t i : order) {
      for (size_t f = 0; f < num_features_; ++f) {
        z[f] = Std(train.x()(i, f), feature_means_[f], feature_scales_[f]);
      }
      double max_score = -1e300;
      for (size_t c = 0; c < num_classes_; ++c) {
        const double* w = &weights_[c * num_features_];
        double s = bias_[c] + DotKernel(w, z.data(), num_features_);
        scores[c] = s;
        max_score = std::max(max_score, s);
      }
      double denom = 0.0;
      for (size_t c = 0; c < num_classes_; ++c) {
        scores[c] = std::exp(scores[c] - max_score);
        denom += scores[c];
      }
      size_t label = static_cast<size_t>(train.y()[i]);
      for (size_t c = 0; c < num_classes_; ++c) {
        double grad = scores[c] / denom - (c == label ? 1.0 : 0.0);
        double* w = &weights_[c * num_features_];
        // w -= lr * (grad * z + lambda * w), split into the L2 shrink
        // followed by the gradient axpy.
        ScaleKernel(1.0 - lr * lambda, w, num_features_);
        AxpyKernel(-lr * grad, z.data(), w, num_features_);
        bias_[c] -= lr * grad;
      }
    }
  }
  return Status::Ok();
}

std::vector<double> LogisticRegressionModel::DecisionFunction(
    const double* row) const {
  std::vector<double> z(num_features_);
  for (size_t f = 0; f < num_features_; ++f) {
    z[f] = Std(row[f], feature_means_[f], feature_scales_[f]);
  }
  std::vector<double> scores(num_classes_);
  for (size_t c = 0; c < num_classes_; ++c) {
    scores[c] = bias_[c] + DotKernel(&weights_[c * num_features_], z.data(),
                                     num_features_);
  }
  return scores;
}

std::vector<double> LogisticRegressionModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(num_classes_ > 0);
  VOLCANOML_CHECK(x.cols() == num_features_);
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    std::vector<double> scores = DecisionFunction(x.RowPtr(i));
    out[i] = static_cast<double>(
        std::distance(scores.begin(),
                      std::max_element(scores.begin(), scores.end())));
  }
  return out;
}

// ---------------------------------------------------------------------------
// LinearSvmModel

LinearSvmModel::LinearSvmModel(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {
  VOLCANOML_CHECK(options_.c > 0.0);
}

Status LinearSvmModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kClassification);
  num_classes_ = train.NumClasses();
  num_features_ = train.NumFeatures();
  ComputeStandardization(train.x(), &feature_means_, &feature_scales_);

  weights_.assign(num_classes_ * num_features_, 0.0);
  bias_.assign(num_classes_, 0.0);

  const size_t n = train.NumSamples();
  const double lambda = 1.0 / (options_.c * static_cast<double>(n));
  Rng rng(seed_);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> z(num_features_);

  // Pegasos: step 1/(lambda * t) with per-class hinge updates.
  double t = 1.0;
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "linear svm fit interrupted by trial deadline");
    }
    rng.Shuffle(&order);
    for (size_t i : order) {
      for (size_t f = 0; f < num_features_; ++f) {
        z[f] = Std(train.x()(i, f), feature_means_[f], feature_scales_[f]);
      }
      double lr = 1.0 / (lambda * t);
      lr = std::min(lr, 10.0);  // Cap the initial steps.
      t += 1.0;
      size_t label = static_cast<size_t>(train.y()[i]);
      for (size_t c = 0; c < num_classes_; ++c) {
        double target = (c == label) ? 1.0 : -1.0;
        double* w = &weights_[c * num_features_];
        double margin =
            (bias_[c] + DotKernel(w, z.data(), num_features_)) * target;
        ScaleKernel(1.0 - lr * lambda, w, num_features_);
        if (margin < 1.0) {
          AxpyKernel(lr * target, z.data(), w, num_features_);
          bias_[c] += lr * target;
        }
      }
    }
  }
  return Status::Ok();
}

std::vector<double> LinearSvmModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(num_classes_ > 0);
  VOLCANOML_CHECK(x.cols() == num_features_);
  std::vector<double> out(x.rows());
  std::vector<double> z(num_features_);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t f = 0; f < num_features_; ++f) {
      z[f] = Std(x(i, f), feature_means_[f], feature_scales_[f]);
    }
    size_t best = 0;
    double best_score = -1e300;
    for (size_t c = 0; c < num_classes_; ++c) {
      double s = bias_[c] + DotKernel(&weights_[c * num_features_], z.data(),
                                      num_features_);
      if (s > best_score) {
        best_score = s;
        best = c;
      }
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

// ---------------------------------------------------------------------------
// RidgeRegressionModel

RidgeRegressionModel::RidgeRegressionModel(const Options& options)
    : options_(options) {
  VOLCANOML_CHECK(options_.alpha >= 0.0);
}

Status RidgeRegressionModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kRegression);
  const size_t n = train.NumSamples();
  const size_t d = train.NumFeatures();
  ComputeStandardization(train.x(), &feature_means_, &feature_scales_);
  double y_mean = Std(0.0, 0.0, 1.0);  // placeholder to keep structure clear
  y_mean = 0.0;
  for (double v : train.y()) y_mean += v;
  y_mean /= static_cast<double>(n);

  // Normal equations on standardized, centered data:
  // (Z^T Z + alpha I) w = Z^T (y - y_mean).
  Matrix gram(d, d);
  std::vector<double> rhs(d, 0.0);
  std::vector<double> z(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < d; ++f) {
      z[f] = Std(train.x()(i, f), feature_means_[f], feature_scales_[f]);
    }
    double target = train.y()[i] - y_mean;
    AxpyKernel(target, z.data(), rhs.data(), d);
    // Upper-triangle rank-1 update of the Gram matrix.
    for (size_t a = 0; a < d; ++a) {
      AxpyKernel(z[a], z.data() + a, gram.RowPtr(a) + a, d - a);
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < a; ++b) gram(a, b) = gram(b, a);
    gram(a, a) += options_.alpha + 1e-8;
  }
  if (!SolveLinearSystem(gram, rhs, &coef_)) {
    return Status::Internal("singular normal equations");
  }
  intercept_ = y_mean;
  return Status::Ok();
}

std::vector<double> RidgeRegressionModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!coef_.empty());
  VOLCANOML_CHECK(x.cols() == coef_.size());
  std::vector<double> out(x.rows());
  std::vector<double> z(coef_.size());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t f = 0; f < coef_.size(); ++f) {
      z[f] = Std(x(i, f), feature_means_[f], feature_scales_[f]);
    }
    out[i] = intercept_ + DotKernel(coef_.data(), z.data(), coef_.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// LassoRegressionModel

LassoRegressionModel::LassoRegressionModel(const Options& options)
    : options_(options) {
  VOLCANOML_CHECK(options_.alpha >= 0.0);
}

Status LassoRegressionModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kRegression);
  const size_t n = train.NumSamples();
  const size_t d = train.NumFeatures();
  ComputeStandardization(train.x(), &feature_means_, &feature_scales_);
  double y_mean = 0.0;
  for (double v : train.y()) y_mean += v;
  y_mean /= static_cast<double>(n);
  intercept_ = y_mean;

  // Precompute the standardized design TRANSPOSED (d x n): coordinate
  // descent walks one feature column at a time, and the transposed layout
  // makes each of those walks a contiguous kernel call instead of an
  // n-stride gather.
  Matrix zt(d, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < d; ++f) {
      zt(f, i) = Std(train.x()(i, f), feature_means_[f], feature_scales_[f]);
    }
  }
  std::vector<double> col_sq(d, 0.0);
  for (size_t f = 0; f < d; ++f) {
    col_sq[f] = DotKernel(zt.RowPtr(f), zt.RowPtr(f), n);
  }

  coef_.assign(d, 0.0);
  std::vector<double> residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = train.y()[i] - y_mean;

  const double threshold = options_.alpha * static_cast<double>(n);
  for (int iter = 0; iter < options_.max_iters; ++iter) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "lasso coordinate descent interrupted by trial deadline");
    }
    double max_delta = 0.0;
    for (size_t f = 0; f < d; ++f) {
      if (col_sq[f] <= 1e-12) continue;
      const double* col = zt.RowPtr(f);
      // rho = z_f . (residual + coef_f * z_f) = z_f . residual
      //       + coef_f * ||z_f||^2, so the inner pass is one dot product.
      double rho =
          DotKernel(col, residual.data(), n) + coef_[f] * col_sq[f];
      double new_coef;
      if (rho > threshold) {
        new_coef = (rho - threshold) / col_sq[f];
      } else if (rho < -threshold) {
        new_coef = (rho + threshold) / col_sq[f];
      } else {
        new_coef = 0.0;
      }
      double delta = new_coef - coef_[f];
      if (delta != 0.0) {
        AxpyKernel(-delta, col, residual.data(), n);
        coef_[f] = new_coef;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < options_.tol) break;
  }
  return Status::Ok();
}

std::vector<double> LassoRegressionModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!coef_.empty());
  VOLCANOML_CHECK(x.cols() == coef_.size());
  std::vector<double> out(x.rows());
  std::vector<double> z(coef_.size());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t f = 0; f < coef_.size(); ++f) {
      z[f] = Std(x(i, f), feature_means_[f], feature_scales_[f]);
    }
    out[i] = intercept_ + DotKernel(coef_.data(), z.data(), coef_.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// SgdRegressorModel

SgdRegressorModel::SgdRegressorModel(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {}

Status SgdRegressorModel::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  VOLCANOML_CHECK(train.task() == TaskType::kRegression);
  const size_t n = train.NumSamples();
  const size_t d = train.NumFeatures();
  ComputeStandardization(train.x(), &feature_means_, &feature_scales_);
  // Standardize the target too, so the fixed learning rate is stable.
  target_mean_ = 0.0;
  for (double v : train.y()) target_mean_ += v;
  target_mean_ /= static_cast<double>(n);
  double var = 0.0;
  for (double v : train.y()) var += (v - target_mean_) * (v - target_mean_);
  target_scale_ = std::sqrt(var / std::max<size_t>(1, n - 1));
  if (target_scale_ <= 1e-12) target_scale_ = 1.0;

  coef_.assign(d, 0.0);
  intercept_ = 0.0;
  Rng rng(seed_);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> z(d);
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "sgd regressor fit interrupted by trial deadline");
    }
    rng.Shuffle(&order);
    double lr = options_.learning_rate / (1.0 + 0.02 * epoch);
    for (size_t i : order) {
      for (size_t f = 0; f < d; ++f) {
        z[f] = Std(train.x()(i, f), feature_means_[f], feature_scales_[f]);
      }
      double target = (train.y()[i] - target_mean_) / target_scale_;
      double pred = intercept_ + DotKernel(coef_.data(), z.data(), d);
      double grad = pred - target;
      ScaleKernel(1.0 - lr * options_.alpha, coef_.data(), d);
      AxpyKernel(-lr * grad, z.data(), coef_.data(), d);
      intercept_ -= lr * grad;
    }
  }
  return Status::Ok();
}

std::vector<double> SgdRegressorModel::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!coef_.empty());
  VOLCANOML_CHECK(x.cols() == coef_.size());
  std::vector<double> out(x.rows());
  std::vector<double> z(coef_.size());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t f = 0; f < coef_.size(); ++f) {
      z[f] = Std(x(i, f), feature_means_[f], feature_scales_[f]);
    }
    double pred = intercept_ + DotKernel(coef_.data(), z.data(), coef_.size());
    out[i] = pred * target_scale_ + target_mean_;
  }
  return out;
}

}  // namespace volcanoml
