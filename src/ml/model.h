#ifndef VOLCANOML_ML_MODEL_H_
#define VOLCANOML_ML_MODEL_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/precision.h"
#include "util/status.h"

namespace volcanoml {

/// Abstract supervised model. Implementations are created by the algorithm
/// registry (ml/algorithms.h) from a hyper-parameter configuration.
///
/// For classification, Predict returns class indices; for regression it
/// returns real values. Fit must be called before Predict.
class Model {
 public:
  virtual ~Model() = default;

  /// Trains on the given dataset. Returns a non-OK status for degenerate
  /// inputs (e.g. empty data); models must otherwise be robust to any
  /// dataset produced by the feature-engineering pipeline.
  virtual Status Fit(const Dataset& train) = 0;

  /// Predicts a target per row of `x`.
  virtual std::vector<double> Predict(const Matrix& x) const = 0;

  /// Selects the numeric lane for the model's internal storage and
  /// arithmetic (data/precision.h). Called by the evaluator right after
  /// construction, before Fit; takes effect at the next Fit. Models whose
  /// hot loops are not distance/GEMM-dominated ignore it — the default is
  /// a no-op and kFloat64 semantics.
  virtual void SetPrecision(NumericPrecision /*precision*/) {}
};

}  // namespace volcanoml

#endif  // VOLCANOML_ML_MODEL_H_
