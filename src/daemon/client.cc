#include "daemon/client.h"

#include <utility>

#include "ipc/transport.h"

namespace volcanoml {

namespace {

/// One connection-per-request round trip: sends `request` as a frame of
/// `request_type`, expects a frame of `reply_type` back (or kErrorReply,
/// which is decoded into its carried Status).
template <typename Reply, typename Request>
Result<Reply> RoundTrip(const std::string& socket_path, int timeout_ms,
                        MessageType request_type, const Request& request,
                        MessageType reply_type) {
  Result<FdHandle> conn = ConnectUnix(socket_path);
  VOLCANOML_RETURN_IF_ERROR(conn.status());
  VOLCANOML_RETURN_IF_ERROR(SendFrame(
      conn.value(), static_cast<uint8_t>(request_type),
      EncodeMessage(request)));
  uint8_t type = 0;
  std::string payload;
  VOLCANOML_RETURN_IF_ERROR(
      RecvFrame(conn.value(), &type, &payload, timeout_ms));
  if (type == static_cast<uint8_t>(MessageType::kErrorReply)) {
    Result<ErrorReply> error = DecodeMessage<ErrorReply>(payload);
    VOLCANOML_RETURN_IF_ERROR(error.status());
    return error.value().ToStatus();
  }
  if (type != static_cast<uint8_t>(reply_type)) {
    return Status::Internal("unexpected reply type " + std::to_string(type) +
                            " (wanted " +
                            std::to_string(static_cast<uint8_t>(reply_type)) +
                            ")");
  }
  return DecodeMessage<Reply>(payload);
}

}  // namespace

DaemonClient::DaemonClient(std::string socket_path, int timeout_ms)
    : socket_path_(std::move(socket_path)), timeout_ms_(timeout_ms) {}

Result<uint64_t> DaemonClient::CreateSession(
    const CreateSessionRequest& request) const {
  Result<CreateSessionReply> reply = RoundTrip<CreateSessionReply>(
      socket_path_, timeout_ms_, MessageType::kCreateSessionRequest, request,
      MessageType::kCreateSessionReply);
  VOLCANOML_RETURN_IF_ERROR(reply.status());
  return reply.value().session_id;
}

Result<SessionStatus> DaemonClient::StepSession(uint64_t session_id,
                                                uint64_t steps) const {
  StepSessionRequest request;
  request.session_id = session_id;
  request.steps = steps;
  Result<StepSessionReply> reply = RoundTrip<StepSessionReply>(
      socket_path_, timeout_ms_, MessageType::kStepSessionRequest, request,
      MessageType::kStepSessionReply);
  VOLCANOML_RETURN_IF_ERROR(reply.status());
  return reply.value().status;
}

Result<QuerySessionReply> DaemonClient::QuerySession(
    const QuerySessionRequest& request) const {
  return RoundTrip<QuerySessionReply>(
      socket_path_, timeout_ms_, MessageType::kQuerySessionRequest, request,
      MessageType::kQuerySessionReply);
}

Result<std::string> DaemonClient::SnapshotSession(uint64_t session_id) const {
  SnapshotSessionRequest request;
  request.session_id = session_id;
  Result<SnapshotSessionReply> reply = RoundTrip<SnapshotSessionReply>(
      socket_path_, timeout_ms_, MessageType::kSnapshotSessionRequest, request,
      MessageType::kSnapshotSessionReply);
  VOLCANOML_RETURN_IF_ERROR(reply.status());
  return std::move(reply.value().snapshot);
}

Result<bool> DaemonClient::EvictSession(uint64_t session_id) const {
  EvictSessionRequest request;
  request.session_id = session_id;
  Result<EvictSessionReply> reply = RoundTrip<EvictSessionReply>(
      socket_path_, timeout_ms_, MessageType::kEvictSessionRequest, request,
      MessageType::kEvictSessionReply);
  VOLCANOML_RETURN_IF_ERROR(reply.status());
  return reply.value().evicted;
}

Result<ListSessionsReply> DaemonClient::ListSessions() const {
  return RoundTrip<ListSessionsReply>(
      socket_path_, timeout_ms_, MessageType::kListSessionsRequest,
      ListSessionsRequest{}, MessageType::kListSessionsReply);
}

Result<uint64_t> DaemonClient::Shutdown() const {
  Result<ShutdownReply> reply = RoundTrip<ShutdownReply>(
      socket_path_, timeout_ms_, MessageType::kShutdownRequest,
      ShutdownRequest{}, MessageType::kShutdownReply);
  VOLCANOML_RETURN_IF_ERROR(reply.status());
  return reply.value().sessions_open;
}

Result<KbQueryReply> DaemonClient::KbQuery() const {
  return RoundTrip<KbQueryReply>(
      socket_path_, timeout_ms_, MessageType::kKbQueryRequest,
      KbQueryRequest{}, MessageType::kKbQueryReply);
}

Result<std::string> DaemonClient::KbExport() const {
  Result<KbExportReply> reply = RoundTrip<KbExportReply>(
      socket_path_, timeout_ms_, MessageType::kKbExportRequest,
      KbExportRequest{}, MessageType::kKbExportReply);
  VOLCANOML_RETURN_IF_ERROR(reply.status());
  return std::move(reply.value().serialized);
}

Result<KbImportReply> DaemonClient::KbImport(
    const std::string& serialized) const {
  KbImportRequest request;
  request.serialized = serialized;
  return RoundTrip<KbImportReply>(
      socket_path_, timeout_ms_, MessageType::kKbImportRequest, request,
      MessageType::kKbImportReply);
}

Result<SessionStatus> DaemonClient::WaitUntilDone(uint64_t session_id,
                                                  int poll_ms) const {
  for (;;) {
    QuerySessionRequest request;
    request.session_id = session_id;
    Result<QuerySessionReply> reply = QuerySession(request);
    VOLCANOML_RETURN_IF_ERROR(reply.status());
    const SessionStatus& status = reply.value().status;
    if (status.state == SessionState::kFailed) {
      return Status::Internal("session " + std::to_string(session_id) +
                              " failed");
    }
    if (status.done) return status;
    SleepMs(poll_ms);
  }
}

}  // namespace volcanoml
