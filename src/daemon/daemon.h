#ifndef VOLCANOML_DAEMON_DAEMON_H_
#define VOLCANOML_DAEMON_DAEMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "daemon/scheduler.h"
#include "daemon/session.h"
#include "ipc/transport.h"
#include "meta/knowledge_base.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace volcanoml {

/// Settings of one daemon process.
struct DaemonOptions {
  /// Unix-domain socket to serve on.
  std::string socket_path;
  /// Directory for evicted-session snapshots (must exist).
  std::string spool_dir = ".";
  /// Resident-executor cap: when exceeded, least-recently-touched idle
  /// sessions are auto-evicted to the spool.
  size_t max_resident = 8;
  /// Listener poll granularity when no session is runnable.
  int idle_poll_ms = 20;
  /// Per-chunk receive timeout for client frames.
  int request_timeout_ms = 5000;
  /// Durable knowledge-base file. Empty picks the canonical per-socket-
  /// namespace default beside the spool files (`<spool_dir>/<socket>.kb`),
  /// so daemons sharing a spool directory never share a KB by accident.
  std::string kb_path;
};

/// The multi-tenant AutoML session daemon: owns the session registry and
/// drives every search from one single-threaded serve loop.
///
/// The loop interleaves two duties, one unit of each per iteration:
///   1. accept + answer one client request (connection-per-request:
///      a client connects, sends one frame, reads one reply);
///   2. run one scheduler turn — step the session the fair-share
///      round-robin picks next.
///
/// Single-threading is what makes the daemon deterministic: requests and
/// steps form one serialized sequence, so no interleaving can perturb a
/// session's trajectory. Sessions are fully independent (each owns its
/// evaluator and executor), so a daemon-driven session is bit-identical
/// to the same config stepped in-process, regardless of what other
/// tenants do. Only RequestStop() may be called from other threads.
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and serves until a Shutdown request or
  /// RequestStop(). Returns the bind error if the socket cannot be
  /// created. The socket file is removed on return.
  [[nodiscard]] Status Serve();

  /// Asks the serve loop to exit after the current iteration.
  /// Thread-safe (the only entry point that is).
  void RequestStop();

  /// Number of registered sessions (test hook; serve-loop thread only).
  [[nodiscard]] size_t num_sessions() const { return sessions_.size(); }

 private:
  [[nodiscard]] bool StopRequested() VOLCANOML_EXCLUDES(mu_);

  /// Receives one frame from `conn`, dispatches it, sends the reply.
  /// Transport errors are logged, never fatal to the daemon.
  void HandleConnection(const FdHandle& conn);

  /// Routes a decoded request to its handler. On error the caller sends
  /// an ErrorReply instead of `reply_type`.
  [[nodiscard]] Status Dispatch(uint8_t type, const std::string& payload,
                                uint8_t* reply_type, std::string* reply);

  [[nodiscard]] Status HandleCreate(const std::string& payload,
                                    std::string* reply);
  [[nodiscard]] Status HandleStep(const std::string& payload,
                                  std::string* reply);
  [[nodiscard]] Status HandleQuery(const std::string& payload,
                                   std::string* reply);
  [[nodiscard]] Status HandleSnapshot(const std::string& payload,
                                      std::string* reply);
  [[nodiscard]] Status HandleEvict(const std::string& payload,
                                   std::string* reply);
  [[nodiscard]] Status HandleList(const std::string& payload,
                                  std::string* reply);
  [[nodiscard]] Status HandleShutdown(const std::string& payload,
                                      std::string* reply);
  [[nodiscard]] Status HandleKbQuery(const std::string& payload,
                                     std::string* reply);
  [[nodiscard]] Status HandleKbExport(const std::string& payload,
                                      std::string* reply);
  [[nodiscard]] Status HandleKbImport(const std::string& payload,
                                      std::string* reply);

  /// Records a completed kb_record session into the shared KB (replacing
  /// any artifact with the same dataset hash + task) and persists it.
  void IngestFinishedSession(DaemonSession* session);

  /// Writes the KB to kb_path_, logging (not failing) on error — KB
  /// persistence must never take the daemon down.
  void PersistKnowledgeBase();

  /// Runs one fair-share scheduler turn (restore if evicted, step,
  /// account). No-op when nothing is runnable.
  void RunOneTurn();

  /// Looks up a session or returns NotFound.
  [[nodiscard]] Result<DaemonSession*> FindSession(uint64_t session_id);

  /// Bumps the session's logical LRU clock.
  void Touch(DaemonSession* session);

  /// Evicts least-recently-touched sessions (sparing `keep_resident`)
  /// until at most max_resident executors are in memory. Sessions with
  /// pending credit are evicted only after all idle ones.
  void EnforceResidencyCap(uint64_t keep_resident);

  /// The session's wire status with scheduler-owned fields filled in.
  [[nodiscard]] SessionStatus StatusOf(const DaemonSession& session);

  /// Basename of the socket path; namespaces spool files so daemons
  /// sharing a spool directory never collide.
  [[nodiscard]] std::string SocketName() const;

  /// Deletes spool snapshots left behind by a previous daemon on this
  /// socket name (a crash skips the session destructors that normally
  /// clean them up). Runs once, right after the socket binds — at that
  /// point no session of THIS daemon exists yet, so every match is an
  /// orphan.
  void SweepOrphanSpools();

  const DaemonOptions options_;
  /// One shared knowledge base per socket namespace: loaded at serve
  /// start, consulted by every kb_warm_starts session, grown by every
  /// completed kb_record session, persisted to kb_path_ on each change.
  MetaKnowledgeBase kb_;
  std::string kb_path_;
  /// Registry, ordered by session id (ListSessions iterates it).
  std::map<uint64_t, std::unique_ptr<DaemonSession>> sessions_;
  FairShareScheduler scheduler_;
  uint64_t next_session_id_ = 1;
  /// Logical clock driving LRU eviction; bumped on every touch.
  uint64_t touch_clock_ = 0;
  bool shutdown_requested_ = false;

  Mutex mu_;
  bool stop_ VOLCANOML_GUARDED_BY(mu_) = false;
};

}  // namespace volcanoml

#endif  // VOLCANOML_DAEMON_DAEMON_H_
