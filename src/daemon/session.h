#ifndef VOLCANOML_DAEMON_SESSION_H_
#define VOLCANOML_DAEMON_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/volcano_ml.h"
#include "ipc/messages.h"
#include "util/status.h"

namespace volcanoml {

/// Validates a wire SessionConfig and converts it into VolcanoMlOptions.
/// This is the single options-construction seam shared by the daemon and
/// the in-process CLI path: a daemon-driven session and a local run built
/// from the same SessionConfig step bit-identically.
[[nodiscard]] Result<VolcanoMlOptions> SessionConfigToOptions(
    const SessionConfig& config);

/// One tenant's search session inside the daemon: a VolcanoML instance
/// plus the bookkeeping to park it on disk and bring it back.
///
/// Lifecycle:
///   - Activate() builds the executor from the stored CSV + config and
///     must succeed once before anything else.
///   - Evict() snapshots the executor to the spool file and releases the
///     in-memory engine; EnsureResident() restores it on demand by
///     re-preparing a fresh VolcanoML and loading the snapshot — the
///     restored executor is bit-identical to the evicted one, so evict/
///     restore churn never changes a trajectory.
///   - Step() advances the search one pull (resident sessions only; the
///     daemon calls EnsureResident() first).
///
/// Any failure latches: the session flips to kFailed and every later
/// operation returns the original error. Not thread-safe; the daemon
/// serializes all access on its serve loop.
class DaemonSession {
 public:
  /// Immutable creation-time description (what CreateSession shipped).
  struct Spec {
    std::string tenant;
    std::string dataset_name;
    std::string csv;
    SessionConfig config;
    /// The daemon's shared knowledge base; consulted at build time when
    /// config.kb_warm_starts > 0. Must outlive the session (the daemon
    /// owns both). Null disables warm starts regardless of the config.
    const MetaKnowledgeBase* kb = nullptr;
  };

  /// `spool_path` is where Evict() parks the executor snapshot; the file
  /// is removed when the session is destroyed.
  DaemonSession(uint64_t id, Spec spec, std::string spool_path);
  ~DaemonSession();

  DaemonSession(const DaemonSession&) = delete;
  DaemonSession& operator=(const DaemonSession&) = delete;

  /// First build: validates the config, parses the CSV and prepares the
  /// executor. Must be called exactly once, before any other operation.
  [[nodiscard]] Status Activate();

  /// Restores the executor from the spool snapshot if evicted. No-op
  /// when already resident.
  [[nodiscard]] Status EnsureResident();

  /// Snapshots to the spool file and releases the in-memory executor.
  /// Returns false without touching anything when not resident.
  [[nodiscard]] Result<bool> Evict();

  /// Deletes the spool snapshot, if any. Called when the session
  /// completes (a finished session stays resident for result queries, so
  /// an earlier eviction's snapshot is stale) — without this, finished
  /// sessions leak snapshots until daemon exit. Safe to call at any
  /// time: a later Evict() simply rewrites the file.
  void DiscardSpool();

  /// One executor Step(). Requires residency. Returns the StepEvent of
  /// the pull, or `done = true` without an event once the budget is
  /// exhausted.
  struct StepOutcome {
    bool progressed = false;
    StepEvent event;
  };
  [[nodiscard]] Result<StepOutcome> Step();

  /// Current executor snapshot (restores first if evicted).
  [[nodiscard]] Result<std::string> Snapshot();

  /// Trajectory / incumbent of the session (restore first if evicted).
  [[nodiscard]] Result<std::vector<TrajectoryPoint>> Trajectory();
  [[nodiscard]] Result<Assignment> BestAssignment();

  /// The session's run artifact for knowledge-base ingestion (restores
  /// first if evicted). The daemon calls this when a kb_record session
  /// completes.
  [[nodiscard]] Result<RunArtifact> ExportArtifact();

  /// Whether this session asked to be recorded into the daemon's KB.
  [[nodiscard]] bool kb_record() const { return spec_.config.kb_record; }

  /// Cheap cached summary — answered from the last refresh, never
  /// restores an evicted executor. `pending_credit` is filled in by the
  /// daemon, not here.
  [[nodiscard]] SessionStatus status() const;

  [[nodiscard]] uint64_t id() const { return id_; }
  [[nodiscard]] const std::string& tenant() const { return spec_.tenant; }
  [[nodiscard]] bool resident() const { return automl_ != nullptr; }
  [[nodiscard]] bool failed() const { return !error_.ok(); }
  [[nodiscard]] bool done() const { return done_; }

  /// Logical-clock LRU bookkeeping for the daemon's eviction policy
  /// (counter-based, not wall-clock, so eviction order is deterministic).
  [[nodiscard]] uint64_t last_touch() const { return last_touch_; }
  void set_last_touch(uint64_t tick) { last_touch_ = tick; }

 private:
  /// Builds a fresh VolcanoML from the spec; when `snapshot` is non-null
  /// the prepared executor loads it (the restore path).
  [[nodiscard]] Status Build(const std::string* snapshot);
  /// Re-derives the cached summary from the resident executor.
  void RefreshSummary();
  /// Latches `status` as the session's permanent error and returns it.
  Status LatchError(Status status);

  const uint64_t id_;
  const Spec spec_;
  const std::string spool_path_;
  std::unique_ptr<VolcanoML> automl_;
  /// First failure, latched; kFailed state over the wire.
  Status error_ = Status::Ok();
  bool activated_ = false;
  bool done_ = false;
  uint64_t steps_ = 0;
  double consumed_budget_ = 0.0;
  double best_utility_ = 0.0;
  SessionTelemetry telemetry_;
  uint64_t last_touch_ = 0;
};

}  // namespace volcanoml

#endif  // VOLCANOML_DAEMON_SESSION_H_
