#ifndef VOLCANOML_DAEMON_CLIENT_H_
#define VOLCANOML_DAEMON_CLIENT_H_

#include <cstdint>
#include <string>

#include "ipc/messages.h"
#include "util/status.h"

namespace volcanoml {

/// Thin synchronous client for the session daemon. Each call is one
/// connection-per-request round trip: connect, send one frame, read one
/// reply, close. The client holds no connection state, so one instance
/// may be shared across threads (each call opens its own socket).
class DaemonClient {
 public:
  /// `timeout_ms` bounds each receive; a daemon that takes longer to
  /// answer (e.g. restoring a large evicted session) fails the call, it
  /// does not wedge the client.
  explicit DaemonClient(std::string socket_path, int timeout_ms = 30000);

  [[nodiscard]] Result<uint64_t> CreateSession(
      const CreateSessionRequest& request) const;

  /// Grants `steps` more scheduler turns; returns current status.
  [[nodiscard]] Result<SessionStatus> StepSession(uint64_t session_id,
                                                  uint64_t steps) const;

  [[nodiscard]] Result<QuerySessionReply> QuerySession(
      const QuerySessionRequest& request) const;

  [[nodiscard]] Result<std::string> SnapshotSession(uint64_t session_id) const;

  [[nodiscard]] Result<bool> EvictSession(uint64_t session_id) const;

  [[nodiscard]] Result<ListSessionsReply> ListSessions() const;

  /// Returns the number of sessions still open at shutdown.
  [[nodiscard]] Result<uint64_t> Shutdown() const;

  /// Summaries of the artifacts in the daemon's knowledge base.
  [[nodiscard]] Result<KbQueryReply> KbQuery() const;

  /// The daemon's serialized knowledge base (MetaKnowledgeBase format).
  [[nodiscard]] Result<std::string> KbExport() const;

  /// Merges a serialized knowledge base into the daemon's; returns the
  /// reply with added/total counts.
  [[nodiscard]] Result<KbImportReply> KbImport(
      const std::string& serialized) const;

  /// Polls the session status every `poll_ms` until it is done or
  /// failed; returns the final status (or the failure as an error).
  [[nodiscard]] Result<SessionStatus> WaitUntilDone(uint64_t session_id,
                                                    int poll_ms = 20) const;

  [[nodiscard]] const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
  int timeout_ms_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_DAEMON_CLIENT_H_
