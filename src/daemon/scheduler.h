#ifndef VOLCANOML_DAEMON_SCHEDULER_H_
#define VOLCANOML_DAEMON_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "ipc/messages.h"

namespace volcanoml {

/// Deterministic fair-share scheduler for daemon sessions.
///
/// Fairness invariant: turns round-robin over tenants in sorted tenant-
/// name order, and FIFO over each tenant's runnable sessions — so a
/// tenant with 10 runnable sessions gets the same share of turns as a
/// tenant with 1, and the turn sequence is a pure function of the
/// admit/grant/remove call sequence (no clocks, no randomness).
///
/// A session is runnable while it has step credit. Credit is granted in
/// whole steps by StepSession requests (kUnlimitedCredit = run to
/// completion) and spent one step per turn. The invariant maintained
/// throughout: a session sits in its tenant's queue iff its remaining
/// credit is non-zero.
///
/// The scheduler only decides ordering; the daemon owns the sessions and
/// actually steps them. Not thread-safe; the daemon serializes access.
class FairShareScheduler {
 public:
  struct Turn {
    std::string tenant;
    uint64_t session_id = 0;
  };

  /// Registers a session under `tenant` with `credit` initial steps and
  /// bumps the tenant's sessions_created account.
  void AdmitSession(const std::string& tenant, uint64_t session_id,
                    uint64_t credit);

  /// Adds `steps` credit (saturating; kUnlimitedCredit is absorbing) and
  /// enqueues the session if it was idle. A no-op for session ids the
  /// scheduler no longer tracks (already retired by RemoveSession).
  void GrantCredit(const std::string& tenant, uint64_t session_id,
                   uint64_t steps);

  /// Drops the session's credit and queue entry (done/failed/destroyed).
  /// The tenant's account survives for reporting.
  void RemoveSession(const std::string& tenant, uint64_t session_id);

  /// Whether any session holds credit.
  [[nodiscard]] bool HasRunnable() const;

  /// Picks the next turn and spends one credit: the first tenant in
  /// sorted order strictly after the previously-served tenant (wrapping)
  /// that has a runnable session, FIFO within the tenant. Returns false
  /// when nothing is runnable.
  [[nodiscard]] bool NextTurn(Turn* turn);

  /// Accounts one executed step for `tenant`.
  void RecordStep(const std::string& tenant, double budget_delta);

  /// Remaining credit of `session_id` (0 when unknown/idle).
  [[nodiscard]] uint64_t pending_credit(uint64_t session_id) const;

  /// All tenant accounts, sorted by tenant name.
  [[nodiscard]] std::vector<TenantAccount> Accounts() const;

 private:
  struct TenantState {
    /// Runnable sessions, FIFO. Invariant: ids here have credit > 0.
    std::deque<uint64_t> queue;
    uint64_t sessions_created = 0;
    uint64_t steps_executed = 0;
    double budget_consumed = 0.0;
  };

  /// Sorted by tenant name — the round-robin order.
  std::map<std::string, TenantState> tenants_;
  /// Remaining step credit per session.
  std::map<uint64_t, uint64_t> credit_;
  /// Tenant served by the previous NextTurn (round-robin cursor).
  std::string cursor_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_DAEMON_SCHEDULER_H_
