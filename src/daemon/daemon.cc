#include "daemon/daemon.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "ipc/messages.h"
#include "util/check.h"
#include "util/logging.h"

namespace volcanoml {

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {}

Status Daemon::Serve() {
  Result<UnixListener> listener = UnixListener::Bind(options_.socket_path);
  VOLCANOML_RETURN_IF_ERROR(listener.status());
  SweepOrphanSpools();
  kb_path_ = options_.kb_path.empty()
                 ? KnowledgeBaseFilePath(options_.spool_dir, SocketName())
                 : options_.kb_path;
  Status kb_loaded = kb_.LoadFromFile(kb_path_);
  if (kb_loaded.ok()) {
    VOLCANOML_LOG(Info) << "knowledge base: " << kb_.NumArtifacts()
                        << " artifact(s) from " << kb_path_;
  } else if (kb_loaded.code() != StatusCode::kNotFound) {
    // An unreadable or corrupt KB degrades to an empty one: transfer is
    // an accelerator, never a precondition for serving sessions.
    VOLCANOML_LOG(Warning) << "knowledge base unusable, starting empty: "
                           << kb_loaded.message();
  }
  VOLCANOML_LOG(Info) << "daemon serving on " << options_.socket_path;
  while (!StopRequested()) {
    // Poll without blocking while sessions have work; otherwise sleep in
    // the listener so an idle daemon costs ~0 CPU.
    int timeout_ms = scheduler_.HasRunnable() ? 0 : options_.idle_poll_ms;
    Result<bool> readable = listener.value().WaitReadable(timeout_ms);
    VOLCANOML_RETURN_IF_ERROR(readable.status());
    if (readable.value()) {
      Result<FdHandle> conn = listener.value().Accept();
      if (conn.ok()) {
        HandleConnection(conn.value());
      } else {
        VOLCANOML_LOG(Warning) << "accept failed: " << conn.status().message();
      }
    }
    RunOneTurn();
  }
  VOLCANOML_LOG(Info) << "daemon stopping with " << sessions_.size()
                      << " session(s) registered";
  return Status::Ok();
}

void Daemon::RequestStop() {
  MutexLock lock(mu_);
  stop_ = true;
}

bool Daemon::StopRequested() {
  MutexLock lock(mu_);
  return stop_ || shutdown_requested_;
}

void Daemon::HandleConnection(const FdHandle& conn) {
  uint8_t type = 0;
  std::string payload;
  Status received =
      RecvFrame(conn, &type, &payload, options_.request_timeout_ms);
  if (!received.ok()) {
    VOLCANOML_LOG(Warning) << "dropping request: " << received.message();
    return;
  }
  uint8_t reply_type = 0;
  std::string reply;
  Status handled = Dispatch(type, payload, &reply_type, &reply);
  if (!handled.ok()) {
    reply_type = static_cast<uint8_t>(MessageType::kErrorReply);
    reply = EncodeMessage(ErrorReply::FromStatus(handled));
  }
  Status sent = SendFrame(conn, reply_type, reply);
  if (!sent.ok()) {
    VOLCANOML_LOG(Warning) << "dropping reply: " << sent.message();
  }
}

Status Daemon::Dispatch(uint8_t type, const std::string& payload,
                        uint8_t* reply_type, std::string* reply) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kCreateSessionRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kCreateSessionReply);
      return HandleCreate(payload, reply);
    case MessageType::kStepSessionRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kStepSessionReply);
      return HandleStep(payload, reply);
    case MessageType::kQuerySessionRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kQuerySessionReply);
      return HandleQuery(payload, reply);
    case MessageType::kSnapshotSessionRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kSnapshotSessionReply);
      return HandleSnapshot(payload, reply);
    case MessageType::kEvictSessionRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kEvictSessionReply);
      return HandleEvict(payload, reply);
    case MessageType::kListSessionsRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kListSessionsReply);
      return HandleList(payload, reply);
    case MessageType::kShutdownRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kShutdownReply);
      return HandleShutdown(payload, reply);
    case MessageType::kKbQueryRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kKbQueryReply);
      return HandleKbQuery(payload, reply);
    case MessageType::kKbExportRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kKbExportReply);
      return HandleKbExport(payload, reply);
    case MessageType::kKbImportRequest:
      *reply_type = static_cast<uint8_t>(MessageType::kKbImportReply);
      return HandleKbImport(payload, reply);
    default:
      return Status::InvalidArgument("unknown request type " +
                                     std::to_string(type));
  }
}

Status Daemon::HandleCreate(const std::string& payload, std::string* reply) {
  Result<CreateSessionRequest> request =
      DecodeMessage<CreateSessionRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  if (request.value().tenant.empty()) {
    return Status::InvalidArgument("tenant must be non-empty");
  }
  uint64_t id = next_session_id_;
  std::string spool_path = options_.spool_dir + "/" + SocketName() +
                           ".session-" + std::to_string(id) + ".snapshot";
  DaemonSession::Spec spec;
  spec.tenant = request.value().tenant;
  spec.dataset_name = request.value().dataset_name;
  spec.csv = std::move(request.value().csv);
  spec.config = request.value().config;
  spec.kb = &kb_;
  auto session = std::make_unique<DaemonSession>(id, std::move(spec),
                                                 std::move(spool_path));
  // A session that cannot even build is rejected outright rather than
  // registered as a permanently-failed zombie.
  VOLCANOML_RETURN_IF_ERROR(session->Activate());
  ++next_session_id_;
  Touch(session.get());
  scheduler_.AdmitSession(session->tenant(), id, request.value().step_credit);
  sessions_[id] = std::move(session);
  EnforceResidencyCap(id);
  CreateSessionReply created;
  created.session_id = id;
  *reply = EncodeMessage(created);
  return Status::Ok();
}

Status Daemon::HandleStep(const std::string& payload, std::string* reply) {
  Result<StepSessionRequest> request =
      DecodeMessage<StepSessionRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  Result<DaemonSession*> session = FindSession(request.value().session_id);
  VOLCANOML_RETURN_IF_ERROR(session.status());
  // Credit for a finished or failed session would spin the scheduler on
  // no-op turns; grant only to live sessions.
  if (!session.value()->done() && !session.value()->failed()) {
    scheduler_.GrantCredit(session.value()->tenant(),
                           session.value()->id(), request.value().steps);
  }
  StepSessionReply stepped;
  stepped.status = StatusOf(*session.value());
  *reply = EncodeMessage(stepped);
  return Status::Ok();
}

Status Daemon::HandleQuery(const std::string& payload, std::string* reply) {
  Result<QuerySessionRequest> request =
      DecodeMessage<QuerySessionRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  Result<DaemonSession*> session = FindSession(request.value().session_id);
  VOLCANOML_RETURN_IF_ERROR(session.status());
  QuerySessionReply queried;
  if (request.value().include_trajectory) {
    Result<std::vector<TrajectoryPoint>> trajectory =
        session.value()->Trajectory();
    VOLCANOML_RETURN_IF_ERROR(trajectory.status());
    queried.trajectory = std::move(trajectory.value());
  }
  if (request.value().include_assignment) {
    Result<Assignment> assignment = session.value()->BestAssignment();
    VOLCANOML_RETURN_IF_ERROR(assignment.status());
    queried.best_assignment = std::move(assignment.value());
  }
  if (request.value().include_trajectory ||
      request.value().include_assignment) {
    // The payload reads restored an evicted executor: that counts as a
    // touch, and may push another session over the residency cap.
    Touch(session.value());
    EnforceResidencyCap(session.value()->id());
  }
  queried.status = StatusOf(*session.value());
  *reply = EncodeMessage(queried);
  return Status::Ok();
}

Status Daemon::HandleSnapshot(const std::string& payload, std::string* reply) {
  Result<SnapshotSessionRequest> request =
      DecodeMessage<SnapshotSessionRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  Result<DaemonSession*> session = FindSession(request.value().session_id);
  VOLCANOML_RETURN_IF_ERROR(session.status());
  Result<std::string> snapshot = session.value()->Snapshot();
  VOLCANOML_RETURN_IF_ERROR(snapshot.status());
  Touch(session.value());
  EnforceResidencyCap(session.value()->id());
  SnapshotSessionReply snapshotted;
  snapshotted.snapshot = std::move(snapshot.value());
  *reply = EncodeMessage(snapshotted);
  return Status::Ok();
}

Status Daemon::HandleEvict(const std::string& payload, std::string* reply) {
  Result<EvictSessionRequest> request =
      DecodeMessage<EvictSessionRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  Result<DaemonSession*> session = FindSession(request.value().session_id);
  VOLCANOML_RETURN_IF_ERROR(session.status());
  Result<bool> evicted = session.value()->Evict();
  VOLCANOML_RETURN_IF_ERROR(evicted.status());
  EvictSessionReply reply_message;
  reply_message.evicted = evicted.value();
  *reply = EncodeMessage(reply_message);
  return Status::Ok();
}

Status Daemon::HandleList(const std::string& payload, std::string* reply) {
  Result<ListSessionsRequest> request =
      DecodeMessage<ListSessionsRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  ListSessionsReply listed;
  for (const auto& [id, session] : sessions_) {
    listed.sessions.push_back(StatusOf(*session));
  }
  listed.tenants = scheduler_.Accounts();
  *reply = EncodeMessage(listed);
  return Status::Ok();
}

Status Daemon::HandleShutdown(const std::string& payload, std::string* reply) {
  Result<ShutdownRequest> request = DecodeMessage<ShutdownRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  shutdown_requested_ = true;
  ShutdownReply stopped;
  stopped.sessions_open = sessions_.size();
  *reply = EncodeMessage(stopped);
  return Status::Ok();
}

void Daemon::RunOneTurn() {
  FairShareScheduler::Turn turn;
  if (!scheduler_.NextTurn(&turn)) return;
  auto it = sessions_.find(turn.session_id);
  VOLCANOML_CHECK(it != sessions_.end());
  DaemonSession* session = it->second.get();
  Status resident = session->EnsureResident();
  if (!resident.ok()) {
    VOLCANOML_LOG(Warning) << "session " << session->id()
                           << " failed to restore: " << resident.message();
    scheduler_.RemoveSession(turn.tenant, turn.session_id);
    return;
  }
  Touch(session);
  EnforceResidencyCap(session->id());
  Result<DaemonSession::StepOutcome> outcome = session->Step();
  if (!outcome.ok()) {
    VOLCANOML_LOG(Warning) << "session " << session->id()
                           << " failed to step: " << outcome.status().message();
    scheduler_.RemoveSession(turn.tenant, turn.session_id);
    return;
  }
  if (outcome.value().progressed) {
    scheduler_.RecordStep(turn.tenant, outcome.value().event.budget_delta);
  }
  if (session->done()) {
    scheduler_.RemoveSession(turn.tenant, turn.session_id);
    // A finished session keeps its executor resident for result queries;
    // any snapshot still parked in the spool is stale and would sit on
    // disk until daemon exit.
    session->DiscardSpool();
    if (session->kb_record()) IngestFinishedSession(session);
  }
}

Status Daemon::HandleKbQuery(const std::string& payload, std::string* reply) {
  Result<KbQueryRequest> request = DecodeMessage<KbQueryRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  KbQueryReply queried;
  for (const RunArtifact& artifact : kb_.artifacts()) {
    KbArtifactSummary summary;
    summary.dataset_name = artifact.dataset_name;
    summary.dataset_hash = artifact.dataset_hash;
    summary.task = artifact.task == TaskType::kClassification ? 0 : 1;
    summary.best_utility = artifact.best_utility;
    summary.num_observations = artifact.history.size();
    queried.artifacts.push_back(std::move(summary));
  }
  *reply = EncodeMessage(queried);
  return Status::Ok();
}

Status Daemon::HandleKbExport(const std::string& payload, std::string* reply) {
  Result<KbExportRequest> request = DecodeMessage<KbExportRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  KbExportReply exported;
  exported.serialized = kb_.Serialize();
  *reply = EncodeMessage(exported);
  return Status::Ok();
}

Status Daemon::HandleKbImport(const std::string& payload, std::string* reply) {
  Result<KbImportRequest> request = DecodeMessage<KbImportRequest>(payload);
  VOLCANOML_RETURN_IF_ERROR(request.status());
  Result<size_t> added = kb_.MergeSerialized(request.value().serialized);
  VOLCANOML_RETURN_IF_ERROR(added.status());
  if (added.value() > 0) PersistKnowledgeBase();
  KbImportReply imported;
  imported.added = added.value();
  imported.total = kb_.NumArtifacts();
  *reply = EncodeMessage(imported);
  return Status::Ok();
}

void Daemon::IngestFinishedSession(DaemonSession* session) {
  Result<RunArtifact> artifact = session->ExportArtifact();
  if (!artifact.ok()) {
    VOLCANOML_LOG(Warning) << "session " << session->id()
                           << " artifact export failed: "
                           << artifact.status().message();
    return;
  }
  if (artifact.value().best_assignment.empty()) return;  // nothing learned
  // Re-running a dataset replaces its artifact (latest run wins) instead
  // of accumulating near-duplicates that would crowd k-NN retrieval.
  MetaKnowledgeBase rebuilt;
  for (const RunArtifact& existing : kb_.artifacts()) {
    if (existing.dataset_hash == artifact.value().dataset_hash &&
        existing.task == artifact.value().task) {
      continue;
    }
    rebuilt.AddArtifact(existing);
  }
  rebuilt.AddArtifact(std::move(artifact.value()));
  kb_ = std::move(rebuilt);
  PersistKnowledgeBase();
  VOLCANOML_LOG(Info) << "knowledge base: ingested session "
                      << session->id() << " (" << kb_.NumArtifacts()
                      << " artifact(s))";
}

void Daemon::PersistKnowledgeBase() {
  Status saved = kb_.SaveToFile(kb_path_);
  if (!saved.ok()) {
    VOLCANOML_LOG(Warning) << "knowledge base persist failed: "
                           << saved.message();
  }
}

std::string Daemon::SocketName() const {
  // Namespaced by the socket name so daemons sharing a spool directory
  // (tests, several daemons on one host) never collide.
  size_t slash = options_.socket_path.find_last_of('/');
  return slash == std::string::npos ? options_.socket_path
                                    : options_.socket_path.substr(slash + 1);
}

void Daemon::SweepOrphanSpools() {
  const std::string prefix = SocketName() + ".session-";
  const std::string suffix = ".snapshot";
  DIR* dir = ::opendir(options_.spool_dir.c_str());
  if (dir == nullptr) return;  // surfaces later as a spool-write error
  size_t removed = 0;
  for (struct dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    if (std::remove((options_.spool_dir + "/" + name).c_str()) == 0) {
      ++removed;
    }
  }
  ::closedir(dir);
  if (removed > 0) {
    VOLCANOML_LOG(Info) << "removed " << removed
                        << " orphaned spool snapshot(s) from "
                        << options_.spool_dir;
  }
}

Result<DaemonSession*> Daemon::FindSession(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session with id " +
                            std::to_string(session_id));
  }
  return it->second.get();
}

void Daemon::Touch(DaemonSession* session) {
  session->set_last_touch(++touch_clock_);
}

void Daemon::EnforceResidencyCap(uint64_t keep_resident) {
  size_t resident = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->resident()) ++resident;
  }
  if (resident <= options_.max_resident) return;
  // Eviction candidates ordered: idle (credit-free) before runnable, then
  // least-recently-touched first. Logical touch ticks are unique, so the
  // order — and thus the whole eviction sequence — is deterministic.
  struct Candidate {
    bool runnable;
    uint64_t last_touch;
    uint64_t id;
  };
  std::vector<Candidate> candidates;
  for (const auto& [id, session] : sessions_) {
    if (!session->resident() || id == keep_resident) continue;
    candidates.push_back(
        {scheduler_.pending_credit(id) > 0, session->last_touch(), id});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.runnable != b.runnable) return !a.runnable;
              return a.last_touch < b.last_touch;
            });
  for (const Candidate& candidate : candidates) {
    if (resident <= options_.max_resident) break;
    DaemonSession* victim = sessions_[candidate.id].get();
    Result<bool> evicted = victim->Evict();
    if (!evicted.ok()) {
      VOLCANOML_LOG(Warning)
          << "session " << candidate.id
          << " failed to evict: " << evicted.status().message();
      // Evict() latched the failure, so the session is kFailed (clients
      // observe the error instead of a forever-pending session); drop it
      // from the scheduler so it is never stepped again.
      scheduler_.RemoveSession(victim->tenant(), candidate.id);
    }
    // Count a freed slot only when the executor was actually released;
    // trusting the call outcome alone would let the cap silently drift.
    if (!victim->resident()) --resident;
  }
}

SessionStatus Daemon::StatusOf(const DaemonSession& session) {
  SessionStatus status = session.status();
  status.pending_credit = scheduler_.pending_credit(session.id());
  return status;
}

}  // namespace volcanoml
