#include "daemon/session.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "data/csv.h"
#include "util/check.h"

namespace volcanoml {

namespace {

Result<std::string> ReadSpoolFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open spool file " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed for spool file " + path);
  }
  return buffer.str();
}

Status WriteSpoolFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open spool file " + path + " for writing");
  }
  out << contents;
  out.flush();
  if (!out.good()) {
    return Status::IoError("write failed for spool file " + path);
  }
  return Status::Ok();
}

}  // namespace

Result<VolcanoMlOptions> SessionConfigToOptions(const SessionConfig& config) {
  VolcanoMlOptions options;
  switch (config.task) {
    case 0:
      options.space.task = TaskType::kClassification;
      break;
    case 1:
      options.space.task = TaskType::kRegression;
      break;
    default:
      return Status::InvalidArgument(
          "task must be 0 (classification) or 1 (regression), got " +
          std::to_string(config.task));
  }
  switch (config.preset) {
    case 0:
      options.space.preset = SpacePreset::kSmall;
      break;
    case 1:
      options.space.preset = SpacePreset::kMedium;
      break;
    case 2:
      options.space.preset = SpacePreset::kLarge;
      break;
    default:
      return Status::InvalidArgument(
          "preset must be 0 (small), 1 (medium) or 2 (large), got " +
          std::to_string(config.preset));
  }
  options.space.include_smote = config.include_smote;
  Result<PlanKind> plan = ParsePlanKind(config.plan);
  VOLCANOML_RETURN_IF_ERROR(plan.status());
  options.plan = plan.value();
  Result<JointOptimizerKind> optimizer =
      ParseJointOptimizerKind(config.optimizer);
  VOLCANOML_RETURN_IF_ERROR(optimizer.status());
  options.optimizer = optimizer.value();
  // `> 0` rejects NaN too (any comparison with NaN is false).
  if (!(config.budget > 0.0) || !std::isfinite(config.budget)) {
    return Status::InvalidArgument("budget must be positive and finite");
  }
  options.budget = config.budget;
  if (config.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  options.batch_size = static_cast<size_t>(config.batch_size);
  if (config.cv_folds < 1) {
    return Status::InvalidArgument("cv_folds must be >= 1");
  }
  options.eval.cv_folds = static_cast<size_t>(config.cv_folds);
  switch (config.eval_backend) {
    case 0:
      options.eval.backend = EvalBackendKind::kInProcess;
      break;
    case 1:
      options.eval.backend = EvalBackendKind::kProcessPool;
      break;
    default:
      return Status::InvalidArgument(
          "eval_backend must be 0 (in-process) or 1 (process-pool), got " +
          std::to_string(config.eval_backend));
  }
  if (config.worker_pool_size < 1) {
    return Status::InvalidArgument("worker_pool_size must be >= 1");
  }
  options.eval.worker_pool_size =
      static_cast<size_t>(config.worker_pool_size);
  if (config.trial_hard_timeout < 0.0 ||
      !std::isfinite(config.trial_hard_timeout)) {
    return Status::InvalidArgument(
        "trial_hard_timeout must be finite and >= 0");
  }
  options.eval.trial_hard_timeout_seconds = config.trial_hard_timeout;
  options.eval.worker_retry_cap =
      static_cast<size_t>(config.worker_retry_cap);
  switch (config.precision) {
    case 0:
      options.eval.precision = NumericPrecision::kFloat64;
      break;
    case 1:
      options.eval.precision = NumericPrecision::kFloat32;
      break;
    default:
      return Status::InvalidArgument(
          "precision must be 0 (f64) or 1 (f32), got " +
          std::to_string(config.precision));
  }
  options.seed = config.seed;
  // The KB pointer itself is attached by the caller (daemon: its shared
  // store; CLI: the --kb file) — only the retrieval width travels in the
  // config. Leaving num_warm_starts at its default when kb_warm_starts
  // is 0 keeps KB-free configs bit-identical to pre-KB ones.
  if (config.kb_warm_starts > 0) {
    options.num_warm_starts = static_cast<size_t>(config.kb_warm_starts);
  }
  return options;
}

DaemonSession::DaemonSession(uint64_t id, Spec spec, std::string spool_path)
    : id_(id), spec_(std::move(spec)), spool_path_(std::move(spool_path)) {}

DaemonSession::~DaemonSession() { DiscardSpool(); }

void DaemonSession::DiscardSpool() { std::remove(spool_path_.c_str()); }

Status DaemonSession::Activate() {
  VOLCANOML_CHECK(!activated_);
  activated_ = true;
  return Build(nullptr);
}

Status DaemonSession::EnsureResident() {
  VOLCANOML_CHECK(activated_);
  if (failed()) return error_;
  if (resident()) return Status::Ok();
  Result<std::string> snapshot = ReadSpoolFile(spool_path_);
  if (!snapshot.ok()) return LatchError(snapshot.status());
  return Build(&snapshot.value());
}

Result<bool> DaemonSession::Evict() {
  VOLCANOML_CHECK(activated_);
  if (failed()) return error_;
  if (!resident()) return false;
  RefreshSummary();
  Status spooled =
      WriteSpoolFile(spool_path_, automl_->executor()->SaveSnapshot());
  // A spool-write failure must latch (LatchError also releases the
  // executor): the session has to surface kFailed to clients rather than
  // linger resident while the daemon believes a snapshot exists on disk.
  if (!spooled.ok()) return LatchError(spooled);
  automl_.reset();
  return true;
}

Result<DaemonSession::StepOutcome> DaemonSession::Step() {
  VOLCANOML_CHECK(activated_);
  if (failed()) return error_;
  VOLCANOML_CHECK(resident());
  StepOutcome outcome;
  StepEvent event;
  automl_->executor()->set_step_hook(
      [&event](const StepEvent& e) { event = e; });
  outcome.progressed = automl_->executor()->Step();
  automl_->executor()->set_step_hook({});
  if (outcome.progressed) outcome.event = event;
  RefreshSummary();
  return outcome;
}

Result<std::string> DaemonSession::Snapshot() {
  VOLCANOML_RETURN_IF_ERROR(EnsureResident());
  return automl_->executor()->SaveSnapshot();
}

Result<std::vector<TrajectoryPoint>> DaemonSession::Trajectory() {
  VOLCANOML_RETURN_IF_ERROR(EnsureResident());
  return automl_->executor()->trajectory();
}

Result<Assignment> DaemonSession::BestAssignment() {
  VOLCANOML_RETURN_IF_ERROR(EnsureResident());
  return automl_->executor()->BestAssignment();
}

Result<RunArtifact> DaemonSession::ExportArtifact() {
  VOLCANOML_RETURN_IF_ERROR(EnsureResident());
  return automl_->ExportRunArtifact();
}

SessionStatus DaemonSession::status() const {
  SessionStatus status;
  status.session_id = id_;
  status.tenant = spec_.tenant;
  status.state = failed()     ? SessionState::kFailed
                 : resident() ? SessionState::kResident
                              : SessionState::kEvicted;
  status.done = done_;
  status.steps = steps_;
  status.consumed_budget = consumed_budget_;
  status.best_utility = best_utility_;
  status.telemetry = telemetry_;
  return status;
}

Status DaemonSession::Build(const std::string* snapshot) {
  Result<VolcanoMlOptions> options = SessionConfigToOptions(spec_.config);
  if (!options.ok()) return LatchError(options.status());
  Result<Dataset> data =
      ParseCsvDataset(spec_.csv, options.value().space.task,
                      spec_.dataset_name,
                      "session " + std::to_string(id_) + " dataset");
  if (!data.ok()) return LatchError(data.status());
  // Warm starts consult the daemon's shared KB at build time. On the
  // restore path the injected state is immediately overwritten by the
  // snapshot (which was taken after the same injection), so evict/restore
  // churn cannot double-apply or lose the portfolio.
  if (spec_.config.kb_warm_starts > 0 && spec_.kb != nullptr) {
    options.value().knowledge = spec_.kb;
  }
  auto automl = std::make_unique<VolcanoML>(options.value());
  Status prepared = automl->Prepare(data.value());
  if (!prepared.ok()) return LatchError(prepared);
  if (snapshot != nullptr) {
    Status loaded = automl->executor()->LoadSnapshot(*snapshot);
    if (!loaded.ok()) return LatchError(loaded);
  }
  automl_ = std::move(automl);
  RefreshSummary();
  return Status::Ok();
}

void DaemonSession::RefreshSummary() {
  const PlanExecutor* executor = automl_->executor();
  steps_ = executor->num_steps();
  consumed_budget_ = executor->consumed_budget();
  best_utility_ = executor->BestUtility();
  done_ = executor->Done();
  const PipelineEvaluator* evaluator = automl_->evaluator();
  telemetry_.num_evaluations = evaluator->num_evaluations();
  FeCache::Stats fe = evaluator->fe_cache_stats();
  telemetry_.fe_cache_hits = fe.hits;
  telemetry_.fe_cache_misses = fe.misses;
  telemetry_.fe_cache_evictions = fe.evictions;
  telemetry_.fe_cache_bytes = fe.bytes;
  DispatchTelemetry dispatch = evaluator->engine().dispatch_telemetry();
  telemetry_.worker_deaths = dispatch.worker_deaths;
  telemetry_.worker_retries = dispatch.worker_retries;
  telemetry_.worker_degraded = dispatch.degraded ? 1 : 0;
}

Status DaemonSession::LatchError(Status status) {
  VOLCANOML_CHECK(!status.ok());
  if (error_.ok()) error_ = status;
  automl_.reset();
  return error_;
}

}  // namespace volcanoml
