#include "daemon/scheduler.h"

#include <algorithm>

#include "util/check.h"

namespace volcanoml {

namespace {

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  if (a == kUnlimitedCredit || b == kUnlimitedCredit) return kUnlimitedCredit;
  uint64_t sum = a + b;
  return sum < a ? kUnlimitedCredit : sum;
}

}  // namespace

void FairShareScheduler::AdmitSession(const std::string& tenant,
                                      uint64_t session_id, uint64_t credit) {
  TenantState& state = tenants_[tenant];
  ++state.sessions_created;
  VOLCANOML_CHECK(credit_.find(session_id) == credit_.end());
  credit_[session_id] = credit;
  if (credit > 0) state.queue.push_back(session_id);
}

void FairShareScheduler::GrantCredit(const std::string& tenant,
                                     uint64_t session_id, uint64_t steps) {
  auto credit = credit_.find(session_id);
  // Unknown ids are client-reachable state (a step request for a session
  // the daemon has already retired from scheduling), so they must be
  // ignored, not CHECK-aborted.
  if (credit == credit_.end()) return;
  if (steps == 0) return;
  bool was_idle = credit->second == 0;
  credit->second = SaturatingAdd(credit->second, steps);
  if (was_idle) tenants_[tenant].queue.push_back(session_id);
}

void FairShareScheduler::RemoveSession(const std::string& tenant,
                                       uint64_t session_id) {
  credit_.erase(session_id);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  std::deque<uint64_t>& queue = it->second.queue;
  queue.erase(std::remove(queue.begin(), queue.end(), session_id),
              queue.end());
}

bool FairShareScheduler::HasRunnable() const {
  for (const auto& [tenant, state] : tenants_) {
    if (!state.queue.empty()) return true;
  }
  return false;
}

bool FairShareScheduler::NextTurn(Turn* turn) {
  if (tenants_.empty()) return false;
  auto it = tenants_.upper_bound(cursor_);
  for (size_t i = 0; i < tenants_.size(); ++i, ++it) {
    if (it == tenants_.end()) it = tenants_.begin();
    if (it->second.queue.empty()) continue;
    uint64_t session_id = it->second.queue.front();
    it->second.queue.pop_front();
    auto credit = credit_.find(session_id);
    VOLCANOML_CHECK(credit != credit_.end() && credit->second > 0);
    if (credit->second != kUnlimitedCredit) --credit->second;
    if (credit->second > 0) it->second.queue.push_back(session_id);
    cursor_ = it->first;
    turn->tenant = it->first;
    turn->session_id = session_id;
    return true;
  }
  return false;
}

void FairShareScheduler::RecordStep(const std::string& tenant,
                                    double budget_delta) {
  TenantState& state = tenants_[tenant];
  ++state.steps_executed;
  state.budget_consumed += budget_delta;
}

uint64_t FairShareScheduler::pending_credit(uint64_t session_id) const {
  auto credit = credit_.find(session_id);
  return credit == credit_.end() ? 0 : credit->second;
}

std::vector<TenantAccount> FairShareScheduler::Accounts() const {
  std::vector<TenantAccount> accounts;
  for (const auto& [tenant, state] : tenants_) {
    TenantAccount account;
    account.tenant = tenant;
    account.sessions_created = state.sessions_created;
    account.steps_executed = state.steps_executed;
    account.budget_consumed = state.budget_consumed;
    accounts.push_back(account);
  }
  return accounts;
}

}  // namespace volcanoml
