#include "bandit/mfes.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "bo/acquisition.h"
#include "bo/tpe.h"
#include "util/check.h"

namespace volcanoml {

MfesHbOptimizer::MfesHbOptimizer(const ConfigurationSpace* space,
                                 const Options& options, uint64_t seed)
    : space_(space), options_(options), rng_(seed) {
  VOLCANOML_CHECK(space_ != nullptr);
  VOLCANOML_CHECK(options_.eta > 1.0);
  VOLCANOML_CHECK(options_.min_fidelity > 0.0 && options_.min_fidelity <= 1.0);
  s_max_ = static_cast<int>(std::floor(std::log(1.0 / options_.min_fidelity) /
                                       std::log(options_.eta)));
  current_s_ = s_max_ + 1;  // StartNextRungOrBracket decrements first.
  best_utility_ = -std::numeric_limits<double>::infinity();
  StartNextRungOrBracket();
}

std::vector<Configuration> MfesHbOptimizer::ProposeBracketCandidates(
    size_t count) {
  if (options_.engine == ProposalEngine::kTpe) {
    // BOHB-style: run TPE on the best-populated fidelity level.
    const std::vector<LevelObservation>* best_level = nullptr;
    double best_weight = -1.0;
    for (const auto& [fidelity, observations] : by_fidelity_) {
      if (observations.size() < options_.min_observations_per_level) {
        continue;
      }
      double weight =
          fidelity * std::sqrt(static_cast<double>(observations.size()));
      if (weight > best_weight) {
        best_weight = weight;
        best_level = &observations;
      }
    }
    std::vector<Configuration> out;
    out.reserve(count);
    if (best_level == nullptr) {
      for (size_t i = 0; i < count; ++i) out.push_back(space_->Sample(&rng_));
      return out;
    }
    TpeOptimizer tpe(space_, TpeOptimizer::Options{}, rng_.Fork());
    for (const LevelObservation& obs : *best_level) {
      tpe.Observe(obs.config, obs.utility);
    }
    size_t num_random = static_cast<size_t>(
        std::llround(options_.random_fraction * static_cast<double>(count)));
    for (size_t i = 0; i < num_random; ++i) {
      out.push_back(space_->Sample(&rng_));
    }
    while (out.size() < count) out.push_back(tpe.Suggest());
    return out;
  }

  // Fit one surrogate per sufficiently populated fidelity level.
  struct LevelSurrogate {
    RandomForestSurrogate surrogate;
    double weight;
  };
  std::vector<LevelSurrogate> levels;
  double weight_total = 0.0;
  for (const auto& [fidelity, observations] : by_fidelity_) {
    if (observations.size() < options_.min_observations_per_level) continue;
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(observations.size());
    for (const LevelObservation& obs : observations) {
      x.push_back(obs.encoded);
      y.push_back(obs.utility);
    }
    RandomForestSurrogate surrogate(options_.surrogate, rng_.Fork());
    surrogate.Fit(x, y);
    // Weight grows with fidelity and (saturating) sample count: full-
    // fidelity evidence dominates, plentiful cheap evidence still helps.
    double weight =
        fidelity * std::sqrt(static_cast<double>(observations.size()));
    levels.push_back({std::move(surrogate), weight});
    weight_total += weight;
  }

  std::vector<Configuration> out;
  out.reserve(count);
  if (levels.empty() || weight_total <= 0.0) {
    for (size_t i = 0; i < count; ++i) out.push_back(space_->Sample(&rng_));
    return out;
  }

  size_t num_random = static_cast<size_t>(
      std::llround(options_.random_fraction * static_cast<double>(count)));
  for (size_t i = 0; i < num_random; ++i) {
    out.push_back(space_->Sample(&rng_));
  }

  // Score a candidate pool by weighted-ensemble EI and keep the best.
  std::vector<Configuration> pool;
  pool.reserve(options_.num_candidates);
  for (size_t i = 0; i < options_.num_candidates; ++i) {
    pool.push_back(space_->Sample(&rng_));
  }
  double incumbent = has_best_ ? best_utility_ : 0.0;
  std::vector<std::pair<double, size_t>> scored(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    std::vector<double> encoded = space_->Encode(pool[i]);
    double ei = 0.0;
    for (const LevelSurrogate& level : levels) {
      double mean, variance;
      level.surrogate.PredictMeanVar(encoded, &mean, &variance);
      ei += (level.weight / weight_total) *
            ExpectedImprovement(mean, variance, incumbent);
    }
    scored[i] = {ei, i};
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = 0; out.size() < count && i < scored.size(); ++i) {
    out.push_back(pool[scored[i].second]);
  }
  while (out.size() < count) out.push_back(space_->Sample(&rng_));
  return out;
}

void MfesHbOptimizer::StartNextRungOrBracket() {
  // Promote survivors of the completed rung, if any.
  if (!rung_configs_.empty() && rung_fidelity_ < 1.0) {
    size_t keep = std::max<size_t>(
        1, static_cast<size_t>(
               std::floor(static_cast<double>(rung_configs_.size()) /
                          options_.eta)));
    std::vector<size_t> order(rung_configs_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return rung_scores_[a] > rung_scores_[b];
    });
    std::vector<Configuration> survivors;
    for (size_t i = 0; i < keep; ++i) {
      survivors.push_back(rung_configs_[order[i]]);
    }
    rung_fidelity_ = std::min(1.0, rung_fidelity_ * options_.eta);
    rung_configs_.clear();
    rung_scores_.clear();
    for (const Configuration& c : survivors) pending_.push_back(c);
    return;
  }

  // Start the next bracket (cycle s_max_ .. 0).
  rung_configs_.clear();
  rung_scores_.clear();
  --current_s_;
  if (current_s_ < 0) current_s_ = s_max_;
  size_t num_configs = static_cast<size_t>(std::ceil(
      static_cast<double>(s_max_ + 1) / static_cast<double>(current_s_ + 1) *
      std::pow(options_.eta, current_s_)));
  rung_fidelity_ = std::pow(options_.eta, -current_s_);
  for (Configuration& c : ProposeBracketCandidates(num_configs)) {
    pending_.push_back(std::move(c));
  }
}

MfesHbOptimizer::Proposal MfesHbOptimizer::Next() {
  // Quarantined rung members are skipped rather than re-evaluated; the
  // skip count is bounded so a degenerate space whose every point is
  // quarantined degrades to proposing one anyway (the evaluator's memo
  // cache answers it for free) instead of spinning forever.
  constexpr size_t kMaxQuarantineSkips = 64;
  size_t skipped = 0;
  for (;;) {
    while (pending_.empty()) {
      StartNextRungOrBracket();
    }
    Proposal p;
    p.config = pending_.front();
    p.fidelity = rung_fidelity_;
    pending_.pop_front();
    if (skipped >= kMaxQuarantineSkips || !quarantine_.Contains(p.config)) {
      return p;
    }
    ++skipped;
  }
}

std::vector<MfesHbOptimizer::Proposal> MfesHbOptimizer::NextBatch(
    size_t max_count) {
  VOLCANOML_CHECK(max_count >= 1);
  std::vector<Proposal> batch;
  batch.reserve(max_count);
  batch.push_back(Next());  // Refills pending_ when the rung is done.
  // Drain only what is already pending: once pending_ empties, promotion
  // must wait for this batch's observations.
  while (batch.size() < max_count && !pending_.empty()) {
    batch.push_back(Next());
  }
  return batch;
}

void MfesHbOptimizer::Observe(const Configuration& config, double fidelity,
                              double utility) {
  rung_configs_.push_back(config);
  rung_scores_.push_back(utility);
  by_fidelity_[fidelity].push_back({config, space_->Encode(config), utility});
  ++total_observations_;
  history_utilities_.push_back(utility);

  // Track the best, preferring higher-fidelity evidence.
  bool better = false;
  if (!has_best_) {
    better = true;
  } else if (fidelity > best_fidelity_ + 1e-9) {
    better = true;  // Any higher-fidelity measurement supersedes.
  } else if (std::abs(fidelity - best_fidelity_) <= 1e-9 &&
             utility > best_utility_) {
    better = true;
  }
  if (better) {
    best_config_ = config;
    best_utility_ = utility;
    best_fidelity_ = fidelity;
    has_best_ = true;
  }
}

void MfesHbOptimizer::SaveState(SnapshotWriter* w) const {
  w->Begin("mfes");
  w->Str("rng", rng_.Serialize());
  quarantine_.SaveState(w);
  w->I64("current_s", current_s_);
  w->F64("rung_fidelity", rung_fidelity_);
  w->U64("pending", pending_.size());
  for (const Configuration& config : pending_) {
    SaveConfiguration(w, "pending_config", config);
  }
  w->U64("rung", rung_configs_.size());
  for (size_t i = 0; i < rung_configs_.size(); ++i) {
    SaveConfiguration(w, "rung_config", rung_configs_[i]);
    w->F64("rung_score", rung_scores_[i]);
  }
  // std::map iterates fidelity levels in sorted order — deterministic.
  w->U64("levels", by_fidelity_.size());
  for (const auto& [fidelity, observations] : by_fidelity_) {
    w->F64("level_fidelity", fidelity);
    w->U64("level_observations", observations.size());
    for (const LevelObservation& obs : observations) {
      SaveConfiguration(w, "obs_config", obs.config);
      w->F64("obs_utility", obs.utility);
    }
  }
  w->U64("total_observations", total_observations_);
  SaveDoubleVector(w, "history_utilities", history_utilities_);
  SaveConfiguration(w, "best_config", best_config_);
  w->F64("best_utility", best_utility_);
  w->F64("best_fidelity", best_fidelity_);
  w->Bool("has_best", has_best_);
  w->End("mfes");
}

void MfesHbOptimizer::LoadState(SnapshotReader* r) {
  r->Begin("mfes");
  if (!rng_.Deserialize(r->Str("rng"))) {
    r->Fail("mfes optimizer: malformed rng state");
  }
  quarantine_.LoadState(r);
  current_s_ = static_cast<int>(r->I64("current_s"));
  rung_fidelity_ = r->F64("rung_fidelity");
  uint64_t num_pending = r->U64("pending");
  pending_.clear();
  for (uint64_t i = 0; i < num_pending && r->ok(); ++i) {
    pending_.push_back(LoadConfiguration(r, "pending_config"));
  }
  uint64_t num_rung = r->U64("rung");
  rung_configs_.clear();
  rung_scores_.clear();
  for (uint64_t i = 0; i < num_rung && r->ok(); ++i) {
    rung_configs_.push_back(LoadConfiguration(r, "rung_config"));
    rung_scores_.push_back(r->F64("rung_score"));
  }
  uint64_t num_levels = r->U64("levels");
  by_fidelity_.clear();
  for (uint64_t i = 0; i < num_levels && r->ok(); ++i) {
    double fidelity = r->F64("level_fidelity");
    uint64_t num_observations = r->U64("level_observations");
    std::vector<LevelObservation>& level = by_fidelity_[fidelity];
    for (uint64_t j = 0; j < num_observations && r->ok(); ++j) {
      Configuration config = LoadConfiguration(r, "obs_config");
      double utility = r->F64("obs_utility");
      level.push_back({config, space_->Encode(config), utility});
    }
  }
  total_observations_ = r->U64("total_observations");
  history_utilities_ = LoadDoubleVector(r, "history_utilities");
  best_config_ = LoadConfiguration(r, "best_config");
  best_utility_ = r->F64("best_utility");
  best_fidelity_ = r->F64("best_fidelity");
  has_best_ = r->Bool("has_best");
  r->End("mfes");
}

}  // namespace volcanoml
