#ifndef VOLCANOML_BANDIT_SUCCESSIVE_HALVING_H_
#define VOLCANOML_BANDIT_SUCCESSIVE_HALVING_H_

#include <functional>
#include <vector>

#include "cs/configuration_space.h"

namespace volcanoml {

/// Objective evaluated at a configuration and fidelity (training-subsample
/// fraction in (0, 1]); returns utility, higher is better.
using FidelityObjective =
    std::function<double(const Configuration&, double fidelity)>;

/// One evaluated (configuration, fidelity, utility) record.
struct FidelityObservation {
  Configuration config;
  double fidelity = 1.0;
  double utility = 0.0;
};

/// Synchronous successive halving [Jamieson & Talwalkar]: starts
/// `num_configs` candidates at `min_fidelity` and repeatedly keeps the top
/// 1/eta at eta-times the fidelity until full fidelity is reached.
struct SuccessiveHalvingOptions {
  size_t num_configs = 9;
  double eta = 3.0;
  double min_fidelity = 1.0 / 9.0;
};

/// Runs one SH bracket over externally supplied candidates. Returns every
/// observation made (budget accounting is the objective's concern).
std::vector<FidelityObservation> RunSuccessiveHalving(
    const std::vector<Configuration>& candidates,
    const SuccessiveHalvingOptions& options,
    const FidelityObjective& objective);

/// Hyperband [Li et al., ICLR'18]: a sweep of SH brackets trading the
/// number of candidates against their starting fidelity. `sampler`
/// produces the candidates for each bracket.
struct HyperbandOptions {
  double eta = 3.0;
  double min_fidelity = 1.0 / 9.0;
};

std::vector<FidelityObservation> RunHyperband(
    const ConfigurationSpace& space, const HyperbandOptions& options,
    const FidelityObjective& objective, Rng* rng);

}  // namespace volcanoml

#endif  // VOLCANOML_BANDIT_SUCCESSIVE_HALVING_H_
