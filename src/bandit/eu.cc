#include "bandit/eu.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace volcanoml {

std::vector<double> BestSoFarCurve(const std::vector<double>& utilities) {
  std::vector<double> curve(utilities.size());
  double best = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < utilities.size(); ++i) {
    best = std::max(best, utilities[i]);
    curve[i] = best;
  }
  return curve;
}

EuBounds RisingBanditBounds(const std::vector<double>& best_curve,
                            double k_more) {
  VOLCANOML_CHECK(k_more >= 0.0);
  EuBounds bounds;
  if (best_curve.empty()) {
    // No evidence yet: maximal uncertainty so the arm cannot be eliminated.
    bounds.lower = -std::numeric_limits<double>::infinity();
    bounds.upper = std::numeric_limits<double>::infinity();
    return bounds;
  }
  double current = best_curve.back();
  bounds.lower = current;

  if (best_curve.size() < 2) {
    bounds.upper = std::numeric_limits<double>::infinity();
    return bounds;
  }

  // Slope between the last two improvement events (Li et al., AAAI'20):
  // under the increasing-and-concave reward-curve assumption, this recent
  // per-pull rate dominates all future rates, so extrapolating it
  // linearly upper-bounds the achievable utility.
  size_t last_gain = 0, prev_gain = 0;
  for (size_t i = 1; i < best_curve.size(); ++i) {
    if (best_curve[i] > best_curve[i - 1]) {
      prev_gain = last_gain;
      last_gain = i;
    }
  }
  double slope;
  if (last_gain == 0) {
    // Never improved after the first pull: the curve has converged.
    slope = 0.0;
  } else if (prev_gain == 0 && last_gain == best_curve.size() - 1) {
    // A single improvement at the very last pull: no decay evidence yet;
    // fall back to that gain per pull.
    slope = best_curve[last_gain] - best_curve[last_gain - 1];
  } else if (prev_gain == 0) {
    // One improvement followed by a flat tail: amortize over the tail.
    slope = (best_curve[last_gain] - best_curve[last_gain - 1]) /
            static_cast<double>(best_curve.size() - last_gain);
  } else {
    slope = (best_curve[last_gain] - best_curve[prev_gain]) /
            static_cast<double>(last_gain - prev_gain);
    // A long flat tail after the last improvement is stronger (more
    // recent) evidence of decay; take the smaller of the two rates.
    double tail = static_cast<double>(best_curve.size() - last_gain);
    if (tail > static_cast<double>(last_gain - prev_gain)) {
      slope = std::min(
          slope, (best_curve[last_gain] - best_curve[prev_gain]) / tail);
    }
  }
  bounds.upper = current + slope * k_more;
  return bounds;
}

double MeanImprovementEui(const std::vector<double>& best_curve,
                          size_t window) {
  if (best_curve.size() < 2) {
    // Unexplored arms report infinite EUI so they get pulled first.
    return std::numeric_limits<double>::infinity();
  }
  size_t begin = 1;
  if (window > 0 && best_curve.size() > window) {
    begin = best_curve.size() - window;
  }
  double total = 0.0;
  size_t count = 0;
  for (size_t i = begin; i < best_curve.size(); ++i) {
    total += best_curve[i] - best_curve[i - 1];
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace volcanoml
