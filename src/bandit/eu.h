#ifndef VOLCANOML_BANDIT_EU_H_
#define VOLCANOML_BANDIT_EU_H_

#include <cstddef>
#include <vector>

namespace volcanoml {

/// Lower/upper bound on an arm's expected utility after more budget.
struct EuBounds {
  double lower = 0.0;
  double upper = 0.0;
};

/// Rising-bandit extrapolation bounds [Li et al., AAAI'20], the `get_eu`
/// primitive of VolcanoML building blocks (paper Section 3.2).
///
/// `best_curve` is the arm's best-utility-so-far trajectory (one entry per
/// pull, non-decreasing); `k_more` is the remaining budget in pulls.
/// The lower bound assumes no further improvement (current best); the
/// upper bound extrapolates the most recent per-pull improvement rate
/// linearly — valid under the rising-bandit assumption that reward curves
/// are increasing with diminishing returns, so the recent slope bounds all
/// future slopes.
EuBounds RisingBanditBounds(const std::vector<double>& best_curve,
                            double k_more);

/// The `get_eui` primitive: expected utility improvement per additional
/// pull, estimated as the mean of historical per-pull improvements
/// (rotting-bandits estimator, Levine et al.). A `window` > 0 restricts
/// the mean to the most recent pulls.
double MeanImprovementEui(const std::vector<double>& best_curve,
                          size_t window = 0);

/// Converts a raw utility history (arbitrary order) into the best-so-far
/// curve expected by the two estimators above.
std::vector<double> BestSoFarCurve(const std::vector<double>& utilities);

}  // namespace volcanoml

#endif  // VOLCANOML_BANDIT_EU_H_
