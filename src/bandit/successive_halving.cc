#include "bandit/successive_halving.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace volcanoml {

std::vector<FidelityObservation> RunSuccessiveHalving(
    const std::vector<Configuration>& candidates,
    const SuccessiveHalvingOptions& options,
    const FidelityObjective& objective) {
  VOLCANOML_CHECK(!candidates.empty());
  VOLCANOML_CHECK(options.eta > 1.0);
  VOLCANOML_CHECK(options.min_fidelity > 0.0 && options.min_fidelity <= 1.0);

  std::vector<FidelityObservation> all;
  std::vector<Configuration> alive = candidates;
  double fidelity = options.min_fidelity;
  while (true) {
    std::vector<double> scores(alive.size());
    for (size_t i = 0; i < alive.size(); ++i) {
      scores[i] = objective(alive[i], fidelity);
      all.push_back({alive[i], fidelity, scores[i]});
    }
    if (fidelity >= 1.0 || alive.size() <= 1) break;
    // Keep the top 1/eta.
    size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::floor(static_cast<double>(alive.size()) /
                                          options.eta)));
    std::vector<size_t> order(alive.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return scores[a] > scores[b]; });
    std::vector<Configuration> next;
    for (size_t i = 0; i < keep; ++i) next.push_back(alive[order[i]]);
    alive = std::move(next);
    fidelity = std::min(1.0, fidelity * options.eta);
  }
  return all;
}

std::vector<FidelityObservation> RunHyperband(
    const ConfigurationSpace& space, const HyperbandOptions& options,
    const FidelityObjective& objective, Rng* rng) {
  VOLCANOML_CHECK(options.eta > 1.0);
  // s_max brackets from most exploratory (many configs, low fidelity) to
  // a single full-fidelity bracket.
  int s_max = static_cast<int>(
      std::floor(std::log(1.0 / options.min_fidelity) / std::log(options.eta)));
  std::vector<FidelityObservation> all;
  for (int s = s_max; s >= 0; --s) {
    size_t num_configs = static_cast<size_t>(
        std::ceil(static_cast<double>(s_max + 1) / static_cast<double>(s + 1) *
                  std::pow(options.eta, s)));
    double start_fidelity = std::pow(options.eta, -s);
    std::vector<Configuration> candidates;
    candidates.reserve(num_configs);
    for (size_t i = 0; i < num_configs; ++i) {
      candidates.push_back(space.Sample(rng));
    }
    SuccessiveHalvingOptions sh;
    sh.num_configs = num_configs;
    sh.eta = options.eta;
    sh.min_fidelity = start_fidelity;
    std::vector<FidelityObservation> bracket =
        RunSuccessiveHalving(candidates, sh, objective);
    all.insert(all.end(), bracket.begin(), bracket.end());
  }
  return all;
}

}  // namespace volcanoml
