#ifndef VOLCANOML_BANDIT_MFES_H_
#define VOLCANOML_BANDIT_MFES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "bandit/successive_halving.h"
#include "bo/quarantine.h"
#include "bo/surrogate.h"
#include "cs/configuration_space.h"

namespace volcanoml {

/// MFES-HB [Li et al., 2020]: Hyperband whose bracket candidates are
/// proposed by a Multi-Fidelity Ensemble Surrogate instead of uniformly at
/// random. Low-fidelity (subsampled) measurements — which are plentiful —
/// train per-fidelity surrogates whose EI scores are combined with weights
/// favouring higher fidelities and better-populated levels.
///
/// The class exposes an iterative interface so a VolcanoML joint block can
/// advance it one evaluation per do_next!: call Next() for the pending
/// (configuration, fidelity) pair, evaluate it, then Observe() the result.
class MfesHbOptimizer {
 public:
  /// How bracket candidates are proposed once observations exist.
  enum class ProposalEngine {
    /// Multi-fidelity RF-ensemble EI (MFES-HB, the default).
    kEnsembleSurrogate,
    /// TPE good/bad density ratio fitted on the highest-populated
    /// fidelity (BOHB-style [Falkner et al., ICML'18]).
    kTpe,
  };

  struct Options {
    double eta = 3.0;
    double min_fidelity = 1.0 / 9.0;
    /// Fraction of bracket candidates sampled uniformly for exploration.
    double random_fraction = 0.3;
    /// Observations needed at a fidelity before its surrogate is used.
    size_t min_observations_per_level = 4;
    size_t num_candidates = 200;
    ProposalEngine engine = ProposalEngine::kEnsembleSurrogate;
    RandomForestSurrogate::Options surrogate;
  };

  struct Proposal {
    Configuration config;
    double fidelity = 1.0;
  };

  MfesHbOptimizer(const ConfigurationSpace* space, const Options& options,
                  uint64_t seed);

  /// The next evaluation to perform.
  [[nodiscard]] Proposal Next();

  /// Up to `max_count` pending evaluations (at least one). The batch
  /// never crosses a rung boundary: rung promotion needs every rung
  /// member observed first, so only the evaluations already pending in
  /// the current rung — which are mutually independent — may run
  /// concurrently. Observe() each result afterwards, in any order.
  [[nodiscard]] std::vector<Proposal> NextBatch(size_t max_count);

  /// Records the result of a proposal returned by Next().
  void Observe(const Configuration& config, double fidelity, double utility);

  /// Permanently bars a configuration from future proposals (trial-guard
  /// retry cap). Quarantined rung members and survivors are skipped by
  /// Next(), shrinking the rung instead of re-running a known-bad point.
  void Quarantine(const Configuration& config) { quarantine_.Add(config); }
  [[nodiscard]] bool IsQuarantined(const Configuration& config) const {
    return quarantine_.Contains(config);
  }
  [[nodiscard]] size_t num_quarantined() const { return quarantine_.size(); }

  bool HasObservations() const { return total_observations_ > 0; }

  /// Best configuration among the highest-fidelity observations so far.
  const Configuration& best() const { return best_config_; }
  double best_utility() const { return best_utility_; }
  double best_fidelity() const { return best_fidelity_; }

  /// Best utility per observation (full history across fidelities).
  const std::vector<double>& history_utilities() const {
    return history_utilities_;
  }

  /// Writes bracket/rung progress, pending evaluations, per-fidelity
  /// observation history, and RNG engine state. Per-level surrogates are
  /// rebuilt from the restored observations on the next proposal; encoded
  /// vectors are recomputed from configs on load.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r);

 private:
  void StartNextRungOrBracket();
  std::vector<Configuration> ProposeBracketCandidates(size_t count);

  const ConfigurationSpace* space_;
  Options options_;
  Rng rng_;
  QuarantineSet quarantine_;

  int s_max_ = 0;
  int current_s_ = 0;  ///< Bracket index, cycling s_max .. 0.
  double rung_fidelity_ = 1.0;
  std::deque<Configuration> pending_;  ///< Evaluations left in this rung.
  std::vector<Configuration> rung_configs_;
  std::vector<double> rung_scores_;

  struct LevelObservation {
    Configuration config;
    std::vector<double> encoded;
    double utility = 0.0;
  };

  /// Observations grouped per fidelity level for the proposal engines.
  std::map<double, std::vector<LevelObservation>> by_fidelity_;
  size_t total_observations_ = 0;
  std::vector<double> history_utilities_;

  Configuration best_config_;
  double best_utility_ = 0.0;
  double best_fidelity_ = 0.0;
  bool has_best_ = false;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BANDIT_MFES_H_
