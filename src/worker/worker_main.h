#ifndef VOLCANOML_WORKER_WORKER_MAIN_H_
#define VOLCANOML_WORKER_WORKER_MAIN_H_

namespace volcanoml {

/// Entry point of the volcanoml_worker binary (examples/ holds the thin
/// main() so the process machinery stays inside src/worker/ — see
/// determinism rule R15). Expects `--fd N`, the worker's end of the
/// supervisor socketpair; serves WorkerInit then WorkerEval frames until
/// shutdown or supervisor EOF.
///
/// Chaos hook (test/CI substrate): $VOLCANOML_WORKER_CHAOS =
/// "<mode>:<fraction>:<seed>" makes the worker misbehave on the
/// deterministic hash-selected fraction of requests, with modes
///   kill-first  — SIGKILL itself, but only on attempt 0 (every killed
///                 trial's retry succeeds: the trajectory stays
///                 byte-identical to a clean run);
///   kill-always — SIGKILL itself on every attempt (exhausts the retry
///                 cap; the trial commits as worker_died);
///   stall       — sleep forever (exercises the supervisor hard kill);
///   garbage     — write a malformed frame instead of the reply.
/// Selection is a pure function of (configuration hash, seed), never of
/// timing, so chaos runs are as reproducible as clean ones.
int RunWorkerMain(int argc, char** argv);

}  // namespace volcanoml

#endif  // VOLCANOML_WORKER_WORKER_MAIN_H_
