#include "worker/process_pool.h"

#include <algorithm>
#include <cstdlib>

#include <unistd.h>

#include "ipc/messages.h"
#include "util/check.h"
#include "util/logging.h"
#include "worker/worker_protocol.h"

namespace volcanoml {

namespace {

/// Directory part of `path` ("" when there is no slash).
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash);
}

bool IsExecutable(const std::string& path) {
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

}  // namespace

std::string ResolveWorkerBinary(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  const char* env = std::getenv("VOLCANOML_WORKER_BINARY");
  if (env != nullptr && env[0] != '\0') return env;
  // Relative to the running binary, so tests and examples find the
  // worker regardless of the working directory: a sibling in the same
  // build directory first, then the examples/ directory of a sibling
  // build tree (tests live in build/tests, the worker in
  // build/examples).
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string dir = DirName(buf);
  for (const std::string& candidate :
       {dir + "/volcanoml_worker", dir + "/../examples/volcanoml_worker"}) {
    if (IsExecutable(candidate)) return candidate;
  }
  return "";
}

ProcessPoolDispatch::ProcessPoolDispatch(const EvalContext* context)
    : context_(context),
      pool_size_(std::max<size_t>(1, context->options().worker_pool_size)) {
  VOLCANOML_CHECK(context_ != nullptr);
}

void ProcessPoolDispatch::EnsureStarted() {
  if (started_) return;
  started_ = true;
  const EvaluatorOptions& options = context_->options();
  std::string binary = ResolveWorkerBinary(options.worker_binary);
  if (binary.empty()) {
    degraded_ = true;
    ++startup_spawn_failures_;
    VOLCANOML_LOG(Warning)
        << "worker pool degraded to in-process evaluation: no "
           "volcanoml_worker binary found (set --worker-binary or "
           "$VOLCANOML_WORKER_BINARY)";
    return;
  }
  WorkerInitMessage init;
  init.space = context_->space().options();
  init.eval = options;
  init.data = context_->data();
  if (options.fault_injector != nullptr) {
    init.has_injector = true;
    init.injector = options.fault_injector->options();
  }
  WorkerSupervisor::Options supervisor_options;
  supervisor_options.pool_size = pool_size_;
  supervisor_options.worker_binary = binary;
  supervisor_options.hard_timeout_seconds =
      options.trial_hard_timeout_seconds;
  supervisor_options.retry_cap = options.worker_retry_cap;
  supervisor_options.backoff_base_ms = options.worker_backoff_base_ms;
  supervisor_options.backoff_max_ms = options.worker_backoff_max_ms;
  supervisor_options.respawn_limit = options.worker_respawn_limit;
  supervisor_ = std::make_unique<WorkerSupervisor>(
      std::move(supervisor_options), EncodeMessage(init),
      context_->space().task());
  if (!supervisor_->StartAll().ok()) {
    // The supervisor logged the reason and opened its circuit; keep it
    // around so its telemetry (spawn failures, degraded) stays visible.
    degraded_ = true;
    return;
  }
  if (pool_size_ > 1 && threads_ == nullptr) {
    threads_ = std::make_unique<ThreadPool>(pool_size_);
  }
}

void ProcessPoolDispatch::Dispatch(const std::vector<EvalRequest>& requests,
                                   std::vector<EvalOutcome>* outcomes) {
  VOLCANOML_CHECK(outcomes->size() == requests.size());
  EnsureStarted();
  const size_t n = requests.size();
  if (n == 0) return;
  const bool pool_live = !degraded_ && supervisor_ != nullptr &&
                         !supervisor_->circuit_open();
  const uint64_t base_id = next_request_id_;
  next_request_id_ += n;
  // Static partition: request i belongs to worker slot i mod k. Each
  // slot is driven by exactly one thread, and a slot whose worker cannot
  // be sustained computes in-process — same pure function, same bits.
  const size_t k = std::min(pool_size_, n);
  auto drive_slot = [&](size_t slot) {
    for (size_t i = slot; i < n; i += k) {
      std::optional<EvalOutcome> outcome;
      if (pool_live) {
        outcome = supervisor_->EvaluateOnWorker(slot, requests[i],
                                                base_id + i);
      }
      if (!outcome.has_value()) {
        outcome = context_->EvaluateOnce(requests[i].assignment,
                                         requests[i].fidelity);
      }
      (*outcomes)[i] = *outcome;
    }
  };
  if (k > 1) {
    if (threads_ == nullptr) {
      threads_ = std::make_unique<ThreadPool>(pool_size_);
    }
    threads_->ParallelFor(k, drive_slot);
  } else {
    drive_slot(0);
  }
}

DispatchTelemetry ProcessPoolDispatch::telemetry() const {
  DispatchTelemetry t;
  if (supervisor_ != nullptr) t = supervisor_->telemetry();
  t.spawn_failures += startup_spawn_failures_;
  if (degraded_) t.degraded = true;
  return t;
}

std::unique_ptr<DispatchBackend> CreateDispatchBackend(
    const EvalContext* context) {
  VOLCANOML_CHECK(context != nullptr);
  switch (context->options().backend) {
    case EvalBackendKind::kInProcess:
      return std::make_unique<InProcessDispatch>(context);
    case EvalBackendKind::kProcessPool:
      return std::make_unique<ProcessPoolDispatch>(context);
  }
  return std::make_unique<InProcessDispatch>(context);
}

}  // namespace volcanoml
