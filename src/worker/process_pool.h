#ifndef VOLCANOML_WORKER_PROCESS_POOL_H_
#define VOLCANOML_WORKER_PROCESS_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/dispatch.h"
#include "eval/eval_context.h"
#include "util/thread_pool.h"
#include "worker/supervisor.h"

namespace volcanoml {

/// Resolves the volcanoml_worker binary path: `explicit_path` if
/// non-empty, else $VOLCANOML_WORKER_BINARY, else an executable named
/// `volcanoml_worker` next to the running binary or in the sibling
/// examples/ build directory. Empty when nothing is found (the pool then
/// degrades to in-process compute at its first dispatch).
[[nodiscard]] std::string ResolveWorkerBinary(
    const std::string& explicit_path);

/// DispatchBackend computing trials on a supervised pool of
/// out-of-process workers (see WorkerSupervisor for the failure
/// handling). Requests are partitioned statically — request i goes to
/// worker slot i mod k — so the assignment of work to workers is a pure
/// function of the batch, never of timing. The pool spawns lazily on the
/// first dispatch (evicted daemon sessions pay nothing), and every
/// degradation path computes through the same pure EvaluateOnce the
/// workers run, keeping outcomes bit-identical to the in-process oracle.
class ProcessPoolDispatch : public DispatchBackend {
 public:
  explicit ProcessPoolDispatch(const EvalContext* context);

  [[nodiscard]] const char* name() const override { return "process-pool"; }
  [[nodiscard]] size_t parallelism() const override { return pool_size_; }
  void Dispatch(const std::vector<EvalRequest>& requests,
                std::vector<EvalOutcome>* outcomes) override;
  [[nodiscard]] DispatchTelemetry telemetry() const override;

 private:
  /// First-dispatch startup: resolve the binary, encode the init
  /// payload, spawn the pool. Leaves `degraded_` set on any failure.
  void EnsureStarted();

  const EvalContext* context_;
  size_t pool_size_;
  bool started_ = false;
  /// Pool could not be brought up at all (missing binary, spawn
  /// failure); distinct from the supervisor's own circuit breaker.
  bool degraded_ = false;
  size_t startup_spawn_failures_ = 0;
  uint64_t next_request_id_ = 1;
  std::unique_ptr<ThreadPool> threads_;  ///< Null when pool_size_ == 1.
  std::unique_ptr<WorkerSupervisor> supervisor_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_WORKER_PROCESS_POOL_H_
