#include "worker/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ipc/messages.h"
#include "util/check.h"
#include "util/logging.h"
#include "worker/worker_protocol.h"

namespace volcanoml {

namespace {

/// How long a freshly exec'd worker gets to decode the init message and
/// report ready. Generous: it covers process startup plus rebuilding the
/// evaluation context from the shipped dataset.
constexpr int kInitTimeoutMs = 60'000;

}  // namespace

WorkerSupervisor::WorkerSupervisor(Options options, std::string init_payload,
                                   TaskType task)
    : options_(std::move(options)),
      init_payload_(std::move(init_payload)),
      task_(task) {
  VOLCANOML_CHECK(options_.pool_size >= 1);
  slots_.resize(options_.pool_size);
}

WorkerSupervisor::~WorkerSupervisor() {
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].pid < 0) continue;
    // Best-effort graceful shutdown: a healthy worker exits on the frame
    // (or on the EOF from the fd closing); SIGKILL covers a wedged one.
    (void)SendFrame(slots_[slot].fd,
                    static_cast<uint8_t>(WorkerMessageType::kShutdown),
                    EncodeMessage(WorkerShutdown{}));
    KillAndReapSlot(slot);
  }
}

EvalOutcome WorkerSupervisor::FailedOutcome(TrialOutcome outcome,
                                            double elapsed) const {
  EvalOutcome result;
  result.utility = FailureUtility(task_);
  result.elapsed_seconds = elapsed;
  result.outcome = outcome;
  return result;
}

Status WorkerSupervisor::SpawnSlot(size_t slot) {
  Slot& s = slots_[slot];
  VOLCANOML_CHECK(s.pid < 0);
  Result<SocketPair> pair = CreateSocketPair();
  if (!pair.ok()) {
    MutexLock lock(mu_);
    ++telemetry_.spawn_failures;
    return pair.status();
  }
  // Everything the child needs between fork and exec is prepared here:
  // only async-signal-safe calls are legal in the child of a
  // multithreaded parent (pool threads may hold the heap lock).
  std::string fd_arg = std::to_string(pair.value().child.get());
  const char* argv[] = {options_.worker_binary.c_str(), "--fd",
                        fd_arg.c_str(), nullptr};
  pid_t pid = ::fork();
  if (pid < 0) {
    MutexLock lock(mu_);
    ++telemetry_.spawn_failures;
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. The parent end carries FD_CLOEXEC, so exec leaves the
    // worker holding exactly its own pipe end.
    ::execv(options_.worker_binary.c_str(),
            const_cast<char* const*>(argv));
    ::_exit(127);  // exec failed; the parent sees the early exit.
  }
  s.pid = pid;
  s.fd = std::move(pair.value().parent);
  // Close the child's end in the parent immediately: if the worker dies
  // (exec failure, early crash), the supervisor must see EOF rather than
  // hanging on a socket it itself keeps open.
  pair.value().child.Reset();
  {
    MutexLock lock(mu_);
    ++telemetry_.worker_respawns;
  }
  // Prime the worker and wait for ready. Any failure here — exec'ing a
  // nonexistent binary surfaces as EOF, a broken build as a non-ok
  // reply — is a spawn failure, not a retryable death.
  Status sent = SendFrame(s.fd,
                          static_cast<uint8_t>(WorkerMessageType::kInit),
                          init_payload_);
  if (sent.ok()) {
    uint8_t type = 0;
    std::string payload;
    sent = RecvFrame(s.fd, &type, &payload, kInitTimeoutMs);
    if (sent.ok()) {
      if (type != static_cast<uint8_t>(WorkerMessageType::kInitReply)) {
        sent = Status::IoError("worker sent an unexpected init reply type");
      } else {
        Result<WorkerInitReply> reply = DecodeMessage<WorkerInitReply>(payload);
        if (!reply.ok()) {
          sent = reply.status();
        } else if (!reply.value().ok) {
          sent = Status::Internal("worker failed to initialize: " +
                                  reply.value().error);
        }
      }
    }
  }
  if (!sent.ok()) {
    KillAndReapSlot(slot);
    MutexLock lock(mu_);
    ++telemetry_.spawn_failures;
    return sent;
  }
  return Status::Ok();
}

void WorkerSupervisor::KillAndReapSlot(size_t slot) {
  Slot& s = slots_[slot];
  if (s.pid < 0) return;
  ::kill(static_cast<pid_t>(s.pid), SIGKILL);
  for (;;) {
    int status = 0;
    pid_t reaped = ::waitpid(static_cast<pid_t>(s.pid), &status, 0);
    if (reaped >= 0 || errno != EINTR) break;
  }
  s.pid = -1;
  s.fd.Reset();
}

Status WorkerSupervisor::StartAll() {
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    Status spawned = SpawnSlot(slot);
    if (!spawned.ok()) {
      OpenCircuit("worker pool failed to start: " + spawned.message());
      return spawned;
    }
  }
  return Status::Ok();
}

bool WorkerSupervisor::circuit_open() const {
  MutexLock lock(mu_);
  return circuit_open_;
}

DispatchTelemetry WorkerSupervisor::telemetry() const {
  MutexLock lock(mu_);
  return telemetry_;
}

void WorkerSupervisor::OpenCircuit(const std::string& reason) {
  {
    MutexLock lock(mu_);
    if (circuit_open_) return;
    circuit_open_ = true;
    telemetry_.degraded = true;
  }
  VOLCANOML_LOG(Warning)
      << "worker pool degraded to in-process evaluation: " << reason;
}

std::optional<EvalOutcome> WorkerSupervisor::EvaluateOnWorker(
    size_t slot, const EvalRequest& request, uint64_t request_id) {
  VOLCANOML_CHECK(slot < slots_.size());
  Slot& s = slots_[slot];
  int timeout_ms = options_.hard_timeout_seconds > 0.0
                       ? static_cast<int>(std::ceil(
                             options_.hard_timeout_seconds * 1000.0))
                       : -1;
  for (uint32_t attempt = 0;; ++attempt) {
    if (circuit_open()) return std::nullopt;
    if (s.pid < 0) {
      Status spawned = SpawnSlot(slot);
      if (!spawned.ok()) {
        OpenCircuit("respawn failed: " + spawned.message());
        return std::nullopt;
      }
    }
    WorkerEvalRequest eval;
    eval.request_id = request_id;
    eval.attempt = attempt;
    eval.assignment = request.assignment;
    eval.fidelity = request.fidelity;
    Status st = SendFrame(s.fd,
                          static_cast<uint8_t>(WorkerMessageType::kEval),
                          EncodeMessage(eval));
    if (st.ok()) {
      uint8_t type = 0;
      std::string payload;
      st = RecvFrame(s.fd, &type, &payload, timeout_ms);
      if (st.ok()) {
        if (type == static_cast<uint8_t>(WorkerMessageType::kEvalReply)) {
          Result<WorkerEvalReply> reply =
              DecodeMessage<WorkerEvalReply>(payload);
          if (reply.ok() && reply.value().request_id == request_id) {
            s.consecutive_deaths = 0;
            EvalOutcome outcome;
            outcome.utility = reply.value().utility;
            outcome.elapsed_seconds = reply.value().elapsed_seconds;
            outcome.outcome =
                static_cast<TrialOutcome>(reply.value().outcome);
            return outcome;
          }
          st = Status::IoError("worker sent a malformed or stale reply");
        } else {
          st = Status::IoError("worker sent an unexpected frame type");
        }
      }
    }
    if (st.code() == StatusCode::kDeadlineExceeded) {
      // Supervisor-enforced hard timeout: kill the wedged worker and
      // report kTimedOut. No retry — the computation is deterministic,
      // a re-run would stall the same way.
      KillAndReapSlot(slot);
      {
        MutexLock lock(mu_);
        ++telemetry_.hard_timeouts;
      }
      // Deaths-by-timeout do not advance the circuit breaker: the breaker
      // exists for workers that cannot even come up, not for slow trials.
      return FailedOutcome(TrialOutcome::kTimedOut,
                           options_.hard_timeout_seconds);
    }
    // Everything else is a death: the worker crashed (EOF), exited, or
    // spoke garbage. Kill/reap, then retry on a fresh worker with
    // exponential backoff, up to the cap.
    KillAndReapSlot(slot);
    ++s.consecutive_deaths;
    {
      MutexLock lock(mu_);
      ++telemetry_.worker_deaths;
    }
    if (s.consecutive_deaths > options_.respawn_limit) {
      OpenCircuit("restart storm on worker slot " + std::to_string(slot) +
                  " (" + std::to_string(s.consecutive_deaths) +
                  " consecutive deaths): " + st.message());
      return std::nullopt;
    }
    if (attempt >= options_.retry_cap) {
      return FailedOutcome(TrialOutcome::kWorkerDied, 0.0);
    }
    {
      MutexLock lock(mu_);
      ++telemetry_.worker_retries;
    }
    int backoff = options_.backoff_base_ms;
    for (uint32_t b = 0; b < attempt && backoff < options_.backoff_max_ms;
         ++b) {
      backoff *= 2;
    }
    SleepMs(std::min(backoff, options_.backoff_max_ms));
  }
}

}  // namespace volcanoml
