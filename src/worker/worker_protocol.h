#ifndef VOLCANOML_WORKER_WORKER_PROTOCOL_H_
#define VOLCANOML_WORKER_WORKER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "cs/configuration.h"
#include "data/dataset.h"
#include "eval/eval_context.h"
#include "eval/fault_injector.h"
#include "eval/search_space.h"
#include "ipc/wire.h"

namespace volcanoml {

/// Frame types of the supervisor <-> worker protocol, spoken over the
/// socketpair each worker inherits. Kept in a disjoint numeric range from
/// ipc::MessageType so a frame routed to the wrong peer fails loudly at
/// the type byte instead of decoding as garbage.
enum class WorkerMessageType : uint8_t {
  kInit = 64,        ///< Supervisor -> worker: dataset + options, once.
  kInitReply = 65,   ///< Worker -> supervisor: ready (or build error).
  kEval = 66,        ///< Supervisor -> worker: one EvaluateOnce request.
  kEvalReply = 67,   ///< Worker -> supervisor: the outcome.
  kShutdown = 68,    ///< Supervisor -> worker: exit cleanly.
};

/// Everything a worker needs to rebuild the evaluation context: the
/// search-space options, the EvaluatorOptions fields that affect
/// EvaluateOnce, and the full dataset (doubles travel as IEEE-754 bit
/// patterns, so the worker's context is bit-identical to the
/// supervisor's — the root of the backend's determinism contract).
struct WorkerInitMessage {
  SearchSpaceOptions space;
  /// Only the EvaluateOnce-relevant fields are honored on the worker
  /// side; num_threads/memoize/backend are forced to the serial
  /// in-process path there.
  EvaluatorOptions eval;
  Dataset data;
  /// Deterministic fault injection forwarded to the worker context.
  bool has_injector = false;
  FaultInjector::Options injector;

  void Encode(WireWriter* w) const;
  static WorkerInitMessage Decode(WireReader* r);
};

struct WorkerInitReply {
  bool ok = true;
  std::string error;

  void Encode(WireWriter* w) const;
  static WorkerInitReply Decode(WireReader* r);
};

/// One EvaluateOnce request. `request_id` pairs replies with requests
/// (a stale reply from before a kill cannot be mistaken for the current
/// answer); `attempt` is the supervisor's retry counter, which the chaos
/// hook uses to kill only first attempts.
struct WorkerEvalRequest {
  uint64_t request_id = 0;
  uint32_t attempt = 0;
  Assignment assignment;
  double fidelity = 1.0;

  void Encode(WireWriter* w) const;
  static WorkerEvalRequest Decode(WireReader* r);
};

struct WorkerEvalReply {
  uint64_t request_id = 0;
  double utility = 0.0;
  double elapsed_seconds = 0.0;
  /// TrialOutcome as u8; validated on decode.
  uint8_t outcome = 0;

  void Encode(WireWriter* w) const;
  static WorkerEvalReply Decode(WireReader* r);
};

struct WorkerShutdown {
  void Encode(WireWriter* w) const;
  static WorkerShutdown Decode(WireReader* r);
};

}  // namespace volcanoml

#endif  // VOLCANOML_WORKER_WORKER_PROTOCOL_H_
