#include "worker/worker_main.h"

#include <cstdlib>
#include <memory>
#include <string>

#include <signal.h>
#include <unistd.h>

#include "eval/eval_context.h"
#include "eval/fault_injector.h"
#include "eval/search_space.h"
#include "ipc/messages.h"
#include "ipc/transport.h"
#include "worker/worker_protocol.h"

namespace volcanoml {

namespace {

/// Parsed $VOLCANOML_WORKER_CHAOS (see worker_main.h).
struct ChaosConfig {
  enum class Mode { kNone, kKillFirst, kKillAlways, kStall, kGarbage };
  Mode mode = Mode::kNone;
  double fraction = 0.0;
  uint64_t seed = 0;
};

ChaosConfig ParseChaos(const char* spec) {
  ChaosConfig chaos;
  if (spec == nullptr || spec[0] == '\0') return chaos;
  std::string s(spec);
  size_t first = s.find(':');
  size_t second = first == std::string::npos ? std::string::npos
                                             : s.find(':', first + 1);
  if (second == std::string::npos) return chaos;
  std::string mode = s.substr(0, first);
  if (mode == "kill-first") {
    chaos.mode = ChaosConfig::Mode::kKillFirst;
  } else if (mode == "kill-always") {
    chaos.mode = ChaosConfig::Mode::kKillAlways;
  } else if (mode == "stall") {
    chaos.mode = ChaosConfig::Mode::kStall;
  } else if (mode == "garbage") {
    chaos.mode = ChaosConfig::Mode::kGarbage;
  } else {
    return chaos;
  }
  chaos.fraction = std::atof(s.substr(first + 1, second - first - 1).c_str());
  chaos.seed = static_cast<uint64_t>(
      std::atoll(s.substr(second + 1).c_str()));
  return chaos;
}

/// Whether chaos fires for this request: the hash-measure selection is
/// delegated to FaultInjector, the repo's one deterministic
/// request-to-fault mapper.
bool ChaosSelects(const ChaosConfig& chaos, const Assignment& assignment) {
  if (chaos.mode == ChaosConfig::Mode::kNone || chaos.fraction <= 0.0) {
    return false;
  }
  FaultInjector::Options options;
  options.fail_fraction = chaos.fraction;
  options.seed = chaos.seed;
  FaultInjector injector(options);
  return injector.Decide(EvalContext::RequestHash(assignment)) ==
         FaultInjector::Fault::kFail;
}

/// Acts on a selected request. Returns true when the worker should skip
/// the normal reply (it misbehaved instead).
bool ActChaos(const ChaosConfig& chaos, uint32_t attempt,
              const FdHandle& fd) {
  switch (chaos.mode) {
    case ChaosConfig::Mode::kKillFirst:
      if (attempt != 0) return false;
      [[fallthrough]];
    case ChaosConfig::Mode::kKillAlways:
      // Simulates a segfaulting trainer: die without a word. The
      // supervisor sees EOF mid-frame and reaps a SIGKILLed child.
      ::kill(::getpid(), SIGKILL);
      return true;  // not reached
    case ChaosConfig::Mode::kStall:
      for (;;) SleepMs(1000);  // wedge until the supervisor hard-kills us
    case ChaosConfig::Mode::kGarbage: {
      // A frame with a corrupt magic: the supervisor must treat it as a
      // protocol error, kill this worker, and retry elsewhere.
      (void)SendBytes(fd, std::string("\xde\xad\xbe\xef not a frame", 16));
      return true;
    }
    case ChaosConfig::Mode::kNone:
      return false;
  }
  return false;
}

}  // namespace

int RunWorkerMain(int argc, char** argv) {
  int fd_number = -1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fd" && i + 1 < argc) {
      fd_number = std::atoi(argv[++i]);
    }
  }
  if (fd_number < 0) return 2;
  FdHandle fd(fd_number);
  ChaosConfig chaos = ParseChaos(std::getenv("VOLCANOML_WORKER_CHAOS"));

  std::unique_ptr<SearchSpace> space;
  std::unique_ptr<Dataset> data;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<EvalContext> context;

  for (;;) {
    uint8_t type = 0;
    std::string payload;
    // Block forever between requests: a long-lived worker's lifetime is
    // owned by the supervisor (EOF or SIGKILL), not by a timer.
    Status received = RecvFrame(fd, &type, &payload, -1);
    if (!received.ok()) return 0;  // supervisor went away; exit quietly
    switch (static_cast<WorkerMessageType>(type)) {
      case WorkerMessageType::kInit: {
        Result<WorkerInitMessage> init =
            DecodeMessage<WorkerInitMessage>(payload);
        WorkerInitReply reply;
        if (!init.ok()) {
          reply.ok = false;
          reply.error = init.status().message();
        } else {
          space = std::make_unique<SearchSpace>(init.value().space);
          data = std::make_unique<Dataset>(std::move(init.value().data));
          EvaluatorOptions options = init.value().eval;
          // The worker is one serial evaluation lane: its own engine-level
          // knobs must not recurse into another pool.
          options.num_threads = 1;
          options.backend = EvalBackendKind::kInProcess;
          options.fault_injector = nullptr;
          if (init.value().has_injector) {
            injector = std::make_unique<FaultInjector>(init.value().injector);
            options.fault_injector = injector.get();
          }
          context = std::make_unique<EvalContext>(space.get(), data.get(),
                                                  options);
        }
        Status sent = SendFrame(
            fd, static_cast<uint8_t>(WorkerMessageType::kInitReply),
            EncodeMessage(reply));
        if (!sent.ok()) return 0;
        break;
      }
      case WorkerMessageType::kEval: {
        if (context == nullptr) return 3;  // protocol violation
        Result<WorkerEvalRequest> request =
            DecodeMessage<WorkerEvalRequest>(payload);
        if (!request.ok()) return 4;
        if (ChaosSelects(chaos, request.value().assignment) &&
            ActChaos(chaos, request.value().attempt, fd)) {
          break;  // garbage mode: reply already (mis)sent
        }
        EvalOutcome outcome = context->EvaluateOnce(
            request.value().assignment, request.value().fidelity);
        WorkerEvalReply reply;
        reply.request_id = request.value().request_id;
        reply.utility = outcome.utility;
        reply.elapsed_seconds = outcome.elapsed_seconds;
        reply.outcome = static_cast<uint8_t>(outcome.outcome);
        Status sent = SendFrame(
            fd, static_cast<uint8_t>(WorkerMessageType::kEvalReply),
            EncodeMessage(reply));
        if (!sent.ok()) return 0;
        break;
      }
      case WorkerMessageType::kShutdown:
        return 0;
      default:
        return 5;  // unknown frame: refuse to guess
    }
  }
}

}  // namespace volcanoml
