#ifndef VOLCANOML_WORKER_SUPERVISOR_H_
#define VOLCANOML_WORKER_SUPERVISOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "eval/dispatch.h"
#include "eval/eval_context.h"
#include "ipc/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace volcanoml {

/// Owns a pool of long-lived volcanoml_worker processes and maps every
/// way a worker can fail into the TrialOutcome taxonomy (see DESIGN.md
/// "Worker pool & supervision" for the full failure matrix):
///
///   crash / SIGKILL / nonzero exit / malformed or truncated reply
///       -> respawn + retry with exponential backoff, up to the retry
///          cap, then the trial commits as kWorkerDied (a hard failure,
///          so the PR-3 quarantine path engages);
///   supervisor hard timeout (trial_hard_timeout_seconds)
///       -> SIGKILL the worker, commit kTimedOut, no retry (the
///          computation is deterministic — it would stall again);
///   spawn/init failure, or `worker_respawn_limit` consecutive deaths
///       on one slot (restart storm)
///       -> the circuit opens: EvaluateOnWorker returns nullopt and the
///          caller computes in-process instead (graceful degradation).
///
/// Threading contract: slot `i` is only ever driven by one thread at a
/// time (ProcessPoolDispatch partitions requests statically per slot).
/// The telemetry counters and the circuit flag are the only cross-slot
/// state and are mutex-guarded.
class WorkerSupervisor {
 public:
  struct Options {
    size_t pool_size = 2;
    /// Absolute path of the worker binary (already resolved).
    std::string worker_binary;
    /// 0 disables the supervisor-enforced per-attempt hard kill.
    double hard_timeout_seconds = 0.0;
    size_t retry_cap = 3;
    int backoff_base_ms = 5;
    int backoff_max_ms = 1000;
    size_t respawn_limit = 8;
  };

  /// `init_payload` is the encoded WorkerInitMessage every freshly
  /// spawned worker is primed with; `task` selects the FailureUtility
  /// sentinel for kWorkerDied/kTimedOut outcomes.
  WorkerSupervisor(Options options, std::string init_payload, TaskType task);
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Spawns the full pool. On failure the circuit opens and a non-OK
  /// status is returned (the caller degrades to in-process compute).
  [[nodiscard]] Status StartAll() VOLCANOML_EXCLUDES(mu_);

  /// Evaluates `request` on worker slot `slot`, supervising the attempt
  /// as described above. Returns nullopt iff the circuit opened — the
  /// caller must then compute the request in-process (the outcome is
  /// bit-identical either way; that is the DispatchBackend contract).
  [[nodiscard]] std::optional<EvalOutcome> EvaluateOnWorker(
      size_t slot, const EvalRequest& request, uint64_t request_id)
      VOLCANOML_EXCLUDES(mu_);

  [[nodiscard]] bool circuit_open() const VOLCANOML_EXCLUDES(mu_);
  [[nodiscard]] DispatchTelemetry telemetry() const VOLCANOML_EXCLUDES(mu_);
  [[nodiscard]] size_t pool_size() const { return options_.pool_size; }

 private:
  struct Slot {
    int64_t pid = -1;  ///< -1 = not running.
    FdHandle fd;
    /// Deaths since the last successful reply; feeds the circuit breaker.
    size_t consecutive_deaths = 0;
  };

  /// fork/execs one worker on `slot` and primes it with the init
  /// payload. Counts a spawn failure and returns non-OK when the binary
  /// cannot be launched or the worker does not come up ready.
  [[nodiscard]] Status SpawnSlot(size_t slot) VOLCANOML_EXCLUDES(mu_);

  /// SIGKILLs (if alive) and reaps the slot's process, closing its pipe.
  void KillAndReapSlot(size_t slot);

  /// Opens the circuit (idempotent) and logs the degradation event.
  void OpenCircuit(const std::string& reason) VOLCANOML_EXCLUDES(mu_);

  [[nodiscard]] EvalOutcome FailedOutcome(TrialOutcome outcome,
                                          double elapsed) const;

  Options options_;
  std::string init_payload_;
  TaskType task_;
  std::vector<Slot> slots_;

  mutable Mutex mu_;
  bool circuit_open_ VOLCANOML_GUARDED_BY(mu_) = false;
  DispatchTelemetry telemetry_ VOLCANOML_GUARDED_BY(mu_);
};

}  // namespace volcanoml

#endif  // VOLCANOML_WORKER_SUPERVISOR_H_
