#include "worker/worker_protocol.h"

#include <utility>
#include <vector>

#include "data/matrix.h"

namespace volcanoml {

namespace {

void EncodeAssignment(WireWriter* w, const Assignment& assignment) {
  w->U32(static_cast<uint32_t>(assignment.size()));
  // Assignment is a std::map: iteration order is sorted and stable, so
  // identical assignments encode to identical bytes.
  for (const auto& [name, value] : assignment) {
    w->Str(name);
    w->F64(value);
  }
}

Assignment DecodeAssignment(WireReader* r) {
  Assignment assignment;
  uint32_t n = r->U32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    std::string name = r->Str();
    double value = r->F64();
    assignment[name] = value;
  }
  return assignment;
}

}  // namespace

void WorkerInitMessage::Encode(WireWriter* w) const {
  w->U8(static_cast<uint8_t>(space.task));
  w->U8(static_cast<uint8_t>(space.preset));
  w->Bool(space.include_smote);
  w->Bool(space.include_embedding);
  w->F64(eval.validation_fraction);
  w->U64(eval.cv_folds);
  w->U64(eval.seed);
  w->F64(eval.trial_timeout_seconds);
  w->U64(eval.fe_cache_capacity_mb);
  w->U8(static_cast<uint8_t>(eval.precision));
  w->Str(data.name());
  w->U64(data.NumSamples());
  w->U64(data.NumFeatures());
  for (size_t i = 0; i < data.NumSamples(); ++i) {
    const double* row = data.x().RowPtr(i);
    for (size_t j = 0; j < data.NumFeatures(); ++j) w->F64(row[j]);
  }
  for (double y : data.y()) w->F64(y);
  w->Bool(has_injector);
  if (has_injector) {
    w->F64(injector.fail_fraction);
    w->F64(injector.stall_fraction);
    w->F64(injector.nan_fraction);
    w->U64(injector.seed);
  }
}

WorkerInitMessage WorkerInitMessage::Decode(WireReader* r) {
  WorkerInitMessage m;
  uint8_t task = r->U8();
  uint8_t preset = r->U8();
  if (task > 1) r->Fail("worker init: task out of range");
  if (preset > 2) r->Fail("worker init: preset out of range");
  m.space.task = static_cast<TaskType>(task);
  m.space.preset = static_cast<SpacePreset>(preset);
  m.space.include_smote = r->Bool();
  m.space.include_embedding = r->Bool();
  m.eval.validation_fraction = r->F64();
  m.eval.cv_folds = static_cast<size_t>(r->U64());
  m.eval.seed = r->U64();
  m.eval.trial_timeout_seconds = r->F64();
  m.eval.fe_cache_capacity_mb = static_cast<size_t>(r->U64());
  uint8_t precision = r->U8();
  if (precision > 1) r->Fail("worker init: precision out of range");
  m.eval.precision = static_cast<NumericPrecision>(precision);
  std::string name = r->Str();
  uint64_t rows = r->U64();
  uint64_t cols = r->U64();
  // Dishonest counts must not trigger an unbounded allocation before the
  // latching reader notices the truncation: honest payloads fit the
  // 64 MiB frame cap, i.e. at most 8M doubles.
  constexpr uint64_t kMaxCells = (64ull << 20) / 8;
  if (r->ok() && (rows > kMaxCells || cols > kMaxCells ||
                  (cols != 0 && rows > kMaxCells / cols))) {
    r->Fail("worker init: dataset dimensions exceed the frame cap");
  }
  if (!r->ok()) return m;
  Matrix x(static_cast<size_t>(rows), static_cast<size_t>(cols));
  for (size_t i = 0; i < rows && r->ok(); ++i) {
    double* row = x.RowPtr(i);
    for (size_t j = 0; j < cols; ++j) row[j] = r->F64();
  }
  std::vector<double> y(static_cast<size_t>(rows));
  for (size_t i = 0; i < rows && r->ok(); ++i) y[i] = r->F64();
  if (r->ok()) {
    m.data = Dataset(std::move(name), std::move(x), std::move(y),
                     m.space.task);
  }
  m.has_injector = r->Bool();
  if (m.has_injector) {
    m.injector.fail_fraction = r->F64();
    m.injector.stall_fraction = r->F64();
    m.injector.nan_fraction = r->F64();
    m.injector.seed = r->U64();
  }
  return m;
}

void WorkerInitReply::Encode(WireWriter* w) const {
  w->Bool(ok);
  w->Str(error);
}

WorkerInitReply WorkerInitReply::Decode(WireReader* r) {
  WorkerInitReply m;
  m.ok = r->Bool();
  m.error = r->Str();
  return m;
}

void WorkerEvalRequest::Encode(WireWriter* w) const {
  w->U64(request_id);
  w->U32(attempt);
  EncodeAssignment(w, assignment);
  w->F64(fidelity);
}

WorkerEvalRequest WorkerEvalRequest::Decode(WireReader* r) {
  WorkerEvalRequest m;
  m.request_id = r->U64();
  m.attempt = r->U32();
  m.assignment = DecodeAssignment(r);
  m.fidelity = r->F64();
  return m;
}

void WorkerEvalReply::Encode(WireWriter* w) const {
  w->U64(request_id);
  w->F64(utility);
  w->F64(elapsed_seconds);
  w->U8(outcome);
}

WorkerEvalReply WorkerEvalReply::Decode(WireReader* r) {
  WorkerEvalReply m;
  m.request_id = r->U64();
  m.utility = r->F64();
  m.elapsed_seconds = r->F64();
  m.outcome = r->U8();
  if (m.outcome >= kNumTrialOutcomes) {
    r->Fail("worker eval reply: outcome out of range");
  }
  return m;
}

void WorkerShutdown::Encode(WireWriter* w) const { (void)w; }

WorkerShutdown WorkerShutdown::Decode(WireReader* r) {
  (void)r;
  return WorkerShutdown{};
}

}  // namespace volcanoml
