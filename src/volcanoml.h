#ifndef VOLCANOML_VOLCANOML_H_
#define VOLCANOML_VOLCANOML_H_

/// Umbrella header: the VolcanoML public API surface.
///
///   #include "volcanoml.h"
///
/// pulls in everything a downstream application typically needs — the
/// AutoML façade, baselines, data loading, metrics, ensembling, and the
/// building-block layer for custom execution plans.

#include "baselines/auto_sklearn.h"    // IWYU pragma: export
#include "baselines/hyperopt.h"        // IWYU pragma: export
#include "baselines/platforms.h"      // IWYU pragma: export
#include "baselines/tpot.h"           // IWYU pragma: export
#include "core/alternating_block.h"   // IWYU pragma: export
#include "core/conditioning_block.h"  // IWYU pragma: export
#include "core/ensemble.h"            // IWYU pragma: export
#include "core/joint_block.h"         // IWYU pragma: export
#include "core/plan_search.h"         // IWYU pragma: export
#include "core/volcano_ml.h"          // IWYU pragma: export
#include "data/csv.h"                 // IWYU pragma: export
#include "data/libsvm.h"              // IWYU pragma: export
#include "data/suite.h"               // IWYU pragma: export
#include "data/synthetic.h"           // IWYU pragma: export
#include "meta/bootstrap.h"           // IWYU pragma: export
#include "ml/metrics.h"               // IWYU pragma: export

#endif  // VOLCANOML_VOLCANOML_H_
