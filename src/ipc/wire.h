#ifndef VOLCANOML_IPC_WIRE_H_
#define VOLCANOML_IPC_WIRE_H_

#include <cstdint>
#include <string>

namespace volcanoml {

/// Byte-exact, dependency-free binary codec for the daemon protocol —
/// the binary sibling of core/snapshot.h's text serializer, built on the
/// same idioms: fixed little-endian integer widths, doubles as their
/// IEEE-754 bit pattern (NaN, infinities and -0.0 round-trip exactly),
/// strings as a u32 length prefix plus raw bytes (embedded NULs and
/// snapshot payloads survive untouched), and a strictly sequential
/// latching reader so malformed frames degrade into one clear error
/// instead of undefined parses. Two identical in-memory messages encode
/// to identical bytes on every platform.
class WireWriter {
 public:
  void U8(uint8_t value);
  void U32(uint32_t value);
  void U64(uint64_t value);
  /// IEEE-754 bit pattern as a little-endian u64 — byte-exact round trip.
  void F64(double value);
  void Bool(bool value);
  /// u32 byte-length prefix + raw bytes; arbitrary binary payloads are
  /// safe (snapshots, CSV bytes).
  void Str(const std::string& value);

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string TakeStr() { return std::move(out_); }

 private:
  std::string out_;
};

/// Strictly sequential reader over a WireWriter's output. Any failed read
/// — truncated input, an over-long string length — latches the first
/// error; every subsequent read returns a default value, and callers
/// check ok() once at the end (the SnapshotReader contract).
class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  [[nodiscard]] uint8_t U8();
  [[nodiscard]] uint32_t U32();
  [[nodiscard]] uint64_t U64();
  [[nodiscard]] double F64();
  [[nodiscard]] bool Bool();
  [[nodiscard]] std::string Str();

  /// Latches a caller-detected semantic error (e.g. an enum value out of
  /// range).
  void Fail(const std::string& message);

  /// True when every byte has been consumed — decoders call this to
  /// reject trailing garbage.
  [[nodiscard]] bool AtEnd() const { return pos_ == data_.size(); }
  [[nodiscard]] bool ok() const { return error_.empty(); }
  /// First error encountered, with its byte offset; empty when ok().
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  /// Takes `n` raw bytes, or latches an error and returns nullptr.
  [[nodiscard]] const char* Take(size_t n);

  const std::string& data_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_IPC_WIRE_H_
