#ifndef VOLCANOML_IPC_MESSAGES_H_
#define VOLCANOML_IPC_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/trajectory.h"
#include "cs/configuration.h"
#include "ipc/wire.h"
#include "util/status.h"

namespace volcanoml {

/// Frame types of the daemon protocol (the `type` byte of every frame;
/// see ipc/transport.h for the framing grammar). Requests are odd jobs a
/// client asks of the daemon; every request has exactly one reply type,
/// and any request may instead be answered with kErrorReply.
enum class MessageType : uint8_t {
  kErrorReply = 0,
  kCreateSessionRequest = 1,
  kCreateSessionReply = 2,
  kStepSessionRequest = 3,
  kStepSessionReply = 4,
  kQuerySessionRequest = 5,
  kQuerySessionReply = 6,
  kSnapshotSessionRequest = 7,
  kSnapshotSessionReply = 8,
  kEvictSessionRequest = 9,
  kEvictSessionReply = 10,
  kListSessionsRequest = 11,
  kListSessionsReply = 12,
  kShutdownRequest = 13,
  kShutdownReply = 14,
  kKbQueryRequest = 15,
  kKbQueryReply = 16,
  kKbExportRequest = 17,
  kKbExportReply = 18,
  kKbImportRequest = 19,
  kKbImportReply = 20,
};

/// Step credit that never runs out: the scheduler drives the session to
/// completion.
inline constexpr uint64_t kUnlimitedCredit = UINT64_MAX;

/// Everything needed to reconstruct a VolcanoMlOptions on the daemon
/// side. Plan and optimizer travel as their canonical short names
/// (PlanKindName / JointOptimizerKindName) so the wire format is
/// self-describing and stable across enum reorderings. Conversion +
/// validation lives in daemon/session.h (SessionConfigToOptions); both
/// the daemon and the in-process CLI path build their options through
/// it, which is what makes daemon-driven runs bit-identical twins of
/// local ones.
struct SessionConfig {
  /// TaskType as u8: 0 = classification, 1 = regression.
  uint8_t task = 0;
  /// SpacePreset as u8: 0 = small, 1 = medium, 2 = large.
  uint8_t preset = 1;
  std::string plan = "cond(alg)+alt(fe,hp)";
  std::string optimizer = "smac";
  double budget = 100.0;
  uint64_t seed = 1;
  uint64_t cv_folds = 1;
  bool include_smote = false;
  uint64_t batch_size = 1;
  /// EvalBackendKind as u8: 0 = in-process, 1 = process-pool (crash-
  /// isolated out-of-process workers; see src/worker/).
  uint8_t eval_backend = 0;
  /// Worker processes for the process-pool backend (>= 1).
  uint64_t worker_pool_size = 2;
  /// Supervisor hard-kill timeout per trial attempt, seconds (0 = off).
  double trial_hard_timeout = 0.0;
  /// Worker-death retries before a trial commits as worker_died.
  uint64_t worker_retry_cap = 3;
  /// NumericPrecision as u8: 0 = f64 (exact historical arithmetic),
  /// 1 = f32 lane for distance/GEMM-dominated components.
  uint8_t precision = 0;
  /// Portfolio warm starts drawn from the daemon's knowledge base
  /// (0 = cold run; the KB is not consulted at all).
  uint64_t kb_warm_starts = 0;
  /// Record this session's RunArtifact into the daemon's knowledge base
  /// when it completes.
  bool kb_record = false;

  void Encode(WireWriter* w) const;
  static SessionConfig Decode(WireReader* r);
};

/// CreateSession: registers a new search session for `tenant`, shipping
/// the training CSV inline, and grants it `step_credit` scheduler turns
/// (kUnlimitedCredit = run to completion).
struct CreateSessionRequest {
  std::string tenant = "default";
  std::string dataset_name = "train";
  std::string csv;
  SessionConfig config;
  uint64_t step_credit = kUnlimitedCredit;

  void Encode(WireWriter* w) const;
  static CreateSessionRequest Decode(WireReader* r);
};

struct CreateSessionReply {
  uint64_t session_id = 0;

  void Encode(WireWriter* w) const;
  static CreateSessionReply Decode(WireReader* r);
};

/// Lifecycle of a session as seen over IPC.
enum class SessionState : uint8_t {
  kResident = 0,  ///< Executor in memory; steppable immediately.
  kEvicted = 1,   ///< Snapshot on disk; restored on the next request.
  kFailed = 2,    ///< Restore/step failed; query returns the error.
};

/// Per-session evaluation-engine telemetry (eval layer surfaced over
/// IPC): evaluation counts plus FE-prefix-cache effectiveness.
struct SessionTelemetry {
  uint64_t num_evaluations = 0;
  uint64_t fe_cache_hits = 0;
  uint64_t fe_cache_misses = 0;
  uint64_t fe_cache_evictions = 0;
  uint64_t fe_cache_bytes = 0;
  /// Worker-pool supervision counters (all zero with the in-process
  /// backend; see src/worker/supervisor.h).
  uint64_t worker_deaths = 0;
  uint64_t worker_retries = 0;
  /// 1 when the pool degraded to in-process evaluation.
  uint64_t worker_degraded = 0;

  void Encode(WireWriter* w) const;
  static SessionTelemetry Decode(WireReader* r);
};

/// Summary of one session, cheap enough to answer from the registry's
/// cached metadata without restoring an evicted executor.
struct SessionStatus {
  uint64_t session_id = 0;
  std::string tenant;
  SessionState state = SessionState::kResident;
  bool done = false;
  uint64_t steps = 0;
  double consumed_budget = 0.0;
  double best_utility = 0.0;
  uint64_t pending_credit = 0;
  SessionTelemetry telemetry;

  void Encode(WireWriter* w) const;
  static SessionStatus Decode(WireReader* r);
};

/// StepSession: grants `steps` more scheduler turns (saturating with any
/// outstanding credit; kUnlimitedCredit = run to completion). Stepping
/// itself happens on the daemon's fair-share schedule — the reply
/// reports current progress, it does not wait for the steps to run.
struct StepSessionRequest {
  uint64_t session_id = 0;
  uint64_t steps = 1;

  void Encode(WireWriter* w) const;
  static StepSessionRequest Decode(WireReader* r);
};

struct StepSessionReply {
  SessionStatus status;

  void Encode(WireWriter* w) const;
  static StepSessionReply Decode(WireReader* r);
};

/// QuerySession: current status, optionally with the full trajectory and
/// incumbent assignment (these restore an evicted session first; the
/// plain status answer never does).
struct QuerySessionRequest {
  uint64_t session_id = 0;
  bool include_trajectory = false;
  bool include_assignment = false;

  void Encode(WireWriter* w) const;
  static QuerySessionRequest Decode(WireReader* r);
};

struct QuerySessionReply {
  SessionStatus status;
  /// Present iff requested (budget/utility pairs, bit-exact doubles).
  std::vector<TrajectoryPoint> trajectory;
  /// Present iff requested.
  Assignment best_assignment;

  void Encode(WireWriter* w) const;
  static QuerySessionReply Decode(WireReader* r);
};

/// SnapshotSession: the session's full executor snapshot (the byte-exact
/// core/snapshot.h text format), restoring it first if evicted.
struct SnapshotSessionRequest {
  uint64_t session_id = 0;

  void Encode(WireWriter* w) const;
  static SnapshotSessionRequest Decode(WireReader* r);
};

struct SnapshotSessionReply {
  std::string snapshot;

  void Encode(WireWriter* w) const;
  static SnapshotSessionReply Decode(WireReader* r);
};

/// EvictSession: checkpoint the session to the daemon's spool directory
/// and release its in-memory executor. A no-op (evicted=false) when the
/// session is already evicted.
struct EvictSessionRequest {
  uint64_t session_id = 0;

  void Encode(WireWriter* w) const;
  static EvictSessionRequest Decode(WireReader* r);
};

struct EvictSessionReply {
  bool evicted = false;

  void Encode(WireWriter* w) const;
  static EvictSessionReply Decode(WireReader* r);
};

struct ListSessionsRequest {
  void Encode(WireWriter* w) const;
  static ListSessionsRequest Decode(WireReader* r);
};

/// Per-tenant fair-share accounting, as tracked by the scheduler.
struct TenantAccount {
  std::string tenant;
  uint64_t sessions_created = 0;
  uint64_t steps_executed = 0;
  double budget_consumed = 0.0;

  void Encode(WireWriter* w) const;
  static TenantAccount Decode(WireReader* r);
};

struct ListSessionsReply {
  /// All sessions, ordered by ascending session id.
  std::vector<SessionStatus> sessions;
  /// All tenants, ordered by tenant name.
  std::vector<TenantAccount> tenants;

  void Encode(WireWriter* w) const;
  static ListSessionsReply Decode(WireReader* r);
};

struct ShutdownRequest {
  void Encode(WireWriter* w) const;
  static ShutdownRequest Decode(WireReader* r);
};

struct ShutdownReply {
  /// Sessions still registered at shutdown (unfinished work).
  uint64_t sessions_open = 0;

  void Encode(WireWriter* w) const;
  static ShutdownReply Decode(WireReader* r);
};

/// KbQuery: summaries of every artifact in the daemon's knowledge base
/// (cheap — never ships histories or trajectories).
struct KbQueryRequest {
  void Encode(WireWriter* w) const;
  static KbQueryRequest Decode(WireReader* r);
};

/// One artifact, without its bulky payloads.
struct KbArtifactSummary {
  std::string dataset_name;
  uint64_t dataset_hash = 0;
  /// TaskType as u8: 0 = classification, 1 = regression.
  uint8_t task = 0;
  double best_utility = 0.0;
  uint64_t num_observations = 0;

  void Encode(WireWriter* w) const;
  static KbArtifactSummary Decode(WireReader* r);
};

struct KbQueryReply {
  /// Artifacts in store order.
  std::vector<KbArtifactSummary> artifacts;

  void Encode(WireWriter* w) const;
  static KbQueryReply Decode(WireReader* r);
};

/// KbExport: the daemon's whole knowledge base in its durable serialized
/// form (MetaKnowledgeBase::Serialize), suitable for KbImport elsewhere
/// or for writing to a --kb file.
struct KbExportRequest {
  void Encode(WireWriter* w) const;
  static KbExportRequest Decode(WireReader* r);
};

struct KbExportReply {
  std::string serialized;

  void Encode(WireWriter* w) const;
  static KbExportReply Decode(WireReader* r);
};

/// KbImport: merges a serialized knowledge base into the daemon's
/// (dedup by dataset content hash + task) and persists the result.
struct KbImportRequest {
  std::string serialized;

  void Encode(WireWriter* w) const;
  static KbImportRequest Decode(WireReader* r);
};

struct KbImportReply {
  /// Artifacts actually added (duplicates are skipped).
  uint64_t added = 0;
  /// Store size after the merge.
  uint64_t total = 0;

  void Encode(WireWriter* w) const;
  static KbImportReply Decode(WireReader* r);
};

/// Any request may be answered with this instead of its reply type.
struct ErrorReply {
  /// StatusCode as u32.
  uint32_t code = 0;
  std::string message;

  void Encode(WireWriter* w) const;
  static ErrorReply Decode(WireReader* r);

  [[nodiscard]] Status ToStatus() const;
  static ErrorReply FromStatus(const Status& status);
};

/// Encodes `message` (any struct above) into a frame payload.
template <typename Message>
[[nodiscard]] std::string EncodeMessage(const Message& message) {
  WireWriter w;
  message.Encode(&w);
  return w.TakeStr();
}

/// Decodes a frame payload, rejecting malformed bytes and trailing
/// garbage with InvalidArgument.
template <typename Message>
[[nodiscard]] Result<Message> DecodeMessage(const std::string& payload) {
  WireReader r(payload);
  Message message = Message::Decode(&r);
  if (r.ok() && !r.AtEnd()) {
    r.Fail("trailing bytes after message");
  }
  if (!r.ok()) {
    return Status::InvalidArgument("malformed message: " + r.error());
  }
  return message;
}

}  // namespace volcanoml

#endif  // VOLCANOML_IPC_MESSAGES_H_
