#ifndef VOLCANOML_IPC_TRANSPORT_H_
#define VOLCANOML_IPC_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace volcanoml {

/// Every request/response frame on the wire starts with this header,
/// written with the ipc/wire.h codec:
///
///   frame   := magic:u32 type:u8 length:u32 payload:length bytes
///   magic   := 0x564d4950 ("VMIP" little-endian)
///   type    := ipc::MessageType (see ipc/messages.h)
///   payload := the message's WireWriter encoding
///
/// Frames above kMaxFramePayload are rejected on both sides so a corrupt
/// length prefix cannot trigger an unbounded allocation.
inline constexpr uint32_t kFrameMagic = 0x564d4950;
inline constexpr uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Move-only RAII owner of a file descriptor. This file (with
/// transport.cc) is the repo's only home for raw socket/read/write
/// syscalls — determinism rule R14 confines them here so every byte of
/// I/O flows through one audited framing layer.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { Reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  /// Closes the owned descriptor (no-op when invalid).
  void Reset();

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Listening Unix-domain socket bound to a filesystem path. A stale path
/// (no live listener accepting on it) is unlinked before bind; a path
/// with a live daemon behind it makes Bind fail instead of stealing its
/// clients. The destructor unlinks the path (clean shutdown leaves no
/// socket file behind).
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();

  UnixListener(UnixListener&& other) noexcept
      : fd_(std::move(other.fd_)), path_(std::move(other.path_)) {
    other.path_.clear();
  }
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Binds and listens on `path`. Fails when the path exceeds the
  /// sockaddr_un limit, when a live daemon already listens on it, or
  /// when any syscall fails. A stale socket file is reclaimed.
  [[nodiscard]] static Result<UnixListener> Bind(const std::string& path);

  /// Waits up to `timeout_ms` for a pending connection (0 polls without
  /// blocking). Returns true when Accept() will not block.
  [[nodiscard]] Result<bool> WaitReadable(int timeout_ms) const;

  /// Accepts one pending connection.
  [[nodiscard]] Result<FdHandle> Accept() const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }

 private:
  FdHandle fd_;
  std::string path_;
};

/// Connects to the daemon's Unix socket at `path`.
[[nodiscard]] Result<FdHandle> ConnectUnix(const std::string& path);

/// A connected pair of stream sockets (socketpair): `parent` stays in
/// the supervisor, `child` is inherited across fork/exec by a worker
/// process. Both ends speak the same frame protocol as every other
/// transport in this file.
struct SocketPair {
  FdHandle parent;
  FdHandle child;
};

/// Creates a connected AF_UNIX SOCK_STREAM pair. The child end is NOT
/// close-on-exec (a worker must inherit it); the parent end is.
[[nodiscard]] Result<SocketPair> CreateSocketPair();

/// Writes one complete frame (header + payload), looping over partial
/// writes. `type` is the raw MessageType byte.
[[nodiscard]] Status SendFrame(const FdHandle& fd, uint8_t type,
                               const std::string& payload);

/// Reads one complete frame. `timeout_ms` bounds the WHOLE frame (header
/// plus payload) with one absolute deadline, so neither a stalled peer
/// nor a slow-loris one dribbling a byte per interval can wedge the
/// daemon past it. Negative means wait forever. On success fills `*type`
/// and `*payload`.
[[nodiscard]] Status RecvFrame(const FdHandle& fd, uint8_t* type,
                               std::string* payload, int timeout_ms);

/// Writes raw unframed bytes, looping over partial sends. Exists so test
/// harnesses can drive partial or dribbled frames while keeping raw
/// send() confined to this layer (determinism rule R14).
[[nodiscard]] Status SendBytes(const FdHandle& fd, const std::string& data);

/// Sleeps for `ms` milliseconds (poll-based; keeps the raw syscall inside
/// the transport layer for client-side retry loops).
void SleepMs(int ms);

}  // namespace volcanoml

#endif  // VOLCANOML_IPC_TRANSPORT_H_
