#include "ipc/transport.h"

#include <cerrno>
#include <cmath>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ipc/wire.h"
#include "util/deadline.h"

namespace volcanoml {

namespace {

constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;  // magic + type + length

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// poll() one fd for readability; EINTR retries, negative timeout blocks.
Result<bool> PollReadable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    return rc > 0;
  }
}

/// Reads exactly `n` bytes before `deadline` expires. The deadline is
/// absolute and shared across chunks, so a slow-loris peer dribbling one
/// byte per poll interval cannot extend its wait indefinitely.
Status ReadExact(int fd, char* buffer, size_t n, const Deadline& deadline) {
  size_t got = 0;
  while (got < n) {
    int timeout_ms = -1;
    if (!deadline.unlimited()) {
      double remaining = deadline.RemainingSeconds();
      if (remaining <= 0.0) {
        return Status::DeadlineExceeded(
            "peer did not deliver the frame within the timeout");
      }
      timeout_ms = static_cast<int>(std::ceil(remaining * 1000.0));
    }
    Result<bool> readable = PollReadable(fd, timeout_ms);
    VOLCANOML_RETURN_IF_ERROR(readable.status());
    if (!readable.value()) {
      return Status::DeadlineExceeded("peer sent no data within timeout");
    }
    ssize_t rc = ::recv(fd, buffer + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (rc == 0) {
      return Status::IoError("peer closed the connection mid-frame");
    }
    got += static_cast<size_t>(rc);
  }
  return Status::Ok();
}

/// Writes all of `data`, looping over partial sends. MSG_NOSIGNAL turns a
/// vanished peer into EPIPE instead of a process-killing SIGPIPE.
Status WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t rc =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::Ok();
}

/// True when something is accepting connections on `path` — i.e. the
/// socket file belongs to a live daemon, not a stale leftover. ENOENT and
/// ECONNREFUSED (nothing bound / dead socket file) both mean "not live".
Result<bool> HasLiveListener(const std::string& path,
                             const struct sockaddr_un& addr) {
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Errno("socket");
  }
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == ENOENT || errno == ECONNREFUSED) return false;
    return Errno("connect(" + path + ")");
  }
}

}  // namespace

void FdHandle::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::~UnixListener() {
  if (!path_.empty()) {
    ::unlink(path_.c_str());
  }
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
      ::unlink(path_.c_str());
    }
    fd_ = std::move(other.fd_);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

Result<UnixListener> UnixListener::Bind(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path exceeds the sockaddr_un limit (" +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " + path);
  }
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Errno("socket");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  // A stale socket file from a killed daemon would make bind fail, so the
  // path is unlinked first — but only after probing that no live daemon is
  // accepting on it, or starting a second daemon on the same path would
  // silently steal the first one's clients.
  Result<bool> live = HasLiveListener(path, addr);
  VOLCANOML_RETURN_IF_ERROR(live.status());
  if (live.value()) {
    return Status::IoError("socket path " + path +
                           " is in use by a live daemon");
  }
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind(" + path + ")");
  }
  if (::listen(fd.get(), 64) != 0) {
    return Errno("listen(" + path + ")");
  }
  UnixListener listener;
  listener.fd_ = std::move(fd);
  listener.path_ = path;
  return listener;
}

Result<bool> UnixListener::WaitReadable(int timeout_ms) const {
  return PollReadable(fd_.get(), timeout_ms);
}

Result<FdHandle> UnixListener::Accept() const {
  for (;;) {
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    return FdHandle(fd);
  }
}

Result<FdHandle> ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path exceeds the sockaddr_un limit: " + path);
  }
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Errno("socket");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    return Errno("connect(" + path + ")");
  }
}

Result<SocketPair> CreateSocketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Errno("socketpair");
  }
  SocketPair pair;
  pair.parent = FdHandle(fds[0]);
  pair.child = FdHandle(fds[1]);
  // The parent end must not leak into exec'd workers (each worker should
  // hold only its own child end); FD_CLOEXEC closes it across exec.
  int flags = ::fcntl(pair.parent.get(), F_GETFD);
  if (flags < 0 ||
      ::fcntl(pair.parent.get(), F_SETFD, flags | FD_CLOEXEC) != 0) {
    return Errno("fcntl(FD_CLOEXEC)");
  }
  return pair;
}

Status SendFrame(const FdHandle& fd, uint8_t type,
                 const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte limit");
  }
  WireWriter header;
  header.U32(kFrameMagic);
  header.U8(type);
  header.U32(static_cast<uint32_t>(payload.size()));
  VOLCANOML_RETURN_IF_ERROR(WriteAll(fd.get(), header.str()));
  return WriteAll(fd.get(), payload);
}

Status RecvFrame(const FdHandle& fd, uint8_t* type, std::string* payload,
                 int timeout_ms) {
  // One absolute deadline covers the whole frame — header and payload —
  // so the daemon's single-threaded serve loop is blocked for at most
  // `timeout_ms` per request no matter how slowly the peer trickles.
  Deadline deadline = timeout_ms < 0 ? Deadline::Never()
                                     : Deadline::After(timeout_ms / 1000.0);
  std::string header(kFrameHeaderBytes, '\0');
  VOLCANOML_RETURN_IF_ERROR(
      ReadExact(fd.get(), header.data(), header.size(), deadline));
  WireReader reader(header);
  uint32_t magic = reader.U32();
  uint8_t frame_type = reader.U8();
  uint32_t length = reader.U32();
  if (!reader.ok() || magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic; not a volcanoml peer");
  }
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds the " +
        std::to_string(kMaxFramePayload) + "-byte limit");
  }
  payload->assign(length, '\0');
  if (length > 0) {
    VOLCANOML_RETURN_IF_ERROR(
        ReadExact(fd.get(), payload->data(), length, deadline));
  }
  *type = frame_type;
  return Status::Ok();
}

Status SendBytes(const FdHandle& fd, const std::string& data) {
  return WriteAll(fd.get(), data);
}

void SleepMs(int ms) {
  // poll with no fds is a portable, signal-tolerant sleep.
  struct pollfd none;
  std::memset(&none, 0, sizeof(none));
  (void)::poll(&none, 0, ms);
}

}  // namespace volcanoml
