#include "ipc/messages.h"

namespace volcanoml {

namespace {

void EncodeAssignment(WireWriter* w, const Assignment& assignment) {
  w->U32(static_cast<uint32_t>(assignment.size()));
  // Assignment is a std::map: iteration order is sorted and stable, so
  // identical assignments encode to identical bytes.
  for (const auto& [name, value] : assignment) {
    w->Str(name);
    w->F64(value);
  }
}

Assignment DecodeAssignment(WireReader* r) {
  Assignment assignment;
  uint32_t n = r->U32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    std::string name = r->Str();
    double value = r->F64();
    assignment[name] = value;
  }
  return assignment;
}

void EncodeTrajectory(WireWriter* w,
                      const std::vector<TrajectoryPoint>& trajectory) {
  w->U32(static_cast<uint32_t>(trajectory.size()));
  for (const TrajectoryPoint& point : trajectory) {
    w->F64(point.budget);
    w->F64(point.utility);
  }
}

std::vector<TrajectoryPoint> DecodeTrajectory(WireReader* r) {
  std::vector<TrajectoryPoint> trajectory;
  uint32_t n = r->U32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    double budget = r->F64();
    double utility = r->F64();
    trajectory.push_back({budget, utility});
  }
  return trajectory;
}

}  // namespace

void SessionConfig::Encode(WireWriter* w) const {
  w->U8(task);
  w->U8(preset);
  w->Str(plan);
  w->Str(optimizer);
  w->F64(budget);
  w->U64(seed);
  w->U64(cv_folds);
  w->Bool(include_smote);
  w->U64(batch_size);
  w->U8(eval_backend);
  w->U64(worker_pool_size);
  w->F64(trial_hard_timeout);
  w->U64(worker_retry_cap);
  w->U8(precision);
  w->U64(kb_warm_starts);
  w->Bool(kb_record);
}

SessionConfig SessionConfig::Decode(WireReader* r) {
  SessionConfig config;
  config.task = r->U8();
  config.preset = r->U8();
  config.plan = r->Str();
  config.optimizer = r->Str();
  config.budget = r->F64();
  config.seed = r->U64();
  config.cv_folds = r->U64();
  config.include_smote = r->Bool();
  config.batch_size = r->U64();
  config.eval_backend = r->U8();
  config.worker_pool_size = r->U64();
  config.trial_hard_timeout = r->F64();
  config.worker_retry_cap = r->U64();
  config.precision = r->U8();
  config.kb_warm_starts = r->U64();
  config.kb_record = r->Bool();
  return config;
}

void CreateSessionRequest::Encode(WireWriter* w) const {
  w->Str(tenant);
  w->Str(dataset_name);
  w->Str(csv);
  config.Encode(w);
  w->U64(step_credit);
}

CreateSessionRequest CreateSessionRequest::Decode(WireReader* r) {
  CreateSessionRequest request;
  request.tenant = r->Str();
  request.dataset_name = r->Str();
  request.csv = r->Str();
  request.config = SessionConfig::Decode(r);
  request.step_credit = r->U64();
  return request;
}

void CreateSessionReply::Encode(WireWriter* w) const { w->U64(session_id); }

CreateSessionReply CreateSessionReply::Decode(WireReader* r) {
  CreateSessionReply reply;
  reply.session_id = r->U64();
  return reply;
}

void SessionTelemetry::Encode(WireWriter* w) const {
  w->U64(num_evaluations);
  w->U64(fe_cache_hits);
  w->U64(fe_cache_misses);
  w->U64(fe_cache_evictions);
  w->U64(fe_cache_bytes);
  w->U64(worker_deaths);
  w->U64(worker_retries);
  w->U64(worker_degraded);
}

SessionTelemetry SessionTelemetry::Decode(WireReader* r) {
  SessionTelemetry telemetry;
  telemetry.num_evaluations = r->U64();
  telemetry.fe_cache_hits = r->U64();
  telemetry.fe_cache_misses = r->U64();
  telemetry.fe_cache_evictions = r->U64();
  telemetry.fe_cache_bytes = r->U64();
  telemetry.worker_deaths = r->U64();
  telemetry.worker_retries = r->U64();
  telemetry.worker_degraded = r->U64();
  return telemetry;
}

void SessionStatus::Encode(WireWriter* w) const {
  w->U64(session_id);
  w->Str(tenant);
  w->U8(static_cast<uint8_t>(state));
  w->Bool(done);
  w->U64(steps);
  w->F64(consumed_budget);
  w->F64(best_utility);
  w->U64(pending_credit);
  telemetry.Encode(w);
}

SessionStatus SessionStatus::Decode(WireReader* r) {
  SessionStatus status;
  status.session_id = r->U64();
  status.tenant = r->Str();
  uint8_t state = r->U8();
  if (state > static_cast<uint8_t>(SessionState::kFailed)) {
    r->Fail("unknown session state " + std::to_string(state));
  }
  status.state = static_cast<SessionState>(state);
  status.done = r->Bool();
  status.steps = r->U64();
  status.consumed_budget = r->F64();
  status.best_utility = r->F64();
  status.pending_credit = r->U64();
  status.telemetry = SessionTelemetry::Decode(r);
  return status;
}

void StepSessionRequest::Encode(WireWriter* w) const {
  w->U64(session_id);
  w->U64(steps);
}

StepSessionRequest StepSessionRequest::Decode(WireReader* r) {
  StepSessionRequest request;
  request.session_id = r->U64();
  request.steps = r->U64();
  return request;
}

void StepSessionReply::Encode(WireWriter* w) const { status.Encode(w); }

StepSessionReply StepSessionReply::Decode(WireReader* r) {
  StepSessionReply reply;
  reply.status = SessionStatus::Decode(r);
  return reply;
}

void QuerySessionRequest::Encode(WireWriter* w) const {
  w->U64(session_id);
  w->Bool(include_trajectory);
  w->Bool(include_assignment);
}

QuerySessionRequest QuerySessionRequest::Decode(WireReader* r) {
  QuerySessionRequest request;
  request.session_id = r->U64();
  request.include_trajectory = r->Bool();
  request.include_assignment = r->Bool();
  return request;
}

void QuerySessionReply::Encode(WireWriter* w) const {
  status.Encode(w);
  EncodeTrajectory(w, trajectory);
  EncodeAssignment(w, best_assignment);
}

QuerySessionReply QuerySessionReply::Decode(WireReader* r) {
  QuerySessionReply reply;
  reply.status = SessionStatus::Decode(r);
  reply.trajectory = DecodeTrajectory(r);
  reply.best_assignment = DecodeAssignment(r);
  return reply;
}

void SnapshotSessionRequest::Encode(WireWriter* w) const {
  w->U64(session_id);
}

SnapshotSessionRequest SnapshotSessionRequest::Decode(WireReader* r) {
  SnapshotSessionRequest request;
  request.session_id = r->U64();
  return request;
}

void SnapshotSessionReply::Encode(WireWriter* w) const { w->Str(snapshot); }

SnapshotSessionReply SnapshotSessionReply::Decode(WireReader* r) {
  SnapshotSessionReply reply;
  reply.snapshot = r->Str();
  return reply;
}

void EvictSessionRequest::Encode(WireWriter* w) const { w->U64(session_id); }

EvictSessionRequest EvictSessionRequest::Decode(WireReader* r) {
  EvictSessionRequest request;
  request.session_id = r->U64();
  return request;
}

void EvictSessionReply::Encode(WireWriter* w) const { w->Bool(evicted); }

EvictSessionReply EvictSessionReply::Decode(WireReader* r) {
  EvictSessionReply reply;
  reply.evicted = r->Bool();
  return reply;
}

void ListSessionsRequest::Encode(WireWriter*) const {}

ListSessionsRequest ListSessionsRequest::Decode(WireReader*) {
  return ListSessionsRequest{};
}

void TenantAccount::Encode(WireWriter* w) const {
  w->Str(tenant);
  w->U64(sessions_created);
  w->U64(steps_executed);
  w->F64(budget_consumed);
}

TenantAccount TenantAccount::Decode(WireReader* r) {
  TenantAccount account;
  account.tenant = r->Str();
  account.sessions_created = r->U64();
  account.steps_executed = r->U64();
  account.budget_consumed = r->F64();
  return account;
}

void ListSessionsReply::Encode(WireWriter* w) const {
  w->U32(static_cast<uint32_t>(sessions.size()));
  for (const SessionStatus& status : sessions) {
    status.Encode(w);
  }
  w->U32(static_cast<uint32_t>(tenants.size()));
  for (const TenantAccount& account : tenants) {
    account.Encode(w);
  }
}

ListSessionsReply ListSessionsReply::Decode(WireReader* r) {
  ListSessionsReply reply;
  uint32_t num_sessions = r->U32();
  for (uint32_t i = 0; i < num_sessions && r->ok(); ++i) {
    reply.sessions.push_back(SessionStatus::Decode(r));
  }
  uint32_t num_tenants = r->U32();
  for (uint32_t i = 0; i < num_tenants && r->ok(); ++i) {
    reply.tenants.push_back(TenantAccount::Decode(r));
  }
  return reply;
}

void ShutdownRequest::Encode(WireWriter*) const {}

ShutdownRequest ShutdownRequest::Decode(WireReader*) {
  return ShutdownRequest{};
}

void ShutdownReply::Encode(WireWriter* w) const { w->U64(sessions_open); }

ShutdownReply ShutdownReply::Decode(WireReader* r) {
  ShutdownReply reply;
  reply.sessions_open = r->U64();
  return reply;
}

void KbQueryRequest::Encode(WireWriter*) const {}

KbQueryRequest KbQueryRequest::Decode(WireReader*) {
  return KbQueryRequest{};
}

void KbArtifactSummary::Encode(WireWriter* w) const {
  w->Str(dataset_name);
  w->U64(dataset_hash);
  w->U8(task);
  w->F64(best_utility);
  w->U64(num_observations);
}

KbArtifactSummary KbArtifactSummary::Decode(WireReader* r) {
  KbArtifactSummary summary;
  summary.dataset_name = r->Str();
  summary.dataset_hash = r->U64();
  summary.task = r->U8();
  if (summary.task > 1) {
    r->Fail("unknown task " + std::to_string(summary.task));
  }
  summary.best_utility = r->F64();
  summary.num_observations = r->U64();
  return summary;
}

void KbQueryReply::Encode(WireWriter* w) const {
  w->U32(static_cast<uint32_t>(artifacts.size()));
  for (const KbArtifactSummary& summary : artifacts) {
    summary.Encode(w);
  }
}

KbQueryReply KbQueryReply::Decode(WireReader* r) {
  KbQueryReply reply;
  uint32_t n = r->U32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    reply.artifacts.push_back(KbArtifactSummary::Decode(r));
  }
  return reply;
}

void KbExportRequest::Encode(WireWriter*) const {}

KbExportRequest KbExportRequest::Decode(WireReader*) {
  return KbExportRequest{};
}

void KbExportReply::Encode(WireWriter* w) const { w->Str(serialized); }

KbExportReply KbExportReply::Decode(WireReader* r) {
  KbExportReply reply;
  reply.serialized = r->Str();
  return reply;
}

void KbImportRequest::Encode(WireWriter* w) const { w->Str(serialized); }

KbImportRequest KbImportRequest::Decode(WireReader* r) {
  KbImportRequest request;
  request.serialized = r->Str();
  return request;
}

void KbImportReply::Encode(WireWriter* w) const {
  w->U64(added);
  w->U64(total);
}

KbImportReply KbImportReply::Decode(WireReader* r) {
  KbImportReply reply;
  reply.added = r->U64();
  reply.total = r->U64();
  return reply;
}

void ErrorReply::Encode(WireWriter* w) const {
  w->U32(code);
  w->Str(message);
}

ErrorReply ErrorReply::Decode(WireReader* r) {
  ErrorReply reply;
  reply.code = r->U32();
  reply.message = r->Str();
  return reply;
}

Status ErrorReply::ToStatus() const {
  // Unknown codes (a newer daemon) degrade to kInternal rather than
  // being misread as success.
  StatusCode status_code = StatusCode::kInternal;
  if (code <= static_cast<uint32_t>(StatusCode::kDeadlineExceeded) &&
      code != static_cast<uint32_t>(StatusCode::kOk)) {
    status_code = static_cast<StatusCode>(code);
  }
  return Status(status_code, message);
}

ErrorReply ErrorReply::FromStatus(const Status& status) {
  ErrorReply reply;
  reply.code = static_cast<uint32_t>(status.code());
  reply.message = status.message();
  return reply;
}

}  // namespace volcanoml
