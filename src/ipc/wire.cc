#include "ipc/wire.h"

#include <cstring>

namespace volcanoml {

namespace {

/// Little-endian regardless of host byte order, so frames written by one
/// build are readable by any other.
void AppendLe(std::string* out, uint64_t value, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLe(const char* p, size_t bytes) {
  uint64_t value = 0;
  for (size_t i = 0; i < bytes; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

void WireWriter::U8(uint8_t value) { AppendLe(&out_, value, 1); }
void WireWriter::U32(uint32_t value) { AppendLe(&out_, value, 4); }
void WireWriter::U64(uint64_t value) { AppendLe(&out_, value, 8); }

void WireWriter::F64(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  U64(bits);
}

void WireWriter::Bool(bool value) { U8(value ? 1 : 0); }

void WireWriter::Str(const std::string& value) {
  U32(static_cast<uint32_t>(value.size()));
  out_.append(value);
}

const char* WireReader::Take(size_t n) {
  if (!ok()) return nullptr;
  if (data_.size() - pos_ < n) {
    Fail("truncated: need " + std::to_string(n) + " more byte(s)");
    return nullptr;
  }
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

uint8_t WireReader::U8() {
  const char* p = Take(1);
  return p == nullptr ? 0 : static_cast<uint8_t>(ReadLe(p, 1));
}

uint32_t WireReader::U32() {
  const char* p = Take(4);
  return p == nullptr ? 0 : static_cast<uint32_t>(ReadLe(p, 4));
}

uint64_t WireReader::U64() {
  const char* p = Take(8);
  return p == nullptr ? 0 : ReadLe(p, 8);
}

double WireReader::F64() {
  uint64_t bits = U64();
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

bool WireReader::Bool() { return U8() != 0; }

std::string WireReader::Str() {
  uint32_t len = U32();
  if (!ok()) return std::string();
  if (data_.size() - pos_ < len) {
    Fail("string length " + std::to_string(len) +
         " exceeds remaining payload");
    return std::string();
  }
  const char* p = Take(len);
  return p == nullptr ? std::string() : std::string(p, len);
}

void WireReader::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = "at byte " + std::to_string(pos_) + ": " + message;
  }
}

}  // namespace volcanoml
