#ifndef VOLCANOML_DATA_PRECISION_H_
#define VOLCANOML_DATA_PRECISION_H_

#include <cstdint>

namespace volcanoml {

/// Numeric lane for the compute-heavy model/operator internals.
///
/// The pipeline's matrices stay double end to end; kFloat32 switches the
/// *internal* storage and arithmetic of the operators that opt in (kNN
/// distances, MLP weights/activations, Nystroem distance accumulation,
/// random-projection GEMM) to float. It is a per-session choice wired
/// through EvaluatorOptions::precision — tenants whose workloads are
/// split-noise-insensitive trade a little accuracy for roughly half the
/// memory traffic in those inner loops.
///
/// Determinism contract: each (SIMD level, precision) pair is
/// sequential-deterministic — the same inputs always produce the same
/// bits. kFloat64 is the default and the bit-reproducibility oracle.
enum class NumericPrecision : uint8_t {
  kFloat64 = 0,
  kFloat32 = 1,
};

/// Short stable name for logging/CLI, e.g. "f32".
[[nodiscard]] const char* NumericPrecisionName(NumericPrecision precision);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_PRECISION_H_
