// AVX2+FMA kernel backend. This is the ONLY translation unit allowed to
// include <immintrin.h> or probe CPUID (determinism rule R16): every
// intrinsic stays behind the KernelTable seam so the scalar oracle always
// covers the full kernel surface.
//
// Compiled without global -mavx2 — each kernel carries a
// target("avx2,fma") attribute and vector types never cross function
// boundaries, so the file builds and links on any x86-64 baseline and
// merely returns a null table when the running CPU lacks the extensions.
//
// Determinism: every kernel here is sequential-deterministic. Lane
// counts, accumulator splits, and combine orders are fixed; results are
// bit-stable run to run, though not bit-identical to the scalar oracle
// (wider lanes + FMA contraction round differently).

#include "data/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "data/aligned.h"

namespace volcanoml {

namespace {

/// The reduction kernels pick aligned vector loads when both streams sit
/// on 32-byte boundaries — cache-line-split loads roughly halve L2-bound
/// dot throughput on our target cores. The branch selects only the load
/// instruction; lane order and arithmetic are identical on both sides,
/// so results are bit-for-bit the same regardless of alignment.
inline bool BothAligned32(const void* a, const void* b) {
  uintptr_t pa = reinterpret_cast<uintptr_t>(a);  // NOLINT-determinism(alignment probe; selects between bit-identical load paths)
  uintptr_t pb = reinterpret_cast<uintptr_t>(b);  // NOLINT-determinism(alignment probe; selects between bit-identical load paths)
  return ((pa | pb) & 31) == 0;
}

// ---------------------------------------------------------------------
// double lane
// ---------------------------------------------------------------------

__attribute__((target("avx2,fma"))) double DotF64Avx2(const double* a,
                                                      const double* b,
                                                      size_t n) {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  __m256d s2 = _mm256_setzero_pd();
  __m256d s3 = _mm256_setzero_pd();
  size_t i = 0;
  // Each iteration consumes two cache lines per operand; prefetching
  // ~1 KiB ahead hides L2 latency on streams too large for L1.
#define VOLCANOML_DOT_F64_BLOCK(LOAD)                                        \
  for (; i + 16 <= n; i += 16) {                                             \
    _mm_prefetch(reinterpret_cast<const char*>(a + i + 128), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(a + i + 136), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(b + i + 128), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(b + i + 136), _MM_HINT_T0);   \
    s0 = _mm256_fmadd_pd(LOAD(a + i), LOAD(b + i), s0);                      \
    s1 = _mm256_fmadd_pd(LOAD(a + i + 4), LOAD(b + i + 4), s1);              \
    s2 = _mm256_fmadd_pd(LOAD(a + i + 8), LOAD(b + i + 8), s2);              \
    s3 = _mm256_fmadd_pd(LOAD(a + i + 12), LOAD(b + i + 12), s3);            \
  }
  if (BothAligned32(a, b)) {
    VOLCANOML_DOT_F64_BLOCK(_mm256_load_pd)
  } else {
    VOLCANOML_DOT_F64_BLOCK(_mm256_loadu_pd)
  }
#undef VOLCANOML_DOT_F64_BLOCK
  for (; i + 4 <= n; i += 4) {
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), s0);
  }
  const __m256d s =
      _mm256_add_pd(_mm256_add_pd(s0, s1), _mm256_add_pd(s2, s3));
  alignas(32) double lane[4];
  _mm256_store_pd(lane, s);
  double acc = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Axpy is elementwise, so it can stay bit-identical to the scalar
/// oracle: mul + add round exactly like the scalar `y[i] += alpha *
/// x[i]` (deliberately NOT fmadd, whose single rounding would diverge).
/// The kernel is memory-bound, so the skipped contraction costs nothing.
__attribute__((target("avx2,fma"))) void AxpyF64Avx2(double alpha,
                                                     const double* x,
                                                     double* y, size_t n) {
  if (alpha == 0.0) return;  // Identity contract — see kernels.h.
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
    _mm256_storeu_pd(
        y + i + 4,
        _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                      _mm256_mul_pd(va, _mm256_loadu_pd(x + i + 4))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  // Explicit scalar-SSE tail: keeps mul/add rounding even where the
  // compiler would be free to contract `y[i] += alpha * x[i]` into FMA.
  for (; i < n; ++i) {
    _mm_store_sd(y + i,
                 _mm_add_sd(_mm_load_sd(y + i),
                            _mm_mul_sd(_mm_set_sd(alpha), _mm_load_sd(x + i))));
  }
}

__attribute__((target("avx2,fma"))) void ScaleF64Avx2(double alpha,
                                                      double* x, size_t n) {
  if (alpha == 1.0) return;  // Identity contract — see kernels.h.
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2,fma"))) double SquaredDistanceF64Avx2(
    const double* a, const double* b, size_t n) {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  __m256d s2 = _mm256_setzero_pd();
  __m256d s3 = _mm256_setzero_pd();
  size_t i = 0;
#define VOLCANOML_SQDIST_F64_BLOCK(LOAD)                                     \
  for (; i + 16 <= n; i += 16) {                                             \
    _mm_prefetch(reinterpret_cast<const char*>(a + i + 128), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(a + i + 136), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(b + i + 128), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(b + i + 136), _MM_HINT_T0);   \
    const __m256d d0 = _mm256_sub_pd(LOAD(a + i), LOAD(b + i));              \
    const __m256d d1 = _mm256_sub_pd(LOAD(a + i + 4), LOAD(b + i + 4));      \
    const __m256d d2 = _mm256_sub_pd(LOAD(a + i + 8), LOAD(b + i + 8));      \
    const __m256d d3 = _mm256_sub_pd(LOAD(a + i + 12), LOAD(b + i + 12));    \
    s0 = _mm256_fmadd_pd(d0, d0, s0);                                        \
    s1 = _mm256_fmadd_pd(d1, d1, s1);                                        \
    s2 = _mm256_fmadd_pd(d2, d2, s2);                                        \
    s3 = _mm256_fmadd_pd(d3, d3, s3);                                        \
  }
  if (BothAligned32(a, b)) {
    VOLCANOML_SQDIST_F64_BLOCK(_mm256_load_pd)
  } else {
    VOLCANOML_SQDIST_F64_BLOCK(_mm256_loadu_pd)
  }
#undef VOLCANOML_SQDIST_F64_BLOCK
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    s0 = _mm256_fmadd_pd(d, d, s0);
  }
  const __m256d s =
      _mm256_add_pd(_mm256_add_pd(s0, s1), _mm256_add_pd(s2, s3));
  alignas(32) double lane[4];
  _mm256_store_pd(lane, s);
  double acc = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Blocked transpose with a 4x4 in-register sub-kernel inside each
/// 32x32 tile (unpacklo/hi + 128-bit permutes turn 4 row loads into 4
/// column stores). A transpose moves bits, it doesn't round, so this is
/// bit-identical to the scalar kernel — it is dispatched only for speed.
__attribute__((target("avx2,fma"))) void TransposeF64Avx2(const double* src,
                                                          size_t rows,
                                                          size_t cols,
                                                          double* dst) {
  constexpr size_t kTile = 32;
  for (size_t ib = 0; ib < rows; ib += kTile) {
    const size_t imax = std::min(rows, ib + kTile);
    for (size_t jb = 0; jb < cols; jb += kTile) {
      const size_t jmax = std::min(cols, jb + kTile);
      size_t i = ib;
      for (; i + 4 <= imax; i += 4) {
        size_t j = jb;
        for (; j + 4 <= jmax; j += 4) {
          const __m256d r0 = _mm256_loadu_pd(src + (i + 0) * cols + j);
          const __m256d r1 = _mm256_loadu_pd(src + (i + 1) * cols + j);
          const __m256d r2 = _mm256_loadu_pd(src + (i + 2) * cols + j);
          const __m256d r3 = _mm256_loadu_pd(src + (i + 3) * cols + j);
          const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
          const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
          const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
          const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
          _mm256_storeu_pd(dst + (j + 0) * rows + i,
                           _mm256_permute2f128_pd(t0, t2, 0x20));
          _mm256_storeu_pd(dst + (j + 1) * rows + i,
                           _mm256_permute2f128_pd(t1, t3, 0x20));
          _mm256_storeu_pd(dst + (j + 2) * rows + i,
                           _mm256_permute2f128_pd(t0, t2, 0x31));
          _mm256_storeu_pd(dst + (j + 3) * rows + i,
                           _mm256_permute2f128_pd(t1, t3, 0x31));
        }
        for (; j < jmax; ++j) {
          dst[j * rows + i + 0] = src[(i + 0) * cols + j];
          dst[j * rows + i + 1] = src[(i + 1) * cols + j];
          dst[j * rows + i + 2] = src[(i + 2) * cols + j];
          dst[j * rows + i + 3] = src[(i + 3) * cols + j];
        }
      }
      for (; i < imax; ++i) {
        const double* row = src + i * cols;
        for (size_t j = jb; j < jmax; ++j) dst[j * rows + i] = row[j];
      }
    }
  }
}

// Packed cache-blocked GEMM, double lane. BLIS-style structure collapsed
// to the shapes this codebase actually hits (m, n, k up to a few
// thousand, single-threaded):
//   - k is walked in kc-deep blocks; each block's slice of bt is packed
//     once into 8-column strips (interleaved so the micro-kernel loads
//     two contiguous vectors per step) and each 4-row slice of a is
//     packed into a column-interleaved micro-panel;
//   - the 4x8 micro-kernel keeps the C sub-block in 8 ymm accumulators
//     and issues, per k step, 1 broadcast + 2 FMAs per row over the two
//     packed B vectors;
//   - k blocks after the first accumulate into C (load + fmadd + store).
// Edge rows (m % 4) and edge columns (n % 8) fall back to full-k dot
// products AFTER the packed region, so every element is written exactly
// once per call and the k-block split never changes edge rounding.
constexpr size_t kGemmKc = 256;   // k-depth per packed block (B strip:
                                  // 8 * 256 doubles = 16 KiB, L1-hot).
constexpr size_t kGemmMr = 4;     // micro-kernel rows
constexpr size_t kGemmNrF64 = 8;  // micro-kernel cols (2 ymm of 4)

__attribute__((target("avx2,fma"))) void GemmTransBF64Avx2(
    const double* a, const double* bt, double* c, size_t m, size_t k,
    size_t n) {
  const size_t m4 = m - m % kGemmMr;
  const size_t n8 = n - n % kGemmNrF64;
  if (m4 != 0 && n8 != 0) {
    // Aligned pack buffers: strip offsets are multiples of 64 bytes by
    // construction, so the micro-kernel can use aligned B loads.
    AlignedVector<double> packed_b(kGemmKc * n8);
    AlignedVector<double> packed_a(kGemmMr * kGemmKc);
    for (size_t pc = 0; pc < k; pc += kGemmKc) {
      const size_t kc = std::min(kGemmKc, k - pc);
      const bool accumulate = pc != 0;
      // Pack this k-slice of bt: strip s covers columns [s*8, s*8+8),
      // laid out p-major so step p reads packed_b[strip + p*8 .. +7].
      for (size_t s = 0; s < n8 / kGemmNrF64; ++s) {
        double* strip = packed_b.data() + s * kc * kGemmNrF64;
        const double* brows = bt + s * kGemmNrF64 * k + pc;
        for (size_t jj = 0; jj < kGemmNrF64; ++jj) {
          const double* brow = brows + jj * k;
          for (size_t p = 0; p < kc; ++p) {
            strip[p * kGemmNrF64 + jj] = brow[p];
          }
        }
      }
      for (size_t i = 0; i < m4; i += kGemmMr) {
        // Pack the 4-row a micro-panel, p-major.
        for (size_t ii = 0; ii < kGemmMr; ++ii) {
          const double* arow = a + (i + ii) * k + pc;
          for (size_t p = 0; p < kc; ++p) {
            packed_a[p * kGemmMr + ii] = arow[p];
          }
        }
        for (size_t s = 0; s < n8 / kGemmNrF64; ++s) {
          const double* bp = packed_b.data() + s * kc * kGemmNrF64;
          const double* ap = packed_a.data();
          double* c0 = c + (i + 0) * n + s * kGemmNrF64;
          double* c1 = c + (i + 1) * n + s * kGemmNrF64;
          double* c2 = c + (i + 2) * n + s * kGemmNrF64;
          double* c3 = c + (i + 3) * n + s * kGemmNrF64;
          __m256d acc00 = _mm256_setzero_pd();
          __m256d acc01 = _mm256_setzero_pd();
          __m256d acc10 = _mm256_setzero_pd();
          __m256d acc11 = _mm256_setzero_pd();
          __m256d acc20 = _mm256_setzero_pd();
          __m256d acc21 = _mm256_setzero_pd();
          __m256d acc30 = _mm256_setzero_pd();
          __m256d acc31 = _mm256_setzero_pd();
          for (size_t p = 0; p < kc; ++p) {
            const __m256d b0 = _mm256_load_pd(bp + p * kGemmNrF64);
            const __m256d b1 = _mm256_load_pd(bp + p * kGemmNrF64 + 4);
            const __m256d a0 = _mm256_broadcast_sd(ap + p * kGemmMr + 0);
            acc00 = _mm256_fmadd_pd(a0, b0, acc00);
            acc01 = _mm256_fmadd_pd(a0, b1, acc01);
            const __m256d a1 = _mm256_broadcast_sd(ap + p * kGemmMr + 1);
            acc10 = _mm256_fmadd_pd(a1, b0, acc10);
            acc11 = _mm256_fmadd_pd(a1, b1, acc11);
            const __m256d a2 = _mm256_broadcast_sd(ap + p * kGemmMr + 2);
            acc20 = _mm256_fmadd_pd(a2, b0, acc20);
            acc21 = _mm256_fmadd_pd(a2, b1, acc21);
            const __m256d a3 = _mm256_broadcast_sd(ap + p * kGemmMr + 3);
            acc30 = _mm256_fmadd_pd(a3, b0, acc30);
            acc31 = _mm256_fmadd_pd(a3, b1, acc31);
          }
          if (accumulate) {
            acc00 = _mm256_add_pd(acc00, _mm256_loadu_pd(c0));
            acc01 = _mm256_add_pd(acc01, _mm256_loadu_pd(c0 + 4));
            acc10 = _mm256_add_pd(acc10, _mm256_loadu_pd(c1));
            acc11 = _mm256_add_pd(acc11, _mm256_loadu_pd(c1 + 4));
            acc20 = _mm256_add_pd(acc20, _mm256_loadu_pd(c2));
            acc21 = _mm256_add_pd(acc21, _mm256_loadu_pd(c2 + 4));
            acc30 = _mm256_add_pd(acc30, _mm256_loadu_pd(c3));
            acc31 = _mm256_add_pd(acc31, _mm256_loadu_pd(c3 + 4));
          }
          _mm256_storeu_pd(c0, acc00);
          _mm256_storeu_pd(c0 + 4, acc01);
          _mm256_storeu_pd(c1, acc10);
          _mm256_storeu_pd(c1 + 4, acc11);
          _mm256_storeu_pd(c2, acc20);
          _mm256_storeu_pd(c2 + 4, acc21);
          _mm256_storeu_pd(c3, acc30);
          _mm256_storeu_pd(c3 + 4, acc31);
        }
      }
    }
  }
  // Edge columns of the packed rows, then all remaining rows in full.
  for (size_t i = 0; i < m4; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t j = n8; j < n; ++j) {
      crow[j] = DotF64Avx2(arow, bt + j * k, k);
    }
  }
  for (size_t i = m4; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      crow[j] = DotF64Avx2(arow, bt + j * k, k);
    }
  }
}

// ---------------------------------------------------------------------
// float lane (same structure, 8-wide vectors; GEMM micro-kernel is 4x16)
// ---------------------------------------------------------------------

__attribute__((target("avx2,fma"))) float DotF32Avx2(const float* a,
                                                     const float* b,
                                                     size_t n) {
  __m256 s0 = _mm256_setzero_ps();
  __m256 s1 = _mm256_setzero_ps();
  __m256 s2 = _mm256_setzero_ps();
  __m256 s3 = _mm256_setzero_ps();
  size_t i = 0;
#define VOLCANOML_DOT_F32_BLOCK(LOAD)                                        \
  for (; i + 32 <= n; i += 32) {                                             \
    _mm_prefetch(reinterpret_cast<const char*>(a + i + 256), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(a + i + 272), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(b + i + 256), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(b + i + 272), _MM_HINT_T0);   \
    s0 = _mm256_fmadd_ps(LOAD(a + i), LOAD(b + i), s0);                      \
    s1 = _mm256_fmadd_ps(LOAD(a + i + 8), LOAD(b + i + 8), s1);              \
    s2 = _mm256_fmadd_ps(LOAD(a + i + 16), LOAD(b + i + 16), s2);            \
    s3 = _mm256_fmadd_ps(LOAD(a + i + 24), LOAD(b + i + 24), s3);            \
  }
  if (BothAligned32(a, b)) {
    VOLCANOML_DOT_F32_BLOCK(_mm256_load_ps)
  } else {
    VOLCANOML_DOT_F32_BLOCK(_mm256_loadu_ps)
  }
#undef VOLCANOML_DOT_F32_BLOCK
  for (; i + 8 <= n; i += 8) {
    s0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), s0);
  }
  const __m256 s = _mm256_add_ps(_mm256_add_ps(s0, s1), _mm256_add_ps(s2, s3));
  alignas(32) float lane[8];
  _mm256_store_ps(lane, s);
  float acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
              ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Mul + add (not fmadd) for the same bit-identity reason as the double
/// lane; see AxpyF64Avx2.
__attribute__((target("avx2,fma"))) void AxpyF32Avx2(float alpha,
                                                     const float* x,
                                                     float* y, size_t n) {
  if (alpha == 0.0f) return;  // Identity contract — see kernels.h.
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                             _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
    _mm256_storeu_ps(
        y + i + 8,
        _mm256_add_ps(_mm256_loadu_ps(y + i + 8),
                      _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 8))));
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                             _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) {
    _mm_store_ss(y + i,
                 _mm_add_ss(_mm_load_ss(y + i),
                            _mm_mul_ss(_mm_set_ss(alpha), _mm_load_ss(x + i))));
  }
}

__attribute__((target("avx2,fma"))) void ScaleF32Avx2(float alpha, float* x,
                                                      size_t n) {
  if (alpha == 1.0f) return;  // Identity contract — see kernels.h.
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2,fma"))) float SquaredDistanceF32Avx2(
    const float* a, const float* b, size_t n) {
  __m256 s0 = _mm256_setzero_ps();
  __m256 s1 = _mm256_setzero_ps();
  __m256 s2 = _mm256_setzero_ps();
  __m256 s3 = _mm256_setzero_ps();
  size_t i = 0;
#define VOLCANOML_SQDIST_F32_BLOCK(LOAD)                                     \
  for (; i + 32 <= n; i += 32) {                                             \
    _mm_prefetch(reinterpret_cast<const char*>(a + i + 256), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(a + i + 272), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(b + i + 256), _MM_HINT_T0);   \
    _mm_prefetch(reinterpret_cast<const char*>(b + i + 272), _MM_HINT_T0);   \
    const __m256 d0 = _mm256_sub_ps(LOAD(a + i), LOAD(b + i));               \
    const __m256 d1 = _mm256_sub_ps(LOAD(a + i + 8), LOAD(b + i + 8));       \
    const __m256 d2 = _mm256_sub_ps(LOAD(a + i + 16), LOAD(b + i + 16));     \
    const __m256 d3 = _mm256_sub_ps(LOAD(a + i + 24), LOAD(b + i + 24));     \
    s0 = _mm256_fmadd_ps(d0, d0, s0);                                        \
    s1 = _mm256_fmadd_ps(d1, d1, s1);                                        \
    s2 = _mm256_fmadd_ps(d2, d2, s2);                                        \
    s3 = _mm256_fmadd_ps(d3, d3, s3);                                        \
  }
  if (BothAligned32(a, b)) {
    VOLCANOML_SQDIST_F32_BLOCK(_mm256_load_ps)
  } else {
    VOLCANOML_SQDIST_F32_BLOCK(_mm256_loadu_ps)
  }
#undef VOLCANOML_SQDIST_F32_BLOCK
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    s0 = _mm256_fmadd_ps(d, d, s0);
  }
  const __m256 s = _mm256_add_ps(_mm256_add_ps(s0, s1), _mm256_add_ps(s2, s3));
  alignas(32) float lane[8];
  _mm256_store_ps(lane, s);
  float acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
              ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Float transpose: the scalar tiled copy is already load/store bound and
/// a transpose never rounds, so there is nothing for FMA to win; a plain
/// tile loop keeps this TU self-contained without an 8x8 shuffle ladder.
void TransposeF32Avx2(const float* src, size_t rows, size_t cols,
                      float* dst) {
  constexpr size_t kTile = 32;
  for (size_t ib = 0; ib < rows; ib += kTile) {
    const size_t imax = std::min(rows, ib + kTile);
    for (size_t jb = 0; jb < cols; jb += kTile) {
      const size_t jmax = std::min(cols, jb + kTile);
      for (size_t i = ib; i < imax; ++i) {
        const float* row = src + i * cols;
        for (size_t j = jb; j < jmax; ++j) {
          dst[j * rows + i] = row[j];
        }
      }
    }
  }
}

constexpr size_t kGemmNrF32 = 16;  // micro-kernel cols (2 ymm of 8)

__attribute__((target("avx2,fma"))) void GemmTransBF32Avx2(
    const float* a, const float* bt, float* c, size_t m, size_t k,
    size_t n) {
  const size_t m4 = m - m % kGemmMr;
  const size_t n16 = n - n % kGemmNrF32;
  if (m4 != 0 && n16 != 0) {
    AlignedVector<float> packed_b(kGemmKc * n16);
    AlignedVector<float> packed_a(kGemmMr * kGemmKc);
    for (size_t pc = 0; pc < k; pc += kGemmKc) {
      const size_t kc = std::min(kGemmKc, k - pc);
      const bool accumulate = pc != 0;
      for (size_t s = 0; s < n16 / kGemmNrF32; ++s) {
        float* strip = packed_b.data() + s * kc * kGemmNrF32;
        const float* brows = bt + s * kGemmNrF32 * k + pc;
        for (size_t jj = 0; jj < kGemmNrF32; ++jj) {
          const float* brow = brows + jj * k;
          for (size_t p = 0; p < kc; ++p) {
            strip[p * kGemmNrF32 + jj] = brow[p];
          }
        }
      }
      for (size_t i = 0; i < m4; i += kGemmMr) {
        for (size_t ii = 0; ii < kGemmMr; ++ii) {
          const float* arow = a + (i + ii) * k + pc;
          for (size_t p = 0; p < kc; ++p) {
            packed_a[p * kGemmMr + ii] = arow[p];
          }
        }
        for (size_t s = 0; s < n16 / kGemmNrF32; ++s) {
          const float* bp = packed_b.data() + s * kc * kGemmNrF32;
          const float* ap = packed_a.data();
          float* c0 = c + (i + 0) * n + s * kGemmNrF32;
          float* c1 = c + (i + 1) * n + s * kGemmNrF32;
          float* c2 = c + (i + 2) * n + s * kGemmNrF32;
          float* c3 = c + (i + 3) * n + s * kGemmNrF32;
          __m256 acc00 = _mm256_setzero_ps();
          __m256 acc01 = _mm256_setzero_ps();
          __m256 acc10 = _mm256_setzero_ps();
          __m256 acc11 = _mm256_setzero_ps();
          __m256 acc20 = _mm256_setzero_ps();
          __m256 acc21 = _mm256_setzero_ps();
          __m256 acc30 = _mm256_setzero_ps();
          __m256 acc31 = _mm256_setzero_ps();
          for (size_t p = 0; p < kc; ++p) {
            const __m256 b0 = _mm256_load_ps(bp + p * kGemmNrF32);
            const __m256 b1 = _mm256_load_ps(bp + p * kGemmNrF32 + 8);
            const __m256 a0 = _mm256_broadcast_ss(ap + p * kGemmMr + 0);
            acc00 = _mm256_fmadd_ps(a0, b0, acc00);
            acc01 = _mm256_fmadd_ps(a0, b1, acc01);
            const __m256 a1 = _mm256_broadcast_ss(ap + p * kGemmMr + 1);
            acc10 = _mm256_fmadd_ps(a1, b0, acc10);
            acc11 = _mm256_fmadd_ps(a1, b1, acc11);
            const __m256 a2 = _mm256_broadcast_ss(ap + p * kGemmMr + 2);
            acc20 = _mm256_fmadd_ps(a2, b0, acc20);
            acc21 = _mm256_fmadd_ps(a2, b1, acc21);
            const __m256 a3 = _mm256_broadcast_ss(ap + p * kGemmMr + 3);
            acc30 = _mm256_fmadd_ps(a3, b0, acc30);
            acc31 = _mm256_fmadd_ps(a3, b1, acc31);
          }
          if (accumulate) {
            acc00 = _mm256_add_ps(acc00, _mm256_loadu_ps(c0));
            acc01 = _mm256_add_ps(acc01, _mm256_loadu_ps(c0 + 8));
            acc10 = _mm256_add_ps(acc10, _mm256_loadu_ps(c1));
            acc11 = _mm256_add_ps(acc11, _mm256_loadu_ps(c1 + 8));
            acc20 = _mm256_add_ps(acc20, _mm256_loadu_ps(c2));
            acc21 = _mm256_add_ps(acc21, _mm256_loadu_ps(c2 + 8));
            acc30 = _mm256_add_ps(acc30, _mm256_loadu_ps(c3));
            acc31 = _mm256_add_ps(acc31, _mm256_loadu_ps(c3 + 8));
          }
          _mm256_storeu_ps(c0, acc00);
          _mm256_storeu_ps(c0 + 8, acc01);
          _mm256_storeu_ps(c1, acc10);
          _mm256_storeu_ps(c1 + 8, acc11);
          _mm256_storeu_ps(c2, acc20);
          _mm256_storeu_ps(c2 + 8, acc21);
          _mm256_storeu_ps(c3, acc30);
          _mm256_storeu_ps(c3 + 8, acc31);
        }
      }
    }
  }
  for (size_t i = 0; i < m4; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = n16; j < n; ++j) {
      crow[j] = DotF32Avx2(arow, bt + j * k, k);
    }
  }
  for (size_t i = m4; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      crow[j] = DotF32Avx2(arow, bt + j * k, k);
    }
  }
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
}

}  // namespace

const KernelTable* Avx2KernelTable() {
  static const KernelTable* table = []() -> const KernelTable* {
    if (!CpuHasAvx2Fma()) return nullptr;
    static const KernelTable t = {
        DotF64Avx2,       AxpyF64Avx2,
        ScaleF64Avx2,     SquaredDistanceF64Avx2,
        TransposeF64Avx2, GemmTransBF64Avx2,
        DotF32Avx2,       AxpyF32Avx2,
        ScaleF32Avx2,     SquaredDistanceF32Avx2,
        TransposeF32Avx2, GemmTransBF32Avx2,
    };
    return &t;
  }();
  return table;
}

}  // namespace volcanoml

#else  // !x86

namespace volcanoml {

const KernelTable* Avx2KernelTable() { return nullptr; }

}  // namespace volcanoml

#endif
