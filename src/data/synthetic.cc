#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace volcanoml {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

Dataset MakeClassification(const ClassificationOptions& opts, uint64_t seed,
                           const std::string& name) {
  VOLCANOML_CHECK(opts.num_informative >= 1);
  VOLCANOML_CHECK(opts.num_informative + opts.num_redundant <=
                  opts.num_features);
  VOLCANOML_CHECK(opts.num_classes >= 2);
  Rng rng(seed);

  // Class centroids on scaled hypercube corners in the informative subspace.
  std::vector<std::vector<double>> centroids(opts.num_classes);
  for (size_t c = 0; c < opts.num_classes; ++c) {
    centroids[c].resize(opts.num_informative);
    for (size_t j = 0; j < opts.num_informative; ++j) {
      centroids[c][j] = (rng.Bernoulli(0.5) ? 1.0 : -1.0) * opts.class_sep;
    }
  }

  // Random mixing matrix for redundant features.
  Matrix mix(opts.num_redundant, opts.num_informative);
  for (size_t i = 0; i < opts.num_redundant; ++i) {
    for (size_t j = 0; j < opts.num_informative; ++j) {
      mix(i, j) = rng.Gaussian();
    }
  }

  // Per-class sample budget; `imbalance` concentrates mass on class 0.
  std::vector<double> class_weights(opts.num_classes, 1.0);
  class_weights[0] = opts.imbalance;

  Matrix x(opts.num_samples, opts.num_features);
  std::vector<double> y(opts.num_samples);
  for (size_t i = 0; i < opts.num_samples; ++i) {
    size_t c = rng.Categorical(class_weights);
    std::vector<double> inf(opts.num_informative);
    for (size_t j = 0; j < opts.num_informative; ++j) {
      inf[j] = centroids[c][j] + rng.Gaussian();
      x(i, j) = inf[j];
    }
    for (size_t r = 0; r < opts.num_redundant; ++r) {
      double v = 0.0;
      for (size_t j = 0; j < opts.num_informative; ++j) v += mix(r, j) * inf[j];
      x(i, opts.num_informative + r) = v;
    }
    for (size_t j = opts.num_informative + opts.num_redundant;
         j < opts.num_features; ++j) {
      x(i, j) = rng.Gaussian();
    }
    if (opts.flip_y > 0.0 && rng.Bernoulli(opts.flip_y)) {
      c = rng.Index(opts.num_classes);
    }
    y[i] = static_cast<double>(c);
  }
  // Guarantee every class appears at least once so NumClasses() is stable.
  for (size_t c = 0; c < opts.num_classes && c < opts.num_samples; ++c) {
    y[c] = static_cast<double>(c);
  }
  return Dataset(name, std::move(x), std::move(y),
                 TaskType::kClassification);
}

Dataset MakeBlobs(size_t num_samples, size_t num_features, size_t num_classes,
                  double cluster_std, uint64_t seed, const std::string& name) {
  Rng rng(seed);
  std::vector<std::vector<double>> centers(num_classes);
  for (auto& center : centers) {
    center.resize(num_features);
    for (double& v : center) v = rng.Uniform(-10.0, 10.0);
  }
  Matrix x(num_samples, num_features);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    size_t c = i % num_classes;  // Balanced classes.
    for (size_t j = 0; j < num_features; ++j) {
      x(i, j) = centers[c][j] + rng.Gaussian(0.0, cluster_std);
    }
    y[i] = static_cast<double>(c);
  }
  return Dataset(name, std::move(x), std::move(y),
                 TaskType::kClassification);
}

Dataset MakeMoons(size_t num_samples, double noise, uint64_t seed,
                  const std::string& name) {
  Rng rng(seed);
  Matrix x(num_samples, 2);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    bool upper = (i % 2 == 0);
    double t = rng.Uniform(0.0, kPi);
    double px, py;
    if (upper) {
      px = std::cos(t);
      py = std::sin(t);
    } else {
      px = 1.0 - std::cos(t);
      py = 0.5 - std::sin(t);
    }
    x(i, 0) = px + rng.Gaussian(0.0, noise);
    x(i, 1) = py + rng.Gaussian(0.0, noise);
    y[i] = upper ? 0.0 : 1.0;
  }
  return Dataset(name, std::move(x), std::move(y),
                 TaskType::kClassification);
}

Dataset MakeCircles(size_t num_samples, double noise, double factor,
                    uint64_t seed, const std::string& name) {
  VOLCANOML_CHECK(factor > 0.0 && factor < 1.0);
  Rng rng(seed);
  Matrix x(num_samples, 2);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    bool outer = (i % 2 == 0);
    double t = rng.Uniform(0.0, 2.0 * kPi);
    double r = outer ? 1.0 : factor;
    x(i, 0) = r * std::cos(t) + rng.Gaussian(0.0, noise);
    x(i, 1) = r * std::sin(t) + rng.Gaussian(0.0, noise);
    y[i] = outer ? 0.0 : 1.0;
  }
  return Dataset(name, std::move(x), std::move(y),
                 TaskType::kClassification);
}

Dataset MakeXorParity(size_t num_samples, size_t num_parity_bits,
                      size_t num_noise_features, double flip_y, uint64_t seed,
                      const std::string& name) {
  VOLCANOML_CHECK(num_parity_bits >= 2);
  Rng rng(seed);
  const size_t num_features = num_parity_bits + num_noise_features;
  Matrix x(num_samples, num_features);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    int parity = 0;
    for (size_t j = 0; j < num_parity_bits; ++j) {
      bool bit = rng.Bernoulli(0.5);
      parity ^= bit ? 1 : 0;
      x(i, j) = (bit ? 1.0 : -1.0) + rng.Gaussian(0.0, 0.3);
    }
    for (size_t j = num_parity_bits; j < num_features; ++j) {
      x(i, j) = rng.Gaussian();
    }
    if (flip_y > 0.0 && rng.Bernoulli(flip_y)) parity ^= 1;
    y[i] = static_cast<double>(parity);
  }
  if (num_samples >= 2) {
    y[0] = 0.0;
    y[1] = 1.0;
  }
  return Dataset(name, std::move(x), std::move(y),
                 TaskType::kClassification);
}

Dataset MakeFriedman1(size_t num_samples, size_t num_features, double noise,
                      uint64_t seed, const std::string& name) {
  VOLCANOML_CHECK(num_features >= 5);
  Rng rng(seed);
  Matrix x(num_samples, num_features);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    for (size_t j = 0; j < num_features; ++j) x(i, j) = rng.Uniform();
    y[i] = 10.0 * std::sin(kPi * x(i, 0) * x(i, 1)) +
           20.0 * (x(i, 2) - 0.5) * (x(i, 2) - 0.5) + 10.0 * x(i, 3) +
           5.0 * x(i, 4) + rng.Gaussian(0.0, noise);
  }
  return Dataset(name, std::move(x), std::move(y), TaskType::kRegression);
}

Dataset MakeFriedman2(size_t num_samples, double noise, uint64_t seed,
                      const std::string& name) {
  Rng rng(seed);
  Matrix x(num_samples, 4);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    x(i, 0) = rng.Uniform(0.0, 100.0);
    x(i, 1) = rng.Uniform(40.0 * kPi, 560.0 * kPi);
    x(i, 2) = rng.Uniform(0.0, 1.0);
    x(i, 3) = rng.Uniform(1.0, 11.0);
    double inner = x(i, 1) * x(i, 2) - 1.0 / (x(i, 1) * x(i, 3));
    y[i] = std::sqrt(x(i, 0) * x(i, 0) + inner * inner) +
           rng.Gaussian(0.0, noise);
  }
  return Dataset(name, std::move(x), std::move(y), TaskType::kRegression);
}

Dataset MakeFriedman3(size_t num_samples, double noise, uint64_t seed,
                      const std::string& name) {
  Rng rng(seed);
  Matrix x(num_samples, 4);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    x(i, 0) = rng.Uniform(0.0, 100.0);
    x(i, 1) = rng.Uniform(40.0 * kPi, 560.0 * kPi);
    x(i, 2) = rng.Uniform(0.0, 1.0);
    x(i, 3) = rng.Uniform(1.0, 11.0);
    double inner = x(i, 1) * x(i, 2) - 1.0 / (x(i, 1) * x(i, 3));
    y[i] = std::atan2(inner, x(i, 0)) + rng.Gaussian(0.0, noise);
  }
  return Dataset(name, std::move(x), std::move(y), TaskType::kRegression);
}

Dataset MakeLinearRegression(size_t num_samples, size_t num_features,
                             size_t num_informative, double noise,
                             uint64_t seed, const std::string& name) {
  VOLCANOML_CHECK(num_informative <= num_features);
  Rng rng(seed);
  std::vector<double> coef(num_features, 0.0);
  for (size_t j = 0; j < num_informative; ++j) {
    coef[j] = rng.Uniform(-100.0, 100.0);
  }
  Matrix x(num_samples, num_features);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    double target = 0.0;
    for (size_t j = 0; j < num_features; ++j) {
      x(i, j) = rng.Gaussian();
      target += coef[j] * x(i, j);
    }
    y[i] = target + rng.Gaussian(0.0, noise);
  }
  return Dataset(name, std::move(x), std::move(y), TaskType::kRegression);
}

Dataset Imbalance(const Dataset& data, double ratio, uint64_t seed) {
  VOLCANOML_CHECK(data.task() == TaskType::kClassification);
  VOLCANOML_CHECK(ratio >= 1.0);
  Rng rng(seed);
  std::vector<size_t> keep;
  std::vector<std::vector<size_t>> by_class(data.NumClasses());
  for (size_t i = 0; i < data.NumSamples(); ++i) {
    by_class[static_cast<size_t>(data.Label(i))].push_back(i);
  }
  // Class 0 is the majority; classes >= 1 are thinned to ~1/ratio of it.
  size_t majority = by_class[0].size();
  keep = by_class[0];
  for (size_t c = 1; c < by_class.size(); ++c) {
    auto& members = by_class[c];
    rng.Shuffle(&members);
    size_t target = std::max<size_t>(
        2, static_cast<size_t>(static_cast<double>(majority) / ratio));
    target = std::min(target, members.size());
    keep.insert(keep.end(), members.begin(), members.begin() + target);
  }
  rng.Shuffle(&keep);
  Dataset out = data.Subset(keep);
  out.set_name(data.name() + "_imb");
  return out;
}

Dataset MakeSyntheticImages(size_t num_samples, size_t image_side,
                            double noise, uint64_t seed,
                            const std::string& name) {
  VOLCANOML_CHECK(image_side >= 4);
  Rng rng(seed);
  const size_t num_pixels = image_side * image_side;
  // Class signal: two localized blob templates (think "dog" vs "cat"
  // texture) whose contributions are entangled through per-image random
  // gain/offset, so raw pixels correlate weakly with the class.
  std::vector<double> template0(num_pixels), template1(num_pixels);
  for (size_t p = 0; p < num_pixels; ++p) {
    size_t r = p / image_side, c = p % image_side;
    template0[p] = std::sin(0.7 * static_cast<double>(r)) *
                   std::cos(0.5 * static_cast<double>(c));
    template1[p] = std::cos(0.6 * static_cast<double>(r)) *
                   std::sin(0.8 * static_cast<double>(c));
  }
  Matrix x(num_samples, num_pixels);
  std::vector<double> y(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    bool cls = (i % 2 == 1);
    const std::vector<double>& tpl = cls ? template1 : template0;
    // Strong per-image nuisance: random gain with a random *sign* (think
    // exposure/polarity variation) plus offset and pixel noise. The sign
    // flip makes each class a pair of opposite rays in raw-pixel space —
    // not linearly separable and hostile to raw-pixel distances — which
    // is what makes pre-trained (sign-invariant) embeddings necessary,
    // mirroring dogs-vs-cats for shallow pipelines.
    double gain = rng.Uniform(0.4, 2.5) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
    // Smooth per-image background: constant + horizontal/vertical ramps
    // ("illumination"). A multi-dimensional nuisance, so raw-pixel
    // nearest-neighbor matching cannot simply align on it.
    double bg0 = rng.Uniform(-2.0, 2.0);
    double bg_r = rng.Uniform(-4.0, 4.0);
    double bg_c = rng.Uniform(-4.0, 4.0);
    double side = static_cast<double>(image_side);
    for (size_t p = 0; p < num_pixels; ++p) {
      double r = static_cast<double>(p / image_side) / side;
      double c = static_cast<double>(p % image_side) / side;
      x(i, p) = gain * tpl[p] + bg0 + bg_r * r + bg_c * c +
                rng.Gaussian(0.0, noise);
    }
    y[i] = cls ? 1.0 : 0.0;
  }
  return Dataset(name, std::move(x), std::move(y),
                 TaskType::kClassification);
}

}  // namespace volcanoml
