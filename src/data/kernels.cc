#include "data/kernels.h"

#include <algorithm>

#include "data/simd.h"

namespace volcanoml {

namespace {

/// Tile edge for the blocked transpose: 32 * 32 doubles = 8 KiB, which
/// fits two tiles (source + destination) comfortably in a 32 KiB L1.
constexpr size_t kTransposeTile = 32;

/// Row-block size for GemmTransB: how many rows of bt (columns of B) are
/// kept hot while streaming rows of a. 64 rows x 256 doubles = 128 KiB
/// upper bound, sized for L2.
constexpr size_t kGemmColBlock = 64;

/// The scalar oracle. The Real=double instantiations execute the exact
/// arithmetic sequence of the pre-SIMD kernels (same lane split, same
/// combine order), so scalar-double results stay byte-for-byte
/// reproducible against historical trajectories; the float instantiations
/// mirror them lane for lane.

template <typename Real>
Real ScalarDot(const Real* a, const Real* b, size_t n) {
  Real s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

template <typename Real>
void ScalarAxpy(Real alpha, const Real* x, Real* y, size_t n) {
  if (alpha == 0) return;  // Identity contract — see kernels.h.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

template <typename Real>
void ScalarScale(Real alpha, Real* x, size_t n) {
  if (alpha == 1) return;  // Identity contract — see kernels.h.
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename Real>
Real ScalarSquaredDistance(const Real* a, const Real* b, size_t n) {
  Real s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Real d0 = a[i] - b[i];
    Real d1 = a[i + 1] - b[i + 1];
    Real d2 = a[i + 2] - b[i + 2];
    Real d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    Real d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

template <typename Real>
void ScalarTranspose(const Real* src, size_t rows, size_t cols, Real* dst) {
  for (size_t ib = 0; ib < rows; ib += kTransposeTile) {
    const size_t imax = std::min(rows, ib + kTransposeTile);
    for (size_t jb = 0; jb < cols; jb += kTransposeTile) {
      const size_t jmax = std::min(cols, jb + kTransposeTile);
      for (size_t i = ib; i < imax; ++i) {
        const Real* row = src + i * cols;
        for (size_t j = jb; j < jmax; ++j) {
          dst[j * rows + i] = row[j];
        }
      }
    }
  }
}

template <typename Real>
void ScalarGemmTransB(const Real* a, const Real* bt, Real* c, size_t m,
                      size_t k, size_t n) {
  // c(i, j) = dot(a row i, bt row j). Walking j in blocks keeps the
  // active kGemmColBlock rows of bt cache-resident while every row of a
  // streams past them once per block. Calls ScalarDot directly (not the
  // dispatched DotKernel) so the scalar table stays self-consistent even
  // when the process-wide level is avx2.
  for (size_t jb = 0; jb < n; jb += kGemmColBlock) {
    const size_t jmax = std::min(n, jb + kGemmColBlock);
    for (size_t i = 0; i < m; ++i) {
      const Real* arow = a + i * k;
      Real* crow = c + i * n;
      for (size_t j = jb; j < jmax; ++j) {
        crow[j] = ScalarDot(arow, bt + j * k, k);
      }
    }
  }
}

}  // namespace

const KernelTable& ScalarKernelTable() {
  static const KernelTable table = {
      ScalarDot<double>,       ScalarAxpy<double>,
      ScalarScale<double>,     ScalarSquaredDistance<double>,
      ScalarTranspose<double>, ScalarGemmTransB<double>,
      ScalarDot<float>,        ScalarAxpy<float>,
      ScalarScale<float>,      ScalarSquaredDistance<float>,
      ScalarTranspose<float>,  ScalarGemmTransB<float>,
  };
  return table;
}

double DotKernel(const double* a, const double* b, size_t n) {
  return ActiveKernelTable().dot_f64(a, b, n);
}

float DotKernel(const float* a, const float* b, size_t n) {
  return ActiveKernelTable().dot_f32(a, b, n);
}

void AxpyKernel(double alpha, const double* x, double* y, size_t n) {
  ActiveKernelTable().axpy_f64(alpha, x, y, n);
}

void AxpyKernel(float alpha, const float* x, float* y, size_t n) {
  ActiveKernelTable().axpy_f32(alpha, x, y, n);
}

void ScaleKernel(double alpha, double* x, size_t n) {
  ActiveKernelTable().scale_f64(alpha, x, n);
}

void ScaleKernel(float alpha, float* x, size_t n) {
  ActiveKernelTable().scale_f32(alpha, x, n);
}

double SquaredDistanceKernel(const double* a, const double* b, size_t n) {
  return ActiveKernelTable().squared_distance_f64(a, b, n);
}

float SquaredDistanceKernel(const float* a, const float* b, size_t n) {
  return ActiveKernelTable().squared_distance_f32(a, b, n);
}

void TransposeKernel(const double* src, size_t rows, size_t cols,
                     double* dst) {
  ActiveKernelTable().transpose_f64(src, rows, cols, dst);
}

void TransposeKernel(const float* src, size_t rows, size_t cols, float* dst) {
  ActiveKernelTable().transpose_f32(src, rows, cols, dst);
}

void GemmTransBKernel(const double* a, const double* bt, double* c,
                      size_t m, size_t k, size_t n) {
  ActiveKernelTable().gemm_trans_b_f64(a, bt, c, m, k, n);
}

void GemmTransBKernel(const float* a, const float* bt, float* c, size_t m,
                      size_t k, size_t n) {
  ActiveKernelTable().gemm_trans_b_f32(a, bt, c, m, k, n);
}

}  // namespace volcanoml
