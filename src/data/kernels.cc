#include "data/kernels.h"

#include <algorithm>

namespace volcanoml {

namespace {

/// Tile edge for the blocked transpose: 32 * 32 doubles = 8 KiB, which
/// fits two tiles (source + destination) comfortably in a 32 KiB L1.
constexpr size_t kTransposeTile = 32;

/// Row-block size for GemmTransB: how many rows of bt (columns of B) are
/// kept hot while streaming rows of a. 64 rows x 256 doubles = 128 KiB
/// upper bound, sized for L2.
constexpr size_t kGemmColBlock = 64;

}  // namespace

double DotKernel(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

void AxpyKernel(double alpha, const double* x, double* y, size_t n) {
  if (alpha == 0.0) return;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleKernel(double alpha, double* x, size_t n) {
  if (alpha == 1.0) return;
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double SquaredDistanceKernel(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double d0 = a[i] - b[i];
    double d1 = a[i + 1] - b[i + 1];
    double d2 = a[i + 2] - b[i + 2];
    double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    double d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

void TransposeKernel(const double* src, size_t rows, size_t cols,
                     double* dst) {
  for (size_t ib = 0; ib < rows; ib += kTransposeTile) {
    const size_t imax = std::min(rows, ib + kTransposeTile);
    for (size_t jb = 0; jb < cols; jb += kTransposeTile) {
      const size_t jmax = std::min(cols, jb + kTransposeTile);
      for (size_t i = ib; i < imax; ++i) {
        const double* row = src + i * cols;
        for (size_t j = jb; j < jmax; ++j) {
          dst[j * rows + i] = row[j];
        }
      }
    }
  }
}

void GemmTransBKernel(const double* a, const double* bt, double* c,
                      size_t m, size_t k, size_t n) {
  // c(i, j) = dot(a row i, bt row j). Walking j in blocks keeps the
  // active kGemmColBlock rows of bt cache-resident while every row of a
  // streams past them once per block.
  for (size_t jb = 0; jb < n; jb += kGemmColBlock) {
    const size_t jmax = std::min(n, jb + kGemmColBlock);
    for (size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * n;
      for (size_t j = jb; j < jmax; ++j) {
        crow[j] = DotKernel(arow, bt + j * k, k);
      }
    }
  }
}

}  // namespace volcanoml
