#include "data/splits.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace volcanoml {

namespace {

/// Groups sample indices by class, each group shuffled. For regression,
/// returns a single shuffled group.
std::vector<std::vector<size_t>> GroupIndices(const Dataset& data, Rng* rng) {
  std::vector<std::vector<size_t>> groups;
  if (data.task() == TaskType::kClassification && data.NumClasses() > 0) {
    groups.resize(data.NumClasses());
    for (size_t i = 0; i < data.NumSamples(); ++i) {
      groups[static_cast<size_t>(data.Label(i))].push_back(i);
    }
  } else {
    groups.resize(1);
    groups[0].resize(data.NumSamples());
    for (size_t i = 0; i < data.NumSamples(); ++i) groups[0][i] = i;
  }
  for (auto& g : groups) rng->Shuffle(&g);
  return groups;
}

}  // namespace

Split TrainTestSplit(const Dataset& data, double test_fraction, Rng* rng) {
  VOLCANOML_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  Split split;
  for (const auto& group : GroupIndices(data, rng)) {
    // Round per group, but keep at least one sample on each side when the
    // group has two or more members.
    size_t n_test = static_cast<size_t>(
        std::llround(test_fraction * static_cast<double>(group.size())));
    if (group.size() >= 2) {
      n_test = std::max<size_t>(1, std::min(n_test, group.size() - 1));
    }
    for (size_t i = 0; i < group.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(group[i]);
    }
  }
  rng->Shuffle(&split.train);
  rng->Shuffle(&split.test);
  return split;
}

std::vector<Split> KFoldSplits(const Dataset& data, size_t k, Rng* rng) {
  VOLCANOML_CHECK(k >= 2);
  VOLCANOML_CHECK(data.NumSamples() >= k);
  std::vector<std::vector<size_t>> fold_members(k);
  size_t cursor = 0;
  for (const auto& group : GroupIndices(data, rng)) {
    for (size_t idx : group) {
      fold_members[cursor % k].push_back(idx);
      ++cursor;
    }
  }
  std::vector<Split> splits(k);
  for (size_t f = 0; f < k; ++f) {
    splits[f].test = fold_members[f];
    for (size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      splits[f].train.insert(splits[f].train.end(), fold_members[g].begin(),
                             fold_members[g].end());
    }
    rng->Shuffle(&splits[f].train);
  }
  return splits;
}

std::vector<size_t> SubsampleIndices(const Dataset& data, double fraction,
                                     size_t min_samples, Rng* rng) {
  VOLCANOML_CHECK(fraction > 0.0 && fraction <= 1.0);
  const size_t n = data.NumSamples();
  size_t target = std::max(
      min_samples,
      static_cast<size_t>(std::ceil(fraction * static_cast<double>(n))));
  target = std::min(target, n);
  // Effective per-group fraction honours min_samples even when `fraction`
  // alone would undershoot it.
  const double eff_fraction =
      std::max(fraction, static_cast<double>(target) / static_cast<double>(n));
  std::vector<size_t> out;
  out.reserve(target);
  for (const auto& group : GroupIndices(data, rng)) {
    size_t take = std::max<size_t>(
        group.empty() ? 0 : 1,
        static_cast<size_t>(
            std::llround(eff_fraction * static_cast<double>(group.size()))));
    take = std::min(take, group.size());
    out.insert(out.end(), group.begin(), group.begin() + take);
  }
  rng->Shuffle(&out);
  if (out.size() > target) out.resize(target);
  return out;
}

}  // namespace volcanoml
