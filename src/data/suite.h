#ifndef VOLCANOML_DATA_SUITE_H_
#define VOLCANOML_DATA_SUITE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace volcanoml {

/// A named, reproducible dataset recipe. Calling `make(seed)` materializes
/// the dataset; the same (spec, seed) pair always yields identical data.
struct DatasetSpec {
  std::string name;
  std::function<Dataset(uint64_t seed)> make;
};

/// 30 medium classification datasets (the paper's 30 OpenML medium CLS
/// tasks, 1k-12k samples there; scaled to a few hundred samples here).
[[nodiscard]] std::vector<DatasetSpec> MediumClassificationSuite();

/// 20 regression datasets (paper: 20 OpenML REG tasks).
[[nodiscard]] std::vector<DatasetSpec> RegressionSuite();

/// 10 larger classification datasets (paper: 20k-110k samples; scaled to
/// a few thousand here). Used by the Figure 5 time-budget experiment.
[[nodiscard]] std::vector<DatasetSpec> LargeClassificationSuite();

/// 5 imbalanced classification datasets for the Table 2 smote_balancer
/// enrichment experiment; names follow the paper's pc2-style datasets.
[[nodiscard]] std::vector<DatasetSpec> ImbalancedSuite();

/// 6 "Kaggle competition" stand-ins named after the competitions in
/// Figure 6 (Influence Network, Virus Prediction, Employee Access,
/// Customer Satisfaction, Business Value, Flavours).
[[nodiscard]] std::vector<DatasetSpec> KaggleSuite();

/// Looks a spec up by name across all suites; aborts if absent.
[[nodiscard]] DatasetSpec FindDatasetSpec(const std::string& name);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_SUITE_H_
