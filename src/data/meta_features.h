#ifndef VOLCANOML_DATA_META_FEATURES_H_
#define VOLCANOML_DATA_META_FEATURES_H_

#include <vector>

#include "data/dataset.h"

namespace volcanoml {

/// Computes a fixed-length dataset descriptor used by the meta-learning
/// component to match the current task against past tasks (as auto-sklearn
/// and VolcanoML do for warm-starting).
///
/// Components (in order):
///   0  log(#samples)
///   1  log(#features)
///   2  #classes (0 for regression)
///   3  class entropy (0 for regression)
///   4  mean of per-feature means
///   5  mean of per-feature std deviations
///   6  std of per-feature std deviations
///   7  mean |correlation| between features and target
///   8  1-NN landmarker (holdout accuracy / negative MSE on a subsample)
///   9  decision-stump landmarker (same protocol)
[[nodiscard]] std::vector<double> ComputeMetaFeatures(const Dataset& data, uint64_t seed);

/// Euclidean distance between two meta-feature vectors after per-dimension
/// scaling by `scales` (pass empty for unscaled distance).
[[nodiscard]] double MetaFeatureDistance(const std::vector<double>& a,
                           const std::vector<double>& b,
                           const std::vector<double>& scales = {});

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_META_FEATURES_H_
