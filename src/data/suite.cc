#include "data/suite.h"

#include "data/synthetic.h"
#include "util/check.h"

namespace volcanoml {

namespace {

/// Mixes a stable per-spec tag into the caller seed so each dataset in a
/// suite draws from an independent stream even under the same run seed.
uint64_t MixSeed(uint64_t seed, uint64_t tag) {
  uint64_t x = seed ^ (tag * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

DatasetSpec GaussianSpec(std::string name, uint64_t tag, size_t n, size_t d,
                         size_t informative, size_t redundant, size_t classes,
                         double sep, double flip) {
  return DatasetSpec{
      name, [=](uint64_t seed) {
        ClassificationOptions opts;
        opts.num_samples = n;
        opts.num_features = d;
        opts.num_informative = informative;
        opts.num_redundant = redundant;
        opts.num_classes = classes;
        opts.class_sep = sep;
        opts.flip_y = flip;
        return MakeClassification(opts, MixSeed(seed, tag), name);
      }};
}

}  // namespace

std::vector<DatasetSpec> MediumClassificationSuite() {
  std::vector<DatasetSpec> suite;
  // 14 Gaussian-centroid tasks spanning separation, dimensionality,
  // class count, and label noise (kc1/pc-style tabular tasks).
  suite.push_back(GaussianSpec("gauss_easy_2c", 101, 500, 10, 4, 2, 2, 2.0, 0.01));
  suite.push_back(GaussianSpec("gauss_mid_2c", 102, 500, 16, 5, 4, 2, 1.2, 0.03));
  suite.push_back(GaussianSpec("gauss_hard_2c", 103, 600, 24, 6, 6, 2, 0.8, 0.05));
  suite.push_back(GaussianSpec("gauss_noisy_2c", 104, 500, 30, 4, 4, 2, 1.0, 0.10));
  suite.push_back(GaussianSpec("gauss_easy_3c", 105, 600, 12, 5, 3, 3, 1.8, 0.02));
  suite.push_back(GaussianSpec("gauss_mid_3c", 106, 600, 18, 6, 4, 3, 1.1, 0.04));
  suite.push_back(GaussianSpec("gauss_hard_4c", 107, 700, 20, 6, 4, 4, 0.9, 0.05));
  suite.push_back(GaussianSpec("gauss_wide_2c", 108, 400, 40, 6, 8, 2, 1.0, 0.03));
  suite.push_back(GaussianSpec("gauss_5class", 109, 800, 15, 6, 3, 5, 1.4, 0.03));
  suite.push_back(GaussianSpec("gauss_tiny_sep", 110, 500, 12, 4, 2, 2, 0.5, 0.05));
  suite.push_back(GaussianSpec("gauss_redundant", 111, 500, 24, 4, 12, 2, 1.2, 0.02));
  suite.push_back(GaussianSpec("gauss_clean_3c", 112, 500, 10, 5, 2, 3, 1.6, 0.0));
  suite.push_back(GaussianSpec("gauss_flip_heavy", 113, 600, 14, 5, 3, 2, 1.3, 0.15));
  suite.push_back(GaussianSpec("gauss_highdim", 114, 450, 50, 8, 10, 2, 1.1, 0.03));

  // 6 nonlinear-boundary tasks (banana/phoneme-style).
  suite.push_back({"moons_clean", [](uint64_t s) {
                     return MakeMoons(500, 0.15, MixSeed(s, 201), "moons_clean");
                   }});
  suite.push_back({"moons_noisy", [](uint64_t s) {
                     return MakeMoons(600, 0.35, MixSeed(s, 202), "moons_noisy");
                   }});
  suite.push_back({"circles_tight", [](uint64_t s) {
                     return MakeCircles(500, 0.08, 0.5, MixSeed(s, 203),
                                        "circles_tight");
                   }});
  suite.push_back({"circles_noisy", [](uint64_t s) {
                     return MakeCircles(600, 0.18, 0.6, MixSeed(s, 204),
                                        "circles_noisy");
                   }});
  suite.push_back({"blobs_4c", [](uint64_t s) {
                     return MakeBlobs(600, 8, 4, 2.5, MixSeed(s, 205),
                                      "blobs_4c");
                   }});
  suite.push_back({"blobs_overlap", [](uint64_t s) {
                     return MakeBlobs(600, 6, 3, 6.0, MixSeed(s, 206),
                                      "blobs_overlap");
                   }});

  // 6 parity/XOR tasks (madelon-style; anti-linear).
  suite.push_back({"parity2_clean", [](uint64_t s) {
                     return MakeXorParity(500, 2, 8, 0.02, MixSeed(s, 301),
                                          "parity2_clean");
                   }});
  suite.push_back({"parity2_noisy", [](uint64_t s) {
                     return MakeXorParity(600, 2, 16, 0.08, MixSeed(s, 302),
                                          "parity2_noisy");
                   }});
  suite.push_back({"parity3", [](uint64_t s) {
                     return MakeXorParity(700, 3, 10, 0.03, MixSeed(s, 303),
                                          "parity3");
                   }});
  suite.push_back({"parity3_wide", [](uint64_t s) {
                     return MakeXorParity(700, 3, 25, 0.05, MixSeed(s, 304),
                                          "parity3_wide");
                   }});
  suite.push_back({"parity4", [](uint64_t s) {
                     return MakeXorParity(800, 4, 8, 0.03, MixSeed(s, 305),
                                          "parity4");
                   }});
  suite.push_back({"parity2_tiny", [](uint64_t s) {
                     return MakeXorParity(300, 2, 6, 0.05, MixSeed(s, 306),
                                          "parity2_tiny");
                   }});

  // 4 imbalanced-but-general tasks.
  suite.push_back({"imb_gauss_3x", [](uint64_t s) {
                     ClassificationOptions o;
                     o.num_samples = 600; o.num_features = 14;
                     o.num_informative = 5; o.num_redundant = 3;
                     o.imbalance = 3.0; o.class_sep = 1.2; o.flip_y = 0.03;
                     return MakeClassification(o, MixSeed(s, 401),
                                               "imb_gauss_3x");
                   }});
  suite.push_back({"imb_gauss_6x", [](uint64_t s) {
                     ClassificationOptions o;
                     o.num_samples = 700; o.num_features = 18;
                     o.num_informative = 5; o.num_redundant = 4;
                     o.imbalance = 6.0; o.class_sep = 1.0; o.flip_y = 0.04;
                     return MakeClassification(o, MixSeed(s, 402),
                                               "imb_gauss_6x");
                   }});
  suite.push_back({"imb_moons", [](uint64_t s) {
                     return Imbalance(MakeMoons(900, 0.25, MixSeed(s, 403),
                                                "imb_moons"),
                                      4.0, MixSeed(s, 404));
                   }});
  suite.push_back({"imb_parity", [](uint64_t s) {
                     return Imbalance(
                         MakeXorParity(900, 2, 10, 0.04, MixSeed(s, 405),
                                       "imb_parity"),
                         3.0, MixSeed(s, 406));
                   }});
  VOLCANOML_CHECK(suite.size() == 30);
  return suite;
}

std::vector<DatasetSpec> RegressionSuite() {
  std::vector<DatasetSpec> suite;
  auto add_friedman1 = [&](std::string name, uint64_t tag, size_t n, size_t d,
                           double noise) {
    suite.push_back({name, [=](uint64_t s) {
                       return MakeFriedman1(n, d, noise, MixSeed(s, tag), name);
                     }});
  };
  add_friedman1("friedman1_easy", 501, 400, 8, 0.5);
  add_friedman1("friedman1_mid", 502, 400, 10, 1.0);
  add_friedman1("friedman1_hard", 503, 500, 15, 2.0);
  add_friedman1("friedman1_wide", 504, 400, 30, 1.0);
  add_friedman1("friedman1_noisy", 505, 500, 12, 4.0);
  add_friedman1("friedman1_small", 506, 250, 8, 1.0);

  auto add_friedman2 = [&](std::string name, uint64_t tag, size_t n,
                           double noise) {
    suite.push_back({name, [=](uint64_t s) {
                       return MakeFriedman2(n, noise, MixSeed(s, tag), name);
                     }});
  };
  add_friedman2("friedman2_easy", 511, 400, 10.0);
  add_friedman2("friedman2_hard", 512, 500, 80.0);
  add_friedman2("friedman2_small", 513, 250, 30.0);

  auto add_friedman3 = [&](std::string name, uint64_t tag, size_t n,
                           double noise) {
    suite.push_back({name, [=](uint64_t s) {
                       return MakeFriedman3(n, noise, MixSeed(s, tag), name);
                     }});
  };
  add_friedman3("friedman3_easy", 521, 400, 0.05);
  add_friedman3("friedman3_hard", 522, 500, 0.25);
  add_friedman3("friedman3_small", 523, 250, 0.1);

  auto add_linear = [&](std::string name, uint64_t tag, size_t n, size_t d,
                        size_t informative, double noise) {
    suite.push_back({name, [=](uint64_t s) {
                       return MakeLinearRegression(n, d, informative, noise,
                                                   MixSeed(s, tag), name);
                     }});
  };
  add_linear("linreg_dense", 531, 400, 10, 10, 5.0);
  add_linear("linreg_sparse", 532, 400, 25, 5, 5.0);
  add_linear("linreg_noisy", 533, 500, 15, 8, 40.0);
  add_linear("linreg_wide", 534, 300, 40, 8, 10.0);
  add_linear("linreg_clean", 535, 400, 12, 6, 1.0);
  add_linear("linreg_tiny", 536, 200, 8, 4, 5.0);
  add_linear("linreg_hard", 537, 500, 30, 15, 60.0);
  add_linear("linreg_verysparse", 538, 400, 35, 3, 8.0);
  VOLCANOML_CHECK(suite.size() == 20);
  return suite;
}

std::vector<DatasetSpec> LargeClassificationSuite() {
  std::vector<DatasetSpec> suite;
  suite.push_back(GaussianSpec("large_gauss_a", 601, 3000, 20, 8, 6, 2, 1.0, 0.05));
  suite.push_back(GaussianSpec("large_gauss_b", 602, 3000, 30, 10, 8, 3, 1.1, 0.04));
  suite.push_back(GaussianSpec("large_gauss_c", 603, 4000, 24, 8, 6, 4, 0.9, 0.05));
  suite.push_back(GaussianSpec("large_gauss_d", 604, 2500, 40, 10, 10, 2, 0.8, 0.06));
  // Higgs-like: hard, noisy, binary physics-style task.
  suite.push_back(GaussianSpec("higgs_like", 605, 5000, 28, 10, 8, 2, 0.6, 0.08));
  suite.push_back({"large_parity3", [](uint64_t s) {
                     return MakeXorParity(3000, 3, 20, 0.05, MixSeed(s, 606),
                                          "large_parity3");
                   }});
  suite.push_back({"large_parity4", [](uint64_t s) {
                     return MakeXorParity(3500, 4, 15, 0.04, MixSeed(s, 607),
                                          "large_parity4");
                   }});
  suite.push_back({"large_moons", [](uint64_t s) {
                     return MakeMoons(3000, 0.3, MixSeed(s, 608),
                                      "large_moons");
                   }});
  suite.push_back({"large_blobs", [](uint64_t s) {
                     return MakeBlobs(3000, 12, 5, 4.0, MixSeed(s, 609),
                                      "large_blobs");
                   }});
  suite.push_back(GaussianSpec("large_gauss_e", 610, 3500, 35, 12, 8, 3, 1.0, 0.05));
  VOLCANOML_CHECK(suite.size() == 10);
  return suite;
}

std::vector<DatasetSpec> ImbalancedSuite() {
  // Named after the paper's Table 2 style software-defect datasets.
  std::vector<DatasetSpec> suite;
  auto add = [&](std::string name, uint64_t tag, size_t n, size_t d,
                 double imbalance, double sep) {
    suite.push_back({name, [=](uint64_t s) {
                       ClassificationOptions o;
                       o.num_samples = n;
                       o.num_features = d;
                       o.num_informative = 5;
                       o.num_redundant = 3;
                       o.imbalance = imbalance;
                       o.class_sep = sep;
                       o.flip_y = 0.03;
                       return MakeClassification(o, MixSeed(s, tag), name);
                     }});
  };
  add("pc2", 701, 700, 20, 12.0, 0.9);
  add("pc4", 702, 700, 24, 8.0, 1.0);
  add("kc1", 703, 800, 16, 6.0, 0.8);
  add("ecoli_imb", 704, 500, 10, 9.0, 1.1);
  add("sick", 705, 900, 22, 14.0, 1.0);
  VOLCANOML_CHECK(suite.size() == 5);
  return suite;
}

std::vector<DatasetSpec> KaggleSuite() {
  std::vector<DatasetSpec> suite;
  suite.push_back(GaussianSpec("influence_network", 801, 1200, 22, 8, 6, 2, 0.9, 0.06));
  suite.push_back({"virus_prediction", [](uint64_t s) {
                     return MakeXorParity(1200, 3, 18, 0.05, MixSeed(s, 802),
                                          "virus_prediction");
                   }});
  suite.push_back(GaussianSpec("employee_access", 803, 1500, 30, 10, 8, 2, 0.8, 0.05));
  suite.push_back({"customer_satisfaction", [](uint64_t s) {
                     ClassificationOptions o;
                     o.num_samples = 1400; o.num_features = 26;
                     o.num_informative = 8; o.num_redundant = 6;
                     o.imbalance = 5.0; o.class_sep = 0.9; o.flip_y = 0.05;
                     return MakeClassification(o, MixSeed(s, 804),
                                               "customer_satisfaction");
                   }});
  suite.push_back(GaussianSpec("business_value", 805, 1000, 18, 6, 4, 3, 1.0, 0.05));
  suite.push_back({"flavours", [](uint64_t s) {
                     return MakeBlobs(1200, 14, 4, 4.5, MixSeed(s, 806),
                                      "flavours");
                   }});
  VOLCANOML_CHECK(suite.size() == 6);
  return suite;
}

DatasetSpec FindDatasetSpec(const std::string& name) {
  for (auto suite_fn : {&MediumClassificationSuite, &RegressionSuite,
                        &LargeClassificationSuite, &ImbalancedSuite,
                        &KaggleSuite}) {
    for (const DatasetSpec& spec : suite_fn()) {
      if (spec.name == name) return spec;
    }
  }
  VOLCANOML_CHECK_MSG(false, ("unknown dataset spec: " + name).c_str());
  return {};
}

}  // namespace volcanoml
