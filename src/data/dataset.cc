#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace volcanoml {

Dataset::Dataset(std::string name, Matrix x, std::vector<double> y,
                 TaskType task)
    : name_(std::move(name)),
      x_(std::move(x)),
      y_(std::move(y)),
      task_(task),
      num_classes_(0) {
  VOLCANOML_CHECK(x_.rows() == y_.size());
  if (task_ == TaskType::kClassification) {
    double max_label = -1.0;
    for (double label : y_) {
      VOLCANOML_CHECK_MSG(label >= 0.0 && label == std::floor(label),
                          "classification labels must be 0..k-1 integers");
      max_label = std::max(max_label, label);
    }
    num_classes_ = y_.empty() ? 0 : static_cast<size_t>(max_label) + 1;
  }
}

int Dataset::Label(size_t i) const {
  VOLCANOML_CHECK(task_ == TaskType::kClassification);
  VOLCANOML_CHECK(i < y_.size());
  return static_cast<int>(y_[i]);
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  std::vector<double> sub_y(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    VOLCANOML_CHECK(indices[i] < y_.size());
    sub_y[i] = y_[indices[i]];
  }
  Dataset out;
  out.name_ = name_;
  out.x_ = x_.SelectRows(indices);
  out.y_ = std::move(sub_y);
  out.task_ = task_;
  out.num_classes_ = num_classes_;
  return out;
}

Dataset Dataset::WithFeatures(Matrix new_x) const {
  VOLCANOML_CHECK(new_x.rows() == y_.size());
  Dataset out;
  out.name_ = name_;
  out.x_ = std::move(new_x);
  out.y_ = y_;
  out.task_ = task_;
  out.num_classes_ = num_classes_;
  return out;
}

void Dataset::ReplaceFeatures(Matrix new_x) {
  VOLCANOML_CHECK(new_x.rows() == y_.size());
  x_ = std::move(new_x);
}

namespace {

inline void FnvMix(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffULL;
    *h *= 1099511628211ULL;
  }
}

inline void FnvMixDouble(uint64_t* h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  FnvMix(h, bits);
}

}  // namespace

uint64_t Dataset::ContentHash() const {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis.
  FnvMix(&h, task_ == TaskType::kClassification ? 0 : 1);
  FnvMix(&h, x_.rows());
  FnvMix(&h, x_.cols());
  FnvMix(&h, num_classes_);
  for (size_t r = 0; r < x_.rows(); ++r) {
    for (size_t c = 0; c < x_.cols(); ++c) {
      FnvMixDouble(&h, x_(r, c));
    }
  }
  for (double v : y_) FnvMixDouble(&h, v);
  return h;
}

std::vector<size_t> Dataset::ClassCounts() const {
  VOLCANOML_CHECK(task_ == TaskType::kClassification);
  std::vector<size_t> counts(num_classes_, 0);
  for (double label : y_) counts[static_cast<size_t>(label)]++;
  return counts;
}

}  // namespace volcanoml
