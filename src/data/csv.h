#ifndef VOLCANOML_DATA_CSV_H_
#define VOLCANOML_DATA_CSV_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace volcanoml {

/// Loads a headerless numeric CSV whose last column is the target into a
/// Dataset. For classification, targets must be integer class ids.
[[nodiscard]] Result<Dataset> LoadCsvDataset(const std::string& path, TaskType task,
                               const std::string& name);

/// Writes a dataset as numeric CSV (features then target per row).
[[nodiscard]] Status SaveCsvDataset(const Dataset& data, const std::string& path);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_CSV_H_
