#ifndef VOLCANOML_DATA_CSV_H_
#define VOLCANOML_DATA_CSV_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace volcanoml {

/// Loads a headerless numeric CSV whose last column is the target into a
/// Dataset. For classification, targets must be integer class ids.
[[nodiscard]] Result<Dataset> LoadCsvDataset(const std::string& path, TaskType task,
                               const std::string& name);

/// Parses the same CSV format from an in-memory buffer — the path the
/// session daemon takes for datasets shipped inline over IPC, and the
/// parser LoadCsvDataset itself delegates to, so file-loaded and
/// wire-shipped datasets are bit-identical. `origin` labels error
/// messages (a path or a session description).
[[nodiscard]] Result<Dataset> ParseCsvDataset(const std::string& contents,
                                              TaskType task,
                                              const std::string& name,
                                              const std::string& origin);

/// Writes a dataset as numeric CSV (features then target per row).
[[nodiscard]] Status SaveCsvDataset(const Dataset& data, const std::string& path);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_CSV_H_
