#ifndef VOLCANOML_DATA_MATRIX_H_
#define VOLCANOML_DATA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace volcanoml {

/// Dense row-major matrix of doubles.
///
/// This is the single numeric container shared by datasets, feature
/// engineering operators, and models. It is intentionally minimal: the
/// project needs contiguous row access, a few column statistics, and small
/// dense products (for PCA/LDA), not a full BLAS. Transpose() and
/// Multiply() route through the blocked kernels in data/kernels.h; hot
/// loops that want dot/axpy/distance primitives use those kernels on the
/// RowPtr() storage directly.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] size_t rows() const { return rows_; }
  [[nodiscard]] size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t i, size_t j) {
    VOLCANOML_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    VOLCANOML_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row i (cols() contiguous doubles).
  double* RowPtr(size_t i) {
    VOLCANOML_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }
  const double* RowPtr(size_t i) const {
    VOLCANOML_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }

  /// Copies row i into a vector.
  [[nodiscard]] std::vector<double> Row(size_t i) const;

  /// Copies column j into a vector.
  [[nodiscard]] std::vector<double> Col(size_t j) const;

  /// Returns the rows selected by `indices`, in order (gather).
  [[nodiscard]] Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Returns the columns selected by `indices`, in order.
  [[nodiscard]] Matrix SelectCols(const std::vector<size_t>& indices) const;

  /// Horizontal concatenation; both matrices must have equal row counts.
  [[nodiscard]] static Matrix ConcatCols(const Matrix& a, const Matrix& b);

  /// Vertical concatenation; both matrices must have equal column counts.
  [[nodiscard]] static Matrix ConcatRows(const Matrix& a, const Matrix& b);

  /// Per-column means.
  [[nodiscard]] std::vector<double> ColMeans() const;

  /// Per-column sample standard deviations (0 for constant columns).
  [[nodiscard]] std::vector<double> ColStdDevs() const;

  /// Matrix transpose.
  [[nodiscard]] Matrix Transpose() const;

  /// Dense product this * other.
  [[nodiscard]] Matrix Multiply(const Matrix& other) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Symmetric eigen-decomposition via the cyclic Jacobi method.
/// `a` must be square and symmetric. Outputs eigenvalues in descending
/// order and the corresponding eigenvectors as the *columns* of
/// `eigenvectors`. Used by PCA and discriminant analysis.
void SymmetricEigen(const Matrix& a, std::vector<double>* eigenvalues,
                    Matrix* eigenvectors, int max_sweeps = 64);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_MATRIX_H_
