#include "data/libsvm.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace volcanoml {

Result<Dataset> LoadLibSvmDataset(const std::string& path, TaskType task,
                                  const std::string& name) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<double> labels;
  std::vector<std::vector<std::pair<size_t, double>>> rows;
  size_t max_feature = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string label_token;
    if (!(ss >> label_token)) continue;
    char* end = nullptr;
    double label = std::strtod(label_token.c_str(), &end);
    if (end == label_token.c_str()) {
      return Status::InvalidArgument("bad label at line " +
                                     std::to_string(line_no));
    }
    std::vector<std::pair<size_t, double>> row;
    std::string pair_token;
    while (ss >> pair_token) {
      size_t colon = pair_token.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("missing ':' at line " +
                                       std::to_string(line_no));
      }
      long index = std::strtol(pair_token.substr(0, colon).c_str(), &end,
                               10);
      if (index < 1) {
        return Status::InvalidArgument("feature indices are 1-based (line " +
                                       std::to_string(line_no) + ")");
      }
      double value =
          std::strtod(pair_token.substr(colon + 1).c_str(), &end);
      row.push_back({static_cast<size_t>(index - 1), value});
      max_feature = std::max(max_feature, static_cast<size_t>(index));
    }
    labels.push_back(label);
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("empty LibSVM file " + path);
  }

  Matrix x(rows.size(), max_feature);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (const auto& [index, value] : rows[i]) x(i, index) = value;
  }

  if (task == TaskType::kClassification) {
    // Remap arbitrary labels (e.g. {-1, +1}) to 0..k-1 by sorted value.
    std::map<double, double> remap;
    for (double label : labels) remap[label] = 0.0;
    double next_id = 0.0;
    for (auto& [value, id] : remap) id = next_id++;
    for (double& label : labels) label = remap[label];
  }
  return Dataset(name, std::move(x), std::move(labels), task);
}

Status SaveLibSvmDataset(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out.precision(17);  // Round-trip-exact doubles.
  for (size_t i = 0; i < data.NumSamples(); ++i) {
    out << data.y()[i];
    for (size_t j = 0; j < data.NumFeatures(); ++j) {
      out << ' ' << (j + 1) << ':' << data.x()(i, j);
    }
    out << '\n';
  }
  if (!out.good()) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace volcanoml
