#ifndef VOLCANOML_DATA_KERNELS_H_
#define VOLCANOML_DATA_KERNELS_H_

#include <cstddef>

namespace volcanoml {

/// Shared low-level compute kernels for the numeric hot paths.
///
/// Every dense inner loop in the system — matrix products, FE projections
/// (PCA / random projection / Nystroem), the linear-model and MLP training
/// loops, and brute-force kNN distances — bottoms out in one of these
/// primitives. Centralizing them buys three things: one place to apply
/// blocking/unrolling, one place to reason about determinism (all kernels
/// are sequential-deterministic: the same inputs always produce the same
/// bits, regardless of caller or thread), and one seam for the SIMD
/// backend behind them.
///
/// Dispatch: each kernel routes through the process-wide table resolved
/// once by data/simd.h — AVX2+FMA when the CPU supports it, the scalar
/// implementations otherwise, overridable with VOLCANOML_SIMD=scalar|avx2.
/// The scalar double path is the bit-reproducibility oracle (byte-for-byte
/// the pre-SIMD kernels). The elementwise kernels (Axpy, Scale, Transpose)
/// are bit-identical on every level — their AVX2 forms round exactly like
/// the scalar loops. The reductions (Dot, SquaredDistance, GemmTransB)
/// differ from scalar within normal reassociation/FMA rounding but are
/// themselves bit-stable run to run. Tests that must compare levels in
/// one process use data/simd.h's tables directly.
///
/// Each double kernel has a float overload — the storage/compute lane the
/// distance/GEMM-dominated models opt into via NumericPrecision
/// (data/precision.h). The float scalar implementations mirror the double
/// ones lane for lane, so the same determinism reasoning applies.
///
/// All kernels operate on raw pointers so both Matrix storage and plain
/// std::vector buffers can use them without adapters. No alignment is
/// required; SIMD paths use unaligned loads.

/// Dot product sum_i a[i] * b[i]. Four independent accumulators break the
/// floating-point dependency chain; the lane sums are combined in a fixed
/// order, so the result is deterministic (but not bit-identical to a
/// single-accumulator loop).
[[nodiscard]] double DotKernel(const double* a, const double* b, size_t n);
[[nodiscard]] float DotKernel(const float* a, const float* b, size_t n);

/// y[i] += alpha * x[i].
///
/// Contract: alpha == 0 is an exact identity — y is returned UNCHANGED
/// bit for bit, even when x contains NaN or Inf (they are NOT propagated
/// into y). This early-out is deliberate, on every ISA level: computing
/// `y[i] += 0.0 * x[i]` would flip -0.0 entries of y to +0.0 and seed
/// NaNs from non-finite x, silently changing bits that the snapshot /
/// trajectory reproducibility guarantees (and the hot training loops that
/// pass structurally-zero coefficients) rely on. Callers that need
/// IEEE-754 propagation semantics for a possibly-zero alpha must handle
/// that case themselves. Pinned by KernelsTest.AxpyZeroAlpha*.
void AxpyKernel(double alpha, const double* x, double* y, size_t n);
void AxpyKernel(float alpha, const float* x, float* y, size_t n);

/// x[i] *= alpha. Like AxpyKernel, alpha == 1 is an exact bit-for-bit
/// identity (NaN/Inf in x are left untouched rather than renormalized).
void ScaleKernel(double alpha, double* x, size_t n);
void ScaleKernel(float alpha, float* x, size_t n);

/// Squared Euclidean distance sum_i (a[i] - b[i])^2, same four-lane
/// scheme as DotKernel.
[[nodiscard]] double SquaredDistanceKernel(const double* a, const double* b,
                                           size_t n);
[[nodiscard]] float SquaredDistanceKernel(const float* a, const float* b,
                                          size_t n);

/// Blocked transpose: dst (cols x rows, row-major) = src (rows x cols,
/// row-major) transposed. Tiles the copy so both source rows and
/// destination rows stay cache-resident; src and dst must not alias.
void TransposeKernel(const double* src, size_t rows, size_t cols,
                     double* dst);
void TransposeKernel(const float* src, size_t rows, size_t cols, float* dst);

/// GEMM with a pre-transposed right operand:
///   c (m x n, row-major) = a (m x k, row-major) * bt^T,
/// where bt is n x k row-major (i.e. bt row j holds column j of B).
/// Both operands are walked contiguously, so the kernel is cache-friendly
/// for every shape; c is overwritten. The scalar path blocks over rows of
/// bt; the AVX2 path packs A/B panels and runs a register-blocked FMA
/// micro-kernel (see src/data/simd_avx2.cc).
void GemmTransBKernel(const double* a, const double* bt, double* c,
                      size_t m, size_t k, size_t n);
void GemmTransBKernel(const float* a, const float* bt, float* c, size_t m,
                      size_t k, size_t n);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_KERNELS_H_
