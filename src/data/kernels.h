#ifndef VOLCANOML_DATA_KERNELS_H_
#define VOLCANOML_DATA_KERNELS_H_

#include <cstddef>

namespace volcanoml {

/// Shared low-level compute kernels for the numeric hot paths.
///
/// Every dense inner loop in the system — matrix products, FE projections
/// (PCA / random projection / Nystroem), the linear-model and MLP training
/// loops, and brute-force kNN distances — bottoms out in one of these
/// primitives. Centralizing them buys three things: one place to apply
/// blocking/unrolling, one place to reason about determinism (all kernels
/// are sequential-deterministic: the same inputs always produce the same
/// bits, regardless of caller or thread), and one seam for a future SIMD
/// or accelerator backend.
///
/// All kernels operate on raw pointers so both Matrix storage and plain
/// std::vector buffers can use them without adapters.

/// Dot product sum_i a[i] * b[i]. Four independent accumulators break the
/// floating-point dependency chain; the lane sums are combined in a fixed
/// order, so the result is deterministic (but not bit-identical to a
/// single-accumulator loop).
[[nodiscard]] double DotKernel(const double* a, const double* b, size_t n);

/// y[i] += alpha * x[i]. No-op when alpha == 0.
void AxpyKernel(double alpha, const double* x, double* y, size_t n);

/// x[i] *= alpha.
void ScaleKernel(double alpha, double* x, size_t n);

/// Squared Euclidean distance sum_i (a[i] - b[i])^2, same four-lane
/// scheme as DotKernel.
[[nodiscard]] double SquaredDistanceKernel(const double* a, const double* b,
                                           size_t n);

/// Blocked transpose: dst (cols x rows, row-major) = src (rows x cols,
/// row-major) transposed. Tiles the copy so both source rows and
/// destination rows stay cache-resident; src and dst must not alias.
void TransposeKernel(const double* src, size_t rows, size_t cols,
                     double* dst);

/// GEMM with a pre-transposed right operand:
///   c (m x n, row-major) = a (m x k, row-major) * bt^T,
/// where bt is n x k row-major (i.e. bt row j holds column j of B).
/// Both operands are walked contiguously, so the kernel is cache-friendly
/// for every shape; c is overwritten. Blocked over rows of bt so the
/// active tile of B stays in cache across consecutive rows of a.
void GemmTransBKernel(const double* a, const double* bt, double* c,
                      size_t m, size_t k, size_t n);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_KERNELS_H_
