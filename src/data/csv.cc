#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace volcanoml {

Result<Dataset> LoadCsvDataset(const std::string& path, TaskType task,
                               const std::string& name) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed for " + path);
  }
  return ParseCsvDataset(buffer.str(), task, name, path);
}

Result<Dataset> ParseCsvDataset(const std::string& contents, TaskType task,
                                const std::string& name,
                                const std::string& origin) {
  std::stringstream in(contents);
  std::vector<std::vector<double>> rows;
  std::string line;
  size_t width = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<double> fields;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::InvalidArgument("non-numeric cell at line " +
                                       std::to_string(line_no) + " in " +
                                       origin);
      }
      fields.push_back(v);
    }
    if (fields.size() < 2) {
      return Status::InvalidArgument("row with fewer than 2 columns at line " +
                                     std::to_string(line_no));
    }
    if (width == 0) {
      width = fields.size();
    } else if (fields.size() != width) {
      return Status::InvalidArgument("ragged row at line " +
                                     std::to_string(line_no));
    }
    rows.push_back(std::move(fields));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV input " + origin);
  }
  Matrix x(rows.size(), width - 1);
  std::vector<double> y(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j + 1 < width; ++j) x(i, j) = rows[i][j];
    y[i] = rows[i][width - 1];
  }
  return Dataset(name, std::move(x), std::move(y), task);
}

Status SaveCsvDataset(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out.precision(17);  // Round-trip-exact doubles.
  for (size_t i = 0; i < data.NumSamples(); ++i) {
    for (size_t j = 0; j < data.NumFeatures(); ++j) {
      out << data.x()(i, j) << ',';
    }
    out << data.y()[i] << '\n';
  }
  if (!out.good()) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace volcanoml
