#ifndef VOLCANOML_DATA_SPLITS_H_
#define VOLCANOML_DATA_SPLITS_H_

#include <utility>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace volcanoml {

/// Index-level train/test partition of a dataset.
struct Split {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Random train/test split; stratified by class for classification so that
/// every fold sees the full label distribution (as in the paper's 4/5 vs
/// 1/5 protocol). `test_fraction` is in (0, 1).
[[nodiscard]] Split TrainTestSplit(const Dataset& data, double test_fraction, Rng* rng);

/// K-fold cross-validation splits; stratified for classification.
/// Returns k Split objects whose test sets partition the sample indices.
[[nodiscard]] std::vector<Split> KFoldSplits(const Dataset& data, size_t k, Rng* rng);

/// Uniform random subsample of `fraction` of the samples (at least
/// `min_samples`), stratified for classification. This is the fidelity
/// knob used by multi-fidelity optimization (MFES-HB) and by building
/// blocks' subsampled evaluations.
[[nodiscard]] std::vector<size_t> SubsampleIndices(const Dataset& data, double fraction,
                                     size_t min_samples, Rng* rng);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_SPLITS_H_
