#ifndef VOLCANOML_DATA_ALIGNED_H_
#define VOLCANOML_DATA_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace volcanoml {

/// Minimal 64-byte-aligned allocator for numeric scratch buffers.
///
/// The AVX2 reduction kernels (data/kernels.h) select aligned vector
/// loads when both operands sit on 32-byte boundaries — on the cores we
/// target that avoids cache-line-split loads and is worth ~40% on
/// L2-resident dot products. Alignment changes only which load
/// instruction runs, never lane order or arithmetic, so results are
/// bit-identical either way; buffers that want the fast path simply
/// allocate through this. 64 bytes covers a full cache line (and any
/// 32-byte vector), so element offsets that are multiples of 8 doubles
/// or 16 floats stay aligned too.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t kAlignment{64};

  AlignedAllocator() = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlignment));
  }
  void deallocate(T* p, size_t) { ::operator delete(p, kAlignment); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U>;
  };
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_ALIGNED_H_
