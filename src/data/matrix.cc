#include "data/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/kernels.h"

namespace volcanoml {

std::vector<double> Matrix::Row(size_t i) const {
  VOLCANOML_CHECK(i < rows_);
  return std::vector<double>(RowPtr(i), RowPtr(i) + cols_);
}

std::vector<double> Matrix::Col(size_t j) const {
  VOLCANOML_CHECK(j < cols_);
  std::vector<double> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t r = 0; r < indices.size(); ++r) {
    VOLCANOML_CHECK(indices[r] < rows_);
    std::copy(RowPtr(indices[r]), RowPtr(indices[r]) + cols_, out.RowPtr(r));
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& indices) const {
  Matrix out(rows_, indices.size());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t c = 0; c < indices.size(); ++c) {
      VOLCANOML_CHECK(indices[c] < cols_);
      out(i, c) = (*this)(i, indices[c]);
    }
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& a, const Matrix& b) {
  VOLCANOML_CHECK(a.rows() == b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    std::copy(a.RowPtr(i), a.RowPtr(i) + a.cols(), out.RowPtr(i));
    std::copy(b.RowPtr(i), b.RowPtr(i) + b.cols(), out.RowPtr(i) + a.cols());
  }
  return out;
}

Matrix Matrix::ConcatRows(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  VOLCANOML_CHECK(a.cols() == b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::copy(a.data().begin(), a.data().end(), out.data().begin());
  std::copy(b.data().begin(), b.data().end(),
            out.data().begin() + static_cast<long>(a.data().size()));
  return out;
}

std::vector<double> Matrix::ColMeans() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) means[j] += row[j];
  }
  for (double& m : means) m /= static_cast<double>(rows_);
  return means;
}

std::vector<double> Matrix::ColStdDevs() const {
  std::vector<double> sds(cols_, 0.0);
  if (rows_ < 2) return sds;
  std::vector<double> means = ColMeans();
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) {
      double d = row[j] - means[j];
      sds[j] += d * d;
    }
  }
  for (double& s : sds) s = std::sqrt(s / static_cast<double>(rows_ - 1));
  return sds;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  if (!empty()) TransposeKernel(data_.data(), rows_, cols_, out.data().data());
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  VOLCANOML_CHECK(cols_ == other.rows());
  Matrix out(rows_, other.cols());
  if (empty() || other.cols() == 0) return out;
  // One blocked transpose makes every inner product walk both operands
  // contiguously; it pays for itself whenever k > a few dozen and is
  // noise for the small matrices (its cost is one extra pass over B).
  Matrix bt = other.Transpose();
  GemmTransBKernel(data_.data(), bt.data().data(), out.data().data(), rows_,
                   cols_, other.cols());
  return out;
}

void SymmetricEigen(const Matrix& a, std::vector<double>* eigenvalues,
                    Matrix* eigenvectors, int max_sweeps) {
  const size_t n = a.rows();
  VOLCANOML_CHECK(a.cols() == n);
  Matrix m = a;  // Working copy; rotated in place.
  Matrix v(n, n);
  for (size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (off < 1e-20) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = m(p, q);
        if (std::abs(apq) < 1e-15) continue;
        double app = m(p, p), aqq = m(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          double mkp = m(k, p), mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double mpk = m(p, k), mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = m(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  eigenvalues->resize(n);
  *eigenvectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    (*eigenvalues)[c] = diag[order[c]];
    for (size_t r = 0; r < n; ++r) (*eigenvectors)(r, c) = v(r, order[c]);
  }
}

}  // namespace volcanoml
