#ifndef VOLCANOML_DATA_SYNTHETIC_H_
#define VOLCANOML_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace volcanoml {

/// Synthetic dataset generators.
///
/// The paper evaluates on 60 OpenML datasets and 6 Kaggle competitions
/// that are not available offline; these parameterized generators produce
/// the stand-in pool (see DESIGN.md "Reproduction constraints"). They
/// mirror scikit-learn's make_* family so the response surfaces span the
/// same axes of difficulty: linearity, class separation, label noise,
/// redundant/noise features, and class imbalance.

/// Options for MakeClassification (sklearn-style informative/redundant/
/// noise feature construction around class centroids).
struct ClassificationOptions {
  size_t num_samples = 500;
  size_t num_features = 20;
  size_t num_informative = 5;
  size_t num_redundant = 4;
  size_t num_classes = 2;
  double class_sep = 1.0;
  double flip_y = 0.01;   ///< Fraction of labels randomly flipped.
  double imbalance = 1.0; ///< Ratio of class-0 mass to other classes (>=1).
};

/// Gaussian class centroids in an informative subspace, plus redundant
/// linear combinations and pure-noise features.
[[nodiscard]] Dataset MakeClassification(const ClassificationOptions& opts, uint64_t seed,
                           const std::string& name = "classification");

/// Isotropic Gaussian blobs, one per class.
[[nodiscard]] Dataset MakeBlobs(size_t num_samples, size_t num_features, size_t num_classes,
                  double cluster_std, uint64_t seed,
                  const std::string& name = "blobs");

/// Two interleaved half-moons (binary, nonlinear boundary).
[[nodiscard]] Dataset MakeMoons(size_t num_samples, double noise, uint64_t seed,
                  const std::string& name = "moons");

/// Two concentric circles (binary, radially separable).
[[nodiscard]] Dataset MakeCircles(size_t num_samples, double noise, double factor,
                    uint64_t seed, const std::string& name = "circles");

/// Madelon-like XOR/parity task on hypercube vertices with distractor
/// noise features; hard for linear models, easy for trees.
[[nodiscard]] Dataset MakeXorParity(size_t num_samples, size_t num_parity_bits,
                      size_t num_noise_features, double flip_y, uint64_t seed,
                      const std::string& name = "xor_parity");

/// Friedman #1 regression: y = 10 sin(pi x1 x2) + 20 (x3-.5)^2 + 10 x4
/// + 5 x5 + noise, with extra irrelevant features.
[[nodiscard]] Dataset MakeFriedman1(size_t num_samples, size_t num_features, double noise,
                      uint64_t seed, const std::string& name = "friedman1");

/// Friedman #2 regression (nonlinear interaction of 4 variables).
[[nodiscard]] Dataset MakeFriedman2(size_t num_samples, double noise, uint64_t seed,
                      const std::string& name = "friedman2");

/// Friedman #3 regression (arctangent response).
[[nodiscard]] Dataset MakeFriedman3(size_t num_samples, double noise, uint64_t seed,
                      const std::string& name = "friedman3");

/// Sparse linear regression with Gaussian design.
[[nodiscard]] Dataset MakeLinearRegression(size_t num_samples, size_t num_features,
                             size_t num_informative, double noise,
                             uint64_t seed,
                             const std::string& name = "linreg");

/// Downsamples classes 1..k-1 so the minority:majority ratio becomes
/// roughly 1:`ratio`; used by the Table 2 imbalanced-dataset experiments.
[[nodiscard]] Dataset Imbalance(const Dataset& data, double ratio, uint64_t seed);

/// Synthetic "image" task: each sample is a flattened pixel grid whose
/// class signal lives in localized patterns plus heavy pixel noise; raw
/// pixels are nearly useless to shallow models, mirroring dogs-vs-cats.
/// Used by the embedding-selection experiment (E5).
[[nodiscard]] Dataset MakeSyntheticImages(size_t num_samples, size_t image_side,
                            double noise, uint64_t seed,
                            const std::string& name = "synthetic_images");

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_SYNTHETIC_H_
