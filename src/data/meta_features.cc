#include "data/meta_features.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "data/splits.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace volcanoml {

namespace {

/// Leave-one-out 1-NN score on (at most) the first 100 samples of `idx`.
double OneNnLandmark(const Dataset& data, const std::vector<size_t>& idx) {
  const size_t n = std::min<size_t>(idx.size(), 100);
  if (n < 4) return 0.0;
  double score = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double best_dist = std::numeric_limits<double>::infinity();
    size_t best = 0;
    const double* xi = data.x().RowPtr(idx[i]);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double* xj = data.x().RowPtr(idx[j]);
      double dist = 0.0;
      for (size_t f = 0; f < data.NumFeatures(); ++f) {
        double diff = xi[f] - xj[f];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = j;
      }
    }
    if (data.task() == TaskType::kClassification) {
      score += (data.y()[idx[i]] == data.y()[idx[best]]) ? 1.0 : 0.0;
    } else {
      double err = data.y()[idx[i]] - data.y()[idx[best]];
      score -= err * err;
    }
  }
  return score / static_cast<double>(n);
}

/// Best single-feature threshold predictor evaluated in-sample on `idx`.
double StumpLandmark(const Dataset& data, const std::vector<size_t>& idx) {
  const size_t n = std::min<size_t>(idx.size(), 200);
  if (n < 4) return 0.0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t f = 0; f < data.NumFeatures(); ++f) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) values[i] = data.x()(idx[i], f);
    double threshold = Median(values);
    if (data.task() == TaskType::kClassification) {
      // Majority label on each side of the threshold.
      std::vector<double> left_counts(data.NumClasses(), 0.0);
      std::vector<double> right_counts(data.NumClasses(), 0.0);
      for (size_t i = 0; i < n; ++i) {
        auto& counts = values[i] <= threshold ? left_counts : right_counts;
        counts[static_cast<size_t>(data.y()[idx[i]])] += 1.0;
      }
      double correct =
          (left_counts.empty() ? 0.0 : left_counts[ArgMax(left_counts)]) +
          (right_counts.empty() ? 0.0 : right_counts[ArgMax(right_counts)]);
      best_score = std::max(best_score, correct / static_cast<double>(n));
    } else {
      // Per-side mean predictor; score is negative MSE.
      double left_sum = 0.0, right_sum = 0.0;
      size_t left_n = 0, right_n = 0;
      for (size_t i = 0; i < n; ++i) {
        if (values[i] <= threshold) {
          left_sum += data.y()[idx[i]];
          ++left_n;
        } else {
          right_sum += data.y()[idx[i]];
          ++right_n;
        }
      }
      double left_mean = left_n ? left_sum / static_cast<double>(left_n) : 0.0;
      double right_mean =
          right_n ? right_sum / static_cast<double>(right_n) : 0.0;
      double sse = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double pred = values[i] <= threshold ? left_mean : right_mean;
        double err = data.y()[idx[i]] - pred;
        sse += err * err;
      }
      best_score = std::max(best_score, -sse / static_cast<double>(n));
    }
  }
  return best_score;
}

}  // namespace

std::vector<double> ComputeMetaFeatures(const Dataset& data, uint64_t seed) {
  VOLCANOML_CHECK(data.NumSamples() > 0);
  Rng rng(seed);
  std::vector<double> mf;
  mf.reserve(10);
  mf.push_back(std::log(static_cast<double>(data.NumSamples())));
  mf.push_back(std::log(static_cast<double>(data.NumFeatures())));
  if (data.task() == TaskType::kClassification) {
    mf.push_back(static_cast<double>(data.NumClasses()));
    double entropy = 0.0;
    for (size_t count : data.ClassCounts()) {
      if (count == 0) continue;
      double p = static_cast<double>(count) /
                 static_cast<double>(data.NumSamples());
      entropy -= p * std::log(p);
    }
    mf.push_back(entropy);
  } else {
    mf.push_back(0.0);
    mf.push_back(0.0);
  }
  std::vector<double> means = data.x().ColMeans();
  std::vector<double> sds = data.x().ColStdDevs();
  mf.push_back(Mean(means));
  mf.push_back(Mean(sds));
  mf.push_back(StdDev(sds));

  // Mean absolute feature-target correlation over up to 20 features.
  const size_t num_probe = std::min<size_t>(data.NumFeatures(), 20);
  std::vector<double> correlations;
  for (size_t f = 0; f < num_probe; ++f) {
    correlations.push_back(
        std::abs(PearsonCorrelation(data.x().Col(f), data.y())));
  }
  mf.push_back(Mean(correlations));

  std::vector<size_t> idx =
      SubsampleIndices(data, 0.5, std::min<size_t>(data.NumSamples(), 50),
                       &rng);
  mf.push_back(OneNnLandmark(data, idx));
  mf.push_back(StumpLandmark(data, idx));
  return mf;
}

double MetaFeatureDistance(const std::vector<double>& a,
                           const std::vector<double>& b,
                           const std::vector<double>& scales) {
  VOLCANOML_CHECK(a.size() == b.size());
  double dist = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double scale = (i < scales.size() && scales[i] > 0.0) ? scales[i] : 1.0;
    double diff = (a[i] - b[i]) / scale;
    dist += diff * diff;
  }
  return std::sqrt(dist);
}

}  // namespace volcanoml
