#ifndef VOLCANOML_DATA_DATASET_H_
#define VOLCANOML_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/matrix.h"

namespace volcanoml {

/// Kind of supervised learning task a dataset represents.
enum class TaskType { kClassification, kRegression };

/// An in-memory supervised dataset: a dense feature matrix plus targets.
///
/// For classification, targets are class indices 0..num_classes-1 stored as
/// doubles; for regression, targets are real values. This mirrors the
/// (X, y) convention of scikit-learn, which the paper's pipelines assume.
class Dataset {
 public:
  Dataset() : task_(TaskType::kClassification), num_classes_(0) {}
  Dataset(std::string name, Matrix x, std::vector<double> y, TaskType task);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] TaskType task() const { return task_; }
  [[nodiscard]] size_t NumSamples() const { return x_.rows(); }
  [[nodiscard]] size_t NumFeatures() const { return x_.cols(); }

  /// Number of distinct classes (classification only; 0 for regression).
  [[nodiscard]] size_t NumClasses() const { return num_classes_; }

  const Matrix& x() const { return x_; }
  Matrix& mutable_x() { return x_; }
  const std::vector<double>& y() const { return y_; }
  std::vector<double>& mutable_y() { return y_; }

  /// Integer label of sample i (classification only).
  [[nodiscard]] int Label(size_t i) const;

  /// Returns the subset of samples selected by `indices`, preserving task
  /// metadata (class count is kept from the parent so that folds missing a
  /// rare class still agree on the label universe).
  [[nodiscard]] Dataset Subset(const std::vector<size_t>& indices) const;

  /// Replaces the feature matrix, keeping targets and metadata. Used by
  /// feature-engineering operators that change dimensionality.
  [[nodiscard]] Dataset WithFeatures(Matrix new_x) const;

  /// In-place variant of WithFeatures: swaps in a new feature matrix
  /// without touching targets or metadata.
  void ReplaceFeatures(Matrix new_x);

  /// Per-class sample counts (classification only).
  [[nodiscard]] std::vector<size_t> ClassCounts() const;

  /// FNV-1a hash of the dataset's contents: task, shape, class count and
  /// the IEEE-754 bit patterns of every feature and target value. The
  /// name is deliberately excluded — two datasets with identical contents
  /// hash equal regardless of what they are called, and renaming a
  /// dataset cannot change its identity. The meta-learning knowledge
  /// base keys self-transfer exclusion on this hash.
  [[nodiscard]] uint64_t ContentHash() const;

 private:
  std::string name_;
  Matrix x_;
  std::vector<double> y_;
  TaskType task_;
  size_t num_classes_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_DATASET_H_
