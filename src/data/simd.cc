#include "data/simd.h"

#include <cstdlib>

#include "data/precision.h"
#include "util/logging.h"

namespace volcanoml {

const char* NumericPrecisionName(NumericPrecision precision) {
  switch (precision) {
    case NumericPrecision::kFloat64:
      return "f64";
    case NumericPrecision::kFloat32:
      return "f32";
  }
  return "?";
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

Result<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  return Status::InvalidArgument("unknown SIMD level '" + name +
                                 "' (expected scalar or avx2)");
}

namespace {

/// One-shot resolution: env override first, then the CPU probe. Runs
/// before any kernel executes (the active table is resolved through it),
/// so a whole process — including forked workers, which inherit the
/// environment — computes on exactly one level.
SimdLevel ResolveSimdLevel() {
  const char* env = std::getenv("VOLCANOML_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Result<SimdLevel> parsed = ParseSimdLevel(env);
    if (!parsed.ok()) {
      VOLCANOML_LOG(Warning)
          << "VOLCANOML_SIMD=" << env
          << " is not a known level (scalar|avx2); auto-detecting instead";
    } else if (parsed.value() == SimdLevel::kAvx2 &&
               Avx2KernelTable() == nullptr) {
      VOLCANOML_LOG(Warning)
          << "VOLCANOML_SIMD=avx2 requested but this CPU/build lacks "
             "AVX2+FMA; falling back to scalar";
      return SimdLevel::kScalar;
    } else {
      return parsed.value();
    }
  }
  return Avx2KernelTable() != nullptr ? SimdLevel::kAvx2
                                      : SimdLevel::kScalar;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = ResolveSimdLevel();
  return level;
}

const KernelTable& ActiveKernelTable() {
  static const KernelTable& table = ActiveSimdLevel() == SimdLevel::kAvx2
                                        ? *Avx2KernelTable()
                                        : ScalarKernelTable();
  return table;
}

}  // namespace volcanoml
