#ifndef VOLCANOML_DATA_LIBSVM_H_
#define VOLCANOML_DATA_LIBSVM_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace volcanoml {

/// Loads a LibSVM/SVMlight-format file ("label idx:val idx:val ...",
/// 1-based feature indices, sparse) into a dense Dataset. Unlisted
/// features are zero. For classification, labels may be arbitrary
/// integers (including {-1, +1}); they are remapped to 0..k-1 in order of
/// first appearance by value.
[[nodiscard]] Result<Dataset> LoadLibSvmDataset(const std::string& path, TaskType task,
                                  const std::string& name);

/// Writes a dataset in LibSVM format (all features listed, 1-based).
[[nodiscard]] Status SaveLibSvmDataset(const Dataset& data, const std::string& path);

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_LIBSVM_H_
