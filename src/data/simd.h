#ifndef VOLCANOML_DATA_SIMD_H_
#define VOLCANOML_DATA_SIMD_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace volcanoml {

/// Runtime SIMD dispatch for the compute kernels (data/kernels.h).
///
/// The public kernels route through one function-pointer table resolved
/// exactly once per process, so every caller — FE projections, model
/// training loops, kNN distances — runs the same ISA level for the whole
/// run. Resolution order:
///
///   1. $VOLCANOML_SIMD, when set to "scalar" or "avx2" (an "avx2"
///      request on a CPU without AVX2+FMA falls back to scalar with a
///      warning; any other value is ignored with a warning);
///   2. otherwise the highest level the CPU supports: avx2 when the
///      CPUID probe reports AVX2 and FMA, scalar everywhere else.
///
/// Determinism contract: every kernel in every table is
/// sequential-deterministic (same inputs, same bits, independent of
/// caller or thread), and the scalar double-precision table is the
/// bit-reproducibility oracle — its implementations are byte-for-byte
/// the pre-SIMD kernels, so `VOLCANOML_SIMD=scalar` runs reproduce
/// historical trajectories exactly. Levels are NOT bit-identical to each
/// other (AVX2 uses wider lanes and FMA contraction); forcing a level
/// pins the bits.
///
/// All intrinsics and CPUID probing live in src/data/simd_avx2.cc —
/// determinism rule R16 (tools/determinism_check.py) keeps them out of
/// every other layer, so the scalar oracle always covers the full
/// surface.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

/// Short stable name for logging/CLI, e.g. "avx2".
[[nodiscard]] const char* SimdLevelName(SimdLevel level);

/// Parses "scalar" or "avx2"; anything else is InvalidArgument.
[[nodiscard]] Result<SimdLevel> ParseSimdLevel(const std::string& name);

/// One ISA level's kernel implementations, double and float lanes. The
/// pointers are never null within a published table; a level that cannot
/// run on this CPU simply has no table (see Avx2KernelTable).
struct KernelTable {
  double (*dot_f64)(const double* a, const double* b, size_t n);
  void (*axpy_f64)(double alpha, const double* x, double* y, size_t n);
  void (*scale_f64)(double alpha, double* x, size_t n);
  double (*squared_distance_f64)(const double* a, const double* b, size_t n);
  void (*transpose_f64)(const double* src, size_t rows, size_t cols,
                        double* dst);
  void (*gemm_trans_b_f64)(const double* a, const double* bt, double* c,
                           size_t m, size_t k, size_t n);

  float (*dot_f32)(const float* a, const float* b, size_t n);
  void (*axpy_f32)(float alpha, const float* x, float* y, size_t n);
  void (*scale_f32)(float alpha, float* x, size_t n);
  float (*squared_distance_f32)(const float* a, const float* b, size_t n);
  void (*transpose_f32)(const float* src, size_t rows, size_t cols,
                        float* dst);
  void (*gemm_trans_b_f32)(const float* a, const float* bt, float* c,
                           size_t m, size_t k, size_t n);
};

/// The level the process resolved to (computed once, then cached).
[[nodiscard]] SimdLevel ActiveSimdLevel();

/// The table the public kernels dispatch through (matches
/// ActiveSimdLevel).
[[nodiscard]] const KernelTable& ActiveKernelTable();

/// The scalar oracle table. Always available; tests drive it directly to
/// compare levels within one process regardless of the environment.
[[nodiscard]] const KernelTable& ScalarKernelTable();

/// The AVX2+FMA table, or nullptr when the build target or the running
/// CPU cannot execute it.
[[nodiscard]] const KernelTable* Avx2KernelTable();

}  // namespace volcanoml

#endif  // VOLCANOML_DATA_SIMD_H_
