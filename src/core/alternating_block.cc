#include "core/alternating_block.h"

#include "util/check.h"

namespace volcanoml {

AlternatingBlock::AlternatingBlock(std::string name,
                                   std::unique_ptr<BuildingBlock> block_a,
                                   std::vector<std::string> variables_a,
                                   std::unique_ptr<BuildingBlock> block_b,
                                   std::vector<std::string> variables_b,
                                   size_t init_rounds)
    : BuildingBlock(std::move(name)),
      a_(std::move(block_a)),
      vars_a_(std::move(variables_a)),
      b_(std::move(block_b)),
      vars_b_(std::move(variables_b)),
      init_pulls_remaining_(2 * init_rounds) {
  VOLCANOML_CHECK(a_ != nullptr && b_ != nullptr);
}

void AlternatingBlock::SetVar(const Assignment& vars) {
  BuildingBlock::SetVar(vars);
  a_->SetVar(vars);
  b_->SetVar(vars);
}

void AlternatingBlock::WarmStart(const Assignment& assignment) {
  // Each child extracts the variables it owns from the candidate.
  a_->WarmStart(assignment);
  b_->WarmStart(assignment);
}

void AlternatingBlock::WarmStartHistory(const Assignment& assignment,
                                        double utility) {
  // Each half sees the observation projected onto its own subspace.
  a_->WarmStartHistory(assignment, utility);
  b_->WarmStartHistory(assignment, utility);
}

void AlternatingBlock::CollectArmWinners(std::vector<ArmWinner>* out) const {
  a_->CollectArmWinners(out);
  b_->CollectArmWinners(out);
}

void AlternatingBlock::SaveState(SnapshotWriter* w) const {
  BuildingBlock::SaveState(w);
  w->Begin("alternating");
  w->U64("init_pulls_remaining", init_pulls_remaining_);
  w->Bool("next_init_is_a", next_init_is_a_);
  a_->SaveState(w);
  b_->SaveState(w);
  w->End("alternating");
}

void AlternatingBlock::LoadState(SnapshotReader* r) {
  BuildingBlock::LoadState(r);
  r->Begin("alternating");
  init_pulls_remaining_ = r->U64("init_pulls_remaining");
  next_init_is_a_ = r->Bool("next_init_is_a");
  a_->LoadState(r);
  b_->LoadState(r);
  r->End("alternating");
}

void AlternatingBlock::ShareBest(const BuildingBlock& from,
                                 const std::vector<std::string>& variables,
                                 BuildingBlock* to) {
  if (!from.HasObservations()) return;
  const Assignment& best = from.BestAssignment();
  Assignment shared;
  for (const std::string& var : variables) {
    auto it = best.find(var);
    if (it != best.end()) shared[var] = it->second;
  }
  if (!shared.empty()) to->SetVar(shared);
}

void AlternatingBlock::Pull(BuildingBlock* winner, const BuildingBlock& other,
                            const std::vector<std::string>& other_vars,
                            double k_more, size_t batch_size) {
  // Algorithm 3 lines 4-6 / 8-10: substitute the loser's incumbent into
  // the winner before pulling it.
  ShareBest(other, other_vars, winner);
  winner->DoNext(k_more, batch_size);
  AbsorbBest(*winner);
}

void AlternatingBlock::DoNextImpl(double k_more, size_t batch_size) {
  if (init_pulls_remaining_ > 0) {
    // Algorithm 2: strict round-robin with best-exchange.
    --init_pulls_remaining_;
    if (next_init_is_a_) {
      Pull(a_.get(), *b_, vars_b_, k_more, batch_size);
    } else {
      Pull(b_.get(), *a_, vars_a_, k_more, batch_size);
    }
    next_init_is_a_ = !next_init_is_a_;
    return;
  }

  // Algorithm 3: pull the child with the larger EUI.
  double eui_a = a_->GetEui();
  double eui_b = b_->GetEui();
  if (eui_a >= eui_b) {
    Pull(a_.get(), *b_, vars_b_, k_more, batch_size);
  } else {
    Pull(b_.get(), *a_, vars_a_, k_more, batch_size);
  }
}

}  // namespace volcanoml
