#include "core/ensemble.h"

#include <algorithm>
#include <limits>
#include <set>

#include "data/splits.h"
#include "ml/metrics.h"
#include "util/check.h"
#include "util/rng.h"

namespace volcanoml {

EnsembleSelector::EnsembleSelector(const SearchSpace* space,
                                   const Options& options)
    : space_(space), options_(options) {
  VOLCANOML_CHECK(space_ != nullptr);
  VOLCANOML_CHECK(options_.max_members >= 1);
}

Status EnsembleSelector::Build(const std::vector<Assignment>& candidates,
                               const Dataset& train) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no ensemble candidates");
  }
  task_ = train.task();
  num_classes_ =
      task_ == TaskType::kClassification ? train.NumClasses() : 0;

  // Carve a validation split for the greedy selection.
  Rng rng(options_.seed);
  Split split = TrainTestSplit(train, options_.validation_fraction, &rng);
  Dataset fit_part = train.Subset(split.train);
  Dataset valid_part = train.Subset(split.test);

  // Fit each candidate on the fit part; collect validation predictions.
  PipelineEvaluator fitter(space_, &fit_part, {});
  std::vector<std::vector<double>> valid_preds;
  members_.clear();
  for (const Assignment& assignment : candidates) {
    Result<FittedPipeline> pipeline = fitter.FitFinal(assignment);
    if (!pipeline.ok()) continue;
    valid_preds.push_back(pipeline.value().Predict(valid_part.x()));
    members_.push_back(std::move(pipeline).value());
  }
  if (members_.empty()) {
    return Status::Internal("no candidate pipeline could be fitted");
  }

  // Greedy forward selection with replacement.
  weights_.assign(members_.size(), 0);
  const size_t n_valid = valid_part.NumSamples();
  // Running sums: per-class vote counts (cls) or prediction sum (reg).
  std::vector<std::vector<double>> votes;
  std::vector<double> sum(n_valid, 0.0);
  if (task_ == TaskType::kClassification) {
    votes.assign(n_valid, std::vector<double>(num_classes_, 0.0));
  }
  size_t total_selected = 0;

  auto ensemble_utility_with = [&](size_t candidate) {
    std::vector<double> pred(n_valid);
    for (size_t i = 0; i < n_valid; ++i) {
      if (task_ == TaskType::kClassification) {
        std::vector<double> v = votes[i];
        v[static_cast<size_t>(valid_preds[candidate][i])] += 1.0;
        pred[i] = static_cast<double>(
            std::distance(v.begin(), std::max_element(v.begin(), v.end())));
      } else {
        pred[i] = (sum[i] + valid_preds[candidate][i]) /
                  static_cast<double>(total_selected + 1);
      }
    }
    return Utility(valid_part, pred);
  };

  for (size_t round = 0; round < options_.max_members; ++round) {
    double best_utility = -std::numeric_limits<double>::infinity();
    size_t best_candidate = 0;
    for (size_t c = 0; c < members_.size(); ++c) {
      double utility = ensemble_utility_with(c);
      if (utility > best_utility) {
        best_utility = utility;
        best_candidate = c;
      }
    }
    weights_[best_candidate] += 1;
    ++total_selected;
    for (size_t i = 0; i < n_valid; ++i) {
      if (task_ == TaskType::kClassification) {
        votes[i][static_cast<size_t>(valid_preds[best_candidate][i])] += 1.0;
      } else {
        sum[i] += valid_preds[best_candidate][i];
      }
    }
  }
  return Status::Ok();
}

std::vector<double> EnsembleSelector::Predict(const Matrix& x) const {
  VOLCANOML_CHECK(!members_.empty());
  const size_t n = x.rows();
  std::vector<double> out(n);
  if (task_ == TaskType::kClassification) {
    std::vector<std::vector<double>> votes(
        n, std::vector<double>(num_classes_, 0.0));
    for (size_t m = 0; m < members_.size(); ++m) {
      if (weights_[m] == 0) continue;
      std::vector<double> pred = members_[m].Predict(x);
      for (size_t i = 0; i < n; ++i) {
        votes[i][static_cast<size_t>(pred[i])] +=
            static_cast<double>(weights_[m]);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(
          std::distance(votes[i].begin(),
                        std::max_element(votes[i].begin(), votes[i].end())));
    }
    return out;
  }
  double total_weight = 0.0;
  for (size_t m = 0; m < members_.size(); ++m) {
    if (weights_[m] == 0) continue;
    std::vector<double> pred = members_[m].Predict(x);
    for (size_t i = 0; i < n; ++i) {
      out[i] += static_cast<double>(weights_[m]) * pred[i];
    }
    total_weight += static_cast<double>(weights_[m]);
  }
  for (double& v : out) v /= total_weight;
  return out;
}

size_t EnsembleSelector::NumDistinctMembers() const {
  size_t distinct = 0;
  for (size_t w : weights_) {
    if (w > 0) ++distinct;
  }
  return distinct;
}

std::vector<Assignment> TopKAssignments(
    const std::vector<std::pair<Assignment, double>>& observations,
    size_t k) {
  std::vector<size_t> order(observations.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return observations[a].second > observations[b].second;
  });
  std::vector<Assignment> out;
  std::set<std::vector<double>> seen;  // Dedup on the value vector.
  for (size_t idx : order) {
    if (out.size() >= k) break;
    std::vector<double> key;
    key.reserve(observations[idx].first.size());
    for (const auto& [name, value] : observations[idx].first) {
      key.push_back(value);
    }
    if (!seen.insert(key).second) continue;
    out.push_back(observations[idx].first);
  }
  return out;
}

}  // namespace volcanoml
