#ifndef VOLCANOML_CORE_CONDITIONING_BLOCK_H_
#define VOLCANOML_CORE_CONDITIONING_BLOCK_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/building_block.h"

namespace volcanoml {

/// Conditioning block (paper Section 3.3.2 and Algorithm 1): partitions
/// the subspace on one categorical variable and runs a multi-armed bandit
/// over the resulting child blocks, eliminating arms whose rising-bandit
/// upper bound is dominated by another arm's lower bound.
///
/// Algorithm 1 plays every active arm L times per invocation and then
/// eliminates; here each DoNext plays each active arm once and the
/// elimination check runs every `rounds_per_elimination` (= L) rounds —
/// the same schedule, spread over DoNext calls so the Volcano-style
/// executor can interleave at a finer grain.
class ConditioningBlock : public BuildingBlock {
 public:
  /// Arm-elimination policy. The paper defaults to rising-bandit bounds
  /// and notes that successive-halving-style schedules can be swapped in
  /// (Section 3.3.4).
  enum class EliminationPolicy {
    /// Eliminate arms whose EU upper bound is dominated (Algorithm 1).
    kRisingBandit,
    /// Fixed schedule: halve the active set (keep the better half by
    /// current best utility) at every elimination checkpoint.
    kSuccessiveHalving,
  };

  /// Creates the child block for arm `choice_index`; the child must
  /// already carry the context {variable = value(choice_index)}.
  using ChildFactory =
      std::function<std::unique_ptr<BuildingBlock>(size_t choice_index)>;

  /// `variable` is the conditioned joint-space parameter name (e.g.
  /// "algorithm"); `num_choices` its domain size.
  ConditioningBlock(
      std::string name, std::string variable, size_t num_choices,
      const ChildFactory& factory, size_t rounds_per_elimination = 5,
      EliminationPolicy policy = EliminationPolicy::kRisingBandit,
      TrialGuardPolicy guard = {});

  void SetVar(const Assignment& vars) override;
  void WarmStart(const Assignment& assignment) override;
  void WarmStartHistory(const Assignment& assignment,
                        double utility) override;
  void CollectArmWinners(std::vector<ArmWinner>* out) const override;

  [[nodiscard]] size_t NumActiveChildren() const;
  [[nodiscard]] bool IsChildActive(size_t i) const { return active_[i]; }
  [[nodiscard]] const BuildingBlock& child(size_t i) const {
    return *children_[i];
  }

  /// Aggregated over the children (failure accounting spans all arms).
  [[nodiscard]] size_t NumTrials() const override;
  [[nodiscard]] size_t NumHardFailures() const override;

  /// Adds the active-arm mask, bandit round counter, and each child's
  /// state (children are saved/loaded in arm order, active or not).
  void SaveState(SnapshotWriter* w) const override;
  void LoadState(SnapshotReader* r) override;

 protected:
  void DoNextImpl(double k_more, size_t batch_size) override;

 private:
  void EliminateDominated(double k_more);
  void HalveArms();
  /// Retires arms whose hard-failure rate (timeouts / injected faults)
  /// exceeds the trial-guard threshold — arms whose configurations mostly
  /// fail waste budget that rising-bandit bounds alone would keep paying.
  void EliminateFailingArms();

  std::string variable_;
  std::vector<std::unique_ptr<BuildingBlock>> children_;
  std::vector<bool> active_;
  size_t rounds_per_elimination_;
  EliminationPolicy policy_;
  TrialGuardPolicy guard_;
  size_t rounds_completed_ = 0;
};

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_CONDITIONING_BLOCK_H_
