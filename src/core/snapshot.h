#ifndef VOLCANOML_CORE_SNAPSHOT_H_
#define VOLCANOML_CORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cs/configuration.h"

namespace volcanoml {

/// Version of the SearchSnapshot schema. Bump it whenever the layout of
/// any SaveState/LoadState pair changes shape; LoadState of a snapshot
/// with a different version fails cleanly instead of misreading bytes.
/// (Adding fields is also a version bump — the reader is strictly
/// sequential and key-checked, so old snapshots cannot satisfy new
/// readers.) See DESIGN.md "Logical plans, executor & snapshots".
inline constexpr uint64_t kSnapshotVersion = 1;

/// First line of every snapshot; lets readers reject arbitrary files with
/// a clear error before attempting to parse anything.
inline constexpr const char* kSnapshotMagic = "volcanoml-snapshot";

/// Byte-exact, dependency-free text serializer for search state.
///
/// The format is line-based: one `<key> <type> <payload>` triple per line,
/// with `[ <name>` / `] <name>` section brackets for structure. Doubles
/// are written as the 16-hex-digit bit pattern of their IEEE-754
/// representation (NaN, infinities and -0.0 round-trip exactly); strings
/// are hex-encoded so binary payloads (configuration bit keys, RNG engine
/// dumps) survive untouched. Two identical in-memory states therefore
/// serialize to identical bytes, and a load never perturbs a single bit —
/// the foundation of the resume bit-equality guarantee.
class SnapshotWriter {
 public:
  /// Writes the magic + version header. Call exactly once, first.
  void Header();

  void Begin(const std::string& section);
  void End(const std::string& section);

  void U64(const char* key, uint64_t value);
  void I64(const char* key, int64_t value);
  /// IEEE-754 bit pattern as 16 hex digits — byte-exact round trip.
  void F64(const char* key, double value);
  void Bool(const char* key, bool value);
  /// Hex-encoded, so embedded NULs and arbitrary bytes are safe.
  void Str(const char* key, const std::string& value);

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string TakeStr() { return std::move(out_); }

 private:
  void Line(const char* key, char type, const std::string& payload);

  std::string out_;
};

/// Strictly sequential reader over a SnapshotWriter's output. Every read
/// names the key (and section) it expects; any mismatch — wrong key,
/// wrong type, truncated input, malformed payload — latches the first
/// error and every subsequent read returns a default value. Callers check
/// status() once at the end instead of after every field.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::string& data);

  /// Checks the magic + version header. Call exactly once, first.
  void Header();

  void Begin(const std::string& section);
  void End(const std::string& section);

  [[nodiscard]] uint64_t U64(const char* key);
  [[nodiscard]] int64_t I64(const char* key);
  [[nodiscard]] double F64(const char* key);
  [[nodiscard]] bool Bool(const char* key);
  [[nodiscard]] std::string Str(const char* key);

  /// Latches a caller-detected semantic error (e.g. a value read fine but
  /// violates an invariant).
  void Fail(const std::string& message);

  [[nodiscard]] bool ok() const { return error_.empty(); }
  /// First error encountered, with its line number; empty when ok().
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  /// Next line split at single spaces; empty when exhausted.
  [[nodiscard]] std::vector<std::string> NextTokens();
  /// Reads one `<key> <type> <payload>` line; empty payload on error.
  [[nodiscard]] std::string Payload(const char* key, char type);

  std::vector<std::string> lines_;
  size_t next_line_ = 0;
  std::string error_;
};

// -- aggregate helpers (shared by every SaveState/LoadState pair) ----------

void SaveDoubleVector(SnapshotWriter* w, const char* key,
                      const std::vector<double>& v);
[[nodiscard]] std::vector<double> LoadDoubleVector(SnapshotReader* r,
                                                   const char* key);

/// A Configuration is its raw value vector.
void SaveConfiguration(SnapshotWriter* w, const char* key,
                       const Configuration& config);
[[nodiscard]] Configuration LoadConfiguration(SnapshotReader* r,
                                              const char* key);

void SaveAssignment(SnapshotWriter* w, const char* key,
                    const Assignment& assignment);
[[nodiscard]] Assignment LoadAssignment(SnapshotReader* r, const char* key);

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_SNAPSHOT_H_
