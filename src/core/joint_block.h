#ifndef VOLCANOML_CORE_JOINT_BLOCK_H_
#define VOLCANOML_CORE_JOINT_BLOCK_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "bandit/mfes.h"
#include "bo/smac.h"
#include "bo/tpe.h"
#include "core/building_block.h"
#include "cs/configuration_space.h"
#include "eval/evaluator.h"

namespace volcanoml {

/// Optimizer engine driving a joint block.
enum class JointOptimizerKind {
  kSmac,    ///< Vanilla Bayesian optimization (SMAC), the paper's default.
  kRandom,  ///< Random search (ablation baseline).
  kMfesHb,  ///< Early-stopping multi-fidelity optimization (MFES-HB).
  kTpe,     ///< Tree-structured Parzen Estimator (hyperopt's engine).
};

/// Joint block (paper Section 3.3.1): optimizes its whole subspace with
/// Bayesian optimization. One DoNext = one suggest/evaluate/observe step;
/// with kMfesHb the evaluation may run at reduced fidelity (subsampled
/// training data), consuming proportionally less budget.
///
/// Batched pulls (batch_size > 1): the optimizer proposes the whole batch
/// up front (SuggestBatch / MFES NextBatch), the evaluator runs it as one
/// EvalEngine batch, and the observations are fed back in proposal order
/// — so the optimizer sees the same deterministic history a serial replay
/// of the batch would produce.
class JointBlock : public BuildingBlock {
 public:
  JointBlock(std::string name, ConfigurationSpace space,
             PipelineEvaluator* evaluator, JointOptimizerKind kind,
             uint64_t seed, TrialGuardPolicy guard = {});

  void WarmStart(const Assignment& assignment) override;
  void WarmStartHistory(const Assignment& assignment,
                        double utility) override;

  [[nodiscard]] const ConfigurationSpace& subspace() const { return space_; }

  /// Configurations this block has quarantined at the retry cap.
  [[nodiscard]] size_t num_quarantined() const;

  /// Adds retry-cap failure counts plus the owned optimizer's state
  /// (SMAC / random / TPE via BlackBoxOptimizer, or MFES-HB).
  void SaveState(SnapshotWriter* w) const override;
  void LoadState(SnapshotReader* r) override;

 protected:
  void DoNextImpl(double k_more, size_t batch_size) override;

 private:
  /// Substitutes the block's context around a subspace configuration.
  [[nodiscard]] Assignment FullAssignment(const Configuration& config) const;

  /// Trial-guard bookkeeping for one committed outcome: counts it, and
  /// quarantines the configuration once its hard failures hit the cap.
  void HandleOutcome(const Configuration& config, const EvalOutcome& outcome);

  ConfigurationSpace space_;
  PipelineEvaluator* evaluator_;
  JointOptimizerKind kind_;
  TrialGuardPolicy guard_;
  std::unique_ptr<BlackBoxOptimizer> optimizer_;  ///< SMAC or random.
  std::unique_ptr<MfesHbOptimizer> mfes_;         ///< kMfesHb only.
  /// Whether a transferred portfolio already replaced the queued default
  /// configuration (first WarmStart only; see WarmStart).
  bool default_replaced_ = false;
  /// Hard failures per subspace configuration (retry-cap accounting).
  std::unordered_map<std::string, size_t> hard_failure_counts_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_JOINT_BLOCK_H_
