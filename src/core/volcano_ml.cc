#include "core/volcano_ml.h"

#include "data/meta_features.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace volcanoml {

VolcanoML::VolcanoML(const VolcanoMlOptions& options)
    : options_(options), space_(options.space) {
  VOLCANOML_CHECK(options_.budget > 0.0);
  VOLCANOML_CHECK(options_.batch_size >= 1);
}

Status VolcanoML::Prepare(const Dataset& train) {
  if (fitted_) {
    return Status::FailedPrecondition(
        "Fit/Prepare may be called once per instance");
  }
  if (train.task() != space_.task()) {
    return Status::InvalidArgument(
        "dataset task does not match the search-space task");
  }
  fitted_ = true;

  data_ = std::make_unique<Dataset>(train);
  EvaluatorOptions eval_options = options_.eval;
  eval_options.seed ^= options_.seed;
  evaluator_ = std::make_unique<PipelineEvaluator>(&space_, data_.get(),
                                                   eval_options);

  // Logical plan -> physical executor. BuildSpec assigns per-node seeds
  // with the legacy fork order, so this pipeline is bit-identical to the
  // old monolithic BuildPlan path.
  Rng rng(options_.seed);
  PlanSpec spec = BuildSpec(options_.plan, space_, options_.optimizer,
                            rng.Fork(), options_.guard);
  PlanExecutorOptions exec_options;
  exec_options.budget = options_.budget;
  exec_options.batch_size = options_.batch_size;
  exec_options.budget_in_seconds = options_.eval.budget_in_seconds;
  executor_ =
      std::make_unique<PlanExecutor>(spec, evaluator_.get(), exec_options);

  // Meta-learning portfolio intake: prior observations first (they shape
  // the surrogates the warm starts are judged against), then the k most
  // similar past winners as evaluation seeds. Retrieval draws no caller
  // randomness and an empty or absent KB makes zero WarmStart/
  // WarmStartHistory calls, so the run stays bit-identical to one without
  // a knowledge base at all.
  if (options_.knowledge != nullptr) {
    Portfolio portfolio = options_.knowledge->SuggestPortfolio(
        train, options_.num_warm_starts, options_.kb_history_per_run);
    VOLCANOML_LOG(Info) << "meta-learning: " << portfolio.warm_starts.size()
                        << " warm-start candidates, "
                        << portfolio.history.size()
                        << " transferred observations";
    for (const TransferObservation& obs : portfolio.history) {
      executor_->WarmStartHistory(obs.assignment, obs.utility);
    }
    for (const Assignment& assignment : portfolio.warm_starts) {
      executor_->WarmStart(assignment);
    }
  }
  return Status::Ok();
}

RunArtifact VolcanoML::ExportRunArtifact() const {
  VOLCANOML_CHECK_MSG(executor_ != nullptr, "call Prepare first");
  RunArtifact artifact;
  artifact.dataset_name = data_->name();
  artifact.dataset_hash = data_->ContentHash();
  artifact.task = data_->task();
  // kMetaFeatureSeed, NOT the run seed: the landmarker features subsample
  // with this seed, and k-NN retrieval only works when every artifact and
  // every query describe their dataset under the same draw.
  artifact.meta_features = ComputeMetaFeatures(*data_, kMetaFeatureSeed);
  artifact.best_assignment = executor_->root().BestAssignment();
  artifact.best_utility = executor_->root().BestUtility();
  artifact.trajectory = executor_->trajectory();
  executor_->root().CollectArmWinners(&artifact.arm_winners);
  for (const auto& [assignment, utility] : evaluator_->observations()) {
    artifact.history.push_back({assignment, utility});
  }
  return artifact;
}

AutoMlResult VolcanoML::Fit(const Dataset& train) {
  Status status = Prepare(train);
  VOLCANOML_CHECK_MSG(status.ok(), status.ToString().c_str());
  executor_->Run();
  return Finish();
}

AutoMlResult VolcanoML::Finish() {
  VOLCANOML_CHECK_MSG(executor_ != nullptr, "call Prepare first");
  result_.best_assignment = executor_->root().BestAssignment();
  result_.best_utility = executor_->root().BestUtility();
  result_.trajectory = executor_->trajectory();
  result_.num_evaluations = evaluator_->num_evaluations();
  return result_;
}

Result<FittedPipeline> VolcanoML::FitFinalPipeline() {
  VOLCANOML_CHECK_MSG(fitted_, "call Fit first");
  if (result_.best_assignment.empty()) {
    return Status::FailedPrecondition("search found no configuration");
  }
  return evaluator_->FitFinal(result_.best_assignment);
}

}  // namespace volcanoml
