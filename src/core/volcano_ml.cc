#include "core/volcano_ml.h"

#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace volcanoml {

VolcanoML::VolcanoML(const VolcanoMlOptions& options)
    : options_(options), space_(options.space) {
  VOLCANOML_CHECK(options_.budget > 0.0);
  VOLCANOML_CHECK(options_.batch_size >= 1);
}

Status VolcanoML::Prepare(const Dataset& train) {
  if (fitted_) {
    return Status::FailedPrecondition(
        "Fit/Prepare may be called once per instance");
  }
  if (train.task() != space_.task()) {
    return Status::InvalidArgument(
        "dataset task does not match the search-space task");
  }
  fitted_ = true;

  data_ = std::make_unique<Dataset>(train);
  EvaluatorOptions eval_options = options_.eval;
  eval_options.seed ^= options_.seed;
  evaluator_ = std::make_unique<PipelineEvaluator>(&space_, data_.get(),
                                                   eval_options);

  // Logical plan -> physical executor. BuildSpec assigns per-node seeds
  // with the legacy fork order, so this pipeline is bit-identical to the
  // old monolithic BuildPlan path.
  Rng rng(options_.seed);
  PlanSpec spec = BuildSpec(options_.plan, space_, options_.optimizer,
                            rng.Fork(), options_.guard);
  PlanExecutorOptions exec_options;
  exec_options.budget = options_.budget;
  exec_options.batch_size = options_.batch_size;
  exec_options.budget_in_seconds = options_.eval.budget_in_seconds;
  executor_ =
      std::make_unique<PlanExecutor>(spec, evaluator_.get(), exec_options);

  // Meta-learning warm start: inject the k most similar past winners.
  if (options_.knowledge != nullptr) {
    std::vector<Assignment> warm = options_.knowledge->SuggestWarmStarts(
        train, options_.num_warm_starts, rng.Fork());
    VOLCANOML_LOG(Info) << "meta-learning: " << warm.size()
                        << " warm-start candidates";
    for (const Assignment& assignment : warm) {
      executor_->WarmStart(assignment);
    }
  }
  return Status::Ok();
}

AutoMlResult VolcanoML::Fit(const Dataset& train) {
  Status status = Prepare(train);
  VOLCANOML_CHECK_MSG(status.ok(), status.ToString().c_str());
  executor_->Run();
  return Finish();
}

AutoMlResult VolcanoML::Finish() {
  VOLCANOML_CHECK_MSG(executor_ != nullptr, "call Prepare first");
  result_.best_assignment = executor_->root().BestAssignment();
  result_.best_utility = executor_->root().BestUtility();
  result_.trajectory = executor_->trajectory();
  result_.num_evaluations = evaluator_->num_evaluations();
  return result_;
}

Result<FittedPipeline> VolcanoML::FitFinalPipeline() {
  VOLCANOML_CHECK_MSG(fitted_, "call Fit first");
  if (result_.best_assignment.empty()) {
    return Status::FailedPrecondition("search found no configuration");
  }
  return evaluator_->FitFinal(result_.best_assignment);
}

}  // namespace volcanoml
