#include "core/volcano_ml.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace volcanoml {

VolcanoML::VolcanoML(const VolcanoMlOptions& options)
    : options_(options), space_(options.space) {
  VOLCANOML_CHECK(options_.budget > 0.0);
  VOLCANOML_CHECK(options_.batch_size >= 1);
}

AutoMlResult VolcanoML::Fit(const Dataset& train) {
  VOLCANOML_CHECK_MSG(!fitted_, "Fit may be called once per instance");
  VOLCANOML_CHECK(train.task() == space_.task());
  fitted_ = true;

  data_ = std::make_unique<Dataset>(train);
  EvaluatorOptions eval_options = options_.eval;
  eval_options.seed ^= options_.seed;
  evaluator_ = std::make_unique<PipelineEvaluator>(&space_, data_.get(),
                                                   eval_options);
  // The engine refuses to dispatch evaluations past the run budget: a
  // wide batch near the end is truncated to the affordable prefix
  // instead of overshooting. At batch_size=1 every pull costs at most
  // one unit, so the limit never fires before the loop guard below.
  // Seconds budgets stay wall-clock-bounded by the loop itself (the
  // engine meters summed evaluation seconds, which exceed wall-clock
  // when threads run concurrently).
  if (!eval_options.budget_in_seconds) {
    evaluator_->engine().set_budget_limit(options_.budget);
  }

  Rng rng(options_.seed);
  std::unique_ptr<BuildingBlock> root =
      BuildPlan(options_.plan, space_, evaluator_.get(), options_.optimizer,
                rng.Fork(), options_.guard);

  // Meta-learning warm start: inject the k most similar past winners.
  if (options_.knowledge != nullptr) {
    std::vector<Assignment> warm = options_.knowledge->SuggestWarmStarts(
        train, options_.num_warm_starts, rng.Fork());
    VOLCANOML_LOG(Info) << "meta-learning: " << warm.size()
                        << " warm-start candidates";
    for (const Assignment& assignment : warm) {
      root->WarmStart(assignment);
    }
  }

  // Volcano-style execution: pull the root until the budget is gone.
  //
  // Under a seconds budget the consumed amount is the run's total
  // wall-clock (the paper's budget model): evaluation time AND optimizer
  // overhead (surrogate fits, acquisition maximization) all count.
  // DoNext's k_more argument is in *pulls*; remaining time is converted
  // using the observed mean cost per pull.
  Stopwatch run_timer;
  auto consumed = [&]() {
    return options_.eval.budget_in_seconds
               ? run_timer.ElapsedSeconds()
               : evaluator_->consumed_budget();
  };
  while (consumed() < options_.budget) {
    double remaining = options_.budget - consumed();
    double k_more = remaining;
    if (options_.eval.budget_in_seconds && root->NumPulls() > 0 &&
        consumed() > 0.0) {
      double mean_cost = consumed() / static_cast<double>(root->NumPulls());
      k_more = remaining / std::max(mean_cost, 1e-6);
    }
    root->DoNext(k_more, options_.batch_size);
    result_.trajectory.push_back({consumed(), root->BestUtility()});
  }

  result_.best_assignment = root->BestAssignment();
  result_.best_utility = root->BestUtility();
  result_.num_evaluations = evaluator_->num_evaluations();
  return result_;
}

Result<FittedPipeline> VolcanoML::FitFinalPipeline() {
  VOLCANOML_CHECK_MSG(fitted_, "call Fit first");
  if (result_.best_assignment.empty()) {
    return Status::FailedPrecondition("search found no configuration");
  }
  return evaluator_->FitFinal(result_.best_assignment);
}

}  // namespace volcanoml
