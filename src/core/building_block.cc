#include "core/building_block.h"

#include <algorithm>

#include "util/check.h"

namespace volcanoml {

void BuildingBlock::DoNext(double k_more, size_t batch_size) {
  VOLCANOML_CHECK(batch_size >= 1);
  DoNextImpl(k_more, batch_size);
  // One pull-history entry per DoNext call: the incumbent after the pull.
  pull_history_.push_back(best_utility_);
}

void BuildingBlock::SetVar(const Assignment& vars) {
  for (const auto& [name, value] : vars) {
    context_[name] = value;
  }
}

void BuildingBlock::RecordObservation(const Assignment& full_assignment,
                                      double utility) {
  if (utility > best_utility_) {
    best_utility_ = utility;
    best_assignment_ = full_assignment;
  }
}

void BuildingBlock::AbsorbBest(const BuildingBlock& child) {
  if (child.best_utility_ > best_utility_) {
    RecordObservation(child.best_assignment_, child.best_utility_);
  }
}

void BuildingBlock::SaveState(SnapshotWriter* w) const {
  w->Begin("block");
  w->Str("name", name_);
  SaveDoubleVector(w, "pull_history", pull_history_);
  SaveAssignment(w, "best_assignment", best_assignment_);
  w->F64("best_utility", best_utility_);
  w->U64("num_trials", num_trials_);
  w->U64("num_hard_failures", num_hard_failures_);
  SaveAssignment(w, "context", context_);
  w->End("block");
}

void BuildingBlock::LoadState(SnapshotReader* r) {
  r->Begin("block");
  std::string saved_name = r->Str("name");
  if (r->ok() && saved_name != name_) {
    r->Fail("snapshot block '" + saved_name +
            "' does not match plan block '" + name_ + "'");
  }
  pull_history_ = LoadDoubleVector(r, "pull_history");
  best_assignment_ = LoadAssignment(r, "best_assignment");
  best_utility_ = r->F64("best_utility");
  num_trials_ = r->U64("num_trials");
  num_hard_failures_ = r->U64("num_hard_failures");
  context_ = LoadAssignment(r, "context");
  r->End("block");
}

}  // namespace volcanoml
