#include "core/building_block.h"

#include <algorithm>

#include "util/check.h"

namespace volcanoml {

void BuildingBlock::DoNext(double k_more, size_t batch_size) {
  VOLCANOML_CHECK(batch_size >= 1);
  DoNextImpl(k_more, batch_size);
  // One pull-history entry per DoNext call: the incumbent after the pull.
  pull_history_.push_back(best_utility_);
}

void BuildingBlock::SetVar(const Assignment& vars) {
  for (const auto& [name, value] : vars) {
    context_[name] = value;
  }
}

void BuildingBlock::RecordObservation(const Assignment& full_assignment,
                                      double utility) {
  if (utility > best_utility_) {
    best_utility_ = utility;
    best_assignment_ = full_assignment;
  }
}

void BuildingBlock::AbsorbBest(const BuildingBlock& child) {
  if (child.best_utility_ > best_utility_) {
    RecordObservation(child.best_assignment_, child.best_utility_);
  }
}

}  // namespace volcanoml
