#ifndef VOLCANOML_CORE_ENSEMBLE_H_
#define VOLCANOML_CORE_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "eval/evaluator.h"

namespace volcanoml {

/// Post-hoc greedy ensemble selection [Caruana et al.; used by
/// auto-sklearn]: given the top configurations observed during a search,
/// fit each on the training split, then greedily add members (with
/// replacement) that maximize the validation utility of the ensemble
/// prediction — majority vote for classification, mean for regression.
///
/// The paper compares single best pipelines, but auto-sklearn ships
/// ensembling and VolcanoML's artifact supports it; it is provided here
/// as the natural deployment-quality booster on top of any search result.
class EnsembleSelector {
 public:
  struct Options {
    /// Ensemble size (members counted with replacement).
    size_t max_members = 10;
    /// Validation fraction carved from the training data.
    double validation_fraction = 0.25;
    uint64_t seed = 1;
  };

  EnsembleSelector(const SearchSpace* space, const Options& options);

  /// Builds an ensemble from candidate assignments (e.g. the top-k of a
  /// search run) using `train`. Returns a non-OK status when no candidate
  /// can be fitted.
  Status Build(const std::vector<Assignment>& candidates,
               const Dataset& train);

  /// Predicts with the fitted ensemble (majority vote / mean).
  std::vector<double> Predict(const Matrix& x) const;

  /// Number of distinct fitted members actually selected.
  size_t NumDistinctMembers() const;
  /// Selection multiplicity per fitted candidate (aligned with the
  /// candidates that could be fitted).
  const std::vector<size_t>& weights() const { return weights_; }

 private:
  const SearchSpace* space_;
  Options options_;
  TaskType task_ = TaskType::kClassification;
  size_t num_classes_ = 0;
  std::vector<FittedPipeline> members_;
  std::vector<size_t> weights_;
};

/// Convenience: extracts the `k` best distinct assignments from a search
/// trajectory recorded by PipelineEvaluator-based systems. (Systems store
/// only the single best; this helper re-evaluates a sample of assignments
/// is NOT needed — callers typically pass {result.best_assignment} plus
/// domain variants.)
std::vector<Assignment> TopKAssignments(
    const std::vector<std::pair<Assignment, double>>& observations,
    size_t k);

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_ENSEMBLE_H_
