#ifndef VOLCANOML_CORE_PLAN_SPEC_H_
#define VOLCANOML_CORE_PLAN_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/alternating_block.h"
#include "core/building_block.h"
#include "core/conditioning_block.h"
#include "core/joint_block.h"
#include "cs/configuration_space.h"
#include "eval/evaluator.h"
#include "eval/search_space.h"
#include "util/status.h"

namespace volcanoml {

/// The coarse-grained execution plans the paper enumerates (Section 4):
/// Figure 1's Plan 1 / Plan 2 styles plus the alternating variants. Plan
/// kConditioningAlternating is Figure 2 — VolcanoML's default; the others
/// feed the automatic-plan-comparison experiment (E7).
enum class PlanKind {
  /// Plan 1: one joint block over the whole space (what AUSK does).
  kJoint,
  /// Conditioning on algorithm, then one joint block per arm (FE + HP).
  kConditioningJoint,
  /// Figure 2 default: conditioning on algorithm, then alternating
  /// between an FE joint block and an HP joint block per arm.
  kConditioningAlternating,
  /// Alternating between a global FE joint block and a conditioning block
  /// (algorithm -> HP joint) — decomposition order inverted.
  kAlternatingFeConditioning,
  /// As the default, but the alternation explores HP before FE.
  kConditioningAlternatingHpFirst,
};

/// All plan kinds, in a stable order (for enumeration experiments).
std::vector<PlanKind> AllPlanKinds();

/// Short identifier, e.g. "cond(alg)+alt(fe,hp)".
std::string PlanKindName(PlanKind kind);

/// Inverse of PlanKindName: parses the exact short identifier. Unknown
/// names return InvalidArgument listing the valid spellings.
[[nodiscard]] Result<PlanKind> ParsePlanKind(const std::string& name);

/// Short identifier for a joint block's optimizer engine, e.g. "smac".
std::string JointOptimizerKindName(JointOptimizerKind kind);

/// All joint-optimizer kinds, in a stable order.
std::vector<JointOptimizerKind> AllJointOptimizerKinds();

/// Inverse of JointOptimizerKindName: parses the exact short identifier.
/// Unknown names return InvalidArgument listing the valid spellings.
[[nodiscard]] Result<JointOptimizerKind> ParseJointOptimizerKind(
    const std::string& name);

/// Kind of one node in a logical plan tree.
enum class PlanNodeKind { kJoint, kConditioning, kAlternating };

/// Declarative description of one execution-plan node — the LOGICAL plan.
///
/// A PlanSpec carries everything needed to materialize the corresponding
/// BuildingBlock tree (names, subspaces, optimizer engines, per-node
/// seeds, contexts, the trial-guard policy) but owns no evaluator, no
/// optimizer instances and no search state: it is a pure value, cheap to
/// build, compare and print. BuildSpec() derives one from a PlanKind and
/// a SearchSpace; Lower() compiles it into the PHYSICAL executable block
/// tree. The split mirrors a database optimizer: logical plan -> physical
/// operators -> (plan_executor.h) the execution loop.
///
/// Seeds are assigned at BuildSpec time with exactly the fork sequence
/// the legacy BuildPlan used, so Lower(BuildSpec(kind, space, ...)) is
/// bit-for-bit identical to the block tree BuildPlan built.
struct PlanSpec {
  PlanNodeKind kind = PlanNodeKind::kJoint;
  /// Block name Lower() assigns, e.g. "joint[all]" or "fe[knn]".
  std::string name;
  /// Joint-space variable names this node's subtree owns (alternating
  /// nodes slice incumbents along their children's lists). Synthetic
  /// probe parameters are excluded.
  std::vector<std::string> variables;
  /// Fixed variable values substituted into the subtree after lowering
  /// (the paper's x_g = c_g), e.g. {"algorithm": 2} for an arm subtree.
  Assignment context;
  /// Trial-guard policy every block in the plan shares.
  TrialGuardPolicy guard;

  // -- kJoint ---------------------------------------------------------------
  /// The subspace the joint block optimizes.
  ConfigurationSpace space;
  JointOptimizerKind optimizer = JointOptimizerKind::kSmac;
  /// Seed for the block's optimizer, derived at BuildSpec time.
  uint64_t seed = 0;

  // -- kConditioning --------------------------------------------------------
  /// The categorical joint-space variable the arms partition on.
  std::string variable;
  size_t rounds_per_elimination = 5;
  ConditioningBlock::EliminationPolicy policy =
      ConditioningBlock::EliminationPolicy::kRisingBandit;

  // -- kAlternating ---------------------------------------------------------
  size_t init_rounds = 2;

  /// Arms (kConditioning, one per choice) or the two alternating halves
  /// (kAlternating). Empty for kJoint.
  std::vector<PlanSpec> children;

  /// Query-plan-style pretty-printer, one node per line:
  ///   -> conditioning cond[algorithm] on 'algorithm' (5 arms, ...)
  ///      -> alternating alt[knn] (init_rounds=2) [algorithm=2]
  ///         -> joint fe[knn] (smac, 6 vars)
  /// Deterministic for a given spec (golden-testable); seeds are omitted
  /// so the output is stable across seed choices.
  [[nodiscard]] std::string Explain() const;

  /// Total number of nodes in this subtree (including this one).
  [[nodiscard]] size_t NumNodes() const;
};

/// Structural equality: kinds, names, owned variables, contexts, guard
/// policies, optimizer engines, seeds, conditioning/alternating settings
/// and children must all match. Subspaces are compared by their parameter
/// name lists (the structural identity of a subspace within one
/// SearchSpace).
bool operator==(const PlanSpec& a, const PlanSpec& b);
bool operator!=(const PlanSpec& a, const PlanSpec& b);

/// Derives the logical plan for `kind` over `space` — a pure function of
/// its arguments. Per-node seeds are forked from `seed` in the exact
/// order the legacy BuildPlan consumed them.
PlanSpec BuildSpec(PlanKind kind, const SearchSpace& space,
                   JointOptimizerKind optimizer, uint64_t seed,
                   TrialGuardPolicy guard = {});

/// Compiles a logical plan into the physical block tree, evaluating
/// through `evaluator`. The returned root is ready for the execution
/// loop (core/plan_executor.h): repeatedly DoNext until out of budget.
std::unique_ptr<BuildingBlock> Lower(const PlanSpec& spec,
                                     PipelineEvaluator* evaluator);

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_PLAN_SPEC_H_
