#ifndef VOLCANOML_CORE_TRAJECTORY_H_
#define VOLCANOML_CORE_TRAJECTORY_H_

#include <string>
#include <vector>

namespace volcanoml {

/// One point of a search trajectory: incumbent utility after spending
/// `budget` evaluation units. Drives the time-budget figures (E2, E6)
/// and the daemon's per-session progress reporting.
struct TrajectoryPoint {
  double budget = 0.0;
  double utility = 0.0;
};

/// Renders a trajectory as one "budget utility" line per point with
/// %.17g precision — enough digits that re-parsing reproduces the exact
/// doubles. Both the in-process CLI run and the daemon-driven `result`
/// subcommand emit through this single function, so the byte-equality
/// smoke test (`cmp` of the two files) exercises the search itself, not
/// two formatting code paths.
[[nodiscard]] std::string FormatTrajectory(
    const std::vector<TrajectoryPoint>& trajectory);

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_TRAJECTORY_H_
