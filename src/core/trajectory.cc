#include "core/trajectory.h"

#include <cstdio>

namespace volcanoml {

std::string FormatTrajectory(const std::vector<TrajectoryPoint>& trajectory) {
  std::string out;
  char line[128];
  for (const TrajectoryPoint& point : trajectory) {
    std::snprintf(line, sizeof(line), "%.17g %.17g\n", point.budget,
                  point.utility);
    out += line;
  }
  return out;
}

}  // namespace volcanoml
