#include "core/plan_executor.h"

#include <algorithm>

#include "util/check.h"

namespace volcanoml {

PlanExecutor::PlanExecutor(const PlanSpec& spec, PipelineEvaluator* evaluator,
                           const PlanExecutorOptions& options)
    : options_(options), evaluator_(evaluator) {
  VOLCANOML_CHECK(evaluator_ != nullptr);
  VOLCANOML_CHECK(options_.budget > 0.0);
  VOLCANOML_CHECK(options_.batch_size >= 1);
  root_ = Lower(spec, evaluator_);
  plan_fingerprint_ = spec.Explain();
  // The engine refuses to dispatch evaluations past the run budget: a
  // wide batch near the end is truncated to the affordable prefix
  // instead of overshooting. At batch_size=1 every pull costs at most
  // one unit, so the limit never fires before the Step() guard. Seconds
  // budgets stay wall-clock-bounded by the loop itself (the engine
  // meters summed evaluation seconds, which exceed wall-clock when
  // threads run concurrently).
  if (!options_.budget_in_seconds) {
    evaluator_->engine().set_budget_limit(options_.budget);
  }
}

void PlanExecutor::WarmStart(const Assignment& assignment) {
  root_->WarmStart(assignment);
}

void PlanExecutor::WarmStartHistory(const Assignment& assignment,
                                    double utility) {
  root_->WarmStartHistory(assignment, utility);
}

double PlanExecutor::consumed_budget() const {
  return options_.budget_in_seconds
             ? base_seconds_ + run_timer_.ElapsedSeconds()
             : evaluator_->consumed_budget();
}

bool PlanExecutor::Done() const { return consumed_budget() >= options_.budget; }

bool PlanExecutor::Step() {
  if (Done()) return false;
  // Under a seconds budget the consumed amount is the run's total
  // wall-clock (the paper's budget model): evaluation time AND optimizer
  // overhead (surrogate fits, acquisition maximization) all count.
  // DoNext's k_more argument is in *pulls*; remaining time is converted
  // using the observed mean cost per pull.
  double remaining = options_.budget - consumed_budget();
  double k_more = remaining;
  if (options_.budget_in_seconds && root_->NumPulls() > 0 &&
      consumed_budget() > 0.0) {
    double mean_cost =
        consumed_budget() / static_cast<double>(root_->NumPulls());
    k_more = remaining / std::max(mean_cost, 1e-6);
  }
  double before = consumed_budget();
  root_->DoNext(k_more, options_.batch_size);
  trajectory_.push_back({consumed_budget(), root_->BestUtility()});
  ++num_steps_;
  if (step_hook_) {
    step_hook_({num_steps_, consumed_budget() - before, consumed_budget(),
                root_->BestUtility()});
  }
  return true;
}

void PlanExecutor::Run() {
  while (Step()) {
  }
}

std::string PlanExecutor::SaveSnapshot() const {
  SnapshotWriter w;
  w.Header();
  w.Begin("search");
  w.Begin("meta");
  w.Str("plan", plan_fingerprint_);
  w.F64("budget", options_.budget);
  w.U64("batch_size", options_.batch_size);
  w.Bool("budget_in_seconds", options_.budget_in_seconds);
  w.U64("num_steps", num_steps_);
  // Zero in deterministic mode (the engine meter is authoritative there),
  // so identical deterministic states snapshot to identical bytes.
  w.F64("consumed_seconds",
        options_.budget_in_seconds ? consumed_budget() : 0.0);
  w.End("meta");
  root_->SaveState(&w);
  evaluator_->SaveState(&w);
  w.U64("trajectory", trajectory_.size());
  for (const TrajectoryPoint& point : trajectory_) {
    w.F64("trajectory_budget", point.budget);
    w.F64("trajectory_utility", point.utility);
  }
  w.End("search");
  return w.TakeStr();
}

Status PlanExecutor::LoadSnapshot(const std::string& data) {
  if (num_steps_ > 0) {
    return Status::FailedPrecondition(
        "LoadSnapshot requires a freshly-prepared executor");
  }
  SnapshotReader r(data);
  r.Header();
  r.Begin("search");
  r.Begin("meta");
  std::string plan = r.Str("plan");
  if (r.ok() && plan != plan_fingerprint_) {
    return Status::InvalidArgument(
        "snapshot was taken from a different plan; snapshot plan:\n" + plan);
  }
  // The budget may legitimately differ (a resume can extend it); batch
  // size and budget mode change replay semantics, so they must match.
  (void)r.F64("budget");
  uint64_t batch_size = r.U64("batch_size");
  if (r.ok() && batch_size != options_.batch_size) {
    return Status::InvalidArgument(
        "snapshot batch_size " + std::to_string(batch_size) +
        " does not match executor batch_size " +
        std::to_string(options_.batch_size));
  }
  bool budget_in_seconds = r.Bool("budget_in_seconds");
  if (r.ok() && budget_in_seconds != options_.budget_in_seconds) {
    return Status::InvalidArgument(
        "snapshot and executor disagree on budget mode (seconds vs units)");
  }
  num_steps_ = r.U64("num_steps");
  base_seconds_ = r.F64("consumed_seconds");
  r.End("meta");
  root_->LoadState(&r);
  evaluator_->LoadState(&r);
  uint64_t num_points = r.U64("trajectory");
  trajectory_.clear();
  for (uint64_t i = 0; i < num_points && r.ok(); ++i) {
    double budget = r.F64("trajectory_budget");
    double utility = r.F64("trajectory_utility");
    trajectory_.push_back({budget, utility});
  }
  r.End("search");
  if (!r.ok()) {
    return Status::InvalidArgument("malformed snapshot: " + r.error());
  }
  run_timer_.Restart();
  return Status::Ok();
}

}  // namespace volcanoml
