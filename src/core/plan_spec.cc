#include "core/plan_spec.h"

#include <cstdio>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace volcanoml {

namespace {

/// Appends the entries of `src` that `dst` does not yet contain,
/// preserving first-appearance order.
void AppendUnique(std::vector<std::string>* dst,
                  const std::vector<std::string>& src) {
  for (const std::string& name : src) {
    bool present = false;
    for (const std::string& existing : *dst) {
      if (existing == name) {
        present = true;
        break;
      }
    }
    if (!present) dst->push_back(name);
  }
}

/// Leaf spec: one joint block over `space`, owning its parameter names.
PlanSpec JointNode(std::string name, ConfigurationSpace space,
                   JointOptimizerKind optimizer, uint64_t seed,
                   TrialGuardPolicy guard) {
  PlanSpec node;
  node.kind = PlanNodeKind::kJoint;
  node.name = std::move(name);
  node.space = std::move(space);
  node.variables = node.space.ParameterNames();
  node.optimizer = optimizer;
  node.seed = seed;
  node.guard = guard;
  return node;
}

/// Per-arm spec of kConditioningJoint: FE + one algorithm's HPs jointly,
/// the algorithm fixed in context (the per-arm block of Plan 2).
PlanSpec ArmJointSpec(const SearchSpace& space, JointOptimizerKind optimizer,
                      size_t arm, uint64_t seed, TrialGuardPolicy guard) {
  const std::string& algorithm = space.algorithms()[arm];
  ConfigurationSpace sub = space.FeSubspace();
  sub.Merge(space.HpSubspaceFor(algorithm), "");
  PlanSpec node = JointNode("joint[" + algorithm + "]", std::move(sub),
                            optimizer, seed, guard);
  node.context = {{"algorithm", static_cast<double>(arm)}};
  return node;
}

/// Per-arm spec of the conditioning+alternating plans: alternating(FE
/// joint, HP joint) — Figure 2's per-arm subtree. Replicates the legacy
/// seed forks: one local Rng per arm, FE fork first, HP fork only when
/// the algorithm has hyper-parameters (otherwise the arm degenerates to
/// FE-only search).
PlanSpec ArmAlternatingSpec(const SearchSpace& space,
                            JointOptimizerKind optimizer, size_t arm,
                            bool hp_first, uint64_t seed,
                            TrialGuardPolicy guard) {
  const std::string& algorithm = space.algorithms()[arm];
  Rng rng(seed);

  ConfigurationSpace fe_space = space.FeSubspace();
  ConfigurationSpace hp_space = space.HpSubspaceFor(algorithm);
  uint64_t fe_seed = rng.Fork();
  if (hp_space.empty()) {
    PlanSpec fe = JointNode("fe[" + algorithm + "]", std::move(fe_space),
                            optimizer, fe_seed, guard);
    fe.context = {{"algorithm", static_cast<double>(arm)}};
    return fe;
  }
  PlanSpec fe = JointNode("fe[" + algorithm + "]", std::move(fe_space),
                          optimizer, fe_seed, guard);
  PlanSpec hp = JointNode("hp[" + algorithm + "]", std::move(hp_space),
                          optimizer, rng.Fork(), guard);

  PlanSpec alt;
  alt.kind = PlanNodeKind::kAlternating;
  alt.name = "alt[" + algorithm + "]";
  alt.guard = guard;
  if (hp_first) {
    alt.children.push_back(std::move(hp));
    alt.children.push_back(std::move(fe));
  } else {
    alt.children.push_back(std::move(fe));
    alt.children.push_back(std::move(hp));
  }
  AppendUnique(&alt.variables, alt.children[0].variables);
  AppendUnique(&alt.variables, alt.children[1].variables);
  alt.context = {{"algorithm", static_cast<double>(arm)}};
  return alt;
}

std::string PolicyName(ConditioningBlock::EliminationPolicy policy) {
  return policy == ConditioningBlock::EliminationPolicy::kRisingBandit
             ? "rising-bandit"
             : "successive-halving";
}

std::string FormatValue(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

void ExplainNode(const PlanSpec& spec, size_t depth, std::string* out) {
  out->append(depth * 3, ' ');
  out->append("-> ");
  switch (spec.kind) {
    case PlanNodeKind::kJoint:
      out->append("joint " + spec.name + " (" +
                  JointOptimizerKindName(spec.optimizer) + ", " +
                  std::to_string(spec.space.NumParameters()) + " vars)");
      break;
    case PlanNodeKind::kConditioning:
      out->append("conditioning " + spec.name + " on '" + spec.variable +
                  "' (" + std::to_string(spec.children.size()) + " arms, " +
                  PolicyName(spec.policy) + ", every " +
                  std::to_string(spec.rounds_per_elimination) + " rounds)");
      break;
    case PlanNodeKind::kAlternating:
      out->append("alternating " + spec.name + " (init_rounds=" +
                  std::to_string(spec.init_rounds) + ")");
      break;
  }
  if (!spec.context.empty()) {
    out->append(" [");
    bool first = true;
    for (const auto& [key, value] : spec.context) {
      if (!first) out->append(", ");
      first = false;
      out->append(key + "=" + FormatValue(value));
    }
    out->append("]");
  }
  out->append("\n");
  for (const PlanSpec& child : spec.children) {
    ExplainNode(child, depth + 1, out);
  }
}

}  // namespace

std::vector<PlanKind> AllPlanKinds() {
  return {PlanKind::kJoint, PlanKind::kConditioningJoint,
          PlanKind::kConditioningAlternating,
          PlanKind::kAlternatingFeConditioning,
          PlanKind::kConditioningAlternatingHpFirst};
}

std::string PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kJoint:
      return "joint";
    case PlanKind::kConditioningJoint:
      return "cond(alg)+joint";
    case PlanKind::kConditioningAlternating:
      return "cond(alg)+alt(fe,hp)";
    case PlanKind::kAlternatingFeConditioning:
      return "alt(fe,cond(alg)+hp)";
    case PlanKind::kConditioningAlternatingHpFirst:
      return "cond(alg)+alt(hp,fe)";
  }
  return "?";
}

Result<PlanKind> ParsePlanKind(const std::string& name) {
  for (PlanKind kind : AllPlanKinds()) {
    if (PlanKindName(kind) == name) return kind;
  }
  std::string valid;
  for (PlanKind kind : AllPlanKinds()) {
    if (!valid.empty()) valid += ", ";
    valid += '\'';
    valid += PlanKindName(kind);
    valid += '\'';
  }
  return Status::InvalidArgument("unknown plan kind '" + name +
                                 "'; expected one of " + valid);
}

std::string JointOptimizerKindName(JointOptimizerKind kind) {
  switch (kind) {
    case JointOptimizerKind::kSmac:
      return "smac";
    case JointOptimizerKind::kRandom:
      return "random";
    case JointOptimizerKind::kMfesHb:
      return "mfes-hb";
    case JointOptimizerKind::kTpe:
      return "tpe";
  }
  return "?";
}

std::vector<JointOptimizerKind> AllJointOptimizerKinds() {
  return {JointOptimizerKind::kSmac, JointOptimizerKind::kRandom,
          JointOptimizerKind::kMfesHb, JointOptimizerKind::kTpe};
}

Result<JointOptimizerKind> ParseJointOptimizerKind(const std::string& name) {
  for (JointOptimizerKind kind : AllJointOptimizerKinds()) {
    if (JointOptimizerKindName(kind) == name) return kind;
  }
  std::string valid;
  for (JointOptimizerKind kind : AllJointOptimizerKinds()) {
    if (!valid.empty()) valid += ", ";
    valid += '\'';
    valid += JointOptimizerKindName(kind);
    valid += '\'';
  }
  return Status::InvalidArgument("unknown optimizer '" + name +
                                 "'; expected one of " + valid);
}

std::string PlanSpec::Explain() const {
  std::string out;
  ExplainNode(*this, 0, &out);
  return out;
}

size_t PlanSpec::NumNodes() const {
  size_t total = 1;
  for (const PlanSpec& child : children) total += child.NumNodes();
  return total;
}

bool operator==(const PlanSpec& a, const PlanSpec& b) {
  if (a.kind != b.kind || a.name != b.name || a.variables != b.variables ||
      a.context != b.context || a.guard != b.guard ||
      a.optimizer != b.optimizer || a.seed != b.seed ||
      a.variable != b.variable ||
      a.rounds_per_elimination != b.rounds_per_elimination ||
      a.policy != b.policy || a.init_rounds != b.init_rounds ||
      a.space.ParameterNames() != b.space.ParameterNames() ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!(a.children[i] == b.children[i])) return false;
  }
  return true;
}

bool operator!=(const PlanSpec& a, const PlanSpec& b) { return !(a == b); }

PlanSpec BuildSpec(PlanKind kind, const SearchSpace& space,
                   JointOptimizerKind optimizer, uint64_t seed,
                   TrialGuardPolicy guard) {
  Rng rng(seed);
  const size_t num_algorithms = space.algorithms().size();

  switch (kind) {
    case PlanKind::kJoint:
      return JointNode("joint[all]", space.joint(), optimizer, rng.Fork(),
                       guard);

    case PlanKind::kConditioningJoint: {
      uint64_t child_seed = rng.Fork();
      PlanSpec cond;
      cond.kind = PlanNodeKind::kConditioning;
      cond.name = "cond[algorithm]";
      cond.variable = "algorithm";
      cond.guard = guard;
      cond.variables.push_back("algorithm");
      for (size_t arm = 0; arm < num_algorithms; ++arm) {
        cond.children.push_back(
            ArmJointSpec(space, optimizer, arm,
                         child_seed ^ (arm * 0x9e3779b9ULL), guard));
        AppendUnique(&cond.variables, cond.children.back().variables);
      }
      return cond;
    }

    case PlanKind::kConditioningAlternating:
    case PlanKind::kConditioningAlternatingHpFirst: {
      bool hp_first = kind == PlanKind::kConditioningAlternatingHpFirst;
      uint64_t child_seed = rng.Fork();
      PlanSpec cond;
      cond.kind = PlanNodeKind::kConditioning;
      cond.name = "cond[algorithm]";
      cond.variable = "algorithm";
      cond.guard = guard;
      cond.variables.push_back("algorithm");
      for (size_t arm = 0; arm < num_algorithms; ++arm) {
        cond.children.push_back(
            ArmAlternatingSpec(space, optimizer, arm, hp_first,
                               child_seed ^ (arm * 0x9e3779b9ULL), guard));
        AppendUnique(&cond.variables, cond.children.back().variables);
      }
      return cond;
    }

    case PlanKind::kAlternatingFeConditioning: {
      ConfigurationSpace fe_space = space.FeSubspace();
      PlanSpec fe = JointNode("fe[global]", std::move(fe_space), optimizer,
                              rng.Fork(), guard);

      // HP side: conditioning over algorithms, each arm a joint HP block.
      uint64_t child_seed = rng.Fork();
      PlanSpec cond;
      cond.kind = PlanNodeKind::kConditioning;
      cond.name = "cond[algorithm]";
      cond.variable = "algorithm";
      cond.guard = guard;
      cond.variables.push_back("algorithm");
      for (size_t arm = 0; arm < num_algorithms; ++arm) {
        const std::string& algorithm = space.algorithms()[arm];
        ConfigurationSpace hp_space = space.HpSubspaceFor(algorithm);
        PlanSpec child;
        if (hp_space.empty()) {
          // No HPs: a joint block over an empty space is impossible; the
          // arm re-evaluates its fixed pipeline through a one-choice
          // probe parameter. The probe is synthetic, so the arm owns no
          // joint-space variables.
          ConfigurationSpace fixed;
          fixed.AddCategorical("arm_probe", {"default"});
          child = JointNode("hp[" + algorithm + "]", std::move(fixed),
                            JointOptimizerKind::kRandom,
                            child_seed ^ (arm * 0x2545f491ULL), guard);
          child.variables.clear();
        } else {
          child = JointNode("hp[" + algorithm + "]", std::move(hp_space),
                            optimizer, child_seed ^ (arm * 0x2545f491ULL),
                            guard);
        }
        child.context = {{"algorithm", static_cast<double>(arm)}};
        AppendUnique(&cond.variables, child.variables);
        cond.children.push_back(std::move(child));
      }

      PlanSpec alt;
      alt.kind = PlanNodeKind::kAlternating;
      alt.name = "alt[fe,cond]";
      alt.guard = guard;
      alt.children.push_back(std::move(fe));
      alt.children.push_back(std::move(cond));
      AppendUnique(&alt.variables, alt.children[0].variables);
      AppendUnique(&alt.variables, alt.children[1].variables);
      return alt;
    }
  }
  VOLCANOML_CHECK_MSG(false, "unknown plan kind");
  return {};
}

std::unique_ptr<BuildingBlock> Lower(const PlanSpec& spec,
                                     PipelineEvaluator* evaluator) {
  VOLCANOML_CHECK(evaluator != nullptr);
  std::unique_ptr<BuildingBlock> block;
  switch (spec.kind) {
    case PlanNodeKind::kJoint:
      block = std::make_unique<JointBlock>(spec.name, spec.space, evaluator,
                                           spec.optimizer, spec.seed,
                                           spec.guard);
      break;
    case PlanNodeKind::kConditioning:
      VOLCANOML_CHECK(!spec.children.empty());
      block = std::make_unique<ConditioningBlock>(
          spec.name, spec.variable, spec.children.size(),
          [&spec, evaluator](size_t arm) {
            return Lower(spec.children[arm], evaluator);
          },
          spec.rounds_per_elimination, spec.policy, spec.guard);
      break;
    case PlanNodeKind::kAlternating:
      VOLCANOML_CHECK(spec.children.size() == 2);
      block = std::make_unique<AlternatingBlock>(
          spec.name, Lower(spec.children[0], evaluator),
          spec.children[0].variables, Lower(spec.children[1], evaluator),
          spec.children[1].variables, spec.init_rounds);
      break;
  }
  if (!spec.context.empty()) block->SetVar(spec.context);
  return block;
}

}  // namespace volcanoml
