#include "core/plans.h"

#include "core/alternating_block.h"
#include "core/conditioning_block.h"
#include "util/check.h"
#include "util/rng.h"

namespace volcanoml {

namespace {

/// Joint block over FE variables plus one algorithm's HP variables, with
/// the algorithm fixed in context (the per-arm block of Plan 2 /
/// kConditioningJoint).
std::unique_ptr<BuildingBlock> MakeArmJointBlock(const SearchSpace& space,
                                                 PipelineEvaluator* evaluator,
                                                 JointOptimizerKind optimizer,
                                                 size_t arm, uint64_t seed,
                                                 TrialGuardPolicy guard) {
  const std::string& algorithm = space.algorithms()[arm];
  ConfigurationSpace sub = space.FeSubspace();
  sub.Merge(space.HpSubspaceFor(algorithm), "");
  auto block = std::make_unique<JointBlock>("joint[" + algorithm + "]",
                                            std::move(sub), evaluator,
                                            optimizer, seed, guard);
  block->SetVar({{"algorithm", static_cast<double>(arm)}});
  return block;
}

/// Alternating(FE joint, HP joint) for one algorithm arm — the per-arm
/// subtree of Figure 2.
std::unique_ptr<BuildingBlock> MakeArmAlternatingBlock(
    const SearchSpace& space, PipelineEvaluator* evaluator,
    JointOptimizerKind optimizer, size_t arm, bool hp_first, uint64_t seed,
    TrialGuardPolicy guard) {
  const std::string& algorithm = space.algorithms()[arm];
  Rng rng(seed);

  ConfigurationSpace fe_space = space.FeSubspace();
  ConfigurationSpace hp_space = space.HpSubspaceFor(algorithm);
  std::vector<std::string> fe_vars = fe_space.ParameterNames();
  std::vector<std::string> hp_vars = hp_space.ParameterNames();

  auto fe_block = std::make_unique<JointBlock>(
      "fe[" + algorithm + "]", std::move(fe_space), evaluator, optimizer,
      rng.Fork(), guard);
  std::unique_ptr<BuildingBlock> hp_block;
  if (hp_space.empty()) {
    // Algorithms without hyper-parameters cannot host a joint block; the
    // arm degenerates to FE-only search.
    fe_block->SetVar({{"algorithm", static_cast<double>(arm)}});
    return fe_block;
  }
  hp_block = std::make_unique<JointBlock>("hp[" + algorithm + "]",
                                          std::move(hp_space), evaluator,
                                          optimizer, rng.Fork(), guard);

  std::unique_ptr<AlternatingBlock> alt;
  if (hp_first) {
    alt = std::make_unique<AlternatingBlock>(
        "alt[" + algorithm + "]", std::move(hp_block), hp_vars,
        std::move(fe_block), fe_vars);
  } else {
    alt = std::make_unique<AlternatingBlock>(
        "alt[" + algorithm + "]", std::move(fe_block), fe_vars,
        std::move(hp_block), hp_vars);
  }
  alt->SetVar({{"algorithm", static_cast<double>(arm)}});
  return alt;
}

}  // namespace

std::vector<PlanKind> AllPlanKinds() {
  return {PlanKind::kJoint, PlanKind::kConditioningJoint,
          PlanKind::kConditioningAlternating,
          PlanKind::kAlternatingFeConditioning,
          PlanKind::kConditioningAlternatingHpFirst};
}

std::string PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kJoint:
      return "joint";
    case PlanKind::kConditioningJoint:
      return "cond(alg)+joint";
    case PlanKind::kConditioningAlternating:
      return "cond(alg)+alt(fe,hp)";
    case PlanKind::kAlternatingFeConditioning:
      return "alt(fe,cond(alg)+hp)";
    case PlanKind::kConditioningAlternatingHpFirst:
      return "cond(alg)+alt(hp,fe)";
  }
  return "?";
}

std::unique_ptr<BuildingBlock> BuildPlan(PlanKind kind,
                                         const SearchSpace& space,
                                         PipelineEvaluator* evaluator,
                                         JointOptimizerKind optimizer,
                                         uint64_t seed,
                                         TrialGuardPolicy guard) {
  VOLCANOML_CHECK(evaluator != nullptr);
  Rng rng(seed);
  const size_t num_algorithms = space.algorithms().size();

  switch (kind) {
    case PlanKind::kJoint:
      return std::make_unique<JointBlock>("joint[all]", space.joint(),
                                          evaluator, optimizer, rng.Fork(),
                                          guard);

    case PlanKind::kConditioningJoint: {
      uint64_t child_seed = rng.Fork();
      return std::make_unique<ConditioningBlock>(
          "cond[algorithm]", "algorithm", num_algorithms,
          [&space, evaluator, optimizer, child_seed, guard](size_t arm) {
            return MakeArmJointBlock(space, evaluator, optimizer, arm,
                                     child_seed ^ (arm * 0x9e3779b9ULL),
                                     guard);
          },
          /*rounds_per_elimination=*/5,
          ConditioningBlock::EliminationPolicy::kRisingBandit, guard);
    }

    case PlanKind::kConditioningAlternating:
    case PlanKind::kConditioningAlternatingHpFirst: {
      bool hp_first = kind == PlanKind::kConditioningAlternatingHpFirst;
      uint64_t child_seed = rng.Fork();
      return std::make_unique<ConditioningBlock>(
          "cond[algorithm]", "algorithm", num_algorithms,
          [&space, evaluator, optimizer, hp_first, child_seed,
           guard](size_t arm) {
            return MakeArmAlternatingBlock(
                space, evaluator, optimizer, arm, hp_first,
                child_seed ^ (arm * 0x9e3779b9ULL), guard);
          },
          /*rounds_per_elimination=*/5,
          ConditioningBlock::EliminationPolicy::kRisingBandit, guard);
    }

    case PlanKind::kAlternatingFeConditioning: {
      ConfigurationSpace fe_space = space.FeSubspace();
      std::vector<std::string> fe_vars = fe_space.ParameterNames();
      auto fe_block = std::make_unique<JointBlock>(
          "fe[global]", std::move(fe_space), evaluator, optimizer,
          rng.Fork(), guard);

      // HP side: conditioning over algorithms, each arm a joint HP block.
      uint64_t child_seed = rng.Fork();
      auto hp_cond = std::make_unique<ConditioningBlock>(
          "cond[algorithm]", "algorithm", num_algorithms,
          [&space, evaluator, optimizer, child_seed, guard](size_t arm) {
            const std::string& algorithm = space.algorithms()[arm];
            ConfigurationSpace hp_space = space.HpSubspaceFor(algorithm);
            std::unique_ptr<BuildingBlock> block;
            if (hp_space.empty()) {
              // No HPs: a trivial joint block over the algorithm's empty
              // space is impossible; fall back to the full joint space of
              // that algorithm (only its FE defaults vary). Use a
              // one-parameter dummy: re-evaluate the fixed arm.
              ConfigurationSpace fixed;
              fixed.AddCategorical("arm_probe", {"default"});
              block = std::make_unique<JointBlock>(
                  "hp[" + algorithm + "]", std::move(fixed), evaluator,
                  JointOptimizerKind::kRandom,
                  child_seed ^ (arm * 0x2545f491ULL), guard);
            } else {
              block = std::make_unique<JointBlock>(
                  "hp[" + algorithm + "]", std::move(hp_space), evaluator,
                  optimizer, child_seed ^ (arm * 0x2545f491ULL), guard);
            }
            block->SetVar({{"algorithm", static_cast<double>(arm)}});
            return block;
          },
          /*rounds_per_elimination=*/5,
          ConditioningBlock::EliminationPolicy::kRisingBandit, guard);

      // The HP side owns "algorithm" plus every algorithm's HP names.
      std::vector<std::string> hp_vars = {"algorithm"};
      for (const std::string& algorithm : space.algorithms()) {
        for (const std::string& name :
             space.HpSubspaceFor(algorithm).ParameterNames()) {
          hp_vars.push_back(name);
        }
      }
      return std::make_unique<AlternatingBlock>(
          "alt[fe,cond]", std::move(fe_block), fe_vars, std::move(hp_cond),
          hp_vars);
    }
  }
  VOLCANOML_CHECK_MSG(false, "unknown plan kind");
  return nullptr;
}

}  // namespace volcanoml
