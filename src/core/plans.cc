#include "core/plans.h"

namespace volcanoml {

std::unique_ptr<BuildingBlock> BuildPlan(PlanKind kind,
                                         const SearchSpace& space,
                                         PipelineEvaluator* evaluator,
                                         JointOptimizerKind optimizer,
                                         uint64_t seed,
                                         TrialGuardPolicy guard) {
  return Lower(BuildSpec(kind, space, optimizer, seed, guard), evaluator);
}

}  // namespace volcanoml
