#ifndef VOLCANOML_CORE_PLAN_SEARCH_H_
#define VOLCANOML_CORE_PLAN_SEARCH_H_

#include <vector>

#include "core/plans.h"
#include "data/suite.h"

namespace volcanoml {

/// Result of an automatic plan search: each candidate plan's average rank
/// over the probe workload, and the winner.
struct PlanSearchResult {
  std::vector<PlanKind> plans;
  std::vector<double> average_ranks;  ///< Aligned with `plans`.
  PlanKind best = PlanKind::kConditioningAlternating;
};

/// Options for the automatic plan search.
struct PlanSearchOptions {
  SearchSpaceOptions space;
  EvaluatorOptions eval;
  /// Budget per (plan, dataset) probe run.
  double budget_per_run = 25.0;
  uint64_t seed = 1;
};

/// The paper's "automatic plan generation" pilot (Section 4): enumerate
/// all coarse-grained execution plans, run each on every dataset of a
/// probe workload, and return the plan with the best average validation
/// rank. The paper reports that this enumeration selects the manually
/// designed Figure 2 plan; the same procedure is exposed here so users
/// can re-run the selection on their own workloads.
PlanSearchResult SearchBestPlan(const std::vector<DatasetSpec>& workload,
                                const PlanSearchOptions& options);

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_PLAN_SEARCH_H_
