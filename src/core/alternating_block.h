#ifndef VOLCANOML_CORE_ALTERNATING_BLOCK_H_
#define VOLCANOML_CORE_ALTERNATING_BLOCK_H_

#include <memory>
#include <vector>

#include "core/building_block.h"

namespace volcanoml {

/// Alternating block (paper Section 3.3.3, Algorithms 2 and 3): splits its
/// subspace into two halves (e.g. feature engineering vs hyper-parameters)
/// handled by two child blocks, and alternates between them.
///
/// Initialization (Algorithm 2) plays both children round-robin for
/// `init_rounds` rounds, exchanging each side's current best via SetVar.
/// After initialization, each DoNext (Algorithm 3) pulls the child with
/// the larger expected utility improvement, again substituting the other
/// side's incumbent first. Both phases are spread across DoNext calls so
/// one call costs one child pull.
class AlternatingBlock : public BuildingBlock {
 public:
  /// `variables_a` / `variables_b` are the joint-space variable names each
  /// child owns; used to slice incumbents for SetVar exchanges.
  AlternatingBlock(std::string name, std::unique_ptr<BuildingBlock> block_a,
                   std::vector<std::string> variables_a,
                   std::unique_ptr<BuildingBlock> block_b,
                   std::vector<std::string> variables_b,
                   size_t init_rounds = 2);

  void SetVar(const Assignment& vars) override;
  void WarmStart(const Assignment& assignment) override;
  void WarmStartHistory(const Assignment& assignment,
                        double utility) override;
  void CollectArmWinners(std::vector<ArmWinner>* out) const override;

  [[nodiscard]] const BuildingBlock& block_a() const { return *a_; }
  [[nodiscard]] const BuildingBlock& block_b() const { return *b_; }

  /// Aggregated over the two halves (failure accounting spans both).
  [[nodiscard]] size_t NumTrials() const override {
    return a_->NumTrials() + b_->NumTrials();
  }
  [[nodiscard]] size_t NumHardFailures() const override {
    return a_->NumHardFailures() + b_->NumHardFailures();
  }

  /// Adds the init-phase counters and both halves' state.
  void SaveState(SnapshotWriter* w) const override;
  void LoadState(SnapshotReader* r) override;

 protected:
  void DoNextImpl(double k_more, size_t batch_size) override;

 private:
  /// Copies the `variables` entries of `from`'s best assignment into the
  /// other block's context.
  void ShareBest(const BuildingBlock& from,
                 const std::vector<std::string>& variables,
                 BuildingBlock* to);

  void Pull(BuildingBlock* winner, const BuildingBlock& other,
            const std::vector<std::string>& other_vars, double k_more,
            size_t batch_size);

  std::unique_ptr<BuildingBlock> a_;
  std::vector<std::string> vars_a_;
  std::unique_ptr<BuildingBlock> b_;
  std::vector<std::string> vars_b_;
  size_t init_pulls_remaining_;
  bool next_init_is_a_ = true;
};

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_ALTERNATING_BLOCK_H_
