#ifndef VOLCANOML_CORE_PLANS_H_
#define VOLCANOML_CORE_PLANS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/building_block.h"
#include "core/joint_block.h"
#include "eval/evaluator.h"
#include "eval/search_space.h"

namespace volcanoml {

/// The coarse-grained execution plans the paper enumerates (Section 4):
/// Figure 1's Plan 1 / Plan 2 styles plus the alternating variants. Plan
/// kConditioningAlternating is Figure 2 — VolcanoML's default; the others
/// feed the automatic-plan-comparison experiment (E7).
enum class PlanKind {
  /// Plan 1: one joint block over the whole space (what AUSK does).
  kJoint,
  /// Conditioning on algorithm, then one joint block per arm (FE + HP).
  kConditioningJoint,
  /// Figure 2 default: conditioning on algorithm, then alternating
  /// between an FE joint block and an HP joint block per arm.
  kConditioningAlternating,
  /// Alternating between a global FE joint block and a conditioning block
  /// (algorithm -> HP joint) — decomposition order inverted.
  kAlternatingFeConditioning,
  /// As the default, but the alternation explores HP before FE.
  kConditioningAlternatingHpFirst,
};

/// All plan kinds, in a stable order (for enumeration experiments).
std::vector<PlanKind> AllPlanKinds();

/// Short identifier, e.g. "cond+alt(fe,hp)".
std::string PlanKindName(PlanKind kind);

/// Materializes the execution plan `kind` for `space`, evaluating through
/// `evaluator`. Joint blocks use `optimizer` (SMAC by default; MFES-HB
/// for early-stopping mode). Every block in the plan shares the same
/// trial-guard policy (retry cap, arm failure-rate elimination). The
/// returned root is ready for the Volcano execution loop: repeatedly call
/// DoNext until the budget is exhausted.
std::unique_ptr<BuildingBlock> BuildPlan(PlanKind kind,
                                         const SearchSpace& space,
                                         PipelineEvaluator* evaluator,
                                         JointOptimizerKind optimizer,
                                         uint64_t seed,
                                         TrialGuardPolicy guard = {});

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_PLANS_H_
