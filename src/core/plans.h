#ifndef VOLCANOML_CORE_PLANS_H_
#define VOLCANOML_CORE_PLANS_H_

#include <memory>

#include "core/building_block.h"
#include "core/joint_block.h"
#include "core/plan_spec.h"
#include "eval/evaluator.h"
#include "eval/search_space.h"

namespace volcanoml {

/// Materializes the execution plan `kind` for `space`, evaluating through
/// `evaluator` — a convenience wrapper equivalent to
/// `Lower(BuildSpec(kind, space, optimizer, seed, guard), evaluator)`.
/// See core/plan_spec.h for the logical/physical split: PlanKind and the
/// plan-name helpers live there now. The returned root is ready for the
/// Volcano execution loop: repeatedly call DoNext until the budget is
/// exhausted.
std::unique_ptr<BuildingBlock> BuildPlan(PlanKind kind,
                                         const SearchSpace& space,
                                         PipelineEvaluator* evaluator,
                                         JointOptimizerKind optimizer,
                                         uint64_t seed,
                                         TrialGuardPolicy guard = {});

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_PLANS_H_
