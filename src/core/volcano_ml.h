#ifndef VOLCANOML_CORE_VOLCANO_ML_H_
#define VOLCANOML_CORE_VOLCANO_ML_H_

#include <memory>
#include <vector>

#include "core/plans.h"
#include "eval/evaluator.h"
#include "eval/search_space.h"
#include "meta/knowledge_base.h"

namespace volcanoml {

/// One point of a search trajectory: incumbent utility after spending
/// `budget` evaluation units. Drives the time-budget figures (E2, E6).
struct TrajectoryPoint {
  double budget = 0.0;
  double utility = 0.0;
};

/// Result of an AutoML search run.
struct AutoMlResult {
  Assignment best_assignment;
  double best_utility = 0.0;
  std::vector<TrajectoryPoint> trajectory;
  size_t num_evaluations = 0;
};

/// Configuration of a VolcanoML run.
struct VolcanoMlOptions {
  SearchSpaceOptions space;
  EvaluatorOptions eval;
  /// Execution plan; Figure 2's conditioning+alternating by default.
  PlanKind plan = PlanKind::kConditioningAlternating;
  /// Optimizer inside joint blocks.
  JointOptimizerKind optimizer = JointOptimizerKind::kSmac;
  /// Budget in evaluation units (one full-fidelity pipeline evaluation
  /// costs one unit; subsampled evaluations cost their fidelity).
  double budget = 150.0;
  /// Evaluations proposed and evaluated per leaf pull. 1 reproduces the
  /// paper's serial semantics bit-for-bit; > 1 turns every leaf pull into
  /// an EvalEngine batch, which `eval.num_threads` workers evaluate
  /// concurrently.
  size_t batch_size = 1;
  /// Meta-learning warm start: non-null enables the "+meta" variant.
  const MetaKnowledgeBase* knowledge = nullptr;
  size_t num_warm_starts = 5;
  /// Trial-guard policy shared by the whole plan: per-configuration
  /// retry cap (then quarantine) and failure-rate arm elimination. The
  /// defaults are active but inert unless trials actually fail hard
  /// (time out or hit an injected fault).
  TrialGuardPolicy guard;
  uint64_t seed = 1;
};

/// The end-to-end AutoML system (paper Sections 3-4): builds the search
/// space, composes the execution plan, and drives it Volcano-style until
/// the budget is exhausted.
///
/// Usage:
///   VolcanoML automl(options);
///   AutoMlResult result = automl.Fit(train_data);
///   auto pipeline = automl.FitFinalPipeline();   // train on all data
///   auto predictions = pipeline.value().Predict(test_x);
class VolcanoML {
 public:
  explicit VolcanoML(const VolcanoMlOptions& options);

  /// Runs the search on `train` and returns the best configuration found
  /// with its trajectory. May be called once per instance.
  AutoMlResult Fit(const Dataset& train);

  /// Trains the best pipeline on all of the Fit data (call after Fit).
  Result<FittedPipeline> FitFinalPipeline();

  const SearchSpace& space() const { return space_; }
  const AutoMlResult& result() const { return result_; }

  /// The evaluator used by Fit (null before Fit); exposes the full
  /// observation history for post-hoc ensembling.
  const PipelineEvaluator* evaluator() const { return evaluator_.get(); }

 private:
  VolcanoMlOptions options_;
  SearchSpace space_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<PipelineEvaluator> evaluator_;
  AutoMlResult result_;
  bool fitted_ = false;
};

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_VOLCANO_ML_H_
