#ifndef VOLCANOML_CORE_VOLCANO_ML_H_
#define VOLCANOML_CORE_VOLCANO_ML_H_

#include <memory>
#include <vector>

#include "core/plan_executor.h"
#include "core/plans.h"
#include "eval/evaluator.h"
#include "eval/search_space.h"
#include "meta/knowledge_base.h"

namespace volcanoml {

/// Result of an AutoML search run.
struct AutoMlResult {
  Assignment best_assignment;
  double best_utility = 0.0;
  std::vector<TrajectoryPoint> trajectory;
  size_t num_evaluations = 0;
};

/// Configuration of a VolcanoML run.
struct VolcanoMlOptions {
  SearchSpaceOptions space;
  EvaluatorOptions eval;
  /// Execution plan; Figure 2's conditioning+alternating by default.
  PlanKind plan = PlanKind::kConditioningAlternating;
  /// Optimizer inside joint blocks.
  JointOptimizerKind optimizer = JointOptimizerKind::kSmac;
  /// Budget in evaluation units (one full-fidelity pipeline evaluation
  /// costs one unit; subsampled evaluations cost their fidelity).
  double budget = 150.0;
  /// Evaluations proposed and evaluated per leaf pull. 1 reproduces the
  /// paper's serial semantics bit-for-bit; > 1 turns every leaf pull into
  /// an EvalEngine batch, which `eval.num_threads` workers evaluate
  /// concurrently.
  size_t batch_size = 1;
  /// Meta-learning warm start: non-null enables the "+meta" variant.
  const MetaKnowledgeBase* knowledge = nullptr;
  size_t num_warm_starts = 5;
  /// Cap on prior observations transferred per retrieved past run (arm
  /// winners first, then best history; see SuggestPortfolio).
  size_t kb_history_per_run = 16;
  /// Trial-guard policy shared by the whole plan: per-configuration
  /// retry cap (then quarantine) and failure-rate arm elimination. The
  /// defaults are active but inert unless trials actually fail hard
  /// (time out or hit an injected fault).
  TrialGuardPolicy guard;
  uint64_t seed = 1;
};

/// The end-to-end AutoML system (paper Sections 3-4): builds the search
/// space, derives the logical plan (BuildSpec), lowers it to the physical
/// block tree, and drives the executor Volcano-style until the budget is
/// exhausted. See core/plan_spec.h and core/plan_executor.h for the
/// logical/physical layers.
///
/// Usage:
///   VolcanoML automl(options);
///   AutoMlResult result = automl.Fit(train_data);
///   auto pipeline = automl.FitFinalPipeline();   // train on all data
///   auto predictions = pipeline.value().Predict(test_x);
///
/// Stepped usage (checkpointing between pulls):
///   VolcanoML automl(options);
///   Status st = automl.Prepare(train_data);             // build, don't run
///   while (automl.executor()->Step()) { /* snapshot */ }
///   AutoMlResult result = automl.Finish();
class VolcanoML {
 public:
  explicit VolcanoML(const VolcanoMlOptions& options);

  /// Builds the evaluator, derives and lowers the plan, and injects
  /// meta-learned warm starts — everything Fit does except stepping.
  /// Fails with FailedPrecondition when the instance was already
  /// prepared/fitted, and InvalidArgument on a task mismatch.
  [[nodiscard]] Status Prepare(const Dataset& train);

  /// Runs the search on `train` and returns the best configuration found
  /// with its trajectory. May be called once per instance (a second call
  /// aborts via VOLCANOML_CHECK — see Prepare for the recoverable form).
  AutoMlResult Fit(const Dataset& train);

  /// Collects the result after the executor finished stepping (call
  /// after Prepare; Fit calls this internally).
  AutoMlResult Finish();

  /// Exports the durable record of this run for the knowledge base:
  /// dataset identity (content hash, not name), meta-features, best
  /// assignment, trajectory, per-arm winners and the full-fidelity
  /// observation history. Call after stepping finished (any time after
  /// Prepare is legal; an early export just records partial progress).
  [[nodiscard]] RunArtifact ExportRunArtifact() const;

  /// Trains the best pipeline on all of the Fit data (call after Fit).
  Result<FittedPipeline> FitFinalPipeline();

  const SearchSpace& space() const { return space_; }
  const AutoMlResult& result() const { return result_; }

  /// The stepped execution loop (null before Prepare/Fit); exposes
  /// Step(), the trajectory, and snapshot save/load for resume.
  PlanExecutor* executor() { return executor_.get(); }
  const PlanExecutor* executor() const { return executor_.get(); }

  /// The evaluator used by Fit (null before Fit); exposes the full
  /// observation history for post-hoc ensembling.
  const PipelineEvaluator* evaluator() const { return evaluator_.get(); }

 private:
  VolcanoMlOptions options_;
  SearchSpace space_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<PipelineEvaluator> evaluator_;
  std::unique_ptr<PlanExecutor> executor_;
  AutoMlResult result_;
  bool fitted_ = false;
};

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_VOLCANO_ML_H_
