#include "core/snapshot.h"

#include <cstring>

namespace volcanoml {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string HexEncode(const std::string& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xf]);
  }
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

bool HexDecode(const std::string& hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::string U64ToHex(uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHexDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool HexToU64(const std::string& hex, uint64_t* out) {
  if (hex.size() != 16) return false;
  uint64_t v = 0;
  for (char c : hex) {
    int d = HexValue(c);
    if (d < 0) return false;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

bool ParseU64Decimal(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

// -- SnapshotWriter --------------------------------------------------------

void SnapshotWriter::Line(const char* key, char type,
                          const std::string& payload) {
  out_.append(key);
  out_.push_back(' ');
  out_.push_back(type);
  out_.push_back(' ');
  out_.append(payload);
  out_.push_back('\n');
}

void SnapshotWriter::Header() {
  out_.append(kSnapshotMagic);
  out_.push_back(' ');
  out_.append(std::to_string(kSnapshotVersion));
  out_.push_back('\n');
}

void SnapshotWriter::Begin(const std::string& section) {
  out_.append("[ ");
  out_.append(section);
  out_.push_back('\n');
}

void SnapshotWriter::End(const std::string& section) {
  out_.append("] ");
  out_.append(section);
  out_.push_back('\n');
}

void SnapshotWriter::U64(const char* key, uint64_t value) {
  Line(key, 'u', std::to_string(value));
}

void SnapshotWriter::I64(const char* key, int64_t value) {
  Line(key, 'i', std::to_string(value));
}

void SnapshotWriter::F64(const char* key, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  Line(key, 'd', U64ToHex(bits));
}

void SnapshotWriter::Bool(const char* key, bool value) {
  Line(key, 'b', value ? "1" : "0");
}

void SnapshotWriter::Str(const char* key, const std::string& value) {
  Line(key, 's', HexEncode(value));
}

// -- SnapshotReader --------------------------------------------------------

SnapshotReader::SnapshotReader(const std::string& data) {
  size_t start = 0;
  while (start < data.size()) {
    size_t end = data.find('\n', start);
    if (end == std::string::npos) end = data.size();
    lines_.push_back(data.substr(start, end - start));
    start = end + 1;
  }
}

std::vector<std::string> SnapshotReader::NextTokens() {
  std::vector<std::string> tokens;
  if (!ok()) return tokens;
  if (next_line_ >= lines_.size()) {
    Fail("unexpected end of snapshot");
    return tokens;
  }
  const std::string& line = lines_[next_line_++];
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    tokens.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

void SnapshotReader::Fail(const std::string& message) {
  if (!error_.empty()) return;
  error_ = "snapshot line " + std::to_string(next_line_) + ": " + message;
}

void SnapshotReader::Header() {
  std::vector<std::string> tokens = NextTokens();
  if (!ok()) return;
  if (tokens.size() != 2 || tokens[0] != kSnapshotMagic) {
    Fail("not a volcanoml snapshot");
    return;
  }
  uint64_t version = 0;
  if (!ParseU64Decimal(tokens[1], &version)) {
    Fail("malformed snapshot version '" + tokens[1] + "'");
    return;
  }
  if (version != kSnapshotVersion) {
    Fail("snapshot version " + tokens[1] + " != supported version " +
         std::to_string(kSnapshotVersion));
  }
}

void SnapshotReader::Begin(const std::string& section) {
  std::vector<std::string> tokens = NextTokens();
  if (!ok()) return;
  if (tokens.size() != 2 || tokens[0] != "[" || tokens[1] != section) {
    Fail("expected section begin '[ " + section + "'");
  }
}

void SnapshotReader::End(const std::string& section) {
  std::vector<std::string> tokens = NextTokens();
  if (!ok()) return;
  if (tokens.size() != 2 || tokens[0] != "]" || tokens[1] != section) {
    Fail("expected section end '] " + section + "'");
  }
}

std::string SnapshotReader::Payload(const char* key, char type) {
  std::vector<std::string> tokens = NextTokens();
  if (!ok()) return "";
  if (tokens.size() != 3) {
    Fail(std::string("malformed line while reading key '") + key + "'");
    return "";
  }
  if (tokens[0] != key) {
    Fail("expected key '" + std::string(key) + "', found '" + tokens[0] +
         "'");
    return "";
  }
  if (tokens[1].size() != 1 || tokens[1][0] != type) {
    Fail("key '" + std::string(key) + "' has type '" + tokens[1] +
         "', expected '" + std::string(1, type) + "'");
    return "";
  }
  return tokens[2];
}

uint64_t SnapshotReader::U64(const char* key) {
  std::string payload = Payload(key, 'u');
  if (!ok()) return 0;
  uint64_t v = 0;
  if (!ParseU64Decimal(payload, &v)) {
    Fail("key '" + std::string(key) + "': malformed u64 '" + payload + "'");
    return 0;
  }
  return v;
}

int64_t SnapshotReader::I64(const char* key) {
  std::string payload = Payload(key, 'i');
  if (!ok()) return 0;
  bool negative = !payload.empty() && payload[0] == '-';
  uint64_t magnitude = 0;
  if (!ParseU64Decimal(negative ? payload.substr(1) : payload, &magnitude)) {
    Fail("key '" + std::string(key) + "': malformed i64 '" + payload + "'");
    return 0;
  }
  return negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
}

double SnapshotReader::F64(const char* key) {
  std::string payload = Payload(key, 'd');
  if (!ok()) return 0.0;
  uint64_t bits = 0;
  if (!HexToU64(payload, &bits)) {
    Fail("key '" + std::string(key) + "': malformed f64 bits '" + payload +
         "'");
    return 0.0;
  }
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

bool SnapshotReader::Bool(const char* key) {
  std::string payload = Payload(key, 'b');
  if (!ok()) return false;
  if (payload == "1") return true;
  if (payload == "0") return false;
  Fail("key '" + std::string(key) + "': malformed bool '" + payload + "'");
  return false;
}

std::string SnapshotReader::Str(const char* key) {
  std::string payload = Payload(key, 's');
  if (!ok()) return "";
  std::string out;
  if (!HexDecode(payload, &out)) {
    Fail("key '" + std::string(key) + "': malformed hex string");
    return "";
  }
  return out;
}

// -- aggregate helpers -----------------------------------------------------

void SaveDoubleVector(SnapshotWriter* w, const char* key,
                      const std::vector<double>& v) {
  w->U64(key, v.size());
  for (double x : v) w->F64(key, x);
}

std::vector<double> LoadDoubleVector(SnapshotReader* r, const char* key) {
  std::vector<double> v;
  uint64_t n = r->U64(key);
  if (!r->ok()) return v;
  v.reserve(n);
  for (uint64_t i = 0; i < n && r->ok(); ++i) v.push_back(r->F64(key));
  return v;
}

void SaveConfiguration(SnapshotWriter* w, const char* key,
                       const Configuration& config) {
  SaveDoubleVector(w, key, config.values);
}

Configuration LoadConfiguration(SnapshotReader* r, const char* key) {
  Configuration config;
  config.values = LoadDoubleVector(r, key);
  return config;
}

void SaveAssignment(SnapshotWriter* w, const char* key,
                    const Assignment& assignment) {
  w->U64(key, assignment.size());
  for (const auto& [name, value] : assignment) {  // std::map: sorted order.
    w->Str(key, name);
    w->F64(key, value);
  }
}

Assignment LoadAssignment(SnapshotReader* r, const char* key) {
  Assignment assignment;
  uint64_t n = r->U64(key);
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    std::string name = r->Str(key);
    double value = r->F64(key);
    assignment[name] = value;
  }
  return assignment;
}

}  // namespace volcanoml
