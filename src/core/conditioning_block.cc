#include "core/conditioning_block.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace volcanoml {

ConditioningBlock::ConditioningBlock(std::string name, std::string variable,
                                     size_t num_choices,
                                     const ChildFactory& factory,
                                     size_t rounds_per_elimination,
                                     EliminationPolicy policy,
                                     TrialGuardPolicy guard)
    : BuildingBlock(std::move(name)),
      variable_(std::move(variable)),
      rounds_per_elimination_(rounds_per_elimination),
      policy_(policy),
      guard_(guard) {
  VOLCANOML_CHECK(num_choices >= 1);
  VOLCANOML_CHECK(rounds_per_elimination_ >= 1);
  children_.reserve(num_choices);
  for (size_t i = 0; i < num_choices; ++i) {
    children_.push_back(factory(i));
    VOLCANOML_CHECK(children_.back() != nullptr);
  }
  active_.assign(num_choices, true);
}

size_t ConditioningBlock::NumActiveChildren() const {
  return static_cast<size_t>(
      std::count(active_.begin(), active_.end(), true));
}

size_t ConditioningBlock::NumTrials() const {
  size_t total = 0;
  for (const std::unique_ptr<BuildingBlock>& child : children_) {
    total += child->NumTrials();
  }
  return total;
}

size_t ConditioningBlock::NumHardFailures() const {
  size_t total = 0;
  for (const std::unique_ptr<BuildingBlock>& child : children_) {
    total += child->NumHardFailures();
  }
  return total;
}

void ConditioningBlock::SetVar(const Assignment& vars) {
  BuildingBlock::SetVar(vars);
  for (const std::unique_ptr<BuildingBlock>& child : children_) {
    child->SetVar(vars);
  }
}

void ConditioningBlock::WarmStart(const Assignment& assignment) {
  // Route the candidate to the arm matching its conditioned value; if the
  // variable is absent, every arm may benefit from the remaining values.
  auto it = assignment.find(variable_);
  if (it == assignment.end()) {
    for (size_t i = 0; i < children_.size(); ++i) {
      if (active_[i]) children_[i]->WarmStart(assignment);
    }
    return;
  }
  size_t choice = static_cast<size_t>(it->second);
  if (choice < children_.size() && active_[choice]) {
    children_[choice]->WarmStart(assignment);
  }
}

void ConditioningBlock::WarmStartHistory(const Assignment& assignment,
                                         double utility) {
  // Same routing as WarmStart: the observation only informs the arm it
  // was measured under. Without the conditioned variable there is no way
  // to tell which arm's subspace the utility belongs to, so it is
  // dropped rather than broadcast as misleading evidence.
  auto it = assignment.find(variable_);
  if (it == assignment.end()) return;
  size_t choice = static_cast<size_t>(it->second);
  if (choice < children_.size() && active_[choice]) {
    children_[choice]->WarmStartHistory(assignment, utility);
  }
}

void ConditioningBlock::CollectArmWinners(std::vector<ArmWinner>* out) const {
  for (size_t i = 0; i < children_.size(); ++i) {
    const BuildingBlock& child = *children_[i];
    if (!child.HasObservations()) continue;
    if (child.BestAssignment().empty()) continue;
    ArmWinner winner;
    winner.variable = variable_;
    winner.value = static_cast<double>(i);
    winner.assignment = child.BestAssignment();
    winner.utility = child.BestUtility();
    out->push_back(std::move(winner));
    child.CollectArmWinners(out);
  }
}

void ConditioningBlock::SaveState(SnapshotWriter* w) const {
  BuildingBlock::SaveState(w);
  w->Begin("conditioning");
  w->U64("num_children", children_.size());
  for (size_t i = 0; i < children_.size(); ++i) {
    w->Bool("active", active_[i]);
    children_[i]->SaveState(w);
  }
  w->U64("rounds_completed", rounds_completed_);
  w->End("conditioning");
}

void ConditioningBlock::LoadState(SnapshotReader* r) {
  BuildingBlock::LoadState(r);
  r->Begin("conditioning");
  uint64_t n = r->U64("num_children");
  if (r->ok() && n != children_.size()) {
    r->Fail("snapshot has " + std::to_string(n) +
            " arms, plan has " + std::to_string(children_.size()));
    return;
  }
  for (size_t i = 0; i < children_.size() && r->ok(); ++i) {
    active_[i] = r->Bool("active");
    children_[i]->LoadState(r);
  }
  rounds_completed_ = r->U64("rounds_completed");
  r->End("conditioning");
}

void ConditioningBlock::DoNextImpl(double k_more, size_t batch_size) {
  // One round-robin pass over the active arms (Algorithm 1, inner loop);
  // the batch width is forwarded so each arm's leaf evaluates its batch
  // concurrently.
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!active_[i]) continue;
    children_[i]->DoNext(k_more, batch_size);
    AbsorbBest(*children_[i]);
  }
  ++rounds_completed_;
  // Failure-based elimination runs every round: an arm whose trials mostly
  // time out is pure budget loss and need not wait for a bound checkpoint.
  // Inert in clean runs (every arm's hard-failure rate is 0).
  EliminateFailingArms();
  if (policy_ == EliminationPolicy::kRisingBandit) {
    if (rounds_completed_ >= rounds_per_elimination_) {
      EliminateDominated(k_more);
    }
  } else if (rounds_completed_ % rounds_per_elimination_ == 0) {
    HalveArms();
  }
}

void ConditioningBlock::EliminateFailingArms() {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!active_[i] || NumActiveChildren() <= 1) continue;
    const BuildingBlock& child = *children_[i];
    if (child.NumTrials() < guard_.arm_failure_min_trials) continue;
    if (child.HardFailureRate() >= guard_.arm_failure_rate_threshold) {
      active_[i] = false;
      VOLCANOML_LOG(Info) << name() << ": eliminated failing arm '"
                          << child.name() << "' (hard-failure rate "
                          << child.HardFailureRate() << " over "
                          << child.NumTrials() << " trials)";
    }
  }
}

void ConditioningBlock::HalveArms() {
  // Successive-halving schedule: keep the better half of the active arms
  // by current best utility.
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!active_[i]) continue;
    ranked.push_back({children_[i]->BestUtility(), i});
  }
  if (ranked.size() <= 1) return;
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  size_t keep = (ranked.size() + 1) / 2;
  for (size_t r = keep; r < ranked.size(); ++r) {
    active_[ranked[r].second] = false;
    VOLCANOML_LOG(Info) << name() << ": halving eliminated arm '"
                        << children_[ranked[r].second]->name() << "'";
  }
}

void ConditioningBlock::EliminateDominated(double k_more) {
  // Compute [l_j, u_j] per active arm (Algorithm 1, lines 5-7). The
  // remaining budget is *shared* by the arms (paper's Remark in 3.3.2),
  // so each arm extrapolates only over its per-arm share — the bound the
  // paper notes would otherwise be over-optimistic.
  double per_arm_budget =
      k_more / std::max<double>(1.0, static_cast<double>(NumActiveChildren()));
  std::vector<EuBounds> bounds(children_.size());
  double best_lower = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!active_[i]) continue;
    bounds[i] = children_[i]->GetEu(per_arm_budget);
    best_lower = std::max(best_lower, bounds[i].lower);
  }
  size_t survivors = NumActiveChildren();
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!active_[i] || survivors <= 1) continue;
    if (bounds[i].upper < best_lower) {
      active_[i] = false;
      --survivors;
      VOLCANOML_LOG(Info) << name() << ": eliminated arm '"
                          << children_[i]->name() << "' (u="
                          << bounds[i].upper << " < l*=" << best_lower << ")";
    }
  }
}

}  // namespace volcanoml
