#include "core/plan_search.h"

#include "core/volcano_ml.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace volcanoml {

PlanSearchResult SearchBestPlan(const std::vector<DatasetSpec>& workload,
                                const PlanSearchOptions& options) {
  VOLCANOML_CHECK(!workload.empty());
  PlanSearchResult result;
  result.plans = AllPlanKinds();

  Rng rng(options.seed);
  // utilities[dataset][plan]: best validation utility of each probe run.
  std::vector<std::vector<double>> utilities;
  for (size_t d = 0; d < workload.size(); ++d) {
    Dataset data = workload[d].make(options.seed ^ (d * 0x9e3779b9ULL));
    uint64_t run_seed = rng.Fork();
    std::vector<double> row;
    for (PlanKind plan : result.plans) {
      VolcanoMlOptions run;
      run.space = options.space;
      run.eval = options.eval;
      run.plan = plan;
      run.budget = options.budget_per_run;
      run.seed = run_seed;  // Same seed across plans: paired comparison.
      VolcanoML engine(run);
      row.push_back(engine.Fit(data).best_utility);
    }
    utilities.push_back(std::move(row));
    VOLCANOML_LOG(Info) << "plan search: probed " << workload[d].name;
  }

  result.average_ranks = AverageRanks(utilities, /*higher_is_better=*/true);
  result.best = result.plans[ArgMin(result.average_ranks)];
  return result;
}

}  // namespace volcanoml
