#ifndef VOLCANOML_CORE_BUILDING_BLOCK_H_
#define VOLCANOML_CORE_BUILDING_BLOCK_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "bandit/eu.h"
#include "core/snapshot.h"
#include "cs/configuration.h"
#include "meta/artifact.h"

namespace volcanoml {

/// Trial-guard knobs shared by every block in an execution plan: how
/// failure-prone configurations and arms are retired from the search.
/// See DESIGN.md "Failure model & trial guard".
struct TrialGuardPolicy {
  /// Hard failures (deadline timeout / injected fault) one configuration
  /// may accumulate before its joint block quarantines it — the config is
  /// retried up to this many times, then never re-suggested.
  size_t retry_cap = 2;
  /// Conditioning blocks eliminate an active arm whose hard-failure rate
  /// reaches this threshold, once the arm has run at least
  /// `arm_failure_min_trials` trials (at least one arm always survives).
  double arm_failure_rate_threshold = 0.5;
  size_t arm_failure_min_trials = 8;
};

inline bool operator==(const TrialGuardPolicy& a, const TrialGuardPolicy& b) {
  return a.retry_cap == b.retry_cap &&
         a.arm_failure_rate_threshold == b.arm_failure_rate_threshold &&
         a.arm_failure_min_trials == b.arm_failure_min_trials;
}
inline bool operator!=(const TrialGuardPolicy& a, const TrialGuardPolicy& b) {
  return !(a == b);
}

/// Abstract VolcanoML building block (paper Section 3.2).
///
/// A block owns a subgoal: optimizing the objective over a subset of the
/// search-space variables while the remaining variables are substituted
/// with fixed values (`context`, the paper's x_g = c_g). Blocks form a
/// tree — the execution plan — evaluated Volcano-style: DoNext() on the
/// root recursively advances exactly one leaf by one optimization step.
///
/// The interface mirrors the paper's primitives:
///   do_next!          -> DoNext(k_more)
///   get_current_best  -> BestAssignment() / BestUtility()
///   get_eu            -> GetEu(k_more)  (rising-bandit [l, u] bounds)
///   get_eui           -> GetEui()       (mean historical improvement)
///   set_var           -> SetVar(vars)
class BuildingBlock {
 public:
  explicit BuildingBlock(std::string name) : name_(std::move(name)) {}
  virtual ~BuildingBlock() = default;

  BuildingBlock(const BuildingBlock&) = delete;
  BuildingBlock& operator=(const BuildingBlock&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Advances the block by one iteration (one pull). `k_more` is the
  /// caller's estimate of the remaining budget in pulls, forwarded to
  /// elimination decisions inside composite blocks.
  ///
  /// `batch_size` widens the pull: the leaf reached by this call proposes
  /// up to `batch_size` configurations at once and evaluates them as one
  /// EvalEngine batch (concurrently when the engine has threads).
  /// batch_size = 1 is the paper's serial semantics, bit-for-bit: one
  /// suggest, one evaluation, one observe. Pull accounting is per DoNext
  /// call regardless of batch size — a batched pull contributes one
  /// pull-history entry (the incumbent after the whole batch), keeping
  /// rising-bandit bounds comparable across batch sizes.
  void DoNext(double k_more, size_t batch_size = 1);

  /// Best full assignment observed anywhere in this block's subtree
  /// (own variables plus the context they were evaluated under).
  [[nodiscard]] const Assignment& BestAssignment() const {
    return best_assignment_;
  }
  [[nodiscard]] double BestUtility() const { return best_utility_; }
  [[nodiscard]] bool HasObservations() const { return !pull_history_.empty(); }

  /// Rising-bandit bounds on this block's utility after `k_more` more
  /// pulls (paper's get_eu; see bandit/eu.h).
  [[nodiscard]] EuBounds GetEu(double k_more) const {
    return RisingBanditBounds(pull_history_, k_more);
  }

  /// Expected utility improvement per pull (paper's get_eui).
  [[nodiscard]] double GetEui() const {
    return MeanImprovementEui(pull_history_);
  }

  /// Substitutes values for variables outside this block's subspace
  /// (the paper's set_var). Composite blocks propagate to children.
  virtual void SetVar(const Assignment& vars);

  /// Injects a meta-learned candidate into the subtree; blocks route it
  /// to the optimizer(s) owning its variables.
  virtual void WarmStart(const Assignment& assignment) { (void)assignment; }

  /// Injects a prior observation transferred from a past run, routed like
  /// WarmStart to the optimizer(s) owning the assignment's variables.
  /// Unlike WarmStart the candidate is not queued for evaluation; it
  /// enters the optimizer's model history (ObservePrior) so surrogates
  /// start informed. Transferred utilities never touch block incumbents
  /// or pull histories — the run's reported best comes only from
  /// configurations actually evaluated here. Call before the first
  /// DoNext.
  virtual void WarmStartHistory(const Assignment& assignment,
                                double utility) {
    (void)assignment;
    (void)utility;
  }

  /// Appends this subtree's per-arm winners (conditioning blocks: the
  /// best assignment each arm with observations found) to `out`, for
  /// export into a RunArtifact. Default: nothing to report.
  virtual void CollectArmWinners(std::vector<ArmWinner>* out) const {
    (void)out;
  }

  /// Best-so-far utility after each pull (drives GetEu / GetEui).
  [[nodiscard]] const std::vector<double>& pull_history() const {
    return pull_history_;
  }
  [[nodiscard]] size_t NumPulls() const { return pull_history_.size(); }

  /// Evaluations this block's subtree has committed, and how many of
  /// them ended in a hard failure (deadline timeout / injected fault).
  /// Composite blocks aggregate over their children; conditioning blocks
  /// read these per arm to retire failure-prone arms.
  [[nodiscard]] virtual size_t NumTrials() const { return num_trials_; }
  [[nodiscard]] virtual size_t NumHardFailures() const {
    return num_hard_failures_;
  }
  /// Serializes this block's search progress (pull history, incumbent,
  /// trial counts, context). Composite blocks recurse into children;
  /// joint blocks append their optimizer state. The block name is written
  /// and verified on load, so a snapshot taken from a structurally
  /// different plan is rejected instead of silently misapplied.
  virtual void SaveState(SnapshotWriter* w) const;
  virtual void LoadState(SnapshotReader* r);

  [[nodiscard]] double HardFailureRate() const {
    size_t trials = NumTrials();
    return trials == 0
               ? 0.0
               : static_cast<double>(NumHardFailures()) /
                     static_cast<double>(trials);
  }

 protected:
  /// Subclass hook performing one (possibly batched) iteration.
  virtual void DoNextImpl(double k_more, size_t batch_size) = 0;

  /// Records an evaluated (full assignment, utility) observation and
  /// updates the incumbent.
  void RecordObservation(const Assignment& full_assignment, double utility);

  /// Merges a child's incumbent into this block's (used by composites).
  void AbsorbBest(const BuildingBlock& child);

  /// Records that one evaluation committed, and whether it was a hard
  /// failure (leaf blocks call this once per committed outcome).
  void RecordTrialOutcome(bool hard_failure) {
    ++num_trials_;
    if (hard_failure) ++num_hard_failures_;
  }

  Assignment context_;

 private:
  std::string name_;
  std::vector<double> pull_history_;
  Assignment best_assignment_;
  double best_utility_ = -std::numeric_limits<double>::infinity();
  size_t num_trials_ = 0;
  size_t num_hard_failures_ = 0;
};

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_BUILDING_BLOCK_H_
