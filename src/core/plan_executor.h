#ifndef VOLCANOML_CORE_PLAN_EXECUTOR_H_
#define VOLCANOML_CORE_PLAN_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/building_block.h"
#include "core/plan_spec.h"
#include "core/snapshot.h"
#include "core/trajectory.h"
#include "eval/evaluator.h"
#include "util/status.h"
#include "util/timer.h"

namespace volcanoml {

/// What one Step() accomplished — handed to the step hook so external
/// drivers (the session daemon, checkpointing loops) can meter progress
/// without polling the executor between pulls.
struct StepEvent {
  /// 1-based index of the completed step (equals num_steps()).
  size_t step = 0;
  /// Budget units (or seconds) the step consumed.
  double budget_delta = 0.0;
  /// Total budget consumed after the step.
  double consumed_budget = 0.0;
  /// Incumbent utility after the step.
  double best_utility = 0.0;
};

/// Execution settings for one search run (the executor's slice of
/// VolcanoMlOptions).
struct PlanExecutorOptions {
  /// Budget in evaluation units, or in wall-clock seconds when
  /// `budget_in_seconds` is set.
  double budget = 150.0;
  /// Evaluations proposed and evaluated per leaf pull; 1 is the paper's
  /// serial semantics, bit-for-bit.
  size_t batch_size = 1;
  /// Whether `budget` is wall-clock seconds (evaluation time plus
  /// optimizer overhead) instead of evaluation units.
  bool budget_in_seconds = false;
};

/// The PHYSICAL executor: lowers a logical PlanSpec into the block tree
/// and drives it Volcano-style, one Step() per pull. The executor owns
/// what the search loop needs — budget accounting, the trajectory, the
/// stop condition — leaving VolcanoML::Fit as a thin pipeline of
/// build-space -> build-spec -> lower -> run.
///
/// Stepping is externally controllable (the CLI checkpoints between
/// steps), and the whole search state is snapshottable: SaveSnapshot()
/// serializes the block tree, every optimizer, the evaluation engine and
/// the trajectory into a versioned byte-exact text format, and
/// LoadSnapshot() restores it so a killed run resumes bit-for-bit
/// identical to one that never stopped (deterministic-budget mode;
/// seconds budgets resume from the saved consumed time but wall-clock
/// itself is inherently non-deterministic).
class PlanExecutor {
 public:
  /// Lowers `spec` against `evaluator` and applies the deterministic
  /// budget limit to the engine. `evaluator` must outlive the executor.
  PlanExecutor(const PlanSpec& spec, PipelineEvaluator* evaluator,
               const PlanExecutorOptions& options);

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  /// Injects a meta-learned candidate into the plan (before stepping).
  void WarmStart(const Assignment& assignment);

  /// Injects a transferred prior observation into the plan's optimizers
  /// (before stepping). See BuildingBlock::WarmStartHistory for the
  /// routing and incumbent-isolation contract.
  void WarmStartHistory(const Assignment& assignment, double utility);

  /// Whether the stop condition holds (budget exhausted).
  [[nodiscard]] bool Done() const;

  /// One pull: DoNext on the root plus budget/trajectory accounting.
  /// Returns false (and does nothing) once Done().
  bool Step();

  /// Steps until Done().
  void Run();

  /// Registers a hook invoked after every successful Step() with that
  /// step's StepEvent — the lifecycle seam external drivers (the session
  /// daemon's scheduler, telemetry collectors) attach to. The hook must
  /// not call back into the executor. Pass an empty function to clear.
  /// Hooks are observation-only and never serialized into snapshots, so
  /// hooked and hook-free runs stay bit-identical.
  void set_step_hook(std::function<void(const StepEvent&)> hook) {
    step_hook_ = std::move(hook);
  }

  /// Incumbent utility / assignment of the lowered plan — convenience
  /// passthroughs so external drivers need not walk the block tree.
  [[nodiscard]] double BestUtility() const { return root_->BestUtility(); }
  [[nodiscard]] Assignment BestAssignment() const {
    return root_->BestAssignment();
  }

  /// Budget consumed so far (engine units, or seconds incl. resumed
  /// time).
  [[nodiscard]] double consumed_budget() const;
  [[nodiscard]] size_t num_steps() const { return num_steps_; }
  [[nodiscard]] const std::vector<TrajectoryPoint>& trajectory() const {
    return trajectory_;
  }
  [[nodiscard]] const BuildingBlock& root() const { return *root_; }

  /// Serializes the complete search state (versioned; see
  /// core/snapshot.h). Two executors in identical states produce
  /// byte-identical snapshots.
  [[nodiscard]] std::string SaveSnapshot() const;

  /// Restores a SaveSnapshot() payload into this freshly-prepared
  /// executor. The executor must not have stepped yet, and must have
  /// been built from the same plan (the snapshot embeds a structural
  /// fingerprint that is validated, and every block re-checks its name).
  /// On error the executor state is unspecified; discard it.
  [[nodiscard]] Status LoadSnapshot(const std::string& data);

 private:
  PlanExecutorOptions options_;
  PipelineEvaluator* evaluator_;
  std::unique_ptr<BuildingBlock> root_;
  /// Structural fingerprint of the lowered plan (PlanSpec::Explain),
  /// embedded in snapshots to reject resumes across different plans.
  std::string plan_fingerprint_;
  std::function<void(const StepEvent&)> step_hook_;
  std::vector<TrajectoryPoint> trajectory_;
  size_t num_steps_ = 0;
  /// Seconds-budget bookkeeping: consumed seconds restored from a
  /// snapshot, plus the running stopwatch since construction/load.
  double base_seconds_ = 0.0;
  Stopwatch run_timer_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_CORE_PLAN_EXECUTOR_H_
