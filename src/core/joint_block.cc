#include "core/joint_block.h"

#include <utility>
#include <vector>

#include "bo/quarantine.h"
#include "util/check.h"
#include "util/sorted_view.h"

namespace volcanoml {

JointBlock::JointBlock(std::string name, ConfigurationSpace space,
                       PipelineEvaluator* evaluator, JointOptimizerKind kind,
                       uint64_t seed, TrialGuardPolicy guard)
    : BuildingBlock(std::move(name)),
      space_(std::move(space)),
      evaluator_(evaluator),
      kind_(kind),
      guard_(guard) {
  VOLCANOML_CHECK(evaluator_ != nullptr);
  VOLCANOML_CHECK(!space_.empty());
  switch (kind_) {
    case JointOptimizerKind::kSmac:
      optimizer_ = std::make_unique<SmacOptimizer>(&space_,
                                                   SmacOptimizer::Options{},
                                                   seed);
      break;
    case JointOptimizerKind::kRandom:
      optimizer_ = std::make_unique<RandomSearchOptimizer>(&space_, seed);
      break;
    case JointOptimizerKind::kMfesHb:
      mfes_ = std::make_unique<MfesHbOptimizer>(
          &space_, MfesHbOptimizer::Options{}, seed);
      break;
    case JointOptimizerKind::kTpe:
      optimizer_ = std::make_unique<TpeOptimizer>(&space_,
                                                  TpeOptimizer::Options{},
                                                  seed);
      break;
  }
  if (optimizer_ != nullptr) {
    // SMAC convention: the space's default configuration is evaluated
    // first — defaults carry strong priors (e.g. "no FE" / library
    // default hyper-parameters) and anchor the arm's early utility.
    optimizer_->EnqueueInitial(space_.Default());
  }
}

void JointBlock::WarmStart(const Assignment& assignment) {
  Configuration config = space_.FromAssignment(assignment);
  if (optimizer_ != nullptr) {
    // Portfolio convention: the first transferred winner REPLACES the
    // queued default rather than queueing behind it. The arm still
    // spends exactly one round-one evaluation on its anchor — it is just
    // a better-informed anchor — so a warm run's proposal stream is
    // never delayed relative to a cold run's. Only an untouched queue is
    // cleared: once evaluations started, seeds append normally.
    if (!default_replaced_ && !optimizer_->HasObservations()) {
      optimizer_->ClearInitialQueue();
      default_replaced_ = true;
    }
    optimizer_->EnqueueInitial(config);
  }
  // MFES-HB has no seed queue; warm starts only guide surrogate-based
  // proposals once observations exist, so they are skipped there.
}

void JointBlock::WarmStartHistory(const Assignment& assignment,
                                  double utility) {
  if (optimizer_ == nullptr) return;  // MFES-HB: no prior-injection seam.
  optimizer_->ObservePrior(space_.FromAssignment(assignment), utility);
}

Assignment JointBlock::FullAssignment(const Configuration& config) const {
  Assignment full = context_;
  for (const auto& [name, value] : space_.ToAssignment(config)) {
    full[name] = value;
  }
  return full;
}

size_t JointBlock::num_quarantined() const {
  if (optimizer_ != nullptr) return optimizer_->num_quarantined();
  if (mfes_ != nullptr) return mfes_->num_quarantined();
  return 0;
}

void JointBlock::HandleOutcome(const Configuration& config,
                               const EvalOutcome& outcome) {
  RecordTrialOutcome(outcome.hard_failure());
  if (!outcome.hard_failure()) return;
  size_t count = ++hard_failure_counts_[ConfigurationBitKey(config)];
  if (count >= guard_.retry_cap) {
    if (optimizer_ != nullptr) optimizer_->Quarantine(config);
    if (mfes_ != nullptr) mfes_->Quarantine(config);
  }
}

void JointBlock::SaveState(SnapshotWriter* w) const {
  BuildingBlock::SaveState(w);
  w->Begin("joint");
  // SortedItems for byte-deterministic output (the map is unordered).
  const auto counts = SortedItems(hard_failure_counts_);
  w->U64("hard_failure_counts", counts.size());
  for (const auto& [key, count] : counts) {
    w->Str("failure_key", key);
    w->U64("failure_count", count);
  }
  if (mfes_ != nullptr) {
    mfes_->SaveState(w);
  } else {
    optimizer_->SaveState(w);
  }
  w->End("joint");
}

void JointBlock::LoadState(SnapshotReader* r) {
  BuildingBlock::LoadState(r);
  r->Begin("joint");
  uint64_t n = r->U64("hard_failure_counts");
  hard_failure_counts_.clear();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    std::string key = r->Str("failure_key");
    hard_failure_counts_[key] = r->U64("failure_count");
  }
  if (mfes_ != nullptr) {
    mfes_->LoadState(r);
  } else {
    optimizer_->LoadState(r);
  }
  r->End("joint");
}

void JointBlock::DoNextImpl(double /*k_more*/, size_t batch_size) {
  // Every path below iterates over the COMMITTED prefix of outcomes: an
  // engine budget limit may truncate the batch, and only committed
  // evaluations are observed (a truncated proposal is simply dropped —
  // the search is out of budget anyway).
  if (kind_ == JointOptimizerKind::kMfesHb) {
    if (batch_size == 1) {
      MfesHbOptimizer::Proposal proposal = mfes_->Next();
      Assignment full = FullAssignment(proposal.config);
      std::vector<EvalOutcome> outcomes =
          evaluator_->EvaluateBatchOutcomes({{full, proposal.fidelity}});
      if (outcomes.empty()) return;
      mfes_->Observe(proposal.config, proposal.fidelity,
                     outcomes[0].utility);
      HandleOutcome(proposal.config, outcomes[0]);
      // Only full-fidelity measurements update the incumbent: subsampled
      // utilities are not comparable to full-data ones.
      if (proposal.fidelity >= 1.0) {
        RecordObservation(full, outcomes[0].utility);
      }
      return;
    }
    // Batched: evaluate the rung's pending proposals concurrently, then
    // observe in proposal order (NextBatch never crosses a rung boundary,
    // so the batch members are mutually independent).
    std::vector<MfesHbOptimizer::Proposal> proposals =
        mfes_->NextBatch(batch_size);
    std::vector<EvalRequest> requests;
    requests.reserve(proposals.size());
    for (const MfesHbOptimizer::Proposal& proposal : proposals) {
      requests.push_back({FullAssignment(proposal.config), proposal.fidelity});
    }
    std::vector<EvalOutcome> outcomes =
        evaluator_->EvaluateBatchOutcomes(requests);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      mfes_->Observe(proposals[i].config, proposals[i].fidelity,
                     outcomes[i].utility);
      HandleOutcome(proposals[i].config, outcomes[i]);
      if (proposals[i].fidelity >= 1.0) {
        RecordObservation(requests[i].assignment, outcomes[i].utility);
      }
    }
    return;
  }

  if (batch_size == 1) {
    Configuration config = optimizer_->Suggest();
    Assignment full = FullAssignment(config);
    std::vector<EvalOutcome> outcomes =
        evaluator_->EvaluateBatchOutcomes({{full, 1.0}});
    if (outcomes.empty()) return;
    optimizer_->Observe(config, outcomes[0].utility);
    HandleOutcome(config, outcomes[0]);
    RecordObservation(full, outcomes[0].utility);
    return;
  }

  std::vector<Configuration> configs = optimizer_->SuggestBatch(batch_size);
  std::vector<EvalRequest> requests;
  requests.reserve(configs.size());
  for (const Configuration& config : configs) {
    requests.push_back({FullAssignment(config), 1.0});
  }
  std::vector<EvalOutcome> outcomes =
      evaluator_->EvaluateBatchOutcomes(requests);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    optimizer_->Observe(configs[i], outcomes[i].utility);
    HandleOutcome(configs[i], outcomes[i]);
    RecordObservation(requests[i].assignment, outcomes[i].utility);
  }
}

}  // namespace volcanoml
