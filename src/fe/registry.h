#ifndef VOLCANOML_FE_REGISTRY_H_
#define VOLCANOML_FE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cs/configuration_space.h"
#include "fe/operator.h"

namespace volcanoml {

/// The feature-engineering stages of the auto-sklearn-style pipeline
/// (paper Section 3.1), plus the optional embedding-selection stage of
/// the Figure 3 enriched search space. Each stage picks one operator.
enum class FeStage {
  kEmbedding,  ///< Optional (enriched space): pre-trained encoder choice.
  kPreprocessing,
  kRescaling,
  kBalancing,
  kTransform,
};

/// Stage name as used in search-space parameter names ("rescaling", ...).
const char* FeStageName(FeStage stage);

/// A registered feature-engineering operator: name, stage, per-operator
/// hyper-parameter space (unprefixed), and factory.
struct FeOperatorInfo {
  std::string name;
  FeStage stage;
  ConfigurationSpace hp_space;
  std::function<std::unique_ptr<FeOperator>(const ConfigurationSpace& space,
                                            const Configuration& config,
                                            uint64_t seed)>
      create;
};

/// Operators available for a stage. `include_smote` additionally exposes
/// the "smote" balancer — the search-space enrichment of Table 2 that
/// stock auto-sklearn cannot express.
std::vector<FeOperatorInfo> OperatorsFor(FeStage stage,
                                         bool include_smote = false);

/// Lookup by name across stages; aborts for unknown names.
FeOperatorInfo FindFeOperator(const std::string& name);

}  // namespace volcanoml

#endif  // VOLCANOML_FE_REGISTRY_H_
