#ifndef VOLCANOML_FE_SCALERS_H_
#define VOLCANOML_FE_SCALERS_H_

#include <vector>

#include "fe/operator.h"

namespace volcanoml {

/// Per-column standardization to zero mean / unit variance.
class StandardScaler : public FeOperator {
 public:
  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;
  Matrix TransformOwned(Matrix x) const override;

 private:
  std::vector<double> means_, scales_;
};

/// Per-column min-max scaling to [0, 1].
class MinMaxScaler : public FeOperator {
 public:
  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;
  Matrix TransformOwned(Matrix x) const override;

 private:
  std::vector<double> mins_, ranges_;
};

/// Robust scaling: subtract the median, divide by the IQR-style quantile
/// range [q, 1-q].
class RobustScaler : public FeOperator {
 public:
  /// `quantile` in (0, 0.5): e.g. 0.25 uses the inter-quartile range.
  explicit RobustScaler(double quantile);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;
  Matrix TransformOwned(Matrix x) const override;

 private:
  double quantile_;
  std::vector<double> medians_, scales_;
};

/// Row-wise L2 normalization (each sample scaled to unit norm).
class L2Normalizer : public FeOperator {
 public:
  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;
  Matrix TransformOwned(Matrix x) const override;
};

/// Maps each column through its empirical CDF (output in [0, 1]); an
/// order-preserving rank transform robust to outliers.
class QuantileTransformer : public FeOperator {
 public:
  /// `num_quantiles` reference points per column (>= 2).
  explicit QuantileTransformer(size_t num_quantiles);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;
  Matrix TransformOwned(Matrix x) const override;

 private:
  size_t num_quantiles_;
  std::vector<std::vector<double>> references_;  ///< Per column, sorted.
};

/// Clips each column to its [q, 1-q] training quantiles (winsorization).
class Winsorizer : public FeOperator {
 public:
  explicit Winsorizer(double quantile);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;
  Matrix TransformOwned(Matrix x) const override;

 private:
  double quantile_;
  std::vector<double> lower_, upper_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_FE_SCALERS_H_
