#ifndef VOLCANOML_FE_BALANCERS_H_
#define VOLCANOML_FE_BALANCERS_H_

#include <cstdint>

#include "fe/operator.h"

namespace volcanoml {

/// Random oversampling: duplicates minority-class rows (with replacement)
/// until each class holds at least `target_ratio` of the majority count.
class RandomOversampler : public FeOperator {
 public:
  RandomOversampler(double target_ratio, uint64_t seed);

  Status Fit(const Dataset& train) override;
  bool ResamplesRows() const override { return true; }
  Dataset ResampleTrain(const Dataset& train) const override;

 private:
  double target_ratio_;
  uint64_t seed_;
};

/// Random undersampling: drops majority-class rows until the majority is
/// at most `1 / target_ratio` times the minority count.
class RandomUndersampler : public FeOperator {
 public:
  RandomUndersampler(double target_ratio, uint64_t seed);

  Status Fit(const Dataset& train) override;
  bool ResamplesRows() const override { return true; }
  Dataset ResampleTrain(const Dataset& train) const override;

 private:
  double target_ratio_;
  uint64_t seed_;
};

/// SMOTE: synthesizes minority-class samples by interpolating between a
/// minority row and one of its k nearest minority neighbors, until each
/// class holds at least `target_ratio` of the majority count. This is the
/// "smote_balancer" operator of the paper's Table 2 search-space
/// enrichment experiment.
class SmoteBalancer : public FeOperator {
 public:
  SmoteBalancer(int k_neighbors, double target_ratio, uint64_t seed);

  Status Fit(const Dataset& train) override;
  bool ResamplesRows() const override { return true; }
  Dataset ResampleTrain(const Dataset& train) const override;

 private:
  int k_neighbors_;
  double target_ratio_;
  uint64_t seed_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_FE_BALANCERS_H_
