#include "fe/pipeline.h"

#include <utility>

#include "util/check.h"
#include "util/deadline.h"

namespace volcanoml {

void FePipeline::Add(std::unique_ptr<FeOperator> op) {
  VOLCANOML_CHECK_MSG(!fitted_, "cannot add operators after FitTransform");
  ops_.push_back(std::move(op));
}

Result<Dataset> FePipeline::FitTransform(const Dataset& train) {
  Dataset current = train;
  for (const std::unique_ptr<FeOperator>& op : ops_) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "feature-engineering pipeline interrupted by trial deadline");
    }
    Status s = op->Fit(current);
    if (!s.ok()) return s;
    if (op->ResamplesRows()) {
      current = op->ResampleTrain(current);
      if (current.NumSamples() == 0) {
        return Status::Internal("balancer produced an empty dataset");
      }
    } else {
      Matrix transformed = op->Transform(current.x());
      if (transformed.cols() == 0) {
        return Status::Internal("operator produced zero features");
      }
      current = current.WithFeatures(std::move(transformed));
    }
  }
  fitted_ = true;
  return current;
}

Matrix FePipeline::Transform(const Matrix& x) const {
  VOLCANOML_CHECK_MSG(fitted_, "Transform before FitTransform");
  Matrix current = x;
  for (const std::unique_ptr<FeOperator>& op : ops_) {
    if (op->ResamplesRows()) continue;
    current = op->Transform(current);
  }
  return current;
}

}  // namespace volcanoml
