#include "fe/pipeline.h"

#include <utility>

#include "util/check.h"
#include "util/deadline.h"

namespace volcanoml {

void FePipeline::Add(std::unique_ptr<FeOperator> op) {
  VOLCANOML_CHECK_MSG(!fitted_, "cannot add operators after FitTransform");
  ops_.push_back(std::move(op));
}

Result<Dataset> FePipeline::FitTransform(Dataset train) {
  for (const std::unique_ptr<FeOperator>& op : ops_) {
    if (TrialDeadlineExpired()) {
      return Status::DeadlineExceeded(
          "feature-engineering pipeline interrupted by trial deadline");
    }
    Status s = op->Fit(train);
    if (!s.ok()) return s;
    if (op->ResamplesRows()) {
      train = op->ResampleTrain(train);
      if (train.NumSamples() == 0) {
        return Status::Internal("balancer produced an empty dataset");
      }
    } else {
      // Hand the feature matrix to the operator and take the result back:
      // shape-preserving operators mutate it in place, the rest allocate
      // only their new shape. The dataset's targets/metadata never move.
      Matrix transformed = op->TransformOwned(std::move(train.mutable_x()));
      if (transformed.cols() == 0) {
        return Status::Internal("operator produced zero features");
      }
      train.ReplaceFeatures(std::move(transformed));
    }
  }
  fitted_ = true;
  return train;
}

Matrix FePipeline::Transform(Matrix x) const {
  VOLCANOML_CHECK_MSG(fitted_, "Transform before FitTransform");
  for (const std::unique_ptr<FeOperator>& op : ops_) {
    if (op->ResamplesRows()) continue;
    x = op->TransformOwned(std::move(x));
  }
  return x;
}

}  // namespace volcanoml
