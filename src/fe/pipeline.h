#ifndef VOLCANOML_FE_PIPELINE_H_
#define VOLCANOML_FE_PIPELINE_H_

#include <memory>
#include <vector>

#include "fe/operator.h"
#include "util/status.h"

namespace volcanoml {

/// An ordered chain of feature-engineering operators.
///
/// FitTransform() fits each operator on the progressively transformed
/// training data (balancers also resample it); Transform() replays the
/// fitted column operators on new data (balancers are skipped, since test
/// rows are never resampled). Both take their input by value and move it
/// through the stage chain: callers that hand over ownership
/// (std::move) pay zero copies, and shape-preserving operators transform
/// the moving buffer in place via FeOperator::TransformOwned.
class FePipeline {
 public:
  FePipeline() = default;

  FePipeline(FePipeline&&) = default;
  FePipeline& operator=(FePipeline&&) = default;
  FePipeline(const FePipeline&) = delete;
  FePipeline& operator=(const FePipeline&) = delete;

  /// Appends an operator; call before FitTransform.
  void Add(std::unique_ptr<FeOperator> op);

  size_t NumOperators() const { return ops_.size(); }

  /// Fits the chain on `train` and returns the fully transformed (and
  /// possibly resampled) training dataset.
  Result<Dataset> FitTransform(Dataset train);

  /// Applies the fitted column operators to a feature matrix.
  Matrix Transform(Matrix x) const;

 private:
  std::vector<std::unique_ptr<FeOperator>> ops_;
  bool fitted_ = false;
};

}  // namespace volcanoml

#endif  // VOLCANOML_FE_PIPELINE_H_
