#ifndef VOLCANOML_FE_TRANSFORMS_H_
#define VOLCANOML_FE_TRANSFORMS_H_

#include <cstdint>
#include <vector>

#include "data/aligned.h"
#include "fe/operator.h"

namespace volcanoml {

/// Drops low-variance columns: keeps columns whose variance is at least
/// `relative_threshold` times the mean column variance (always keeps at
/// least one column).
class VarianceThreshold : public FeOperator {
 public:
  explicit VarianceThreshold(double relative_threshold);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;

  const std::vector<size_t>& kept_columns() const { return kept_; }

 private:
  double relative_threshold_;
  std::vector<size_t> kept_;
};

/// Principal component analysis keeping the smallest number of leading
/// components whose cumulative explained variance reaches `keep_variance`.
class PcaTransform : public FeOperator {
 public:
  explicit PcaTransform(double keep_variance);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;

  size_t NumComponents() const { return components_.rows(); }

 private:
  double keep_variance_;
  std::vector<double> means_;
  Matrix components_;  ///< (k x d) projection rows.
};

/// Degree-2 polynomial feature expansion: original features plus pairwise
/// products (and squares unless `interaction_only`). To bound the output
/// width the expansion uses at most the `max_base_features` highest-
/// variance input columns.
class PolynomialFeatures : public FeOperator {
 public:
  PolynomialFeatures(bool interaction_only, size_t max_base_features = 16);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;

 private:
  bool interaction_only_;
  size_t max_base_features_;
  std::vector<size_t> base_;  ///< Columns used for the expansion.
};

/// Univariate feature selection: scores each feature (ANOVA F-statistic
/// for classification, |Pearson correlation| for regression) and keeps the
/// top `percentile` percent (at least one).
class SelectPercentile : public FeOperator {
 public:
  explicit SelectPercentile(double percentile);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;

  const std::vector<size_t>& kept_columns() const { return kept_; }

 private:
  double percentile_;
  std::vector<size_t> kept_;
};

/// RBF random-feature map: z_j(x) = exp(-gamma ||x - c_j||^2) against
/// `num_components` landmark rows sampled from the training data
/// (Nystroem-style kernel approximation, unnormalized).
///
/// Supports the float32 lane (data/precision.h): landmark selection and
/// standardization stay double, but the landmark matrix is additionally
/// stored as cache-line-padded float rows and Transform runs the f32
/// squared-distance kernel. The exp stays double on the f32 distance.
class NystroemRbf : public FeOperator {
 public:
  NystroemRbf(size_t num_components, double gamma, uint64_t seed);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;
  void SetPrecision(NumericPrecision precision) override {
    precision_ = precision;
  }

 private:
  size_t num_components_;
  double gamma_;
  uint64_t seed_;
  NumericPrecision precision_ = NumericPrecision::kFloat64;
  std::vector<double> means_, scales_;  ///< Internal standardization.
  Matrix landmarks_;
  /// f32 lane: standardized landmarks, rows padded to stride32_ floats so
  /// each row is 64-byte aligned. Empty in the f64 lane.
  AlignedVector<float> landmarks32_;
  size_t stride32_ = 0;
};

/// Gaussian random projection to `round(fraction * d)` dimensions (>= 2).
///
/// Supports the float32 lane (data/precision.h): the projection is drawn
/// in double (shared RNG sequence with the f64 lane) and cast to float,
/// and Transform casts the input once and runs the f32 GEMM kernel —
/// half the bandwidth through the matrix product that dominates this
/// operator.
class RandomProjection : public FeOperator {
 public:
  RandomProjection(double fraction, uint64_t seed);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;
  void SetPrecision(NumericPrecision precision) override {
    precision_ = precision;
  }

 private:
  double fraction_;
  uint64_t seed_;
  NumericPrecision precision_ = NumericPrecision::kFloat64;
  Matrix projection_;  ///< (k x d).
  AlignedVector<float> projection32_;  ///< f32 lane copy; empty otherwise.
};

}  // namespace volcanoml

#endif  // VOLCANOML_FE_TRANSFORMS_H_
