#include "fe/transforms.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/kernels.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/rng.h"
#include "util/stats.h"

namespace volcanoml {

namespace {

Status CheckNonEmpty(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  return Status::Ok();
}

/// Indices of the top-k columns by variance.
std::vector<size_t> TopVarianceColumns(const Matrix& x, size_t k) {
  std::vector<double> sds = x.ColStdDevs();
  std::vector<size_t> order(x.cols());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return sds[a] > sds[b]; });
  order.resize(std::min(k, order.size()));
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

// ---------------------------------------------------------------------------
// VarianceThreshold

VarianceThreshold::VarianceThreshold(double relative_threshold)
    : relative_threshold_(relative_threshold) {
  VOLCANOML_CHECK(relative_threshold_ >= 0.0);
}

Status VarianceThreshold::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  std::vector<double> sds = train.x().ColStdDevs();
  std::vector<double> vars(sds.size());
  for (size_t j = 0; j < sds.size(); ++j) vars[j] = sds[j] * sds[j];
  double mean_var = Mean(vars);
  double cutoff = relative_threshold_ * mean_var;
  kept_.clear();
  for (size_t j = 0; j < vars.size(); ++j) {
    if (vars[j] >= cutoff) kept_.push_back(j);
  }
  if (kept_.empty()) kept_.push_back(ArgMax(vars));
  return Status::Ok();
}

Matrix VarianceThreshold::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(!kept_.empty());
  return x.SelectCols(kept_);
}

// ---------------------------------------------------------------------------
// PcaTransform

PcaTransform::PcaTransform(double keep_variance)
    : keep_variance_(keep_variance) {
  VOLCANOML_CHECK(keep_variance_ > 0.0 && keep_variance_ <= 1.0);
}

Status PcaTransform::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  const Matrix& x = train.x();
  const size_t d = x.cols();
  means_ = x.ColMeans();

  Matrix cov(d, d);
  std::vector<double> centered(d);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    for (size_t a = 0; a < d; ++a) centered[a] = row[a] - means_[a];
    // Upper-triangle rank-1 update, one axpy per pivot row.
    for (size_t a = 0; a < d; ++a) {
      AxpyKernel(centered[a], centered.data() + a, cov.RowPtr(a) + a, d - a);
    }
  }
  double denom = std::max<double>(1.0, static_cast<double>(x.rows()) - 1.0);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov(a, b) /= denom;
      cov(b, a) = cov(a, b);
    }
  }

  // The eigendecomposition below is the expensive O(d^3) step; bail out
  // here if the trial deadline fired while accumulating the covariance.
  if (TrialDeadlineExpired()) {
    return Status::DeadlineExceeded("pca fit interrupted by trial deadline");
  }
  std::vector<double> eigenvalues;
  Matrix eigenvectors;
  SymmetricEigen(cov, &eigenvalues, &eigenvectors);

  double total = 0.0;
  for (double v : eigenvalues) total += std::max(0.0, v);
  if (total <= 0.0) total = 1.0;
  size_t k = 0;
  double cumulative = 0.0;
  while (k < d && cumulative / total < keep_variance_) {
    cumulative += std::max(0.0, eigenvalues[k]);
    ++k;
  }
  k = std::max<size_t>(1, k);

  components_ = Matrix(k, d);
  for (size_t c = 0; c < k; ++c) {
    for (size_t r = 0; r < d; ++r) components_(c, r) = eigenvectors(r, c);
  }
  return Status::Ok();
}

Matrix PcaTransform::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(components_.rows() > 0);
  VOLCANOML_CHECK(x.cols() == means_.size());
  // out = (x - means) * components^T; components_ is already stored
  // row-major k x d, which is exactly the transposed-B layout the GEMM
  // kernel wants.
  Matrix centered(x.rows(), x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double* crow = centered.RowPtr(i);
    for (size_t j = 0; j < x.cols(); ++j) crow[j] = row[j] - means_[j];
  }
  Matrix out(x.rows(), components_.rows());
  GemmTransBKernel(centered.data().data(), components_.data().data(),
                   out.data().data(), x.rows(), x.cols(),
                   components_.rows());
  return out;
}

// ---------------------------------------------------------------------------
// PolynomialFeatures

PolynomialFeatures::PolynomialFeatures(bool interaction_only,
                                       size_t max_base_features)
    : interaction_only_(interaction_only),
      max_base_features_(max_base_features) {
  VOLCANOML_CHECK(max_base_features_ >= 2);
}

Status PolynomialFeatures::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  base_ = TopVarianceColumns(train.x(), max_base_features_);
  return Status::Ok();
}

Matrix PolynomialFeatures::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(!base_.empty());
  const size_t b = base_.size();
  size_t extra = interaction_only_ ? b * (b - 1) / 2 : b * (b + 1) / 2;
  Matrix out(x.rows(), x.cols() + extra);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) out(i, j) = x(i, j);
    size_t col = x.cols();
    for (size_t a = 0; a < b; ++a) {
      size_t start = interaction_only_ ? a + 1 : a;
      for (size_t c = start; c < b; ++c) {
        out(i, col++) = x(i, base_[a]) * x(i, base_[c]);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SelectPercentile

SelectPercentile::SelectPercentile(double percentile)
    : percentile_(percentile) {
  VOLCANOML_CHECK(percentile_ > 0.0 && percentile_ <= 100.0);
}

Status SelectPercentile::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  const Matrix& x = train.x();
  const size_t d = x.cols();
  std::vector<double> scores(d, 0.0);

  if (train.task() == TaskType::kClassification) {
    // One-way ANOVA F-statistic per feature.
    const size_t k = train.NumClasses();
    for (size_t j = 0; j < d; ++j) {
      std::vector<double> sum(k, 0.0), sum_sq(k, 0.0), count(k, 0.0);
      double total_sum = 0.0;
      for (size_t i = 0; i < x.rows(); ++i) {
        size_t c = static_cast<size_t>(train.y()[i]);
        double v = x(i, j);
        sum[c] += v;
        sum_sq[c] += v * v;
        count[c] += 1.0;
        total_sum += v;
      }
      double n = static_cast<double>(x.rows());
      double grand_mean = total_sum / n;
      double ss_between = 0.0, ss_within = 0.0;
      size_t groups = 0;
      for (size_t c = 0; c < k; ++c) {
        if (count[c] == 0.0) continue;
        ++groups;
        double mean_c = sum[c] / count[c];
        ss_between += count[c] * (mean_c - grand_mean) * (mean_c - grand_mean);
        ss_within += sum_sq[c] - count[c] * mean_c * mean_c;
      }
      if (groups < 2 || ss_within <= 1e-12 || n <= static_cast<double>(groups)) {
        scores[j] = 0.0;
      } else {
        double df_between = static_cast<double>(groups - 1);
        double df_within = n - static_cast<double>(groups);
        scores[j] = (ss_between / df_between) / (ss_within / df_within);
      }
    }
  } else {
    for (size_t j = 0; j < d; ++j) {
      scores[j] = std::abs(PearsonCorrelation(x.Col(j), train.y()));
    }
  }

  size_t keep = std::max<size_t>(
      1, static_cast<size_t>(std::llround(percentile_ / 100.0 *
                                          static_cast<double>(d))));
  std::vector<size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  order.resize(keep);
  std::sort(order.begin(), order.end());
  kept_ = std::move(order);
  return Status::Ok();
}

Matrix SelectPercentile::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(!kept_.empty());
  return x.SelectCols(kept_);
}

// ---------------------------------------------------------------------------
// NystroemRbf

NystroemRbf::NystroemRbf(size_t num_components, double gamma, uint64_t seed)
    : num_components_(num_components), gamma_(gamma), seed_(seed) {
  VOLCANOML_CHECK(num_components_ >= 1);
  VOLCANOML_CHECK(gamma_ > 0.0);
}

Status NystroemRbf::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  if (TrialDeadlineExpired()) {
    return Status::DeadlineExceeded(
        "nystroem fit interrupted by trial deadline");
  }
  const Matrix& x = train.x();
  means_ = x.ColMeans();
  scales_ = x.ColStdDevs();
  for (double& scale : scales_) {
    if (scale <= 1e-12) scale = 1.0;
  }
  Rng rng(seed_);
  size_t m = std::min(num_components_, x.rows());
  std::vector<size_t> picks(x.rows());
  std::iota(picks.begin(), picks.end(), 0);
  rng.Shuffle(&picks);
  picks.resize(m);
  landmarks_ = Matrix(m, x.cols());
  for (size_t r = 0; r < m; ++r) {
    for (size_t j = 0; j < x.cols(); ++j) {
      landmarks_(r, j) = (x(picks[r], j) - means_[j]) / scales_[j];
    }
  }
  if (precision_ == NumericPrecision::kFloat32) {
    // f32 lane: cast the double-standardized landmarks, rows padded to a
    // full cache line of floats (zero padding adds nothing to distances).
    stride32_ = (x.cols() + 15) / 16 * 16;
    landmarks32_.assign(m * stride32_, 0.0f);
    for (size_t r = 0; r < m; ++r) {
      float* row = landmarks32_.data() + r * stride32_;
      for (size_t j = 0; j < x.cols(); ++j) {
        row[j] = static_cast<float>(landmarks_(r, j));
      }
    }
  } else {
    landmarks32_.clear();
    stride32_ = 0;
  }
  return Status::Ok();
}

Matrix NystroemRbf::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(landmarks_.rows() > 0);
  VOLCANOML_CHECK(x.cols() == means_.size());
  Matrix out(x.rows(), landmarks_.rows());
  if (precision_ == NumericPrecision::kFloat32) {
    AlignedVector<float> z32(stride32_, 0.0f);
    for (size_t i = 0; i < x.rows(); ++i) {
      for (size_t j = 0; j < x.cols(); ++j) {
        // Standardize in double (bit-stable across lanes), then cast.
        z32[j] = static_cast<float>((x(i, j) - means_[j]) / scales_[j]);
      }
      for (size_t r = 0; r < landmarks_.rows(); ++r) {
        float dist = SquaredDistanceKernel(
            z32.data(), landmarks32_.data() + r * stride32_, x.cols());
        out(i, r) = std::exp(-gamma_ * static_cast<double>(dist));
      }
    }
    return out;
  }
  std::vector<double> z(x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      z[j] = (x(i, j) - means_[j]) / scales_[j];
    }
    for (size_t r = 0; r < landmarks_.rows(); ++r) {
      double dist = SquaredDistanceKernel(z.data(), landmarks_.RowPtr(r),
                                          x.cols());
      out(i, r) = std::exp(-gamma_ * dist);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// RandomProjection

RandomProjection::RandomProjection(double fraction, uint64_t seed)
    : fraction_(fraction), seed_(seed) {
  VOLCANOML_CHECK(fraction_ > 0.0 && fraction_ <= 1.0);
}

Status RandomProjection::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  const size_t d = train.NumFeatures();
  size_t k = std::max<size_t>(
      2, static_cast<size_t>(std::llround(fraction_ * static_cast<double>(d))));
  k = std::min(k, d);
  Rng rng(seed_);
  projection_ = Matrix(k, d);
  double scale = 1.0 / std::sqrt(static_cast<double>(k));
  for (size_t r = 0; r < k; ++r) {
    for (size_t j = 0; j < d; ++j) {
      projection_(r, j) = rng.Gaussian(0.0, scale);
    }
  }
  if (precision_ == NumericPrecision::kFloat32) {
    projection32_.assign(k * d, 0.0f);
    for (size_t i = 0; i < k * d; ++i) {
      projection32_[i] = static_cast<float>(projection_.data()[i]);
    }
  } else {
    projection32_.clear();
  }
  return Status::Ok();
}

Matrix RandomProjection::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(projection_.rows() > 0);
  VOLCANOML_CHECK(x.cols() == projection_.cols());
  // out = x * projection^T; projection_ (k x d row-major) is the
  // transposed-B operand directly.
  Matrix out(x.rows(), projection_.rows());
  if (precision_ == NumericPrecision::kFloat32) {
    const size_t total = x.rows() * x.cols();
    AlignedVector<float> x32(total);
    for (size_t i = 0; i < total; ++i) {
      x32[i] = static_cast<float>(x.data()[i]);
    }
    AlignedVector<float> out32(x.rows() * projection_.rows());
    GemmTransBKernel(x32.data(), projection32_.data(), out32.data(), x.rows(),
                     x.cols(), projection_.rows());
    for (size_t i = 0; i < out32.size(); ++i) {
      out.data()[i] = static_cast<double>(out32[i]);
    }
    return out;
  }
  GemmTransBKernel(x.data().data(), projection_.data().data(),
                   out.data().data(), x.rows(), x.cols(),
                   projection_.rows());
  return out;
}

}  // namespace volcanoml
