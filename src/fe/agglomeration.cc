#include "fe/agglomeration.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "data/kernels.h"
#include "util/check.h"
#include "util/stats.h"

namespace volcanoml {

FeatureAgglomeration::FeatureAgglomeration(size_t num_clusters)
    : num_clusters_(num_clusters) {
  VOLCANOML_CHECK(num_clusters_ >= 1);
}

Status FeatureAgglomeration::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  const Matrix& x = train.x();
  const size_t d = x.cols();
  const size_t target = std::min(num_clusters_, d);

  // Pairwise distance 1 - |corr|. Centering and norming each column once
  // turns every pair into a single dot product (the naive per-pair
  // Pearson recomputes both means and both norms d times over).
  const size_t n = x.rows();
  Matrix centered(d, n);  // column-major view: row j = centered column j.
  std::vector<double> norms(d);
  std::vector<double> means = x.ColMeans();
  for (size_t j = 0; j < d; ++j) {
    double* col = centered.RowPtr(j);
    for (size_t i = 0; i < n; ++i) col[i] = x(i, j) - means[j];
    norms[j] = std::sqrt(DotKernel(col, col, n));
  }
  Matrix dist(d, d);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) {
      double denom = norms[a] * norms[b];
      double corr =
          denom > 1e-12
              ? std::abs(DotKernel(centered.RowPtr(a), centered.RowPtr(b),
                                   n)) / denom
              : 0.0;
      dist(a, b) = dist(b, a) = 1.0 - std::min(corr, 1.0);
    }
  }

  // Average-linkage agglomerative clustering (naive O(d^3); d <= ~300).
  assignment_.resize(d);
  std::vector<std::vector<size_t>> clusters;
  for (size_t j = 0; j < d; ++j) clusters.push_back({j});
  auto linkage = [&](const std::vector<size_t>& u,
                     const std::vector<size_t>& v) {
    double total = 0.0;
    for (size_t a : u) {
      for (size_t b : v) total += dist(a, b);
    }
    return total / static_cast<double>(u.size() * v.size());
  };
  while (clusters.size() > target) {
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 1;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        double link = linkage(clusters[i], clusters[j]);
        if (link < best) {
          best = link;
          bi = i;
          bj = j;
        }
      }
    }
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<long>(bj));
  }
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t j : clusters[c]) assignment_[j] = c;
  }
  return Status::Ok();
}

size_t FeatureAgglomeration::NumClusters() const {
  if (assignment_.empty()) return 0;
  return *std::max_element(assignment_.begin(), assignment_.end()) + 1;
}

Matrix FeatureAgglomeration::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(!assignment_.empty());
  VOLCANOML_CHECK(x.cols() == assignment_.size());
  const size_t k = NumClusters();
  std::vector<double> cluster_size(k, 0.0);
  for (size_t c : assignment_) cluster_size[c] += 1.0;
  Matrix out(x.rows(), k);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      out(i, assignment_[j]) += x(i, j);
    }
    for (size_t c = 0; c < k; ++c) out(i, c) /= cluster_size[c];
  }
  return out;
}

// ---------------------------------------------------------------------------
// KBinsDiscretizer

KBinsDiscretizer::KBinsDiscretizer(size_t num_bins) : num_bins_(num_bins) {
  VOLCANOML_CHECK(num_bins_ >= 2);
}

Status KBinsDiscretizer::Fit(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  const Matrix& x = train.x();
  edges_.assign(x.cols(), {});
  for (size_t j = 0; j < x.cols(); ++j) {
    std::vector<double> col = x.Col(j);
    std::vector<double>& edges = edges_[j];
    // Interior quantile edges (bins-1 of them), deduplicated.
    for (size_t b = 1; b < num_bins_; ++b) {
      double q = static_cast<double>(b) / static_cast<double>(num_bins_);
      double edge = Quantile(col, q);
      if (edges.empty() || edge > edges.back()) edges.push_back(edge);
    }
  }
  return Status::Ok();
}

Matrix KBinsDiscretizer::Transform(const Matrix& x) const {
  VOLCANOML_CHECK(!edges_.empty());
  VOLCANOML_CHECK(x.cols() == edges_.size());
  Matrix out(x.rows(), x.cols());
  for (size_t j = 0; j < x.cols(); ++j) {
    const std::vector<double>& edges = edges_[j];
    for (size_t i = 0; i < x.rows(); ++i) {
      out(i, j) = static_cast<double>(
          std::distance(edges.begin(),
                        std::upper_bound(edges.begin(), edges.end(),
                                         x(i, j))));
    }
  }
  return out;
}

}  // namespace volcanoml
