#include "fe/registry.h"

#include "embed/pretrained.h"
#include "fe/agglomeration.h"
#include "fe/balancers.h"
#include "fe/scalers.h"
#include "fe/transforms.h"
#include "util/check.h"

namespace volcanoml {

namespace {

using Cs = ConfigurationSpace;
using Cfg = Configuration;

/// Identity operator for every "none" choice.
class NoneOperator : public FeOperator {
 public:
  Status Fit(const Dataset& train) override {
    if (train.NumSamples() == 0) {
      return Status::InvalidArgument("empty training data");
    }
    return Status::Ok();
  }
};

FeOperatorInfo MakeNone(FeStage stage) {
  FeOperatorInfo info;
  info.name = "none";
  info.stage = stage;
  info.create = [](const Cs&, const Cfg&, uint64_t) {
    return std::make_unique<NoneOperator>();
  };
  return info;
}

std::vector<FeOperatorInfo> BuildPreprocessing() {
  std::vector<FeOperatorInfo> ops;
  ops.push_back(MakeNone(FeStage::kPreprocessing));

  FeOperatorInfo vt;
  vt.name = "variance_threshold";
  vt.stage = FeStage::kPreprocessing;
  vt.hp_space.AddContinuous("threshold", 0.0, 0.5, 0.05);
  vt.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<VarianceThreshold>(s.GetValue(c, "threshold"));
  };
  ops.push_back(std::move(vt));

  FeOperatorInfo wz;
  wz.name = "winsorize";
  wz.stage = FeStage::kPreprocessing;
  wz.hp_space.AddContinuous("quantile", 0.01, 0.2, 0.05);
  wz.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<Winsorizer>(s.GetValue(c, "quantile"));
  };
  ops.push_back(std::move(wz));
  return ops;
}

std::vector<FeOperatorInfo> BuildRescaling() {
  std::vector<FeOperatorInfo> ops;
  ops.push_back(MakeNone(FeStage::kRescaling));

  FeOperatorInfo standard;
  standard.name = "standard";
  standard.stage = FeStage::kRescaling;
  standard.create = [](const Cs&, const Cfg&, uint64_t) {
    return std::make_unique<StandardScaler>();
  };
  ops.push_back(std::move(standard));

  FeOperatorInfo minmax;
  minmax.name = "minmax";
  minmax.stage = FeStage::kRescaling;
  minmax.create = [](const Cs&, const Cfg&, uint64_t) {
    return std::make_unique<MinMaxScaler>();
  };
  ops.push_back(std::move(minmax));

  FeOperatorInfo robust;
  robust.name = "robust";
  robust.stage = FeStage::kRescaling;
  robust.hp_space.AddContinuous("quantile", 0.05, 0.45, 0.25);
  robust.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<RobustScaler>(s.GetValue(c, "quantile"));
  };
  ops.push_back(std::move(robust));

  FeOperatorInfo normalizer;
  normalizer.name = "normalizer";
  normalizer.stage = FeStage::kRescaling;
  normalizer.create = [](const Cs&, const Cfg&, uint64_t) {
    return std::make_unique<L2Normalizer>();
  };
  ops.push_back(std::move(normalizer));

  FeOperatorInfo quantile;
  quantile.name = "quantile_transform";
  quantile.stage = FeStage::kRescaling;
  quantile.hp_space.AddInteger("n_quantiles", 10, 200, 100);
  quantile.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<QuantileTransformer>(
        static_cast<size_t>(s.GetInt(c, "n_quantiles")));
  };
  ops.push_back(std::move(quantile));
  return ops;
}

std::vector<FeOperatorInfo> BuildBalancing(bool include_smote) {
  std::vector<FeOperatorInfo> ops;
  ops.push_back(MakeNone(FeStage::kBalancing));

  FeOperatorInfo over;
  over.name = "oversample";
  over.stage = FeStage::kBalancing;
  over.hp_space.AddContinuous("target_ratio", 0.5, 1.0, 1.0);
  over.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    return std::make_unique<RandomOversampler>(
        s.GetValue(c, "target_ratio"), seed);
  };
  ops.push_back(std::move(over));

  FeOperatorInfo under;
  under.name = "undersample";
  under.stage = FeStage::kBalancing;
  under.hp_space.AddContinuous("target_ratio", 0.5, 1.0, 1.0);
  under.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    return std::make_unique<RandomUndersampler>(
        s.GetValue(c, "target_ratio"), seed);
  };
  ops.push_back(std::move(under));

  if (include_smote) {
    FeOperatorInfo smote;
    smote.name = "smote";
    smote.stage = FeStage::kBalancing;
    smote.hp_space.AddInteger("k_neighbors", 3, 10, 5);
    smote.hp_space.AddContinuous("target_ratio", 0.5, 1.0, 1.0);
    smote.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
      return std::make_unique<SmoteBalancer>(
          s.GetInt(c, "k_neighbors"), s.GetValue(c, "target_ratio"), seed);
    };
    ops.push_back(std::move(smote));
  }
  return ops;
}

std::vector<FeOperatorInfo> BuildTransform() {
  std::vector<FeOperatorInfo> ops;
  ops.push_back(MakeNone(FeStage::kTransform));

  FeOperatorInfo pca;
  pca.name = "pca";
  pca.stage = FeStage::kTransform;
  pca.hp_space.AddContinuous("keep_variance", 0.5, 0.9999, 0.95);
  pca.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<PcaTransform>(s.GetValue(c, "keep_variance"));
  };
  ops.push_back(std::move(pca));

  FeOperatorInfo poly;
  poly.name = "polynomial";
  poly.stage = FeStage::kTransform;
  poly.hp_space.AddCategorical("interaction_only", {"false", "true"});
  poly.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<PolynomialFeatures>(
        s.GetChoiceName(c, "interaction_only") == "true");
  };
  ops.push_back(std::move(poly));

  FeOperatorInfo select;
  select.name = "select_percentile";
  select.stage = FeStage::kTransform;
  select.hp_space.AddContinuous("percentile", 10.0, 100.0, 50.0);
  select.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<SelectPercentile>(s.GetValue(c, "percentile"));
  };
  ops.push_back(std::move(select));

  FeOperatorInfo nystroem;
  nystroem.name = "nystroem";
  nystroem.stage = FeStage::kTransform;
  nystroem.hp_space.AddInteger("n_components", 10, 100, 50);
  nystroem.hp_space.AddContinuous("gamma", 0.01, 10.0, 0.5, true);
  nystroem.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    return std::make_unique<NystroemRbf>(
        static_cast<size_t>(s.GetInt(c, "n_components")),
        s.GetValue(c, "gamma"), seed);
  };
  ops.push_back(std::move(nystroem));

  FeOperatorInfo proj;
  proj.name = "random_projection";
  proj.stage = FeStage::kTransform;
  proj.hp_space.AddContinuous("fraction", 0.1, 1.0, 0.5);
  proj.create = [](const Cs& s, const Cfg& c, uint64_t seed) {
    return std::make_unique<RandomProjection>(s.GetValue(c, "fraction"),
                                              seed);
  };
  ops.push_back(std::move(proj));

  FeOperatorInfo agglo;
  agglo.name = "feature_agglomeration";
  agglo.stage = FeStage::kTransform;
  agglo.hp_space.AddInteger("n_clusters", 2, 25, 8);
  agglo.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<FeatureAgglomeration>(
        static_cast<size_t>(s.GetInt(c, "n_clusters")));
  };
  ops.push_back(std::move(agglo));

  FeOperatorInfo kbins;
  kbins.name = "kbins";
  kbins.stage = FeStage::kTransform;
  kbins.hp_space.AddInteger("n_bins", 3, 32, 8);
  kbins.create = [](const Cs& s, const Cfg& c, uint64_t) {
    return std::make_unique<KBinsDiscretizer>(
        static_cast<size_t>(s.GetInt(c, "n_bins")));
  };
  ops.push_back(std::move(kbins));
  return ops;
}

std::vector<FeOperatorInfo> BuildEmbedding() {
  // The embedding stage offers the raw input plus two simulated
  // pre-trained models (the TF-Hub substitution, see embed/pretrained.h).
  std::vector<FeOperatorInfo> ops;
  ops.push_back(MakeNone(FeStage::kEmbedding));

  auto add_encoder = [&ops](const char* name, EncoderQuality quality) {
    FeOperatorInfo info;
    info.name = name;
    info.stage = FeStage::kEmbedding;
    info.hp_space.AddInteger("embedding_dim", 8, 64, 32);
    info.create = [quality](const Cs& s, const Cfg& c, uint64_t) {
      return std::make_unique<SimulatedPretrainedEncoder>(
          quality, static_cast<size_t>(s.GetInt(c, "embedding_dim")));
    };
    ops.push_back(std::move(info));
  };
  add_encoder("pretrained_model_a", EncoderQuality::kStrong);
  add_encoder("pretrained_model_b", EncoderQuality::kWeak);
  return ops;
}

}  // namespace

const char* FeStageName(FeStage stage) {
  switch (stage) {
    case FeStage::kEmbedding:
      return "embedding";
    case FeStage::kPreprocessing:
      return "preprocessing";
    case FeStage::kRescaling:
      return "rescaling";
    case FeStage::kBalancing:
      return "balancing";
    case FeStage::kTransform:
      return "feature_transform";
  }
  return "?";
}

std::vector<FeOperatorInfo> OperatorsFor(FeStage stage, bool include_smote) {
  switch (stage) {
    case FeStage::kEmbedding:
      return BuildEmbedding();
    case FeStage::kPreprocessing:
      return BuildPreprocessing();
    case FeStage::kRescaling:
      return BuildRescaling();
    case FeStage::kBalancing:
      return BuildBalancing(include_smote);
    case FeStage::kTransform:
      return BuildTransform();
  }
  return {};
}

FeOperatorInfo FindFeOperator(const std::string& name) {
  for (FeStage stage :
       {FeStage::kEmbedding, FeStage::kPreprocessing, FeStage::kRescaling,
        FeStage::kBalancing, FeStage::kTransform}) {
    for (FeOperatorInfo& info : OperatorsFor(stage, /*include_smote=*/true)) {
      if (info.name == name) return info;
    }
  }
  VOLCANOML_CHECK_MSG(false, ("unknown FE operator: " + name).c_str());
  return {};
}

}  // namespace volcanoml
