#include "fe/balancers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace volcanoml {

namespace {

Status CheckBalanceable(const Dataset& train) {
  if (train.NumSamples() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (train.task() != TaskType::kClassification) {
    return Status::FailedPrecondition("balancers require classification");
  }
  return Status::Ok();
}

std::vector<std::vector<size_t>> ByClass(const Dataset& train) {
  std::vector<std::vector<size_t>> by_class(train.NumClasses());
  for (size_t i = 0; i < train.NumSamples(); ++i) {
    by_class[static_cast<size_t>(train.Label(i))].push_back(i);
  }
  return by_class;
}

}  // namespace

// ---------------------------------------------------------------------------
// RandomOversampler

RandomOversampler::RandomOversampler(double target_ratio, uint64_t seed)
    : target_ratio_(target_ratio), seed_(seed) {
  VOLCANOML_CHECK(target_ratio_ > 0.0 && target_ratio_ <= 1.0);
}

Status RandomOversampler::Fit(const Dataset& train) {
  return CheckBalanceable(train);
}

Dataset RandomOversampler::ResampleTrain(const Dataset& train) const {
  Rng rng(seed_);
  std::vector<std::vector<size_t>> by_class = ByClass(train);
  size_t majority = 0;
  for (const auto& members : by_class) {
    majority = std::max(majority, members.size());
  }
  size_t target = static_cast<size_t>(
      std::llround(target_ratio_ * static_cast<double>(majority)));
  std::vector<size_t> keep;
  for (const auto& members : by_class) {
    if (members.empty()) continue;
    keep.insert(keep.end(), members.begin(), members.end());
    for (size_t k = members.size(); k < target; ++k) {
      keep.push_back(members[rng.Index(members.size())]);
    }
  }
  rng.Shuffle(&keep);
  return train.Subset(keep);
}

// ---------------------------------------------------------------------------
// RandomUndersampler

RandomUndersampler::RandomUndersampler(double target_ratio, uint64_t seed)
    : target_ratio_(target_ratio), seed_(seed) {
  VOLCANOML_CHECK(target_ratio_ > 0.0 && target_ratio_ <= 1.0);
}

Status RandomUndersampler::Fit(const Dataset& train) {
  return CheckBalanceable(train);
}

Dataset RandomUndersampler::ResampleTrain(const Dataset& train) const {
  Rng rng(seed_);
  std::vector<std::vector<size_t>> by_class = ByClass(train);
  size_t minority = std::numeric_limits<size_t>::max();
  for (const auto& members : by_class) {
    if (!members.empty()) minority = std::min(minority, members.size());
  }
  // Cap every class at minority / target_ratio.
  size_t cap = static_cast<size_t>(std::llround(
      static_cast<double>(minority) / target_ratio_));
  std::vector<size_t> keep;
  for (auto& members : by_class) {
    rng.Shuffle(&members);
    size_t take = std::min(members.size(), cap);
    keep.insert(keep.end(), members.begin(), members.begin() + take);
  }
  rng.Shuffle(&keep);
  return train.Subset(keep);
}

// ---------------------------------------------------------------------------
// SmoteBalancer

SmoteBalancer::SmoteBalancer(int k_neighbors, double target_ratio,
                             uint64_t seed)
    : k_neighbors_(k_neighbors), target_ratio_(target_ratio), seed_(seed) {
  VOLCANOML_CHECK(k_neighbors_ >= 1);
  VOLCANOML_CHECK(target_ratio_ > 0.0 && target_ratio_ <= 1.0);
}

Status SmoteBalancer::Fit(const Dataset& train) {
  return CheckBalanceable(train);
}

Dataset SmoteBalancer::ResampleTrain(const Dataset& train) const {
  Rng rng(seed_);
  std::vector<std::vector<size_t>> by_class = ByClass(train);
  size_t majority = 0;
  for (const auto& members : by_class) {
    majority = std::max(majority, members.size());
  }
  size_t target = static_cast<size_t>(
      std::llround(target_ratio_ * static_cast<double>(majority)));

  const size_t d = train.NumFeatures();
  std::vector<std::vector<double>> synthetic_rows;
  std::vector<double> synthetic_labels;

  for (size_t c = 0; c < by_class.size(); ++c) {
    const std::vector<size_t>& members = by_class[c];
    if (members.size() < 2 || members.size() >= target) continue;
    size_t deficit = target - members.size();
    size_t k = std::min<size_t>(static_cast<size_t>(k_neighbors_),
                                members.size() - 1);
    for (size_t s = 0; s < deficit; ++s) {
      // ResampleTrain cannot return Status, so cooperate by stopping the
      // synthesis early; the expired deadline is then reported by the next
      // Status-returning checkpoint in the pipeline.
      if (TrialDeadlineExpired()) break;
      size_t base = members[rng.Index(members.size())];
      // k nearest same-class neighbors of `base` (brute force).
      std::vector<std::pair<double, size_t>> dists;
      dists.reserve(members.size() - 1);
      for (size_t other : members) {
        if (other == base) continue;
        double dist = 0.0;
        for (size_t j = 0; j < d; ++j) {
          double diff = train.x()(base, j) - train.x()(other, j);
          dist += diff * diff;
        }
        dists.push_back({dist, other});
      }
      std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k),
                        dists.end());
      size_t neighbor = dists[rng.Index(k)].second;
      double lambda = rng.Uniform();
      std::vector<double> row(d);
      for (size_t j = 0; j < d; ++j) {
        row[j] = train.x()(base, j) +
                 lambda * (train.x()(neighbor, j) - train.x()(base, j));
      }
      synthetic_rows.push_back(std::move(row));
      synthetic_labels.push_back(static_cast<double>(c));
    }
  }

  if (synthetic_rows.empty()) return train;
  Matrix extra(synthetic_rows.size(), d);
  for (size_t i = 0; i < synthetic_rows.size(); ++i) {
    std::copy(synthetic_rows[i].begin(), synthetic_rows[i].end(),
              extra.RowPtr(i));
  }
  Matrix combined = Matrix::ConcatRows(train.x(), extra);
  std::vector<double> labels = train.y();
  labels.insert(labels.end(), synthetic_labels.begin(),
                synthetic_labels.end());
  return Dataset(train.name(), std::move(combined), std::move(labels),
                 TaskType::kClassification);
}

}  // namespace volcanoml
