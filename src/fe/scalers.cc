#include "fe/scalers.h"

#include <algorithm>
#include <cmath>

#include "data/kernels.h"
#include "util/check.h"
#include "util/stats.h"

namespace volcanoml {

namespace {

Status CheckNonEmpty(const Dataset& train) {
  if (train.NumSamples() == 0 || train.NumFeatures() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// StandardScaler

Status StandardScaler::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  means_ = train.x().ColMeans();
  scales_ = train.x().ColStdDevs();
  for (double& scale : scales_) {
    if (scale <= 1e-12) scale = 1.0;
  }
  return Status::Ok();
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  return TransformOwned(x);
}

Matrix StandardScaler::TransformOwned(Matrix x) const {
  VOLCANOML_CHECK(x.cols() == means_.size());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      x(i, j) = (x(i, j) - means_[j]) / scales_[j];
    }
  }
  return x;
}

// ---------------------------------------------------------------------------
// MinMaxScaler

Status MinMaxScaler::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  const Matrix& x = train.x();
  mins_.assign(x.cols(), 1e300);
  ranges_.assign(x.cols(), -1e300);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      mins_[j] = std::min(mins_[j], x(i, j));
      ranges_[j] = std::max(ranges_[j], x(i, j));
    }
  }
  for (size_t j = 0; j < x.cols(); ++j) {
    ranges_[j] -= mins_[j];
    if (ranges_[j] <= 1e-12) ranges_[j] = 1.0;
  }
  return Status::Ok();
}

Matrix MinMaxScaler::Transform(const Matrix& x) const {
  return TransformOwned(x);
}

Matrix MinMaxScaler::TransformOwned(Matrix x) const {
  VOLCANOML_CHECK(x.cols() == mins_.size());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      x(i, j) = (x(i, j) - mins_[j]) / ranges_[j];
    }
  }
  return x;
}

// ---------------------------------------------------------------------------
// RobustScaler

RobustScaler::RobustScaler(double quantile) : quantile_(quantile) {
  VOLCANOML_CHECK(quantile_ > 0.0 && quantile_ < 0.5);
}

Status RobustScaler::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  const Matrix& x = train.x();
  medians_.resize(x.cols());
  scales_.resize(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) {
    std::vector<double> col = x.Col(j);
    medians_[j] = Median(col);
    double spread = Quantile(col, 1.0 - quantile_) - Quantile(col, quantile_);
    scales_[j] = spread > 1e-12 ? spread : 1.0;
  }
  return Status::Ok();
}

Matrix RobustScaler::Transform(const Matrix& x) const {
  return TransformOwned(x);
}

Matrix RobustScaler::TransformOwned(Matrix x) const {
  VOLCANOML_CHECK(x.cols() == medians_.size());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      x(i, j) = (x(i, j) - medians_[j]) / scales_[j];
    }
  }
  return x;
}

// ---------------------------------------------------------------------------
// L2Normalizer

Status L2Normalizer::Fit(const Dataset& train) { return CheckNonEmpty(train); }

Matrix L2Normalizer::Transform(const Matrix& x) const {
  return TransformOwned(x);
}

Matrix L2Normalizer::TransformOwned(Matrix x) const {
  for (size_t i = 0; i < x.rows(); ++i) {
    double* row = x.RowPtr(i);
    double norm = std::sqrt(DotKernel(row, row, x.cols()));
    if (norm <= 1e-12) norm = 1.0;
    ScaleKernel(1.0 / norm, row, x.cols());
  }
  return x;
}

// ---------------------------------------------------------------------------
// QuantileTransformer

QuantileTransformer::QuantileTransformer(size_t num_quantiles)
    : num_quantiles_(num_quantiles) {
  VOLCANOML_CHECK(num_quantiles_ >= 2);
}

Status QuantileTransformer::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  const Matrix& x = train.x();
  references_.assign(x.cols(), {});
  size_t q = std::min(num_quantiles_, x.rows());
  for (size_t j = 0; j < x.cols(); ++j) {
    std::vector<double> col = x.Col(j);
    std::sort(col.begin(), col.end());
    std::vector<double>& ref = references_[j];
    ref.resize(q);
    for (size_t k = 0; k < q; ++k) {
      double pos = q == 1 ? 0.0
                          : static_cast<double>(k) /
                                static_cast<double>(q - 1) *
                                static_cast<double>(col.size() - 1);
      ref[k] = col[static_cast<size_t>(pos)];
    }
  }
  return Status::Ok();
}

Matrix QuantileTransformer::Transform(const Matrix& x) const {
  return TransformOwned(x);
}

Matrix QuantileTransformer::TransformOwned(Matrix x) const {
  VOLCANOML_CHECK(x.cols() == references_.size());
  for (size_t j = 0; j < x.cols(); ++j) {
    const std::vector<double>& ref = references_[j];
    double denom = static_cast<double>(ref.size() - 1);
    for (size_t i = 0; i < x.rows(); ++i) {
      // Rank of the value among the reference quantiles, interpolated.
      auto it = std::lower_bound(ref.begin(), ref.end(), x(i, j));
      x(i, j) = static_cast<double>(std::distance(ref.begin(), it)) /
                std::max(denom, 1.0);
    }
  }
  return x;
}

// ---------------------------------------------------------------------------
// Winsorizer

Winsorizer::Winsorizer(double quantile) : quantile_(quantile) {
  VOLCANOML_CHECK(quantile_ > 0.0 && quantile_ < 0.5);
}

Status Winsorizer::Fit(const Dataset& train) {
  Status s = CheckNonEmpty(train);
  if (!s.ok()) return s;
  const Matrix& x = train.x();
  lower_.resize(x.cols());
  upper_.resize(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) {
    std::vector<double> col = x.Col(j);
    lower_[j] = Quantile(col, quantile_);
    upper_[j] = Quantile(col, 1.0 - quantile_);
  }
  return Status::Ok();
}

Matrix Winsorizer::Transform(const Matrix& x) const {
  return TransformOwned(x);
}

Matrix Winsorizer::TransformOwned(Matrix x) const {
  VOLCANOML_CHECK(x.cols() == lower_.size());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      x(i, j) = std::clamp(x(i, j), lower_[j], upper_[j]);
    }
  }
  return x;
}

}  // namespace volcanoml
