#ifndef VOLCANOML_FE_OPERATOR_H_
#define VOLCANOML_FE_OPERATOR_H_

#include <memory>

#include "data/dataset.h"
#include "data/precision.h"
#include "util/status.h"

namespace volcanoml {

/// A fitted feature-engineering operator.
///
/// Two kinds exist, mirroring auto-sklearn's pipeline semantics:
///  * column operators (scalers, projections, selectors) learn statistics
///    from the training split in Fit() and then Transform() any matrix —
///    train and test alike;
///  * row operators (class balancers) resample the *training* rows only;
///    they implement ResampleTrain() and leave Transform() as identity.
class FeOperator {
 public:
  virtual ~FeOperator() = default;

  /// Learns operator state from the training dataset.
  virtual Status Fit(const Dataset& train) = 0;

  /// Applies the learned column transformation (identity for balancers).
  virtual Matrix Transform(const Matrix& x) const { return x; }

  /// Transform() for a matrix the caller owns. Shape-preserving operators
  /// override this to transform in place, so the pipeline's stage chain
  /// moves one buffer along instead of materializing a fresh matrix per
  /// operator. Default: delegates to Transform (dimension-changing
  /// operators must allocate their new shape anyway).
  virtual Matrix TransformOwned(Matrix x) const { return Transform(x); }

  /// Whether this operator resamples rows (balancers). Row operators are
  /// applied to the training split only.
  virtual bool ResamplesRows() const { return false; }

  /// Returns the resampled training dataset (balancers only).
  virtual Dataset ResampleTrain(const Dataset& train) const { return train; }

  /// Selects the numeric lane for the operator's internal storage and
  /// arithmetic (data/precision.h). Called by the evaluator right after
  /// construction, before Fit. Pipeline matrices stay double either way;
  /// only distance/GEMM-dominated operators (Nystroem, random projection)
  /// opt in — the default is a no-op and kFloat64 semantics.
  virtual void SetPrecision(NumericPrecision /*precision*/) {}
};

}  // namespace volcanoml

#endif  // VOLCANOML_FE_OPERATOR_H_
