#ifndef VOLCANOML_FE_AGGLOMERATION_H_
#define VOLCANOML_FE_AGGLOMERATION_H_

#include <vector>

#include "fe/operator.h"

namespace volcanoml {

/// Feature agglomeration (auto-sklearn's feature_agglomeration): merges
/// correlated features bottom-up (average-linkage over 1-|corr| distance)
/// into `num_clusters` groups and outputs each group's mean. A denoising
/// dimensionality reduction complementary to PCA.
class FeatureAgglomeration : public FeOperator {
 public:
  explicit FeatureAgglomeration(size_t num_clusters);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;

  size_t NumClusters() const;

 private:
  size_t num_clusters_;
  std::vector<size_t> assignment_;  ///< Cluster id per input column.
};

/// K-bins discretizer: replaces each column by the index of its training
/// quantile bin (ordinal encoding, `num_bins` bins). Robust to outliers
/// and makes thresholds explicit for linear models.
class KBinsDiscretizer : public FeOperator {
 public:
  explicit KBinsDiscretizer(size_t num_bins);

  Status Fit(const Dataset& train) override;
  Matrix Transform(const Matrix& x) const override;

 private:
  size_t num_bins_;
  std::vector<std::vector<double>> edges_;  ///< Per column, ascending.
};

}  // namespace volcanoml

#endif  // VOLCANOML_FE_AGGLOMERATION_H_
