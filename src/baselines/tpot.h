#ifndef VOLCANOML_BASELINES_TPOT_H_
#define VOLCANOML_BASELINES_TPOT_H_

#include <memory>

#include "core/volcano_ml.h"
#include "eval/evaluator.h"

namespace volcanoml {

/// TPOT-style baseline: genetic programming over end-to-end pipeline
/// configurations. A pipeline individual is a point in the joint space;
/// generations evolve via tournament selection, uniform crossover over
/// parameters, and neighborhood mutation, with (mu + lambda) survival.
/// TPOT has no meta-learning (paper Section 5.1).
struct TpotOptions {
  SearchSpaceOptions space;
  EvaluatorOptions eval;
  double budget = 150.0;
  size_t population_size = 20;
  size_t tournament_size = 3;
  double crossover_rate = 0.5;
  /// Expected number of mutation steps applied to each offspring.
  double mutation_strength = 1.5;
  uint64_t seed = 1;
};

class TpotBaseline {
 public:
  explicit TpotBaseline(const TpotOptions& options);

  /// Runs the evolutionary search; may be called once per instance.
  AutoMlResult Fit(const Dataset& train);

  /// Trains the best pipeline on all the Fit data.
  Result<FittedPipeline> FitFinalPipeline();

 private:
  TpotOptions options_;
  SearchSpace space_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<PipelineEvaluator> evaluator_;
  AutoMlResult result_;
  bool fitted_ = false;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BASELINES_TPOT_H_
