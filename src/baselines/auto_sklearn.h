#ifndef VOLCANOML_BASELINES_AUTO_SKLEARN_H_
#define VOLCANOML_BASELINES_AUTO_SKLEARN_H_

#include "core/volcano_ml.h"

namespace volcanoml {

/// auto-sklearn-style baseline (the paper's AUSK / AUSK-): one joint
/// Bayesian-optimization loop (SMAC with a probabilistic random-forest
/// surrogate) over the entire end-to-end space, optionally warm-started
/// by meta-learning. Ensembling — auto-sklearn's post-hoc step — is out
/// of scope here, as the paper compares the best single pipeline found.
struct AuskOptions {
  SearchSpaceOptions space;
  EvaluatorOptions eval;
  double budget = 150.0;
  /// Non-null enables meta-learning (AUSK); null is AUSK-.
  const MetaKnowledgeBase* knowledge = nullptr;
  size_t num_warm_starts = 5;
  uint64_t seed = 1;
};

class AutoSklearnBaseline {
 public:
  explicit AutoSklearnBaseline(const AuskOptions& options);

  /// Runs the search; may be called once per instance.
  AutoMlResult Fit(const Dataset& train);

  /// Trains the best pipeline on all the Fit data.
  Result<FittedPipeline> FitFinalPipeline();

 private:
  VolcanoML engine_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BASELINES_AUTO_SKLEARN_H_
