#ifndef VOLCANOML_BASELINES_PLATFORMS_H_
#define VOLCANOML_BASELINES_PLATFORMS_H_

#include <string>
#include <vector>

#include "core/volcano_ml.h"

namespace volcanoml {

/// Stand-ins for the four anonymized commercial AutoML platforms of the
/// paper's Figure 6 (Google / Azure / Oracle / AWS, "Platform 1-4").
///
/// The real platforms are closed services; the paper anonymizes them and
/// only compares test-error-vs-time curves. Here each platform is a
/// distinct, reasonable AutoML strategy over the same search space, so
/// the comparison's *shape* — several independent competitors with
/// different convergence profiles — is preserved (see DESIGN.md).
enum class PlatformKind {
  kPlatform1,  ///< Pure random search.
  kPlatform2,  ///< Staged: random exploration, then local search.
  kPlatform3,  ///< Evolutionary search (large population, mild mutation).
  kPlatform4,  ///< Repeated successive-halving brackets.
};

std::vector<PlatformKind> AllPlatforms();
std::string PlatformName(PlatformKind kind);

struct PlatformOptions {
  SearchSpaceOptions space;
  EvaluatorOptions eval;
  double budget = 150.0;
  uint64_t seed = 1;
};

/// Runs one platform strategy end to end on `train`.
AutoMlResult RunPlatform(PlatformKind kind, const PlatformOptions& options,
                         const Dataset& train);

}  // namespace volcanoml

#endif  // VOLCANOML_BASELINES_PLATFORMS_H_
