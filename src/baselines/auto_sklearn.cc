#include "baselines/auto_sklearn.h"

namespace volcanoml {

namespace {

VolcanoMlOptions ToVolcanoOptions(const AuskOptions& options) {
  VolcanoMlOptions out;
  out.space = options.space;
  out.eval = options.eval;
  out.plan = PlanKind::kJoint;  // The whole space in one BO loop.
  out.optimizer = JointOptimizerKind::kSmac;
  out.budget = options.budget;
  out.knowledge = options.knowledge;
  out.num_warm_starts = options.num_warm_starts;
  out.seed = options.seed;
  return out;
}

}  // namespace

AutoSklearnBaseline::AutoSklearnBaseline(const AuskOptions& options)
    : engine_(ToVolcanoOptions(options)) {}

AutoMlResult AutoSklearnBaseline::Fit(const Dataset& train) {
  return engine_.Fit(train);
}

Result<FittedPipeline> AutoSklearnBaseline::FitFinalPipeline() {
  return engine_.FitFinalPipeline();
}

}  // namespace volcanoml
