#include "baselines/tpot.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace volcanoml {

namespace {

struct Individual {
  Configuration config;
  double fitness = 0.0;
};

}  // namespace

TpotBaseline::TpotBaseline(const TpotOptions& options)
    : options_(options), space_(options.space) {
  VOLCANOML_CHECK(options_.population_size >= 2);
  VOLCANOML_CHECK(options_.tournament_size >= 1);
}

AutoMlResult TpotBaseline::Fit(const Dataset& train) {
  VOLCANOML_CHECK_MSG(!fitted_, "Fit may be called once per instance");
  fitted_ = true;
  data_ = std::make_unique<Dataset>(train);
  EvaluatorOptions eval_options = options_.eval;
  eval_options.seed ^= options_.seed;
  evaluator_ = std::make_unique<PipelineEvaluator>(&space_, data_.get(),
                                                   eval_options);

  Rng rng(options_.seed);
  const ConfigurationSpace& joint = space_.joint();

  // Seconds budgets meter the run's total wall-clock (evaluations plus
  // evolutionary bookkeeping), matching the paper's budget model.
  Stopwatch run_timer;
  auto consumed = [&]() {
    return options_.eval.budget_in_seconds
               ? run_timer.ElapsedSeconds()
               : evaluator_->consumed_budget();
  };

  auto evaluate = [&](const Configuration& config) {
    double fitness = evaluator_->Evaluate(joint.ToAssignment(config));
    result_.trajectory.push_back(
        {consumed(),
         std::max(fitness, result_.trajectory.empty()
                               ? fitness
                               : result_.trajectory.back().utility)});
    if (fitness > result_.best_utility || result_.best_assignment.empty()) {
      result_.best_utility = fitness;
      result_.best_assignment = joint.ToAssignment(config);
    }
    return fitness;
  };

  auto budget_left = [&]() { return consumed() < options_.budget; };

  // Initial population.
  std::vector<Individual> population;
  result_.best_utility = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < options_.population_size && budget_left(); ++i) {
    Individual ind;
    ind.config = joint.Sample(&rng);
    ind.fitness = evaluate(ind.config);
    population.push_back(std::move(ind));
  }

  auto tournament = [&]() -> const Individual& {
    size_t best = rng.Index(population.size());
    for (size_t t = 1; t < options_.tournament_size; ++t) {
      size_t challenger = rng.Index(population.size());
      if (population[challenger].fitness > population[best].fitness) {
        best = challenger;
      }
    }
    return population[best];
  };

  // Generations until the budget runs out.
  while (budget_left() && !population.empty()) {
    std::vector<Individual> offspring;
    for (size_t i = 0; i < options_.population_size && budget_left(); ++i) {
      Configuration child = tournament().config;
      if (rng.Bernoulli(options_.crossover_rate)) {
        // Uniform crossover: each gene from either parent.
        const Configuration& other = tournament().config;
        for (size_t g = 0; g < child.values.size(); ++g) {
          if (rng.Bernoulli(0.5)) child.values[g] = other.values[g];
        }
      }
      // Poisson-ish mutation: a geometric number of neighborhood steps.
      int steps = 0;
      while (rng.Bernoulli(options_.mutation_strength /
                           (options_.mutation_strength + 1.0)) &&
             steps < 5) {
        ++steps;
      }
      for (int s = 0; s < std::max(1, steps); ++s) {
        child = joint.Neighbor(child, &rng);
      }
      Individual ind;
      ind.config = std::move(child);
      ind.fitness = evaluate(ind.config);
      offspring.push_back(std::move(ind));
    }
    // (mu + lambda) survival.
    population.insert(population.end(),
                      std::make_move_iterator(offspring.begin()),
                      std::make_move_iterator(offspring.end()));
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness > b.fitness;
              });
    if (population.size() > options_.population_size) {
      population.resize(options_.population_size);
    }
  }

  result_.num_evaluations = evaluator_->num_evaluations();
  return result_;
}

Result<FittedPipeline> TpotBaseline::FitFinalPipeline() {
  VOLCANOML_CHECK_MSG(fitted_, "call Fit first");
  if (result_.best_assignment.empty()) {
    return Status::FailedPrecondition("search found no configuration");
  }
  return evaluator_->FitFinal(result_.best_assignment);
}

}  // namespace volcanoml
