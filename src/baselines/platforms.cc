#include "baselines/platforms.h"

#include <algorithm>

#include "bandit/successive_halving.h"
#include "baselines/tpot.h"
#include "util/check.h"
#include "util/timer.h"
#include "util/rng.h"

namespace volcanoml {

namespace {

/// Shared scaffolding: evaluator + incumbent/trajectory bookkeeping.
class PlatformRun {
 public:
  PlatformRun(const PlatformOptions& options, const Dataset& train)
      : space_(options.space),
        data_(train),
        budget_in_seconds_(options.eval.budget_in_seconds) {
    EvaluatorOptions eval_options = options.eval;
    eval_options.seed ^= options.seed;
    evaluator_ = std::make_unique<PipelineEvaluator>(&space_, &data_,
                                                     eval_options);
    result_.best_utility = -std::numeric_limits<double>::infinity();
  }

  /// Budget consumed so far: whole-run wall-clock in seconds mode.
  double Consumed() const {
    return budget_in_seconds_ ? run_timer_.ElapsedSeconds()
                              : evaluator_->consumed_budget();
  }

  double Evaluate(const Configuration& config, double fidelity = 1.0) {
    Assignment assignment = space_.joint().ToAssignment(config);
    double utility = evaluator_->Evaluate(assignment, fidelity);
    // Only full-fidelity results update the incumbent (subsampled scores
    // are not comparable across fidelities).
    if (fidelity >= 1.0 &&
        (utility > result_.best_utility || result_.best_assignment.empty())) {
      result_.best_utility = utility;
      result_.best_assignment = std::move(assignment);
    }
    result_.trajectory.push_back({Consumed(), result_.best_utility});
    return utility;
  }

  bool BudgetLeft(double budget) const { return Consumed() < budget; }

  const SearchSpace& space() const { return space_; }

  AutoMlResult Finish() {
    result_.num_evaluations = evaluator_->num_evaluations();
    return result_;
  }

  const AutoMlResult& result() const { return result_; }

 private:
  SearchSpace space_;
  Dataset data_;
  bool budget_in_seconds_;
  Stopwatch run_timer_;
  std::unique_ptr<PipelineEvaluator> evaluator_;
  AutoMlResult result_;
};

AutoMlResult RunRandomSearch(const PlatformOptions& options,
                             const Dataset& train) {
  PlatformRun run(options, train);
  Rng rng(options.seed);
  while (run.BudgetLeft(options.budget)) {
    run.Evaluate(run.space().joint().Sample(&rng));
  }
  return run.Finish();
}

AutoMlResult RunStagedSearch(const PlatformOptions& options,
                             const Dataset& train) {
  PlatformRun run(options, train);
  Rng rng(options.seed);
  const ConfigurationSpace& joint = run.space().joint();
  // Stage 1: random exploration on 40% of the budget.
  Configuration best = joint.Default();
  double best_utility = -std::numeric_limits<double>::infinity();
  while (run.BudgetLeft(0.4 * options.budget)) {
    Configuration c = joint.Sample(&rng);
    double u = run.Evaluate(c);
    if (u > best_utility) {
      best_utility = u;
      best = c;
    }
  }
  // Stage 2: greedy local search around the incumbent.
  while (run.BudgetLeft(options.budget)) {
    Configuration neighbor = joint.Neighbor(best, &rng);
    double u = run.Evaluate(neighbor);
    if (u > best_utility) {
      best_utility = u;
      best = neighbor;
    }
  }
  return run.Finish();
}

AutoMlResult RunEvolutionary(const PlatformOptions& options,
                             const Dataset& train) {
  TpotOptions tpot;
  tpot.space = options.space;
  tpot.eval = options.eval;
  tpot.budget = options.budget;
  tpot.population_size = 30;     // Larger, milder than TPOT's defaults.
  tpot.tournament_size = 2;
  tpot.crossover_rate = 0.7;
  tpot.mutation_strength = 0.8;
  tpot.seed = options.seed ^ 0xabcdef;
  TpotBaseline engine(tpot);
  return engine.Fit(train);
}

AutoMlResult RunSuccessiveHalvingOnly(const PlatformOptions& options,
                                      const Dataset& train) {
  PlatformRun run(options, train);
  Rng rng(options.seed);
  const ConfigurationSpace& joint = run.space().joint();
  SuccessiveHalvingOptions sh;
  sh.num_configs = 9;
  sh.eta = 3.0;
  sh.min_fidelity = 1.0 / 9.0;
  while (run.BudgetLeft(options.budget)) {
    std::vector<Configuration> candidates;
    for (size_t i = 0; i < sh.num_configs; ++i) {
      candidates.push_back(joint.Sample(&rng));
    }
    RunSuccessiveHalving(candidates, sh,
                         [&run](const Configuration& c, double fidelity) {
                           return run.Evaluate(c, fidelity);
                         });
  }
  return run.Finish();
}

}  // namespace

std::vector<PlatformKind> AllPlatforms() {
  return {PlatformKind::kPlatform1, PlatformKind::kPlatform2,
          PlatformKind::kPlatform3, PlatformKind::kPlatform4};
}

std::string PlatformName(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kPlatform1:
      return "Platform1";
    case PlatformKind::kPlatform2:
      return "Platform2";
    case PlatformKind::kPlatform3:
      return "Platform3";
    case PlatformKind::kPlatform4:
      return "Platform4";
  }
  return "?";
}

AutoMlResult RunPlatform(PlatformKind kind, const PlatformOptions& options,
                         const Dataset& train) {
  switch (kind) {
    case PlatformKind::kPlatform1:
      return RunRandomSearch(options, train);
    case PlatformKind::kPlatform2:
      return RunStagedSearch(options, train);
    case PlatformKind::kPlatform3:
      return RunEvolutionary(options, train);
    case PlatformKind::kPlatform4:
      return RunSuccessiveHalvingOnly(options, train);
  }
  VOLCANOML_CHECK_MSG(false, "unknown platform");
  return {};
}

}  // namespace volcanoml
