#ifndef VOLCANOML_BASELINES_HYPEROPT_H_
#define VOLCANOML_BASELINES_HYPEROPT_H_

#include "core/volcano_ml.h"

namespace volcanoml {

/// hyperopt-sklearn-style baseline: one joint TPE loop over the entire
/// end-to-end space (Komer et al.; one of the BO-based AutoML systems the
/// paper surveys alongside auto-sklearn). No meta-learning.
struct HyperoptOptions {
  SearchSpaceOptions space;
  EvaluatorOptions eval;
  double budget = 150.0;
  uint64_t seed = 1;
};

class HyperoptBaseline {
 public:
  explicit HyperoptBaseline(const HyperoptOptions& options);

  /// Runs the search; may be called once per instance.
  AutoMlResult Fit(const Dataset& train);

  /// Trains the best pipeline on all the Fit data.
  Result<FittedPipeline> FitFinalPipeline();

 private:
  VolcanoML engine_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_BASELINES_HYPEROPT_H_
