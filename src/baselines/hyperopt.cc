#include "baselines/hyperopt.h"

namespace volcanoml {

namespace {

VolcanoMlOptions ToVolcanoOptions(const HyperoptOptions& options) {
  VolcanoMlOptions out;
  out.space = options.space;
  out.eval = options.eval;
  out.plan = PlanKind::kJoint;
  out.optimizer = JointOptimizerKind::kTpe;
  out.budget = options.budget;
  out.seed = options.seed;
  return out;
}

}  // namespace

HyperoptBaseline::HyperoptBaseline(const HyperoptOptions& options)
    : engine_(ToVolcanoOptions(options)) {}

AutoMlResult HyperoptBaseline::Fit(const Dataset& train) {
  return engine_.Fit(train);
}

Result<FittedPipeline> HyperoptBaseline::FitFinalPipeline() {
  return engine_.FitFinalPipeline();
}

}  // namespace volcanoml
