#ifndef VOLCANOML_META_KNOWLEDGE_BASE_H_
#define VOLCANOML_META_KNOWLEDGE_BASE_H_

#include <string>
#include <vector>

#include "cs/configuration.h"
#include "data/dataset.h"
#include "util/status.h"

namespace volcanoml {

/// One record of a past AutoML run: the dataset's descriptor and the best
/// configuration the run found.
struct MetaEntry {
  std::string dataset_name;
  TaskType task = TaskType::kClassification;
  std::vector<double> meta_features;
  Assignment best_assignment;
  double best_utility = 0.0;
};

/// Meta-learning store (paper Section 4, "Further Optimization with
/// Meta-learning"): given runs on past workloads, warm-starts a new run
/// with the best configurations of the k most similar datasets, matched
/// by normalized meta-feature distance. Both VolcanoML and the AUSK
/// baseline consume this (their "+meta" variants in Table 1).
class MetaKnowledgeBase {
 public:
  MetaKnowledgeBase() = default;

  void AddEntry(MetaEntry entry);
  size_t NumEntries() const { return entries_.size(); }
  const std::vector<MetaEntry>& entries() const { return entries_; }

  /// Warm-start candidates for `data`: the best assignments of the `k`
  /// nearest same-task datasets, nearest first. Entries whose dataset
  /// name equals data.name() are excluded (no self-transfer leakage).
  std::vector<Assignment> SuggestWarmStarts(const Dataset& data, size_t k,
                                            uint64_t seed = 1) const;

  /// Serialization to a line-oriented text format.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  std::vector<MetaEntry> entries_;
};

}  // namespace volcanoml

#endif  // VOLCANOML_META_KNOWLEDGE_BASE_H_
