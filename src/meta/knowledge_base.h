#ifndef VOLCANOML_META_KNOWLEDGE_BASE_H_
#define VOLCANOML_META_KNOWLEDGE_BASE_H_

#include <string>
#include <vector>

#include "cs/configuration.h"
#include "data/dataset.h"
#include "meta/artifact.h"
#include "util/status.h"

namespace volcanoml {

/// Backwards-compatible alias: PRs 1-9 stored MetaEntry{name, features,
/// best assignment}; the artifact carries those fields plus trajectory,
/// arm winners and history. Existing call sites keep compiling.
using MetaEntry = RunArtifact;

/// Canonical seed for meta-feature computation. The landmarker features
/// subsample with an RNG, so two descriptors are only comparable when
/// computed under the SAME seed — per-run seeds would turn the k-NN
/// distance into seed noise. Every producer (ExportRunArtifact, the
/// bootstrap) and the retrieval query use this one constant.
inline constexpr uint64_t kMetaFeatureSeed = 1;

/// What a portfolio lookup hands the executor: configurations to try
/// first, plus prior observations to seed the surrogate models with.
struct Portfolio {
  /// Evaluation seeds in executor routing order: the nearest run's
  /// per-arm winners first, then the k nearest runs' best assignments,
  /// deduplicated. Arm winners lead because the first seed an arm
  /// receives REPLACES its queued default (JointBlock::WarmStart), and a
  /// same-distribution run's winner for that arm is the best-informed
  /// anchor available.
  std::vector<Assignment> warm_starts;
  /// Transferred observations (arm winners first, then top history) of
  /// those runs, in retrieval order. Injected via ObservePrior before the
  /// first Suggest; utilities shape the surrogate, never the incumbent.
  std::vector<TransferObservation> history;
};

/// Meta-learning store (paper Section 4, "Further Optimization with
/// Meta-learning"): given runs on past workloads, warm-starts a new run
/// with the best configurations of the k most similar datasets, matched
/// by normalized meta-feature distance. Both VolcanoML and the AUSK
/// baseline consume this (their "+meta" variants in Table 1).
///
/// Durable across processes: Serialize()/Deserialize() use the snapshot
/// codec (byte-exact, versioned), so a KB written on one machine loads
/// bit-identically on another and two equal stores serialize to equal
/// bytes. The daemon owns one KB per socket namespace and persists it
/// beside the spool files; the CLI reads/writes one via --kb.
class MetaKnowledgeBase {
 public:
  MetaKnowledgeBase() = default;

  void AddArtifact(RunArtifact artifact);
  [[nodiscard]] size_t NumArtifacts() const { return artifacts_.size(); }
  [[nodiscard]] const std::vector<RunArtifact>& artifacts() const {
    return artifacts_;
  }

  // Legacy-named accessors kept as aliases for older call sites.
  void AddEntry(MetaEntry entry) { AddArtifact(std::move(entry)); }
  [[nodiscard]] size_t NumEntries() const { return NumArtifacts(); }
  [[nodiscard]] const std::vector<RunArtifact>& entries() const {
    return artifacts_;
  }

  /// Deterministic k-NN retrieval: the `k` nearest same-task past runs by
  /// normalized meta-feature distance, nearest first, with ties broken by
  /// (dataset_hash, dataset_name) so equal stores always retrieve in the
  /// same order. Runs whose dataset content hash equals
  /// data.ContentHash() are excluded — self-transfer is keyed on bytes,
  /// not names, so a renamed dataset cannot leak its own results back and
  /// a name collision cannot falsely exclude a genuinely different
  /// dataset. Per selected run, at most `max_history_per_run`
  /// observations are transferred: its arm winners first, then its best
  /// remaining history entries. Draws no caller randomness: the query
  /// descriptor uses kMetaFeatureSeed, so retrieval is a pure function of
  /// (store contents, query dataset).
  [[nodiscard]] Portfolio SuggestPortfolio(
      const Dataset& data, size_t k, size_t max_history_per_run = 16) const;

  /// Warm-start facade over SuggestPortfolio (assignments only).
  [[nodiscard]] std::vector<Assignment> SuggestWarmStarts(const Dataset& data,
                                                          size_t k) const;

  /// Byte-exact serialization via the snapshot codec. Serialize of equal
  /// stores yields equal bytes; Deserialize(Serialize()) round-trips
  /// exactly. Deserialize rejects the pre-PR-10 line-oriented format (and
  /// any other unversioned input) with InvalidArgument naming the version
  /// mismatch, and corrupt or truncated input with the codec's first
  /// error — it never silently misparses.
  [[nodiscard]] std::string Serialize() const;
  [[nodiscard]] Status Deserialize(const std::string& data);

  /// Merges artifacts serialized by another store into this one, skipping
  /// artifacts whose (dataset_hash, task) pair is already present. Returns
  /// the number of artifacts actually added.
  [[nodiscard]] Result<size_t> MergeSerialized(const std::string& data);

  /// File round-trip. LoadFromFile distinguishes a missing file
  /// (NotFound — callers typically start empty) from an unreadable one
  /// (IoError) and from unparseable contents (Deserialize's status).
  [[nodiscard]] Status SaveToFile(const std::string& path) const;
  [[nodiscard]] Status LoadFromFile(const std::string& path);

 private:
  std::vector<RunArtifact> artifacts_;
};

/// Canonical on-disk name for the KB of a daemon socket namespace:
/// `<dir>/<name>.kb`. Lives here so the file-naming convention stays
/// beside the format it names.
[[nodiscard]] std::string KnowledgeBaseFilePath(const std::string& dir,
                                                const std::string& name);

}  // namespace volcanoml

#endif  // VOLCANOML_META_KNOWLEDGE_BASE_H_
