#ifndef VOLCANOML_META_ARTIFACT_H_
#define VOLCANOML_META_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/trajectory.h"
#include "cs/configuration.h"
#include "data/dataset.h"

namespace volcanoml {

/// The best full assignment one conditioning arm found during a run,
/// together with the arm it came from. Conditioning blocks export one per
/// arm that committed at least one observation; the knowledge base injects
/// them as transfer history so a warm-started run starts with per-arm
/// coverage instead of only the single global winner.
struct ArmWinner {
  /// The conditioned variable (e.g. "algorithm").
  std::string variable;
  /// The arm's choice index for that variable.
  double value = 0.0;
  Assignment assignment;
  double utility = 0.0;
};

/// One (assignment, utility) observation carried across runs. Utilities
/// are only comparable within the run that produced them; consumers feed
/// them to surrogate models as priors, never into incumbent tracking.
struct TransferObservation {
  Assignment assignment;
  double utility = 0.0;
};

/// The durable record of one finished AutoML run: enough to identify the
/// dataset (content hash, not name), match it against future workloads
/// (meta-features + task), and transfer what the search learned (final
/// trajectory, per-arm winners, and the full-fidelity observation
/// history). This is the unit the knowledge base stores and serializes.
struct RunArtifact {
  std::string dataset_name;
  /// Dataset::ContentHash() of the training data — the identity key for
  /// self-transfer exclusion (names can be reused or changed; bytes not).
  uint64_t dataset_hash = 0;
  TaskType task = TaskType::kClassification;
  std::vector<double> meta_features;
  Assignment best_assignment;
  double best_utility = 0.0;
  std::vector<TrajectoryPoint> trajectory;
  std::vector<ArmWinner> arm_winners;
  /// Every full-fidelity (assignment, utility) the run evaluated, in
  /// evaluation order.
  std::vector<TransferObservation> history;
};

}  // namespace volcanoml

#endif  // VOLCANOML_META_ARTIFACT_H_
