#ifndef VOLCANOML_META_BOOTSTRAP_H_
#define VOLCANOML_META_BOOTSTRAP_H_

#include <vector>

#include "data/suite.h"
#include "eval/search_space.h"
#include "meta/knowledge_base.h"

namespace volcanoml {

/// Populates a knowledge base by running a short VolcanoML search on each
/// dataset of `suite` and recording (meta-features, best configuration).
/// This simulates the "previous runs over similar workloads" the paper's
/// meta-learning assumes (auto-sklearn ships such a base built from 140
/// OpenML datasets).
MetaKnowledgeBase BuildKnowledgeBase(const std::vector<DatasetSpec>& suite,
                                     const SearchSpaceOptions& space_options,
                                     double budget_per_dataset,
                                     uint64_t seed);

}  // namespace volcanoml

#endif  // VOLCANOML_META_BOOTSTRAP_H_
