#include "meta/knowledge_base.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "core/snapshot.h"
#include "data/meta_features.h"
#include "util/check.h"
#include "util/stats.h"

namespace volcanoml {

namespace {

/// First token of every serialized KB. Distinct from the search-snapshot
/// magic: a KB is not a resumable search state and must not be confused
/// with one by either reader.
constexpr const char* kKnowledgeBaseMagic = "volcanoml-kb";

/// Version 1 was the pre-PR-10 line-oriented tab-separated format, which
/// carried no header at all; version 2 is the snapshot-codec layout below.
/// Bump on any layout change — the reader is strictly sequential.
constexpr uint64_t kKnowledgeBaseVersion = 2;

void SaveArtifact(SnapshotWriter* w, const RunArtifact& artifact) {
  w->Begin("artifact");
  w->Str("dataset_name", artifact.dataset_name);
  w->U64("dataset_hash", artifact.dataset_hash);
  w->U64("task", artifact.task == TaskType::kClassification ? 0 : 1);
  SaveDoubleVector(w, "meta_features", artifact.meta_features);
  SaveAssignment(w, "best_assignment", artifact.best_assignment);
  w->F64("best_utility", artifact.best_utility);
  w->U64("num_trajectory", artifact.trajectory.size());
  for (const TrajectoryPoint& point : artifact.trajectory) {
    w->F64("budget", point.budget);
    w->F64("utility", point.utility);
  }
  w->U64("num_arm_winners", artifact.arm_winners.size());
  for (const ArmWinner& winner : artifact.arm_winners) {
    w->Str("variable", winner.variable);
    w->F64("value", winner.value);
    SaveAssignment(w, "assignment", winner.assignment);
    w->F64("utility", winner.utility);
  }
  w->U64("num_history", artifact.history.size());
  for (const TransferObservation& obs : artifact.history) {
    SaveAssignment(w, "assignment", obs.assignment);
    w->F64("utility", obs.utility);
  }
  w->End("artifact");
}

[[nodiscard]] RunArtifact LoadArtifact(SnapshotReader* r) {
  RunArtifact artifact;
  r->Begin("artifact");
  artifact.dataset_name = r->Str("dataset_name");
  artifact.dataset_hash = r->U64("dataset_hash");
  artifact.task = r->U64("task") == 0 ? TaskType::kClassification
                                      : TaskType::kRegression;
  artifact.meta_features = LoadDoubleVector(r, "meta_features");
  artifact.best_assignment = LoadAssignment(r, "best_assignment");
  artifact.best_utility = r->F64("best_utility");
  uint64_t num_trajectory = r->U64("num_trajectory");
  for (uint64_t i = 0; r->ok() && i < num_trajectory; ++i) {
    TrajectoryPoint point;
    point.budget = r->F64("budget");
    point.utility = r->F64("utility");
    artifact.trajectory.push_back(point);
  }
  uint64_t num_arm_winners = r->U64("num_arm_winners");
  for (uint64_t i = 0; r->ok() && i < num_arm_winners; ++i) {
    ArmWinner winner;
    winner.variable = r->Str("variable");
    winner.value = r->F64("value");
    winner.assignment = LoadAssignment(r, "assignment");
    winner.utility = r->F64("utility");
    artifact.arm_winners.push_back(std::move(winner));
  }
  uint64_t num_history = r->U64("num_history");
  for (uint64_t i = 0; r->ok() && i < num_history; ++i) {
    TransferObservation obs;
    obs.assignment = LoadAssignment(r, "assignment");
    obs.utility = r->F64("utility");
    artifact.history.push_back(std::move(obs));
  }
  r->End("artifact");
  return artifact;
}

/// Canonical text key of an assignment for dedup (map iteration is
/// name-sorted, so equal assignments key equal).
[[nodiscard]] std::string AssignmentKey(const Assignment& assignment) {
  SnapshotWriter w;
  SaveAssignment(&w, "a", assignment);
  return w.str();
}

}  // namespace

void MetaKnowledgeBase::AddArtifact(RunArtifact artifact) {
  artifacts_.push_back(std::move(artifact));
}

Portfolio MetaKnowledgeBase::SuggestPortfolio(
    const Dataset& data, size_t k, size_t max_history_per_run) const {
  Portfolio portfolio;
  if (k == 0) return portfolio;
  std::vector<double> query = ComputeMetaFeatures(data, kMetaFeatureSeed);
  uint64_t query_hash = data.ContentHash();

  // Candidate pool: same task, different dataset *contents*. Keying the
  // exclusion on the hash (not the name) means a renamed copy of the query
  // dataset is still excluded, and an unrelated dataset that happens to
  // share a name is not.
  std::vector<const RunArtifact*> pool;
  for (const RunArtifact& artifact : artifacts_) {
    if (artifact.task != data.task()) continue;
    if (artifact.dataset_hash == query_hash) continue;
    if (artifact.meta_features.size() != query.size()) continue;
    pool.push_back(&artifact);
  }
  if (pool.empty()) return portfolio;

  // Per-dimension scales from the pool for a normalized distance.
  std::vector<double> scales(query.size(), 1.0);
  for (size_t dim = 0; dim < query.size(); ++dim) {
    std::vector<double> values;
    values.reserve(pool.size());
    for (const RunArtifact* artifact : pool) {
      values.push_back(artifact->meta_features[dim]);
    }
    double sd = StdDev(values);
    scales[dim] = sd > 1e-12 ? sd : 1.0;
  }

  std::vector<std::pair<double, const RunArtifact*>> scored;
  scored.reserve(pool.size());
  for (const RunArtifact* artifact : pool) {
    scored.push_back(
        {MetaFeatureDistance(query, artifact->meta_features, scales),
         artifact});
  }
  // Tie-break on (hash, name) so retrieval order is a pure function of
  // the store's contents, never of insertion order.
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              if (a.second->dataset_hash != b.second->dataset_hash) {
                return a.second->dataset_hash < b.second->dataset_hash;
              }
              return a.second->dataset_name < b.second->dataset_name;
            });
  if (scored.size() > k) scored.resize(k);

  // Evaluation seeds, in the order the executor will route them: the
  // nearest run's per-arm winners first, then the k nearest runs' best
  // assignments, deduplicated. Arm winners lead because the first seed
  // an arm receives replaces its default anchor (JointBlock::WarmStart),
  // and the winner a same-distribution run found FOR THAT ARM is the
  // best-informed anchor available — a more distant run's global best
  // should only ever queue behind it.
  std::set<std::string> seeded;
  for (const ArmWinner& winner : scored.front().second->arm_winners) {
    if (!seeded.insert(AssignmentKey(winner.assignment)).second) continue;
    portfolio.warm_starts.push_back(winner.assignment);
  }
  for (const auto& [dist, artifact] : scored) {
    if (!seeded.insert(AssignmentKey(artifact->best_assignment)).second) {
      continue;
    }
    portfolio.warm_starts.push_back(artifact->best_assignment);
  }

  std::set<std::string> seen;
  for (const auto& [dist, artifact] : scored) {

    // Transfer history: the run's per-arm winners first (coverage across
    // conditioning arms), then its best remaining observations, capped.
    std::vector<TransferObservation> transfer;
    for (const ArmWinner& winner : artifact->arm_winners) {
      transfer.push_back({winner.assignment, winner.utility});
    }
    std::vector<size_t> order(artifact->history.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return artifact->history[a].utility > artifact->history[b].utility;
    });
    for (size_t idx : order) transfer.push_back(artifact->history[idx]);

    size_t taken = 0;
    for (const TransferObservation& obs : transfer) {
      if (taken >= max_history_per_run) break;
      if (!seen.insert(AssignmentKey(obs.assignment)).second) continue;
      portfolio.history.push_back(obs);
      ++taken;
    }
  }
  return portfolio;
}

std::vector<Assignment> MetaKnowledgeBase::SuggestWarmStarts(
    const Dataset& data, size_t k) const {
  return SuggestPortfolio(data, k).warm_starts;
}

std::string MetaKnowledgeBase::Serialize() const {
  SnapshotWriter w;
  w.Begin("knowledge_base");
  w.U64("num_artifacts", artifacts_.size());
  for (const RunArtifact& artifact : artifacts_) {
    SaveArtifact(&w, artifact);
  }
  w.End("knowledge_base");
  std::string out = kKnowledgeBaseMagic;
  out += ' ';
  out += std::to_string(kKnowledgeBaseVersion);
  out += '\n';
  out += w.str();
  return out;
}

Status MetaKnowledgeBase::Deserialize(const std::string& data) {
  size_t newline = data.find('\n');
  std::string header = data.substr(0, newline == std::string::npos
                                          ? data.size()
                                          : newline);
  std::istringstream header_stream(header);
  std::string magic;
  uint64_t version = 0;
  if (!(header_stream >> magic >> version) || magic != kKnowledgeBaseMagic) {
    return Status::InvalidArgument(
        "knowledge base version mismatch: expected header '" +
        std::string(kKnowledgeBaseMagic) + " " +
        std::to_string(kKnowledgeBaseVersion) +
        "' (the pre-versioned line format is no longer readable; rebuild "
        "the knowledge base)");
  }
  if (version != kKnowledgeBaseVersion) {
    return Status::InvalidArgument(
        "knowledge base version mismatch: file has version " +
        std::to_string(version) + ", reader expects " +
        std::to_string(kKnowledgeBaseVersion));
  }
  if (newline == std::string::npos) {
    return Status::InvalidArgument("knowledge base truncated after header");
  }

  SnapshotReader r(data.substr(newline + 1));
  std::vector<RunArtifact> artifacts;
  r.Begin("knowledge_base");
  uint64_t num_artifacts = r.U64("num_artifacts");
  for (uint64_t i = 0; r.ok() && i < num_artifacts; ++i) {
    artifacts.push_back(LoadArtifact(&r));
  }
  r.End("knowledge_base");
  if (!r.ok()) {
    return Status::InvalidArgument("knowledge base corrupt: " + r.error());
  }
  artifacts_ = std::move(artifacts);
  return Status::Ok();
}

Result<size_t> MetaKnowledgeBase::MergeSerialized(const std::string& data) {
  MetaKnowledgeBase incoming;
  VOLCANOML_RETURN_IF_ERROR(incoming.Deserialize(data));
  std::set<std::pair<uint64_t, int>> present;
  for (const RunArtifact& artifact : artifacts_) {
    present.insert({artifact.dataset_hash,
                    artifact.task == TaskType::kClassification ? 0 : 1});
  }
  size_t added = 0;
  for (RunArtifact& artifact : incoming.artifacts_) {
    auto key = std::make_pair(
        artifact.dataset_hash,
        artifact.task == TaskType::kClassification ? 0 : 1);
    if (!present.insert(key).second) continue;
    artifacts_.push_back(std::move(artifact));
    ++added;
  }
  return added;
}

Status MetaKnowledgeBase::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot write " + path);
  out << Serialize();
  out.flush();
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status MetaKnowledgeBase::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("no knowledge base at " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  return Deserialize(buffer.str());
}

std::string KnowledgeBaseFilePath(const std::string& dir,
                                  const std::string& name) {
  return dir + "/" + name + ".kb";
}

}  // namespace volcanoml
