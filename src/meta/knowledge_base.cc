#include "meta/knowledge_base.h"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>

#include "data/meta_features.h"
#include "util/check.h"
#include "util/stats.h"

namespace volcanoml {

void MetaKnowledgeBase::AddEntry(MetaEntry entry) {
  entries_.push_back(std::move(entry));
}

std::vector<Assignment> MetaKnowledgeBase::SuggestWarmStarts(
    const Dataset& data, size_t k, uint64_t seed) const {
  std::vector<double> query = ComputeMetaFeatures(data, seed);

  // Candidate pool: same task, different dataset.
  std::vector<const MetaEntry*> pool;
  for (const MetaEntry& entry : entries_) {
    if (entry.task != data.task()) continue;
    if (entry.dataset_name == data.name()) continue;
    if (entry.meta_features.size() != query.size()) continue;
    pool.push_back(&entry);
  }
  if (pool.empty()) return {};

  // Per-dimension scales from the pool for a normalized distance.
  std::vector<double> scales(query.size(), 1.0);
  for (size_t dim = 0; dim < query.size(); ++dim) {
    std::vector<double> values;
    values.reserve(pool.size());
    for (const MetaEntry* entry : pool) {
      values.push_back(entry->meta_features[dim]);
    }
    double sd = StdDev(values);
    scales[dim] = sd > 1e-12 ? sd : 1.0;
  }

  std::vector<std::pair<double, const MetaEntry*>> scored;
  scored.reserve(pool.size());
  for (const MetaEntry* entry : pool) {
    scored.push_back(
        {MetaFeatureDistance(query, entry->meta_features, scales), entry});
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<Assignment> out;
  for (const auto& [dist, entry] : scored) {
    if (out.size() >= k) break;
    out.push_back(entry->best_assignment);
  }
  return out;
}

Status MetaKnowledgeBase::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot write " + path);
  for (const MetaEntry& entry : entries_) {
    out << entry.dataset_name << '\t'
        << (entry.task == TaskType::kClassification ? "cls" : "reg") << '\t'
        << entry.best_utility << '\t';
    out << entry.meta_features.size();
    for (double v : entry.meta_features) out << ' ' << v;
    out << '\t' << entry.best_assignment.size();
    for (const auto& [name, value] : entry.best_assignment) {
      out << ' ' << name << ' ' << value;
    }
    out << '\n';
  }
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status MetaKnowledgeBase::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot read " + path);
  entries_.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    MetaEntry entry;
    std::string task;
    size_t num_features = 0, num_params = 0;
    if (!(ss >> entry.dataset_name >> task >> entry.best_utility >>
          num_features)) {
      return Status::InvalidArgument("malformed knowledge-base line");
    }
    entry.task =
        task == "cls" ? TaskType::kClassification : TaskType::kRegression;
    entry.meta_features.resize(num_features);
    for (double& v : entry.meta_features) {
      if (!(ss >> v)) return Status::InvalidArgument("truncated features");
    }
    if (!(ss >> num_params)) {
      return Status::InvalidArgument("missing parameter count");
    }
    for (size_t i = 0; i < num_params; ++i) {
      std::string name;
      double value;
      if (!(ss >> name >> value)) {
        return Status::InvalidArgument("truncated assignment");
      }
      entry.best_assignment[name] = value;
    }
    entries_.push_back(std::move(entry));
  }
  return Status::Ok();
}

}  // namespace volcanoml
