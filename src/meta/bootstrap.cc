#include "meta/bootstrap.h"

#include "core/volcano_ml.h"
#include "util/logging.h"
#include "util/rng.h"

namespace volcanoml {

MetaKnowledgeBase BuildKnowledgeBase(const std::vector<DatasetSpec>& suite,
                                     const SearchSpaceOptions& space_options,
                                     double budget_per_dataset,
                                     uint64_t seed) {
  MetaKnowledgeBase kb;
  Rng rng(seed);
  for (const DatasetSpec& spec : suite) {
    // Historical runs use an independent instantiation of the dataset so
    // the warm start transfers across data draws, not memorized splits.
    Dataset data = spec.make(seed ^ 0x5bd1e995ULL);

    VolcanoMlOptions options;
    options.space = space_options;
    options.budget = budget_per_dataset;
    options.seed = rng.Fork();
    VolcanoML engine(options);
    AutoMlResult result = engine.Fit(data);
    if (result.best_assignment.empty()) continue;

    // The full run artifact: content hash, meta-features, trajectory,
    // arm winners and observation history — not just the single winner.
    // ExportRunArtifact already computed the meta-features under
    // kMetaFeatureSeed, the one seed every query uses too.
    RunArtifact artifact = engine.ExportRunArtifact();
    artifact.dataset_name = spec.name;
    kb.AddArtifact(std::move(artifact));
    VOLCANOML_LOG(Info) << "knowledge base: " << spec.name << " -> "
                        << result.best_utility;
  }
  return kb;
}

}  // namespace volcanoml
