// Experiment E3 — Table 1 of the paper: average ranks of TPOT, AUSK-,
// AUSK, VolcanoML- and VolcanoML over the classification and regression
// suites, for the three search-space sizes (small / medium / large;
// 20 / 29 / ~60 hyper-parameters here). Lower rank is better.
//
// Paper reference (classification rows): VolcanoML's rank improves as the
// space grows (2.94/2.78/2.72 without meta, 2.89/2.43/1.65 with meta)
// while AUSK degrades (3.01/3.27/3.57) — the shape to reproduce is
// "VolcanoML's advantage widens with search-space size, meta-learning
// helps VolcanoML most".

#include <cstdio>

#include "bench_util.h"
#include "meta/bootstrap.h"
#include "util/stats.h"

namespace volcanoml {
namespace bench {
namespace {

const char* PresetLabel(SpacePreset preset) {
  switch (preset) {
    case SpacePreset::kSmall:
      return "Small";
    case SpacePreset::kMedium:
      return "Medium";
    case SpacePreset::kLarge:
      return "Large";
  }
  return "?";
}

void RunTask(TaskType task, const std::vector<DatasetSpec>& suite,
             double budget, double kb_budget) {
  const bool cls = task == TaskType::kClassification;
  std::printf("\n== %s (%zu datasets, budget %.1f s/system) ==\n",
              cls ? "Classification" : "Regression", suite.size(), budget);
  PrintHeader("Space - Task",
              {"TPOT", "AUSK-", "AUSK", "VolcanoML-", "VolcanoML"});

  for (SpacePreset preset :
       {SpacePreset::kSmall, SpacePreset::kMedium, SpacePreset::kLarge}) {
    SearchSpaceOptions space;
    space.task = task;
    space.preset = preset;
    EvaluatorOptions eval;
    eval.budget_in_seconds = true;

    // One knowledge base per (task, preset), built from independent draws
    // of the same suite; SuggestWarmStarts excludes same-name datasets,
    // making transfer leave-one-out.
    MetaKnowledgeBase kb = BuildKnowledgeBase(suite, space, kb_budget, 77);

    std::vector<SystemUnderTest> systems = {
        MakeTpot(space, eval),
        MakeAusk(space, nullptr, "AUSK-", eval),
        MakeAusk(space, &kb, "AUSK", eval),
        MakeVolcano(space, nullptr, "VolcanoML-", eval),
        MakeVolcano(space, &kb, "VolcanoML", eval),
    };

    // scores[dataset][system]; rank orientation depends on the task.
    std::vector<std::vector<double>> scores;
    for (size_t d = 0; d < suite.size(); ++d) {
      Dataset data = suite[d].make(200 + d);
      TrainTest tt = SplitDataset(data, 17 + d);
      std::vector<double> row;
      for (const SystemUnderTest& system : systems) {
        AutoMlResult result = system.run(tt.train, budget, 3000 + d);
        row.push_back(
            TestScore(space, result.best_assignment, tt.train, tt.test));
      }
      scores.push_back(std::move(row));
    }
    std::vector<double> ranks =
        AverageRanks(scores, /*higher_is_better=*/cls);
    PrintRow(std::string(PresetLabel(preset)) + (cls ? " - CLS" : " - REG"),
             ranks, "%10.2f");
  }
}

}  // namespace
}  // namespace bench
}  // namespace volcanoml

int main() {
  using namespace volcanoml;
  using namespace volcanoml::bench;
  std::printf(
      "E3 / Table 1: average ranks across search-space sizes "
      "(lower is better)\n");
  double budget = 0.8 * BenchScale();   // Seconds per system per dataset.
  double kb_budget = 15.0 * BenchScale();  // Evaluations per KB entry.
  RunTask(TaskType::kClassification, MediumClassificationSuite(), budget,
          kb_budget);
  RunTask(TaskType::kRegression, RegressionSuite(), budget, kb_budget);
  return 0;
}
