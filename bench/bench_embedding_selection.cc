// Experiment E5 — Section 5.3 of the paper: embedding selection for image
// input (the Figure 3 enriched plan). VolcanoML searches over {raw
// pixels, pretrained_model_a, pretrained_model_b} jointly with FE,
// algorithm and HP; auto-sklearn sees raw pixels only.
//
// Paper reference: 96.5% test accuracy with embedding selection vs 69.7%
// for auto-sklearn without, on Kaggle dogs-vs-cats. The shape to
// reproduce: the enriched system selects the strong pre-trained encoder
// and clearly outperforms the raw-pixel baseline.

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace volcanoml;
  using namespace volcanoml::bench;
  std::printf("E5 / Sec 5.3: embedding selection on synthetic dogs-vs-cats\n");

  Dataset images =
      MakeSyntheticImages(400, 8, 1.5, 2024, "dogs_vs_cats_like");
  TrainTest tt = SplitDataset(images, 51);

  SearchSpaceOptions raw_space;
  raw_space.task = TaskType::kClassification;
  raw_space.preset = SpacePreset::kMedium;
  SearchSpaceOptions embed_space = raw_space;
  embed_space.include_embedding = true;

  double budget = 3.0 * BenchScale();  // Seconds per system.

  AuskOptions ausk_options;
  ausk_options.space = raw_space;
  ausk_options.eval.budget_in_seconds = true;
  ausk_options.budget = budget;
  ausk_options.seed = 1;
  AutoSklearnBaseline ausk(ausk_options);
  AutoMlResult ausk_result = ausk.Fit(tt.train);
  double ausk_acc =
      TestScore(raw_space, ausk_result.best_assignment, tt.train, tt.test);

  VolcanoMlOptions volcano_options;
  volcano_options.space = embed_space;
  volcano_options.eval.budget_in_seconds = true;
  volcano_options.budget = budget;
  volcano_options.seed = 1;
  VolcanoML volcano(volcano_options);
  AutoMlResult volcano_result = volcano.Fit(tt.train);
  double volcano_acc = TestScore(embed_space, volcano_result.best_assignment,
                                 tt.train, tt.test);

  std::printf("\n%-38s %8s\n", "system", "bal.acc");
  std::printf("%-38s %8.4f\n", "AUSK (raw pixels)", ausk_acc);
  std::printf("%-38s %8.4f\n", "VolcanoML (+embedding selection)",
              volcano_acc);

  auto it = volcano_result.best_assignment.find("fe:embedding");
  if (it != volcano_result.best_assignment.end()) {
    static const char* kChoices[] = {"none", "pretrained_model_a",
                                     "pretrained_model_b"};
    size_t choice = static_cast<size_t>(it->second);
    std::printf("selected embedding operator: %s\n",
                choice < 3 ? kChoices[choice] : "?");
  }
  std::printf("(paper: 96.5%% with embedding selection vs 69.7%% without)\n");
  return 0;
}
