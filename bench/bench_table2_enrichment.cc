// Experiment E4 — Table 2 of the paper: search-space enrichment with the
// "smote_balancer" feature-engineering operator on five imbalanced
// datasets. Compares AUSK (which cannot express the enrichment),
// VolcanoML without enrichment, and VolcanoML with the smote stage.
//
// Paper reference: enrichment brings further improvement, e.g. +3.57
// balanced-accuracy points over auto-sklearn on pc2. The shape to
// reproduce: VolcanoML+smote >= VolcanoML >= AUSK on most of the five
// imbalanced datasets.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace volcanoml;
  using namespace volcanoml::bench;
  std::printf("E4 / Table 2: smote_balancer enrichment on imbalanced data\n");

  SearchSpaceOptions base;
  base.task = TaskType::kClassification;
  base.preset = SpacePreset::kLarge;  // Balancing stage included.
  SearchSpaceOptions enriched = base;
  enriched.include_smote = true;

  double budget = 1.5 * BenchScale();  // Seconds per system per dataset.
  EvaluatorOptions eval;
  eval.budget_in_seconds = true;
  std::vector<SystemUnderTest> systems = {
      MakeAusk(base, nullptr, "AUSK", eval),
      MakeVolcano(base, nullptr, "VolcanoML", eval),
      MakeVolcano(enriched, nullptr, "VolcanoML+smote", eval),
  };
  // The space each system's best assignment must be refitted under.
  std::vector<SearchSpaceOptions> spaces = {base, base, enriched};

  PrintHeader("dataset (bal. acc.)",
              {"AUSK", "VolcanoML", "V+smote"});
  std::vector<DatasetSpec> suite = ImbalancedSuite();
  for (size_t d = 0; d < suite.size(); ++d) {
    const DatasetSpec& spec = suite[d];
    Dataset data = spec.make(400 + d);
    TrainTest tt = SplitDataset(data, 41 + d);
    std::vector<double> row;
    for (size_t s = 0; s < systems.size(); ++s) {
      std::fprintf(stderr, "[table2] %s / %s\n", spec.name.c_str(),
                   systems[s].name.c_str());
      AutoMlResult result = systems[s].run(tt.train, budget, 600 + d);
      row.push_back(
          TestScore(spaces[s], result.best_assignment, tt.train, tt.test));
    }
    PrintRow(spec.name, row, "%10.4f");
  }
  return 0;
}
