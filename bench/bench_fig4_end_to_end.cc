// Experiment E1 — Figure 4 of the paper: per-dataset comparison of
// VolcanoML against auto-sklearn (AUSK) and TPOT on 30 classification and
// 20 regression tasks under the same (medium) search space. For
// classification the bars are balanced-accuracy improvement (percentage
// points); for regression they are the relative MSE improvement
// Delta(m1, m2) = (s(m2) - s(m1)) / max(s(m1), s(m2)).
//
// Paper reference values: VolcanoML beats AUSK on 25/30 and TPOT on 23/30
// classification tasks, and beats them on 17/20 and 15/20 regression
// tasks. The shape to reproduce is "VolcanoML wins on a clear majority".

#include <cstdio>

#include "bench_util.h"

namespace volcanoml {
namespace bench {
namespace {

void RunTask(TaskType task, const std::vector<DatasetSpec>& suite,
             double budget) {
  // The paper evaluates on auto-sklearn's *full* search space with
  // wall-clock budgets (900-1800 s there; seconds-scale here, the same
  // budget currency).
  SearchSpaceOptions space;
  space.task = task;
  space.preset = SpacePreset::kLarge;
  EvaluatorOptions eval;
  eval.budget_in_seconds = true;

  SystemUnderTest volcano = MakeVolcano(space, nullptr, "VolcanoML-", eval);
  SystemUnderTest ausk = MakeAusk(space, nullptr, "AUSK-", eval);
  SystemUnderTest tpot = MakeTpot(space, eval);

  const bool cls = task == TaskType::kClassification;
  std::printf("\n== %s (%zu datasets, budget %.1f s) ==\n",
              cls ? "Classification" : "Regression", suite.size(), budget);
  std::printf("%-22s %12s %12s  (positive: VolcanoML better)\n", "dataset",
              cls ? "dAcc vs AUSK" : "dMSE vs AUSK",
              cls ? "dAcc vs TPOT" : "dMSE vs TPOT");

  int wins_ausk = 0, wins_tpot = 0;
  for (size_t d = 0; d < suite.size(); ++d) {
    Dataset data = suite[d].make(100 + d);
    TrainTest tt = SplitDataset(data, 7 + d);

    auto score = [&](const SystemUnderTest& system) {
      AutoMlResult result = system.run(tt.train, budget, 1000 + d);
      return TestScore(space, result.best_assignment, tt.train, tt.test);
    };
    double score_volcano = score(volcano);
    double score_ausk = score(ausk);
    double score_tpot = score(tpot);

    double delta_ausk, delta_tpot;
    if (cls) {
      delta_ausk = 100.0 * (score_volcano - score_ausk);
      delta_tpot = 100.0 * (score_volcano - score_tpot);
    } else {
      // Regression scores are MSE (lower better); use the paper's Delta.
      delta_ausk = RelativeMseImprovement(score_volcano, score_ausk);
      delta_tpot = RelativeMseImprovement(score_volcano, score_tpot);
    }
    if (delta_ausk >= 0) ++wins_ausk;
    if (delta_tpot >= 0) ++wins_tpot;
    std::printf("%-22s %12.3f %12.3f\n", suite[d].name.c_str(), delta_ausk,
                delta_tpot);
  }
  std::printf("summary: VolcanoML >= AUSK on %d/%zu, >= TPOT on %d/%zu\n",
              wins_ausk, suite.size(), wins_tpot, suite.size());
}

}  // namespace
}  // namespace bench
}  // namespace volcanoml

int main() {
  using namespace volcanoml;
  using namespace volcanoml::bench;
  std::printf("E1 / Figure 4: end-to-end comparison, same search space\n");
  double budget = 2.0 * BenchScale();  // Seconds per system per dataset.
  RunTask(TaskType::kClassification, MediumClassificationSuite(), budget);
  RunTask(TaskType::kRegression, RegressionSuite(), budget);
  return 0;
}
