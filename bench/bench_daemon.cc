// Experiment E14 — session-daemon load test: N client threads × M
// sessions each against one daemon instance. Reports end-to-end session
// throughput, per-request latencies (create / status poll / evict), and
// the daemon's scheduler step rate, then emits BENCH_daemon.json.
//
// Scale with VOLCANOML_BENCH_SCALE (multiplies the per-session budget)
// and VOLCANOML_BENCH_CLIENTS / VOLCANOML_BENCH_SESSIONS.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "data/synthetic.h"
#include "ipc/transport.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace volcanoml {
namespace bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  long value = std::atol(env);
  return value > 0 ? static_cast<size_t>(value) : fallback;
}

std::string BlobsCsv() {
  Dataset data = MakeBlobs(80, 5, 2, 1.2, 21);
  std::ostringstream out;
  out.precision(17);
  for (size_t i = 0; i < data.NumSamples(); ++i) {
    for (size_t j = 0; j < data.NumFeatures(); ++j) {
      out << data.x()(i, j) << ',';
    }
    out << data.y()[i] << '\n';
  }
  return out.str();
}

/// Latencies one client thread collected, merged after the fan-in so the
/// hot path never shares a vector across threads.
struct ClientSamples {
  std::vector<double> create_ms;
  std::vector<double> poll_ms;
  std::vector<double> evict_ms;
  size_t failures = 0;
};

void Summarize(BenchJsonWriter* json, const std::string& label,
               std::vector<double> samples) {
  if (samples.empty()) return;
  std::printf("| %-12s | %8.2f | %8.2f | %8.2f | %8.2f | %6zu |\n",
              label.c_str(), Mean(samples), Quantile(samples, 0.5),
              Quantile(samples, 0.95),
              *std::max_element(samples.begin(), samples.end()),
              samples.size());
  json->Add(label + "_mean_ms", Mean(samples), "ms");
  json->Add(label + "_p50_ms", Quantile(samples, 0.5), "ms");
  json->Add(label + "_p95_ms", Quantile(samples, 0.95), "ms");
  json->Add(label + "_max_ms",
            *std::max_element(samples.begin(), samples.end()), "ms");
}

int Run() {
  const size_t kClients = EnvSize("VOLCANOML_BENCH_CLIENTS", 4);
  const size_t kSessions = EnvSize("VOLCANOML_BENCH_SESSIONS", 8);
  const double budget = 6.0 * BenchScale();
  const std::string socket = "/tmp/volcanoml_bench_daemon.sock";
  const std::string csv = BlobsCsv();

  std::printf("# E14 daemon load test: %zu clients x %zu sessions, "
              "budget %.1f\n\n",
              kClients, kSessions, budget);

  DaemonOptions options;
  options.socket_path = socket;
  options.spool_dir = "/tmp";
  options.max_resident = 6;  // Below the live session count: forces churn.
  Daemon daemon(options);
  ThreadPool serve_pool(1);
  Status serve_status = Status::Ok();
  std::future<void> served =
      serve_pool.Submit([&] { serve_status = daemon.Serve(); });
  {
    DaemonClient probe(socket);
    for (int i = 0; i < 1000; ++i) {
      if (probe.ListSessions().ok()) break;
      SleepMs(5);
    }
  }

  const char* plans[] = {"joint", "cond(alg)+joint", "cond(alg)+alt(fe,hp)"};
  std::vector<ClientSamples> samples(kClients);
  Stopwatch wall;
  {
    ThreadPool clients(kClients);
    clients.ParallelFor(kClients, [&](size_t client_index) {
      DaemonClient client(socket);
      ClientSamples& mine = samples[client_index];
      std::vector<uint64_t> ids;
      for (size_t s = 0; s < kSessions; ++s) {
        CreateSessionRequest request;
        request.tenant = "tenant-" + std::to_string(client_index);
        request.csv = csv;
        request.config.preset = 0;
        request.config.plan = plans[(client_index + s) % 3];
        request.config.optimizer = s % 2 == 0 ? "random" : "smac";
        request.config.budget = budget;
        request.config.seed = 31 + client_index * kSessions + s;
        request.step_credit = kUnlimitedCredit;
        Stopwatch create;
        Result<uint64_t> created = client.CreateSession(request);
        mine.create_ms.push_back(create.ElapsedMillis());
        if (!created.ok()) {
          ++mine.failures;
          continue;
        }
        ids.push_back(created.value());
      }
      // One explicit mid-run evict per client: the restore cost shows up
      // in the scheduler turn that picks the session back up.
      if (!ids.empty()) {
        Stopwatch evict;
        if (!client.EvictSession(ids[0]).ok()) ++mine.failures;
        mine.evict_ms.push_back(evict.ElapsedMillis());
      }
      for (uint64_t id : ids) {
        while (true) {
          QuerySessionRequest query;
          query.session_id = id;
          Stopwatch poll;
          Result<QuerySessionReply> reply = client.QuerySession(query);
          mine.poll_ms.push_back(poll.ElapsedMillis());
          if (!reply.ok()) {
            ++mine.failures;
            break;
          }
          if (reply.value().status.state == SessionState::kFailed) {
            ++mine.failures;
            break;
          }
          if (reply.value().status.done) break;
          SleepMs(10);
        }
      }
    });
  }
  const double wall_seconds = wall.ElapsedSeconds();

  uint64_t total_steps = 0;
  double total_budget = 0.0;
  uint64_t total_evaluations = 0;
  size_t done_sessions = 0;
  size_t failures = 0;
  for (const ClientSamples& s : samples) failures += s.failures;
  DaemonClient client(socket);
  Result<ListSessionsReply> listed = client.ListSessions();
  if (listed.ok()) {
    for (const SessionStatus& status : listed.value().sessions) {
      total_steps += status.steps;
      total_budget += status.consumed_budget;
      total_evaluations += status.telemetry.num_evaluations;
      if (status.done) ++done_sessions;
    }
  }
  Result<uint64_t> open = client.Shutdown();
  served.wait();

  const size_t total_sessions = kClients * kSessions;
  std::printf("| metric       |     mean |      p50 |      p95 |      max "
              "|      n |\n");
  std::printf("|--------------|----------|----------|----------|----------"
              "|--------|\n");
  BenchJsonWriter json("daemon");
  json.Add("clients", static_cast<double>(kClients), "count");
  json.Add("sessions", static_cast<double>(total_sessions), "count");
  json.Add("budget_per_session", budget, "units");
  std::vector<double> create_ms, poll_ms, evict_ms;
  for (ClientSamples& s : samples) {
    create_ms.insert(create_ms.end(), s.create_ms.begin(), s.create_ms.end());
    poll_ms.insert(poll_ms.end(), s.poll_ms.begin(), s.poll_ms.end());
    evict_ms.insert(evict_ms.end(), s.evict_ms.begin(), s.evict_ms.end());
  }
  Summarize(&json, "create", create_ms);
  Summarize(&json, "poll", poll_ms);
  Summarize(&json, "evict", evict_ms);

  std::printf("\nsessions done:        %zu / %zu (failures: %zu)\n",
              done_sessions, total_sessions, failures);
  std::printf("wall time:            %.3f s\n", wall_seconds);
  std::printf("session throughput:   %.2f sessions/s\n",
              static_cast<double>(done_sessions) / wall_seconds);
  std::printf("scheduler step rate:  %.1f steps/s (%llu steps)\n",
              static_cast<double>(total_steps) / wall_seconds,
              static_cast<unsigned long long>(total_steps));
  std::printf("evaluation rate:      %.1f evals/s (%llu evaluations)\n",
              static_cast<double>(total_evaluations) / wall_seconds,
              static_cast<unsigned long long>(total_evaluations));
  std::printf("budget consumed:      %.1f units\n", total_budget);
  json.Add("sessions_done", static_cast<double>(done_sessions), "count");
  json.Add("failures", static_cast<double>(failures), "count");
  json.Add("wall_seconds", wall_seconds, "s");
  json.Add("session_throughput",
           static_cast<double>(done_sessions) / wall_seconds, "sessions/s");
  json.Add("scheduler_step_rate",
           static_cast<double>(total_steps) / wall_seconds, "steps/s");
  json.Add("evaluation_rate",
           static_cast<double>(total_evaluations) / wall_seconds, "evals/s");
  if (!json.WriteFile()) return 1;

  if (!serve_status.ok()) {
    std::fprintf(stderr, "daemon serve failed: %s\n",
                 serve_status.ToString().c_str());
    return 1;
  }
  if (!open.ok() || failures != 0 || done_sessions != total_sessions) {
    std::fprintf(stderr, "load test incomplete\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace volcanoml

int main() { return volcanoml::bench::Run(); }
