// Snapshot overhead on a paper-scale search (150 evaluation units).
// Results are recorded in EXPERIMENTS.md ("E13 — snapshot overhead").
//
// Three measurements:
//   search    — the search itself, stepped with no snapshots;
//   per-save  — SaveSnapshot after EVERY step (the most aggressive
//               checkpoint cadence the CLI offers), isolated with its
//               own stopwatch;
//   load      — restoring the final snapshot into a fresh executor.
// The checkpointed run's trajectory is asserted bit-identical to the
// plain run's: snapshotting is observation-only and must not perturb the
// search by a single bit.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "data/synthetic.h"
#include "util/check.h"
#include "util/timer.h"

namespace volcanoml {
namespace bench {
namespace {

constexpr uint64_t kSeed = 17;

VolcanoMlOptions Options() {
  VolcanoMlOptions options;
  options.space.task = TaskType::kClassification;
  options.space.preset = SpacePreset::kSmall;
  options.budget = 150.0 * BenchScale();
  options.seed = kSeed;
  return options;
}

void Run() {
  // Large enough that one pipeline evaluation costs what it does on a
  // small real dataset (tens of ms); snapshot cost is per-state, not
  // per-sample, so a toy dataset would overstate the relative overhead.
  Dataset data = MakeBlobs(6000, 20, 3, 1.4, kSeed);

  // Plain stepped run, no snapshots.
  VolcanoML plain(Options());
  VOLCANOML_CHECK(plain.Prepare(data).ok());
  Stopwatch search_timer;
  plain.executor()->Run();
  double search_seconds = search_timer.ElapsedSeconds();
  size_t num_steps = plain.executor()->num_steps();

  // Checkpointed run: SaveSnapshot after every step.
  VolcanoML checkpointed(Options());
  VOLCANOML_CHECK(checkpointed.Prepare(data).ok());
  double snapshot_seconds = 0.0;
  size_t num_snapshots = 0;
  std::string last_snapshot;
  while (checkpointed.executor()->Step()) {
    Stopwatch save_timer;
    last_snapshot = checkpointed.executor()->SaveSnapshot();
    snapshot_seconds += save_timer.ElapsedSeconds();
    ++num_snapshots;
  }

  // Snapshotting must be observation-only: bit-identical trajectories.
  const auto& a = plain.executor()->trajectory();
  const auto& b = checkpointed.executor()->trajectory();
  VOLCANOML_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    VOLCANOML_CHECK(std::memcmp(&a[i].utility, &b[i].utility,
                                sizeof(double)) == 0);
    VOLCANOML_CHECK(std::memcmp(&a[i].budget, &b[i].budget,
                                sizeof(double)) == 0);
  }

  // Restore cost: final snapshot into a fresh executor.
  VolcanoML restored(Options());
  VOLCANOML_CHECK(restored.Prepare(data).ok());
  Stopwatch load_timer;
  Status status = restored.executor()->LoadSnapshot(last_snapshot);
  double load_seconds = load_timer.ElapsedSeconds();
  VOLCANOML_CHECK(status.ok());

  double per_save_ms =
      num_snapshots > 0 ? 1e3 * snapshot_seconds / num_snapshots : 0.0;
  double overhead_pct =
      search_seconds > 0.0 ? 100.0 * snapshot_seconds / search_seconds : 0.0;
  std::printf("budget_units            %.0f\n", Options().budget);
  std::printf("steps                   %zu\n", num_steps);
  std::printf("search_seconds          %.3f\n", search_seconds);
  std::printf("snapshots_taken         %zu\n", num_snapshots);
  std::printf("snapshot_total_seconds  %.4f\n", snapshot_seconds);
  std::printf("snapshot_per_save_ms    %.3f\n", per_save_ms);
  std::printf("snapshot_overhead_pct   %.2f\n", overhead_pct);
  std::printf("snapshot_bytes          %zu\n", last_snapshot.size());
  std::printf("load_seconds            %.4f\n", load_seconds);
  std::printf("trajectory_bit_equal    yes\n");
}

}  // namespace
}  // namespace bench
}  // namespace volcanoml

int main() {
  volcanoml::bench::Run();
  return 0;
}
